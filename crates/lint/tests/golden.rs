//! Golden tests for the call-graph rules (L005–L008): each rule gets a
//! positive fixture proving it fires, a negative fixture proving it
//! stays quiet, and a suppressed fixture proving an in-place waiver
//! silences it without reading as stale. A final self-scan asserts the
//! live workspace is clean under `--deny --deny-unused-allow` and that
//! the JSON report is run-to-run byte-identical.

use kosha_lint::{lint_files, scan_workspace, Config, LintReport, MustCallBefore, Rule};

fn run_fixture(name: &str, source: &str, cfg: &Config) -> LintReport {
    lint_files(&[(format!("fixtures/{name}"), source.to_string())], cfg)
}

fn rule_findings(report: &LintReport, rule: Rule) -> Vec<String> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| format!("{f}"))
        .collect()
}

fn l007_cfg(suffix: &str) -> Config {
    Config {
        l007_rules: vec![MustCallBefore {
            file_suffix: suffix.to_string(),
            scope_fn: "apply_mutation".to_string(),
            before: vec!["void_lease".to_string()],
            target: "fan_out".to_string(),
            why: "fixture: leases must be voided before the fan-out".to_string(),
        }],
        ..Config::default()
    }
}

#[test]
fn l005_fires_on_transitive_handler_rpc() {
    let report = run_fixture(
        "l005_pos.rs",
        include_str!("fixtures/l005_pos.rs"),
        &Config::default(),
    );
    let hits = rule_findings(&report, Rule::L005);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].contains("Relay::handle"), "{hits:?}");
    assert!(hits[0].contains("handle -> chase -> spread"), "{hits:?}");
}

#[test]
fn l005_quiet_on_local_only_helpers() {
    let report = run_fixture(
        "l005_neg.rs",
        include_str!("fixtures/l005_neg.rs"),
        &Config::default(),
    );
    assert!(rule_findings(&report, Rule::L005).is_empty());
}

#[test]
fn l005_entry_waiver_suppresses_and_is_counted_used() {
    let report = run_fixture(
        "l005_sup.rs",
        include_str!("fixtures/l005_sup.rs"),
        &Config::default(),
    );
    assert!(rule_findings(&report, Rule::L005).is_empty());
    assert!(report.unused_allows.is_empty(), "waiver must read as used");
}

#[test]
fn l006_fires_on_duplicate_mismatch_and_missing_catch_all() {
    let report = run_fixture(
        "l006_pos.rs",
        include_str!("fixtures/l006_pos.rs"),
        &Config::default(),
    );
    let hits = rule_findings(&report, Rule::L006);
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(
        hits.iter().any(|h| h.contains("duplicate wire tag 2")),
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|h| h.contains("wire-tag sets disagree")),
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|h| h.contains("no unknown-tag arm")),
        "{hits:?}"
    );
}

#[test]
fn l006_quiet_on_symmetric_codec() {
    let report = run_fixture(
        "l006_neg.rs",
        include_str!("fixtures/l006_neg.rs"),
        &Config::default(),
    );
    assert!(rule_findings(&report, Rule::L006).is_empty());
}

#[test]
fn l006_waiver_suppresses_deliberate_alias() {
    let report = run_fixture(
        "l006_sup.rs",
        include_str!("fixtures/l006_sup.rs"),
        &Config::default(),
    );
    assert!(rule_findings(&report, Rule::L006).is_empty());
    assert!(report.unused_allows.is_empty(), "waiver must read as used");
}

#[test]
fn l007_fires_when_before_call_is_missing() {
    let report = run_fixture(
        "l007_pos.rs",
        include_str!("fixtures/l007_pos.rs"),
        &l007_cfg("l007_pos.rs"),
    );
    let hits = rule_findings(&report, Rule::L007);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(
        hits[0].contains("must call one of [void_lease]"),
        "{hits:?}"
    );
}

#[test]
fn l007_quiet_when_before_call_precedes_target() {
    let report = run_fixture(
        "l007_neg.rs",
        include_str!("fixtures/l007_neg.rs"),
        &l007_cfg("l007_neg.rs"),
    );
    assert!(rule_findings(&report, Rule::L007).is_empty());
}

#[test]
fn l007_waiver_suppresses_justified_arm() {
    let report = run_fixture(
        "l007_sup.rs",
        include_str!("fixtures/l007_sup.rs"),
        &l007_cfg("l007_sup.rs"),
    );
    assert!(rule_findings(&report, Rule::L007).is_empty());
    assert!(report.unused_allows.is_empty(), "waiver must read as used");
}

#[test]
fn l008_fires_on_unpruned_growable_field() {
    let report = run_fixture(
        "l008_pos.rs",
        include_str!("fixtures/l008_pos.rs"),
        &Config::default(),
    );
    let hits = rule_findings(&report, Rule::L008);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].contains("Tracker.sightings"), "{hits:?}");
}

#[test]
fn l008_quiet_when_maintenance_reaches_a_prune() {
    let report = run_fixture(
        "l008_neg.rs",
        include_str!("fixtures/l008_neg.rs"),
        &Config::default(),
    );
    assert!(rule_findings(&report, Rule::L008).is_empty());
}

#[test]
fn l008_waiver_suppresses_justified_field() {
    let report = run_fixture(
        "l008_sup.rs",
        include_str!("fixtures/l008_sup.rs"),
        &Config::default(),
    );
    assert!(rule_findings(&report, Rule::L008).is_empty());
    assert!(report.unused_allows.is_empty(), "waiver must read as used");
}

#[test]
fn unused_suppression_is_reported() {
    let src = "// lint: allow(L005) nothing here ever fires\nfn quiet() {}\n";
    let report = run_fixture("stale.rs", src, &Config::default());
    assert!(report.findings.is_empty());
    assert_eq!(report.unused_allows.len(), 1, "{:?}", report.unused_allows);
    assert_eq!(report.unused_allows[0].rule, Rule::L005);
}

/// The live tree must hold every discipline the analyzer encodes: zero
/// findings and zero stale waivers, exactly what CI enforces with
/// `--deny --deny-unused-allow`.
#[test]
fn workspace_self_scan_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root, &Config::default()).expect("walk workspace");
    assert!(report.files_scanned > 50, "scan looks truncated");
    let findings: Vec<String> = report.findings.iter().map(|f| format!("{f}")).collect();
    assert!(findings.is_empty(), "{findings:#?}");
    let stale: Vec<String> = report
        .unused_allows
        .iter()
        .map(|u| format!("{u}"))
        .collect();
    assert!(stale.is_empty(), "{stale:#?}");
}

/// The machine-readable report must be deterministic: CI diffs two
/// consecutive `--json` runs byte-for-byte.
#[test]
fn json_report_is_double_run_identical() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = scan_workspace(&root, &Config::default()).expect("walk workspace");
    let b = scan_workspace(&root, &Config::default()).expect("walk workspace");
    assert_eq!(a.to_json(0, &[]), b.to_json(0, &[]));
}
