//! L007 positive fixture: the mutation arm fans out without voiding
//! leases first.

impl Store {
    fn apply_mutation(&self, path: &str) {
        self.mutate(path);
        self.fan_out(path);
    }
}
