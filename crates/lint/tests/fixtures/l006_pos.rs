//! L006 positive fixture: duplicate encode tag, encode/decode tag-set
//! mismatch, and a dispatch with no unknown-tag arm.

impl WireWrite for Frame {
    fn write(&self, w: &mut Writer) {
        match self {
            Frame::Ping => w.u8(1),
            Frame::Pong => w.u8(2),
            Frame::Data => w.u8(2),
            Frame::Bye => w.u8(3),
        }
    }
}

impl WireRead for Frame {
    fn read(r: &mut Reader) -> Result<Frame, WireError> {
        let t = r.u8()?;
        match t {
            1 => Ok(Frame::Ping),
            2 => Ok(Frame::Pong),
            4 => Ok(Frame::Bye),
        }
    }
}
