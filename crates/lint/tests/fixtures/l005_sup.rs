//! L005 suppressed fixture: the risky path exists, but the entry is
//! waived in place with a justification.

impl Relay {
    fn spread(&self) {
        let _ = self.net.call(self.origin, self.next, ping());
    }
}

impl RpcHandler for Relay {
    // lint: allow(L005) fixture: designed nesting level justified here
    fn handle(&self) {
        self.spread();
    }
}
