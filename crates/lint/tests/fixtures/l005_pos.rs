//! L005 positive fixture: a handler reaches a blocking RPC through a
//! helper chain, which line-local analysis cannot see.

impl Relay {
    fn spread(&self) {
        let _ = self.net.call(self.origin, self.next, ping());
    }

    fn chase(&self) {
        self.spread();
    }
}

impl RpcHandler for Relay {
    fn handle(&self) {
        self.chase();
    }
}
