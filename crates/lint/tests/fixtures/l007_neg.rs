//! L007 negative fixture: the lease is voided before the fan-out in
//! the same block.

impl Store {
    fn apply_mutation(&self, path: &str) {
        self.mutate(path);
        self.void_lease(path);
        self.fan_out(path);
    }
}
