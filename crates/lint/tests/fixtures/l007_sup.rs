//! L007 suppressed fixture: the ordering requirement is waived in
//! place with a justification.

impl Store {
    fn apply_mutation(&self, path: &str) {
        self.mutate(path);
        // lint: allow(L007) fixture: this arm creates a fresh name, no lease can exist
        self.fan_out(path);
    }
}
