//! L008 negative fixture: the same map, but maintenance prunes it.

struct Tracker {
    sightings: std::collections::HashMap<u64, u64>,
    era: u64,
}

impl Tracker {
    fn observe(&mut self, key: u64) {
        self.sightings.insert(key, self.era);
    }

    fn maintain(&mut self) {
        self.era += 1;
        self.expire();
    }

    fn expire(&mut self) {
        let horizon = self.era;
        self.sightings.retain(|_, seen| *seen + 8 > horizon);
    }
}
