//! L008 positive fixture: a long-lived map with a reachable insert but
//! no prune path from any cleanup root.

struct Tracker {
    sightings: std::collections::HashMap<u64, u64>,
    era: u64,
}

impl Tracker {
    fn observe(&mut self, key: u64) {
        self.sightings.insert(key, self.era);
    }

    fn maintain(&mut self) {
        self.era += 1;
    }
}
