//! L006 suppressed fixture: a deliberate tag alias waived in place.

impl WireWrite for Frame {
    fn write(&self, w: &mut Writer) {
        match self {
            Frame::Ping => w.u8(1),
            Frame::Pong => w.u8(2),
            // lint: allow(L006) fixture: deliberate tag alias kept for wire compatibility
            Frame::Data => w.u8(2),
        }
    }
}

impl WireRead for Frame {
    fn read(r: &mut Reader) -> Result<Frame, WireError> {
        let t = r.u8()?;
        match t {
            1 => Ok(Frame::Ping),
            2 => Ok(Frame::Pong),
            _ => Err(WireError::BadTag),
        }
    }
}
