//! L005 negative fixture: the same handler shape, but every helper on
//! the path does local work only.

impl Relay {
    fn spread(&mut self) {
        self.tally += 1;
    }

    fn chase(&mut self) {
        self.spread();
    }
}

impl RpcHandler for Relay {
    fn handle(&mut self) {
        self.chase();
    }
}
