//! L008 suppressed fixture: growth is accepted and justified at the
//! field declaration.

struct Tracker {
    // lint: allow(L008) fixture: bounded by the fixed key universe
    sightings: std::collections::HashMap<u64, u64>,
    era: u64,
}

impl Tracker {
    fn observe(&mut self, key: u64) {
        self.sightings.insert(key, self.era);
    }

    fn maintain(&mut self) {
        self.era += 1;
    }
}
