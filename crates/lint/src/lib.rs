//! `kosha-lint`: a workspace concurrency & determinism analyzer.
//!
//! Kosha's failover correctness rides on lock discipline across two
//! transports, and the `BENCH_*` CI gates depend on byte-deterministic
//! execution. This crate is a hand-rolled, zero-dependency Rust-source
//! scanner (no `syn`, no crates.io access needed) that enforces the
//! project-specific rules those properties depend on:
//!
//! * **L001** — a lock guard is live across a blocking RPC
//!   (`.call(` / `.call_many(` / `call_typed(`). On `ThreadedNetwork`
//!   this is a deadlock ingredient (the callee may need the same lock via
//!   a nested RPC) and at minimum head-of-line blocking; on `SimNetwork`
//!   it hides the hazard the threaded transport then hits for real.
//! * **L002** — a nondeterminism source (`SystemTime::now`,
//!   `Instant::now`, `thread::sleep`, or iteration over a
//!   `HashMap`/`HashSet`) outside the allowlisted clock/transport
//!   modules. These leak scheduler or hash-seed order into behavior and
//!   break the `BENCH_fanout` / `BENCH_trace` / `BENCH_writeback`
//!   byte-determinism gates.
//! * **L003** — `unwrap()` / `expect(` / `panic!` inside an RPC or NFS
//!   server-handler module. A panic in a handler kills a mailbox thread
//!   silently under `ThreadedNetwork`: the node keeps looking alive while
//!   one of its services is gone.
//! * **L004** — `WireWrite` / `WireRead` impl pairs whose field order
//!   disagrees: the encoder writes fields in one order and the decoder
//!   reads them in another, which corrupts every frame of that type.
//!
//! A second, call-graph-aware phase (see [`graph`]) builds a
//! per-function view of the whole workspace and runs four more rules:
//!
//! * **L005** — a blocking RPC transitively reachable from a
//!   server-handler or pump entry point through any chain of helpers.
//! * **L006** — wire-tag registry: duplicate tags, encode/decode
//!   tag-set mismatches, and decode dispatches without an unknown-tag
//!   arm in `WireWrite`/`WireRead` pairs.
//! * **L007** — must-call-before invariants (seeded with the hot-lease
//!   rule: mutations void leases before the mirror fan-out).
//! * **L008** — long-lived map/set fields that grow but have no prune
//!   path reachable from the maintenance/cleanup roots.
//!
//! False positives are silenced in place with a justification comment:
//! `// lint: allow(L00x) <why>` on the offending line or the line above.
//! A suppression that silences nothing is itself reported (and fails CI
//! under `--deny-unused-allow`), so stale waivers can't mask future
//! regressions. The scanner works on sanitized source (comments and
//! string literals blanked, line structure preserved), so patterns
//! inside strings, docs, or `#[cfg(test)]` modules are never flagged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;

pub use graph::MustCallBefore;

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The rules the analyzer knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Lock guard live across a blocking RPC.
    L001,
    /// Nondeterminism source outside allowlisted modules.
    L002,
    /// Panic path inside an RPC/NFS server-handler module.
    L003,
    /// Wire encode/decode field-order asymmetry.
    L004,
    /// Blocking RPC transitively reachable from a handler/pump entry.
    L005,
    /// Wire-tag registry: duplicates, enc/dec mismatch, missing catch-all.
    L006,
    /// Must-call-before invariant violated (e.g. lease void before mirror).
    L007,
    /// Growable map/set field with no prune path from cleanup roots.
    L008,
}

impl Rule {
    /// All rules, in id order.
    pub const ALL: [Rule; 8] = [
        Rule::L001,
        Rule::L002,
        Rule::L003,
        Rule::L004,
        Rule::L005,
        Rule::L006,
        Rule::L007,
        Rule::L008,
    ];

    /// Stable rule id (`"L001"`…).
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
            Rule::L007 => "L007",
            Rule::L008 => "L008",
        }
    }

    /// One-line description for `--list-rules`.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::L001 => "lock guard held across a blocking RPC (deadlock / head-of-line risk)",
            Rule::L002 => "nondeterminism source outside allowlisted clock/transport modules",
            Rule::L003 => "unwrap()/expect()/panic! inside an RPC/NFS server-handler module",
            Rule::L004 => "Wire encode/decode field order asymmetry",
            Rule::L005 => "blocking RPC reachable from a server-handler/pump entry point",
            Rule::L006 => "wire-tag registry: duplicate/mismatched tags or missing catch-all",
            Rule::L007 => "must-call-before invariant violated (lease void before mirror)",
            Rule::L008 => "growable map/set field with no prune path from cleanup roots",
        }
    }

    /// Long-form documentation for `--explain L00x`.
    #[must_use]
    pub fn explain(self) -> &'static str {
        match self {
            Rule::L001 => {
                "L001 — lock guard held across a blocking RPC\n\n\
                 A `.lock()`/`.read()`/`.write()` guard that is still live when a\n\
                 `.call(` / `.call_many(` / `call_typed(` is issued. On ThreadedNetwork\n\
                 the callee may need the same lock via a nested RPC (deadlock); on\n\
                 SimNetwork it hides the hazard. Drop the guard, or clone the data\n\
                 out, before calling. Scope: one function body (L005 covers the\n\
                 transitive case).\n\n\
                 Waive: `// lint: allow(L001) <why>` on the call line."
            }
            Rule::L002 => {
                "L002 — nondeterminism source outside allowlisted modules\n\n\
                 `SystemTime::now` / `Instant::now` / `thread::sleep`, or iteration\n\
                 over a HashMap/HashSet whose order reaches behavior. These leak\n\
                 scheduler or hash-seed order into output and break the BENCH_*\n\
                 byte-identical double-run CI gates. Use the transport clock and\n\
                 BTree collections (or sort before use). Order-insensitive folds\n\
                 (.count(), .sum(), .max()…) are recognized and not flagged.\n\n\
                 Waive: `// lint: allow(L002) <why>`."
            }
            Rule::L003 => {
                "L003 — panic path inside a server-handler module\n\n\
                 `unwrap()` / `expect(` / `panic!` in a module with an\n\
                 `impl RpcHandler` (or a configured dispatch helper). Under\n\
                 ThreadedNetwork a handler panic kills the service's mailbox thread\n\
                 silently: the node looks alive while one service is gone. Return a\n\
                 protocol error instead.\n\n\
                 Waive: `// lint: allow(L003) <why>`."
            }
            Rule::L004 => {
                "L004 — Wire encode/decode field-order asymmetry\n\n\
                 A `WireWrite`/`WireRead` impl pair for the same type whose field\n\
                 order disagrees: the encoder writes [a, b] but the decoder reads\n\
                 [b, a], corrupting every frame of that type. Field order is\n\
                 compared over the fields both sides mention.\n\n\
                 Waive: `// lint: allow(L004) <why>` above the WireWrite impl."
            }
            Rule::L005 => {
                "L005 — blocking RPC reachable from a handler/pump entry point\n\n\
                 Entry points are every function in an `impl RpcHandler for …` or\n\
                 `impl PumpHook for …` block, plus configured extra roots\n\
                 (handle_replica, audit_scan). The analyzer builds the workspace\n\
                 call graph — `self.f(` resolves to the caller's own impl type\n\
                 first — and flags any `.call(` / `.call_many(` / `call_typed(`\n\
                 reachable from an entry. The replica-service discipline requires\n\
                 handlers to be leaf functions: a handler that blocks on another\n\
                 node's service while its own mailbox is occupied is one half of a\n\
                 distributed deadlock cycle (the PR 7 actor-ownership inversion).\n\n\
                 Waive at three granularities, most specific first:\n\
                 - the RPC line: that one sink is accepted;\n\
                 - a call line: traversal through that hand-off edge stops\n\
                   (\"callee verified leaf-safe / runs after the handler returns\");\n\
                 - the entry's `fn` line: the whole entry is a designed nesting\n\
                   level (e.g. the control service calling leaf replica services)."
            }
            Rule::L006 => {
                "L006 — wire-tag registry\n\n\
                 For each `WireWrite`/`WireRead` pair that writes two or more\n\
                 distinct `w.u8(<literal>)` tags, the tag sets must agree:\n\
                 duplicate encode tags (two variants claiming one wire tag),\n\
                 encoded tags with no decode arm (those frames are rejected by\n\
                 peers), decode arms never encoded (dead dispatch), duplicate\n\
                 decode arms (unreachable), and a decode dispatch without an\n\
                 unknown-tag catch-all arm (a frame from a newer peer would panic\n\
                 instead of failing with a wire error) are all flagged.\n\n\
                 Waive: `// lint: allow(L006) <why>` at the reported line."
            }
            Rule::L007 => {
                "L007 — must-call-before invariant\n\n\
                 A configurable ordering engine: every function named P in a\n\
                 configured file must call one of {A…} before B within the same\n\
                 innermost block (a match arm, typically). Seeded with the\n\
                 hot-copy lease rule from the heat-driven replica layer: every\n\
                 mutation arm of `handle_control` in primary.rs must void hot\n\
                 leases (hot_invalidate / hot_forget_object / hot_forget_anchor)\n\
                 before the mirror fan-out `mirror_op`, otherwise a stale hot copy\n\
                 can serve reads after the mutation acks.\n\n\
                 Waive: `// lint: allow(L007) <why>` on the B-call line — e.g. the\n\
                 create-family arms, where a freshly created name has no hot\n\
                 copies to void."
            }
            Rule::L008 => {
                "L008 — unbounded state growth\n\n\
                 A struct field of map/set type (HashMap/HashSet/BTreeMap/BTreeSet,\n\
                 possibly wrapped in Mutex/RwLock) with at least one insert site\n\
                 but no remove/retain/clear/drain site in any function reachable\n\
                 from the cleanup roots (maintain, forget*, detach, leave,\n\
                 prune_peer), and no self-bounding eviction co-located with an\n\
                 insert. This is the leak class fixed by hand in PRs 8–9\n\
                 (replica-slot GC, per-link EWMA prune): under churn the structure\n\
                 grows for the life of the node.\n\n\
                 Fix by pruning from maintenance, or bound the structure at the\n\
                 insert site. Waive: `// lint: allow(L008) <why>` on the field\n\
                 declaration line."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Scanner configuration: which files get relaxed or stricter treatment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path suffixes where L002 does not apply: the modules that *are*
    /// the clock/transport boundary and legitimately touch wall time,
    /// real sleeps, and scheduler order.
    pub l002_allow_suffixes: Vec<String>,
    /// Path suffixes that count as server-handler modules for L003 even
    /// if the `impl RpcHandler` lives elsewhere (dispatch helpers).
    pub l003_extra_suffixes: Vec<String>,
    /// Trait names whose impl-block functions are L005 entry points.
    pub l005_entry_traits: Vec<String>,
    /// Function names that are L005 entry points regardless of trait
    /// (dispatch helpers reached from handlers in other crates).
    pub l005_extra_roots: Vec<String>,
    /// The must-call-before invariants L007 enforces.
    pub l007_rules: Vec<MustCallBefore>,
    /// Function names that count as cleanup/maintenance roots for L008:
    /// a prune site reachable from any of these bounds the structure.
    pub l008_cleanup_roots: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            l002_allow_suffixes: vec![
                // The clock abstraction itself.
                "rpc/src/clock.rs".into(),
                // The real-thread transport: wall time, sleeps, and real
                // scheduler order are its entire point.
                "rpc/src/threadnet.rs".into(),
            ],
            l003_extra_suffixes: vec![
                // Kosha control-plane request execution: called from the
                // ControlService handler in primary.rs.
                "core/src/control.rs".into(),
            ],
            l005_entry_traits: vec!["RpcHandler".into(), "PumpHook".into()],
            l005_extra_roots: vec![
                // Replica-service body: dispatched from ReplicaService's
                // RpcHandler impl and required to stay a leaf.
                "handle_replica".into(),
                // Anti-entropy audit handler body (PR 8's local-state-only
                // rule, now machine-checked).
                "audit_scan".into(),
            ],
            l007_rules: vec![MustCallBefore {
                file_suffix: "core/src/primary.rs".into(),
                scope_fn: "handle_control".into(),
                before: vec![
                    "hot_invalidate".into(),
                    "hot_forget_object".into(),
                    "hot_forget_anchor".into(),
                ],
                target: "mirror_op".into(),
                why: "a mutation must void hot-copy leases before the mirror \
                      fan-out acks, or a stale hot copy can serve reads after \
                      the write completes"
                    .into(),
            }],
            l008_cleanup_roots: vec![
                "maintain".into(),
                "forget".into(),
                "forget_path".into(),
                "forget_subtree".into(),
                "detach".into(),
                "leave".into(),
                "prune_peer".into(),
            ],
        }
    }
}

/// Source with comments and string/char literals blanked (each replaced
/// by spaces so byte offsets and line numbers are preserved), plus the
/// suppressions harvested from comments.
#[derive(Debug)]
pub struct Sanitized {
    /// The blanked source text.
    pub text: String,
    /// Lines (1-based) on which each rule is suppressed. A
    /// `// lint: allow(L00x)` comment suppresses its own line and the
    /// following line, so it works both trailing and standalone.
    pub allow: BTreeMap<usize, BTreeSet<Rule>>,
    /// The comment lines the suppressions came from, keyed by the line
    /// the `lint: allow(...)` comment sits on. Used to report stale
    /// waivers that no longer silence anything.
    pub allow_sites: BTreeMap<usize, BTreeSet<Rule>>,
}

fn parse_allow(
    comment: &str,
    line: usize,
    allow: &mut BTreeMap<usize, BTreeSet<Rule>>,
    sites: &mut BTreeMap<usize, BTreeSet<Rule>>,
) {
    let Some(pos) = comment.find("lint: allow(") else {
        return;
    };
    let rest = &comment[pos + "lint: allow(".len()..];
    let Some(end) = rest.find(')') else { return };
    for tok in rest[..end].split(',') {
        let tok = tok.trim();
        let Some(rule) = Rule::ALL.iter().find(|r| r.id() == tok) else {
            continue;
        };
        sites.entry(line).or_default().insert(*rule);
        for l in [line, line + 1] {
            allow.entry(l).or_default().insert(*rule);
        }
    }
}

/// Blanks comments and string/char literals, preserving layout, and
/// collects `lint: allow(...)` suppressions from the comments.
#[must_use]
pub fn sanitize(src: &str) -> Sanitized {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut allow = BTreeMap::new();
    let mut allow_sites = BTreeMap::new();
    let mut st = St::Code;
    let mut line = 1usize;
    let mut comment = String::new();
    let mut comment_line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if st == St::LineComment {
                parse_allow(&comment, comment_line, &mut allow, &mut allow_sites);
                comment.clear();
                st = St::Code;
            }
            out.push(b'\n');
            line += 1;
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    st = St::LineComment;
                    comment_line = line;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(1);
                    comment_line = line;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    st = St::Str;
                    out.push(b'"');
                    i += 1;
                } else if b == b'r' || b == b'b' {
                    // Possible raw string r"...", r#"..."#, br"...", b"...".
                    let mut j = i + 1;
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0usize;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = (b == b'r' || bytes.get(i + 1) == Some(&b'r'))
                        && bytes.get(j) == Some(&b'"');
                    let is_bytestr = b == b'b' && hashes == 0 && bytes.get(i + 1) == Some(&b'"');
                    if is_raw {
                        out.extend(std::iter::repeat_n(b' ', j - i));
                        out.push(b'"');
                        i = j + 1;
                        st = St::RawStr(hashes);
                    } else if is_bytestr {
                        out.extend_from_slice(b" \"");
                        i += 2;
                        st = St::Str;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else if b == b'\'' {
                    // Distinguish a char literal from a lifetime: a
                    // lifetime is 'ident not followed by a closing quote.
                    let is_char = match bytes.get(i + 1) {
                        Some(b'\\') => true,
                        Some(c) if *c != b'\'' => bytes.get(i + 2) == Some(&b'\''),
                        _ => true,
                    };
                    if is_char {
                        st = St::Char;
                        out.push(b'\'');
                    } else {
                        out.push(b'\'');
                    }
                    i += 1;
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            St::LineComment => {
                comment.push(b as char);
                out.push(b' ');
                i += 1;
            }
            St::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 1 {
                        parse_allow(&comment, comment_line, &mut allow, &mut allow_sites);
                        comment.clear();
                        st = St::Code;
                    } else {
                        st = St::BlockComment(depth - 1);
                    }
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    st = St::BlockComment(depth + 1);
                } else {
                    comment.push(b as char);
                    out.push(b' ');
                    i += 1;
                }
            }
            St::Str => {
                if b == b'\\' {
                    // A `\<newline>` continuation must keep the newline, or
                    // every later line number in the file shifts by one.
                    out.push(b' ');
                    if bytes.get(i + 1) == Some(&b'\n') {
                        out.push(b'\n');
                        line += 1;
                    } else {
                        out.push(b' ');
                    }
                    i += 2;
                    if i > bytes.len() {
                        break;
                    }
                } else if b == b'"' {
                    out.push(b'"');
                    i += 1;
                    st = St::Code;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if b == b'"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k) != Some(&b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        out.push(b'"');
                        out.extend(std::iter::repeat_n(b' ', hashes));
                        i += 1 + hashes;
                        st = St::Code;
                        continue;
                    }
                }
                out.push(b' ');
                i += 1;
            }
            St::Char => {
                if b == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if i > bytes.len() {
                        break;
                    }
                } else if b == b'\'' {
                    out.push(b'\'');
                    i += 1;
                    st = St::Code;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    if st == St::LineComment {
        parse_allow(&comment, comment_line, &mut allow, &mut allow_sites);
    }
    Sanitized {
        text: String::from_utf8_lossy(&out).into_owned(),
        allow,
        allow_sites,
    }
}

/// Per-line flags: is this line inside a `#[cfg(test)]` module?
#[must_use]
pub fn test_line_mask(sanitized: &str) -> Vec<bool> {
    let n_lines = sanitized.lines().count() + 2;
    let mut mask = vec![false; n_lines + 1];
    let bytes = sanitized.as_bytes();
    let mut search = 0usize;
    while let Some(rel) = sanitized[search..].find("#[cfg(test)]") {
        let attr_at = search + rel;
        // Find the next `{` after the attribute and mark its block.
        let Some(open_rel) = sanitized[attr_at..].find('{') else {
            break;
        };
        let open = attr_at + open_rel;
        let mut depth = 0i32;
        let mut end = bytes.len();
        for (k, &b) in bytes.iter().enumerate().skip(open) {
            if b == b'{' {
                depth += 1;
            } else if b == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
        }
        let start_line = line_of(bytes, attr_at);
        let end_line = line_of(bytes, end);
        for m in mask
            .iter_mut()
            .take(end_line.min(n_lines) + 1)
            .skip(start_line)
        {
            *m = true;
        }
        search = end.min(bytes.len().saturating_sub(1)).max(attr_at + 1);
        if end >= bytes.len() {
            break;
        }
    }
    mask
}

fn line_of(bytes: &[u8], pos: usize) -> usize {
    1 + bytes[..pos.min(bytes.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when `text[pos..]` starts a standalone occurrence of `pat`
/// (not embedded in a longer identifier on either side).
fn standalone(text: &[u8], pos: usize, pat: &str) -> bool {
    if is_ident_byte(pat.as_bytes()[0]) && pos > 0 && is_ident_byte(text[pos - 1]) {
        return false;
    }
    let end = pos + pat.len();
    // Patterns ending in `(` or `!` delimit themselves.
    let last = pat.as_bytes()[pat.len() - 1];
    if is_ident_byte(last) {
        if let Some(&b) = text.get(end) {
            if is_ident_byte(b) {
                return false;
            }
        }
    }
    true
}

fn find_all(text: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while let Some(rel) = text[at..].find(pat) {
        let pos = at + rel;
        if standalone(text.as_bytes(), pos, pat) {
            out.push(pos);
        }
        at = pos + pat.len().max(1);
    }
    out
}

pub(crate) struct FileCtx<'a> {
    pub(crate) path: &'a str,
    pub(crate) text: &'a str,
    allow: &'a BTreeMap<usize, BTreeSet<Rule>>,
    allow_sites: &'a BTreeMap<usize, BTreeSet<Rule>>,
    test_mask: &'a [bool],
    /// Suppression sites that actually silenced something this run
    /// (comment line, rule) — the complement is reported as stale.
    used_allow: RefCell<BTreeSet<(usize, Rule)>>,
}

impl FileCtx<'_> {
    pub(crate) fn in_test(&self, line: usize) -> bool {
        *self.test_mask.get(line).unwrap_or(&false)
    }

    /// An allow at effect line `line` came from a comment on `line` or
    /// `line - 1`; mark every candidate site used (adjacent same-rule
    /// comments are rare enough that over-marking beats a false stale).
    fn mark_used(&self, rule: Rule, line: usize) {
        let mut used = self.used_allow.borrow_mut();
        for site in [line.saturating_sub(1), line] {
            if self
                .allow_sites
                .get(&site)
                .is_some_and(|rules| rules.contains(&rule))
            {
                used.insert((site, rule));
            }
        }
    }

    /// True when `rule` is waived at `line` by a `lint: allow` comment;
    /// records the waiver as used. Does not consult the test mask —
    /// graph-phase callers filter test lines themselves.
    pub(crate) fn consume_allow(&self, rule: Rule, line: usize) -> bool {
        let hit = self
            .allow
            .get(&line)
            .is_some_and(|rules| rules.contains(&rule));
        if hit {
            self.mark_used(rule, line);
        }
        hit
    }

    fn suppressed(&self, rule: Rule, line: usize) -> bool {
        if self.in_test(line) {
            return true;
        }
        self.consume_allow(rule, line)
    }

    pub(crate) fn emit(&self, out: &mut Vec<Finding>, rule: Rule, line: usize, message: String) {
        if self.suppressed(rule, line) {
            return;
        }
        out.push(Finding {
            rule,
            file: self.path.to_string(),
            line,
            message,
        });
    }

    /// Suppression sites that silenced nothing, in line order. Sites
    /// inside `#[cfg(test)]` regions are exempt — the scanner never
    /// looks there, so their waivers can't fire by construction.
    fn unused_allows(&self) -> Vec<(usize, Rule)> {
        let used = self.used_allow.borrow();
        let mut out = Vec::new();
        for (&line, rules) in self.allow_sites {
            if self.in_test(line) {
                continue;
            }
            for &rule in rules {
                if !used.contains(&(line, rule)) {
                    out.push((line, rule));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L001: lock guard live across a blocking RPC
// ---------------------------------------------------------------------------

const ACQUIRE_PATS: [&str; 4] = [".lock()", ".read()", ".write()", ".try_lock()"];
const CALL_PATS: [&str; 3] = [".call(", ".call_many(", "call_typed("];

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Open,
    Close,
    Semi,
    Let,
    Acquire,
    Call,
    Drop,
    Match,
    For,
}

#[derive(Debug)]
struct Guard {
    name: String,
    depth: i32,
    line: usize,
}

fn ident_after(text: &str, mut pos: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    while pos < bytes.len() && (bytes[pos] == b' ' || bytes[pos] == b'\n') {
        pos += 1;
    }
    let start = pos;
    while pos < bytes.len() && is_ident_byte(bytes[pos]) {
        pos += 1;
    }
    if pos == start {
        return None;
    }
    Some((text[start..pos].to_string(), pos))
}

/// Detects lock guards that are still live when a blocking RPC is
/// issued. Tracks three shapes:
///
/// 1. `let g = x.lock();` … `net.call(...)` before `g`'s scope ends or
///    `drop(g)` runs,
/// 2. a temporary guard and an RPC inside one statement
///    (`net.call(a, b, state.lock().y)`), and
/// 3. `match x.lock().y { … net.call(...) … }` / `for v in x.lock()…`,
///    where Rust extends the scrutinee temporary across the whole block.
fn check_l001(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let text = ctx.text;
    let bytes = text.as_bytes();

    // Gather positioned events, then walk them in order.
    let mut events: Vec<(usize, Ev)> = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'{' => events.push((i, Ev::Open)),
            b'}' => events.push((i, Ev::Close)),
            b';' => events.push((i, Ev::Semi)),
            _ => {}
        }
    }
    for p in find_all(text, "let ") {
        events.push((p, Ev::Let));
    }
    for pat in ACQUIRE_PATS {
        for p in find_all(text, pat) {
            events.push((p, Ev::Acquire));
        }
    }
    for pat in CALL_PATS {
        for p in find_all(text, pat) {
            events.push((p, Ev::Call));
        }
    }
    for p in find_all(text, "drop(") {
        events.push((p, Ev::Drop));
    }
    for p in find_all(text, "match ") {
        events.push((p, Ev::Match));
    }
    for p in find_all(text, "for ") {
        events.push((p, Ev::For));
    }
    events.sort_by_key(|&(p, _)| p);

    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    // Open `let` binding: (pattern text, declaration depth, last acquire pos).
    let mut open_let: Option<(String, i32, Option<usize>)> = None;
    // Statement-local flags (reset at `;`, `{`, `}`).
    let mut stmt_acquire: Option<usize> = None;
    let mut stmt_call: Option<usize> = None;
    // Position where a `match`/`for` header started, if its block should
    // pin a header temporary.
    let mut header_kw: Option<(Ev, usize)> = None;

    for (pos, ev) in events {
        match ev {
            Ev::Open => {
                depth += 1;
                // A `match`/`for` header that acquired a lock extends the
                // guard across the whole block it opens.
                if let (Some((kw, _)), Some(acq)) = (header_kw, stmt_acquire) {
                    if kw == Ev::Match || kw == Ev::For {
                        guards.push(Guard {
                            name: "<scrutinee temporary>".into(),
                            depth,
                            line: line_of(bytes, acq),
                        });
                    }
                }
                header_kw = None;
                stmt_acquire = None;
                stmt_call = None;
            }
            Ev::Close => {
                guards.retain(|g| g.depth < depth);
                depth -= 1;
                stmt_acquire = None;
                stmt_call = None;
                header_kw = None;
                // A `}` can also terminate an open let (`let x = match … };`)
                if let Some((_, d, _)) = open_let {
                    if depth < d {
                        open_let = None;
                    }
                }
            }
            Ev::Semi => {
                if let Some((name, d, Some(acq))) = open_let.clone() {
                    if d == depth {
                        // Guard binding only when the initializer *ends*
                        // with the acquisition (otherwise the guard is a
                        // temporary that dies with this statement).
                        let tail = &text[acq..pos];
                        let tail_end = tail.find(')').map(|k| &tail[k + 1..]).unwrap_or("");
                        if tail_end.chars().all(|c| c.is_whitespace() || c == ')') {
                            guards.push(Guard {
                                name,
                                depth: d,
                                line: line_of(bytes, acq),
                            });
                        }
                    }
                }
                if open_let.as_ref().is_some_and(|&(_, d, _)| d >= depth) {
                    open_let = None;
                }
                stmt_acquire = None;
                stmt_call = None;
                header_kw = None;
            }
            Ev::Let => {
                let name = ident_after(text, pos + 4)
                    .map(|(w, after)| {
                        if w == "mut" {
                            ident_after(text, after).map(|(w2, _)| w2).unwrap_or(w)
                        } else {
                            w
                        }
                    })
                    .unwrap_or_else(|| "<pattern>".into());
                open_let = Some((name, depth, None));
            }
            Ev::Acquire => {
                stmt_acquire = Some(pos);
                if let Some((_, _, acq)) = &mut open_let {
                    *acq = Some(pos);
                }
                if let Some(call) = stmt_call {
                    ctx.emit(
                        out,
                        Rule::L001,
                        line_of(bytes, call),
                        format!(
                            "blocking RPC in the same statement as a lock acquisition \
                             (guard temporary from line {} is held across the call)",
                            line_of(bytes, pos)
                        ),
                    );
                }
            }
            Ev::Call => {
                stmt_call = Some(pos);
                let line = line_of(bytes, pos);
                if let Some(acq) = stmt_acquire {
                    ctx.emit(
                        out,
                        Rule::L001,
                        line,
                        format!(
                            "blocking RPC in the same statement as a lock acquisition \
                             (guard temporary from line {} is held across the call)",
                            line_of(bytes, acq)
                        ),
                    );
                } else if let Some(g) = guards.last() {
                    ctx.emit(
                        out,
                        Rule::L001,
                        line,
                        format!(
                            "blocking RPC while lock guard `{}` (acquired line {}) is live; \
                             drop the guard (or clone the needed data out) before calling",
                            g.name, g.line
                        ),
                    );
                }
            }
            Ev::Drop => {
                if let Some((name, _)) = ident_after(text, pos + 5) {
                    guards.retain(|g| g.name != name);
                }
            }
            Ev::Match | Ev::For => header_kw = Some((ev, pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// L002: nondeterminism sources
// ---------------------------------------------------------------------------

const TIME_PATS: [(&str, &str); 3] = [
    ("SystemTime::now", "wall-clock read"),
    ("Instant::now", "monotonic-clock read"),
    ("thread::sleep", "real-time sleep"),
];

const ITER_METHODS: [&str; 7] = [
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "drain()",
    "into_iter()",
];

/// Method-chain tails whose result does not depend on iteration order,
/// so hash-map iteration feeding them is deterministic after all.
const ORDER_INSENSITIVE: [&str; 10] = [
    ".sum()",
    ".count()",
    ".len()",
    ".max()",
    ".min()",
    ".any(",
    ".all(",
    ".sum::<",
    ".max_by_key(",
    ".min_by_key(",
];

/// Collects identifiers declared (as fields or lets) with a
/// `HashMap`/`HashSet` type in this file, including ones wrapped in
/// `Mutex<…>` / `RwLock<…>` / `Arc<…>`.
fn hash_container_names(text: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let bytes = text.as_bytes();
    for ty in ["HashMap<", "HashSet<", "HashMap::", "HashSet::"] {
        for pos in find_all(text, ty) {
            // Walk backwards over wrapper types to the `name :` or
            // `name =` that introduced it.
            let mut k = pos;
            while k > 0 {
                let b = bytes[k - 1];
                if b == b':' || b == b'=' {
                    break;
                }
                if b == b'\n' || b == b';' || b == b'(' || b == b'{' {
                    k = 0;
                    break;
                }
                k -= 1;
            }
            if k == 0 {
                continue;
            }
            // Skip `::` paths (e.g. `collections::HashMap`).
            if bytes[k - 1] == b':' && k >= 2 && bytes[k - 2] == b':' {
                continue;
            }
            let mut end = k - 1;
            while end > 0 && (bytes[end - 1] == b' ' || bytes[end - 1] == b':') {
                end -= 1;
            }
            let mut start = end;
            while start > 0 && is_ident_byte(bytes[start - 1]) {
                start -= 1;
            }
            if start < end {
                let name = &text[start..end];
                if name != "let" && name != "mut" && !name.is_empty() {
                    names.insert(name.to_string());
                }
            }
        }
    }
    names
}

fn check_l002(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg
        .l002_allow_suffixes
        .iter()
        .any(|s| ctx.path.ends_with(s.as_str()))
    {
        return;
    }
    let text = ctx.text;
    let bytes = text.as_bytes();
    for (pat, what) in TIME_PATS {
        for pos in find_all(text, pat) {
            let line = line_of(bytes, pos);
            ctx.emit(
                out,
                Rule::L002,
                line,
                format!(
                    "{what} (`{pat}`) outside an allowlisted clock/transport module; \
                     use the shared transport clock so runs stay deterministic"
                ),
            );
        }
    }

    let names = hash_container_names(text);
    for name in &names {
        for pos in find_all(text, name) {
            let rest = &text[pos + name.len()..];
            // Allow one guard hop: `name.lock().iter()` etc.
            let mut tail = rest;
            for hop in [".lock().", ".read().", ".write()."] {
                if let Some(t) = tail.strip_prefix(hop) {
                    tail = t;
                }
            }
            let tail = tail.strip_prefix('.').unwrap_or(tail);
            let Some(m) = ITER_METHODS.iter().find(|m| tail.starts_with(**m)) else {
                continue;
            };
            let after = &tail[m.len()..];
            let chain = &after[..after.len().min(120)];
            if ORDER_INSENSITIVE.iter().any(|t| chain.starts_with(t)) {
                continue;
            }
            // Collect-then-sort: `let v: Vec<_> = m.keys().collect();
            // v.sort();` restores determinism — skip when the statement
            // is immediately followed by a sort of its result.
            if let Some(semi) = after.find(';') {
                let next = &after[semi..after.len().min(semi + 400)];
                if next.contains(".sort") {
                    continue;
                }
            }
            let line = line_of(bytes, pos);
            ctx.emit(
                out,
                Rule::L002,
                line,
                format!(
                    "iteration over hash container `{name}` leaks nondeterministic order; \
                     sort the result or use a BTree collection"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L003: panic paths in handler modules
// ---------------------------------------------------------------------------

const PANIC_PATS: [(&str, &str); 3] = [
    (".unwrap()", "unwrap()"),
    (".expect(", "expect()"),
    ("panic!(", "panic!"),
];

fn is_handler_module(ctx: &FileCtx<'_>, cfg: &Config) -> bool {
    if cfg
        .l003_extra_suffixes
        .iter()
        .any(|s| ctx.path.ends_with(s.as_str()))
    {
        return true;
    }
    let bytes = ctx.text.as_bytes();
    find_all(ctx.text, "impl RpcHandler for")
        .iter()
        .any(|&p| !ctx.test_mask.get(line_of(bytes, p)).unwrap_or(&false))
}

fn check_l003(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    if !is_handler_module(ctx, cfg) {
        return;
    }
    let bytes = ctx.text.as_bytes();
    for (pat, what) in PANIC_PATS {
        for pos in find_all(ctx.text, pat) {
            let line = line_of(bytes, pos);
            ctx.emit(
                out,
                Rule::L003,
                line,
                format!(
                    "{what} in a server-handler module: a panic here kills the \
                     service's mailbox thread silently under ThreadedNetwork; \
                     return a protocol error instead"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L004: Wire encode/decode field-order symmetry
// ---------------------------------------------------------------------------

/// Finds `impl <Trait> for <Type>` blocks and returns
/// `(type name, body start, body end)`.
fn impl_blocks(text: &str, trait_name: &str) -> Vec<(String, usize, usize)> {
    let bytes = text.as_bytes();
    let pat = format!("impl {trait_name} for ");
    let mut out = Vec::new();
    for pos in find_all(text, &pat) {
        let Some((ty, after)) = ident_after(text, pos + pat.len()) else {
            continue;
        };
        let Some(open_rel) = text[after..].find('{') else {
            continue;
        };
        let open = after + open_rel;
        let mut depth = 0i32;
        let mut end = bytes.len();
        for (k, &b) in bytes.iter().enumerate().skip(open) {
            if b == b'{' {
                depth += 1;
            } else if b == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
        }
        out.push((ty, open, end));
    }
    out
}

/// Field names written by a `WireWrite` impl body, in order of first
/// occurrence. Only "being written" forms count (`w.u64(self.f)`,
/// `self.f.write(w)`, `(&self.f).write(w)`), so match scrutinees and
/// other incidental `self.f` mentions don't pollute the order.
fn written_fields(body: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let bytes = body.as_bytes();
    for pos in find_all(body, "self.") {
        let Some((field, after)) = ident_after(body, pos + 5) else {
            continue;
        };
        // Writing forms: preceded by `(`/`&` (an argument to a writer
        // primitive) or followed by `.write(`.
        let prev = if pos == 0 { b' ' } else { bytes[pos - 1] };
        let arg_form = prev == b'(' || prev == b'&' || prev == b'*';
        let method_form = body[after..].starts_with(".write(")
            || body[after..].starts_with(".encode()")
            || body[after..].starts_with(" as ");
        if (arg_form || method_form) && !out.contains(&field) {
            out.push(field);
        }
    }
    out
}

/// Field names produced by a `WireRead` impl body, in order: struct
/// literal fields (`f: expr`) and `let f = …;` bindings that feed them.
fn read_fields(body: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let bytes = body.as_bytes();
    // `let f = r.…` bindings, in order.
    for pos in find_all(body, "let ") {
        let Some((name, _)) = ident_after(body, pos + 4) else {
            continue;
        };
        let name = if name == "mut" {
            match ident_after(body, pos + 8) {
                Some((n, _)) => n,
                None => continue,
            }
        } else {
            name
        };
        if !out.contains(&name) {
            out.push(name);
        }
    }
    // Struct-literal fields `f: expr,` — field name followed by `:` that
    // is not `::`, inside the body.
    for (i, &b) in bytes.iter().enumerate() {
        if b != b':' {
            continue;
        }
        if i + 1 < bytes.len() && bytes[i + 1] == b':' {
            continue;
        }
        if i > 0 && bytes[i - 1] == b':' {
            continue;
        }
        let mut start = i;
        while start > 0 && is_ident_byte(bytes[start - 1]) {
            start -= 1;
        }
        if start == i {
            continue;
        }
        // Must look like a struct-literal entry: preceded by `{`, `,`, or
        // start-of-line whitespace.
        let mut k = start;
        while k > 0 && (bytes[k - 1] == b' ' || bytes[k - 1] == b'\n') {
            k -= 1;
        }
        let sep = if k == 0 { b'{' } else { bytes[k - 1] };
        if sep != b'{' && sep != b',' && sep != b'(' {
            continue;
        }
        let name = body[start..i].to_string();
        if !out.contains(&name) {
            out.push(name);
        }
    }
    out
}

fn check_l004(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let text = ctx.text;
    let bytes = text.as_bytes();
    let writes = impl_blocks(text, "WireWrite");
    let reads = impl_blocks(text, "WireRead");
    for (ty, wstart, wend) in &writes {
        let Some((_, rstart, rend)) = reads.iter().find(|(t, _, _)| t == ty) else {
            continue;
        };
        let wfields = written_fields(&text[*wstart..*wend]);
        if wfields.len() < 2 {
            // Enum codecs and single-field structs have no order to get
            // wrong at this granularity.
            continue;
        }
        let rfields = read_fields(&text[*rstart..*rend]);
        // Compare relative order of the fields both sides mention.
        let common_w: Vec<&String> = wfields.iter().filter(|f| rfields.contains(f)).collect();
        let common_r: Vec<&String> = rfields.iter().filter(|f| wfields.contains(f)).collect();
        if common_w.len() >= 2 && common_w != common_r {
            let line = line_of(bytes, *wstart);
            ctx.emit(
                out,
                Rule::L004,
                line,
                format!(
                    "Wire codec for `{ty}` is asymmetric: encoder writes fields in \
                     order [{}] but decoder reads [{}]",
                    common_w
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                    common_r
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// A `lint: allow` comment that silenced nothing this run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedAllow {
    /// The rule the stale waiver names.
    pub rule: Rule,
    /// Workspace-relative path of the file with the comment.
    pub file: String,
    /// 1-based line of the comment.
    pub line: usize,
}

impl fmt::Display for UnusedAllow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: unused suppression: `lint: allow({})` silences nothing — remove it",
            self.file,
            self.line,
            self.rule.id()
        )
    }
}

/// The result of linting a set of files as one workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Rule violations, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Stale `lint: allow` comments, sorted by (file, line, rule).
    pub unused_allows: Vec<UnusedAllow>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

/// Lints `files` (path, source) as one workspace: the per-file rules
/// L001–L004 and L006 run on each file; the call-graph rules L005, L007,
/// and L008 run across all of them together.
#[must_use]
pub fn lint_files(files: &[(String, String)], cfg: &Config) -> LintReport {
    let prepped: Vec<(&str, Sanitized)> = files
        .iter()
        .map(|(path, src)| (path.as_str(), sanitize(src)))
        .collect();
    let masks: Vec<Vec<bool>> = prepped
        .iter()
        .map(|(_, san)| test_line_mask(&san.text))
        .collect();
    let units: Vec<graph::FileUnit<'_>> = prepped
        .iter()
        .zip(&masks)
        .map(|((path, san), mask)| graph::FileUnit {
            fns: graph::extract_fns(&san.text),
            ctx: FileCtx {
                path,
                text: &san.text,
                allow: &san.allow,
                allow_sites: &san.allow_sites,
                test_mask: mask,
                used_allow: RefCell::new(BTreeSet::new()),
            },
        })
        .collect();

    let mut findings = Vec::new();
    for u in &units {
        check_l001(&u.ctx, &mut findings);
        check_l002(&u.ctx, cfg, &mut findings);
        check_l003(&u.ctx, cfg, &mut findings);
        check_l004(&u.ctx, &mut findings);
        graph::check_l006(&u.ctx, &mut findings);
    }
    let ws = graph::Workspace::build(&units);
    graph::check_l005(&ws, cfg, &mut findings);
    graph::check_l007(&ws, cfg, &mut findings);
    graph::check_l008(&ws, cfg, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let mut unused_allows = Vec::new();
    for u in &units {
        for (line, rule) in u.ctx.unused_allows() {
            unused_allows.push(UnusedAllow {
                rule,
                file: u.ctx.path.to_string(),
                line,
            });
        }
    }
    unused_allows.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    LintReport {
        findings,
        unused_allows,
        files_scanned: files.len(),
    }
}

/// Lints one file's source, returning findings sorted by line. The
/// cross-file rules see a single-file workspace, which is exactly what
/// fixture tests want.
#[must_use]
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    lint_files(&[(path.to_string(), src.to_string())], cfg).findings
}

/// Parses a baseline: known findings (`L00x file:line` per line, `#`
/// comments and blanks skipped) that are reported as baselined rather
/// than failing `--deny`.
#[must_use]
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// The baseline key for one finding.
#[must_use]
pub fn baseline_key(f: &Finding) -> String {
    format!("{} {}:{}", f.rule.id(), f.file, f.line)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes findings as a JSON array (stable field order, no deps).
#[must_use]
pub fn findings_to_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut s = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            f.rule.id(),
            esc(&f.file),
            f.line,
            esc(&f.message),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"count\": {},\n  \"files_scanned\": {}\n}}\n",
        findings.len(),
        files_scanned
    ));
    s
}

impl LintReport {
    /// Full machine-readable report. Deterministic: everything is
    /// BTree-ordered, so a double run is byte-identical (the CI gate).
    /// `baselined` and `stale_baseline` come from the caller's baseline
    /// filtering; the findings here are the active (non-baselined) ones.
    #[must_use]
    pub fn to_json(&self, baselined: usize, stale_baseline: &[String]) -> String {
        let mut s = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \
                 \"{}\"}}{}\n",
                f.rule.id(),
                esc(&f.file),
                f.line,
                esc(&f.message),
                if i + 1 == self.findings.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        s.push_str("  ],\n  \"unused_allows\": [\n");
        for (i, u) in self.unused_allows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}}}{}\n",
                u.rule.id(),
                esc(&u.file),
                u.line,
                if i + 1 == self.unused_allows.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        s.push_str("  ],\n  \"stale_baseline\": [\n");
        for (i, k) in stale_baseline.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\"{}\n",
                esc(k),
                if i + 1 == stale_baseline.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"count\": {},\n  \"unused_allow_count\": {},\n  \"baselined\": {},\n  \
             \"files_scanned\": {}\n}}\n",
            self.findings.len(),
            self.unused_allows.len(),
            baselined,
            self.files_scanned
        ));
        s
    }
}

/// Directory names the workspace walk skips: build output, vendored
/// shims, test/bench/example trees (including the lint fixtures under
/// `tests/fixtures/`), and dotdirs.
pub const SKIP_DIRS: [&str; 7] = [
    "target", "compat", "tests", "benches", "examples", ".git", ".github",
];

fn collect_rs_files(
    dir: &std::path::Path,
    out: &mut Vec<std::path::PathBuf>,
) -> std::io::Result<()> {
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks the workspace at `root` (sorted order, [`SKIP_DIRS`] skipped)
/// and lints every `.rs` file as one workspace. This is the CLI's scan,
/// exposed so the self-scan test runs the identical analysis.
///
/// # Errors
/// Returns the underlying I/O error if the directory walk fails.
pub fn scan_workspace(root: &std::path::Path, cfg: &Config) -> std::io::Result<LintReport> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths)?;
    let mut files = Vec::new();
    for path in &paths {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, src));
    }
    Ok(lint_files(&files, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source("crates/x/src/lib.rs", src, &Config::default())
    }

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ---- sanitizer ------------------------------------------------------

    #[test]
    fn sanitize_blanks_strings_and_comments() {
        let s = sanitize("let x = \"a.lock()\"; // .call( here\n/* .unwrap() */ y");
        assert!(!s.text.contains(".lock()"));
        assert!(!s.text.contains(".call("));
        assert!(!s.text.contains(".unwrap()"));
        assert!(s.text.contains("let x = "));
        assert_eq!(s.text.lines().count(), 2);
    }

    #[test]
    fn sanitize_keeps_newline_in_string_continuation() {
        // A `\<newline>` continuation inside a string literal must not
        // swallow the newline: later findings would shift by one line.
        let s = sanitize("let m = \"a \\\n   b\";\nnext();");
        assert_eq!(s.text.lines().count(), 3);
        assert!(s.text.contains("next();"));
    }

    #[test]
    fn sanitize_handles_raw_strings_chars_and_lifetimes() {
        let s = sanitize("let p = r#\"x.call(\"#; let c = '\\''; fn f<'a>(x: &'a str) {}");
        assert!(!s.text.contains(".call("));
        assert!(s.text.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn suppression_parses_multiple_rules() {
        let s = sanitize("x(); // lint: allow(L001, L003) justified\ny();");
        assert!(s.allow[&1].contains(&Rule::L001));
        assert!(s.allow[&1].contains(&Rule::L003));
        assert!(s.allow[&2].contains(&Rule::L001));
    }

    // ---- L001 -----------------------------------------------------------

    #[test]
    fn l001_flags_named_guard_across_call() {
        let src = "fn f(&self) {\n    let g = self.state.lock();\n    \
                   self.net.call(a, b, req);\n}\n";
        let f = lint(src);
        assert_eq!(rules(&f), vec![Rule::L001]);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains('g'));
    }

    #[test]
    fn l001_suppressed_with_justification() {
        let src = "fn f(&self) {\n    let g = self.state.lock();\n    \
                   // lint: allow(L001) loopback-only, callee takes no locks\n    \
                   self.net.call(a, b, req);\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn l001_ok_when_guard_dropped_first() {
        let src = "fn f(&self) {\n    let g = self.state.lock();\n    let v = g.x;\n    \
                   drop(g);\n    self.net.call(a, b, v);\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn l001_ok_when_guard_scope_closed() {
        let src = "fn f(&self) {\n    let v = {\n        let g = self.state.lock();\n        \
                   g.x\n    };\n    self.net.call(a, b, v);\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn l001_flags_same_statement_temporary() {
        let src = "fn f(&self) {\n    self.net.call(a, b, self.state.lock().clone());\n}\n";
        let f = lint(src);
        assert_eq!(rules(&f), vec![Rule::L001]);
    }

    #[test]
    fn l001_flags_match_scrutinee_guard() {
        let src = "fn f(&self) {\n    match self.state.lock().mode {\n        \
                   M::A => { self.net.call(a, b, req); }\n        _ => {}\n    }\n}\n";
        let f = lint(src);
        assert_eq!(rules(&f), vec![Rule::L001]);
    }

    #[test]
    fn l001_ignores_collect_through_guard() {
        // The guard is a temporary that dies at the end of the `let`
        // statement; the later call is safe.
        let src = "fn f(&self) {\n    let targets: Vec<N> = \
                   self.q.lock().keys().copied().collect();\n    \
                   self.net.call_many(a, targets);\n}\n";
        let f = lint(src);
        assert!(!rules(&f).contains(&Rule::L001), "{f:?}");
    }

    // ---- L002 -----------------------------------------------------------

    #[test]
    fn l002_flags_wall_clock_and_sleep() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    \
                   std::thread::sleep(d);\n}\n";
        let f = lint(src);
        assert_eq!(rules(&f), vec![Rule::L002, Rule::L002]);
    }

    #[test]
    fn l002_allows_transport_modules() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let f = lint_source("crates/rpc/src/threadnet.rs", src, &Config::default());
        assert!(f.is_empty());
    }

    #[test]
    fn l002_suppression_works() {
        let src = "fn f() {\n    // lint: allow(L002) wall time feeds logs only\n    \
                   let t = Instant::now();\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn l002_flags_hashmap_iteration_order_leak() {
        let src = "struct S { peers: HashMap<u64, P> }\nfn f(s: &S) {\n    \
                   let v: Vec<_> = s.peers.keys().collect();\n}\n";
        let f = lint(src);
        assert_eq!(rules(&f), vec![Rule::L002]);
        assert!(f[0].message.contains("peers"));
    }

    #[test]
    fn l002_ignores_order_insensitive_fold() {
        let src = "struct S { peers: HashMap<u64, P> }\nfn f(s: &S) -> usize {\n    \
                   s.peers.values().count()\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn l002_ignores_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); }\n}\n";
        assert!(lint(src).is_empty());
    }

    // ---- L003 -----------------------------------------------------------

    #[test]
    fn l003_flags_unwrap_in_handler_module() {
        let src = "impl RpcHandler for S {\n    fn handle(&self) {\n        \
                   let x = y.unwrap();\n    }\n}\n";
        let f = lint(src);
        assert_eq!(rules(&f), vec![Rule::L003]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn l003_suppressed_with_justification() {
        let src = "impl RpcHandler for S {\n    fn handle(&self) {\n        \
                   // lint: allow(L003) length checked two lines up\n        \
                   let x = y.unwrap();\n    }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn l003_ignores_non_handler_modules() {
        let src = "fn helper() { let x = y.unwrap(); }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn l003_ignores_tests_in_handler_modules() {
        let src = "impl RpcHandler for S {\n    fn handle(&self) {}\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint(src).is_empty());
    }

    // ---- L004 -----------------------------------------------------------

    #[test]
    fn l004_flags_swapped_field_order() {
        let src = "impl WireWrite for P {\n    fn write(&self, w: &mut Writer) {\n        \
                   w.u64(self.a);\n        w.u64(self.b);\n    }\n}\n\
                   impl WireRead for P {\n    fn read(r: &mut Reader) -> R<Self> {\n        \
                   Ok(P { b: r.u64()?, a: r.u64()? })\n    }\n}\n";
        let f = lint(src);
        assert_eq!(rules(&f), vec![Rule::L004]);
        assert!(f[0].message.contains("[a, b]"));
        assert!(f[0].message.contains("[b, a]"));
    }

    #[test]
    fn l004_accepts_symmetric_codec() {
        let src = "impl WireWrite for P {\n    fn write(&self, w: &mut Writer) {\n        \
                   w.u64(self.a);\n        w.u64(self.b);\n    }\n}\n\
                   impl WireRead for P {\n    fn read(r: &mut Reader) -> R<Self> {\n        \
                   Ok(P { a: r.u64()?, b: r.u64()? })\n    }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn l004_suppressed_with_justification() {
        let src = "// lint: allow(L004) flag byte legitimately reorders decode\n\
                   impl WireWrite for P {\n    fn write(&self, w: &mut Writer) {\n        \
                   w.u64(self.a);\n        w.u64(self.b);\n    }\n}\n\
                   impl WireRead for P {\n    fn read(r: &mut Reader) -> R<Self> {\n        \
                   Ok(P { b: r.u64()?, a: r.u64()? })\n    }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn l004_accepts_let_binding_reads() {
        let src = "impl WireWrite for P {\n    fn write(&self, w: &mut Writer) {\n        \
                   w.u64(self.a);\n        w.str(&self.b);\n    }\n}\n\
                   impl WireRead for P {\n    fn read(r: &mut Reader) -> R<Self> {\n        \
                   let a = r.u64()?;\n        let b = r.str()?;\n        \
                   Ok(P { a, b })\n    }\n}\n";
        assert!(lint(src).is_empty());
    }

    // ---- JSON -----------------------------------------------------------

    #[test]
    fn json_output_escapes_and_counts() {
        let f = vec![Finding {
            rule: Rule::L001,
            file: "a.rs".into(),
            line: 3,
            message: "say \"hi\"".into(),
        }];
        let j = findings_to_json(&f, 9);
        assert!(j.contains("\"rule\": \"L001\""));
        assert!(j.contains("\\\"hi\\\""));
        assert!(j.contains("\"files_scanned\": 9"));
    }
}
