//! Phase-two analysis: a zero-dependency symbol extractor over the
//! sanitized source that builds a per-function view of the workspace —
//! definitions, intra-workspace calls, and outbound-RPC sites — and the
//! four graph/dataflow rules that run on it (DESIGN.md §17):
//!
//! * **L005** — transitive handler deadlock: a blocking RPC
//!   (`.call(` / `.call_many(` / `call_typed(`) reachable through any
//!   chain of helper calls from a server-handler or pump entry point.
//!   L001 only sees hazards inside one function; this closes the gap the
//!   replica-service deadlock discipline leaves once a handler calls a
//!   helper.
//! * **L006** — wire-tag registry: the `u8` tag literals of each
//!   `WireWrite`/`WireRead` impl pair must be duplicate-free, agree
//!   between encoder and decoder, and the decode dispatch must carry a
//!   catch-all arm for unknown tags.
//! * **L007** — must-call-before invariant: a configurable "every
//!   function matching P must call one of A before B" engine, seeded
//!   with the hot-lease rule (void leases before the mirror fan-out).
//! * **L008** — unbounded state growth: a long-lived map/set struct
//!   field with a reachable insert path but no prune path reachable
//!   from the cleanup roots (`maintain`/`forget`/`detach`/…) and no
//!   self-bounding eviction co-located with an insert.
//!
//! Everything here works on the same sanitized text as L001–L004:
//! comments and string literals are blanked, so patterns in docs or
//! strings never produce symbols, and `#[cfg(test)]` regions are masked
//! out of both definitions and call sites.

use crate::{Config, FileCtx, Finding, Rule};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

// ---------------------------------------------------------------------------
// Symbol extraction
// ---------------------------------------------------------------------------

/// One function definition found in a file.
#[derive(Debug, Clone)]
pub(crate) struct FnInfo {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` block's type name, if any.
    pub impl_ty: Option<String>,
    /// Enclosing `impl <Trait> for <Type>` trait name, if any.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub def_line: usize,
    /// Byte span of the body, including the outer braces.
    pub body: (usize, usize),
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Matches the closing brace for the `{` at `open`.
fn close_of(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        if b == b'{' {
            depth += 1;
        } else if b == b'}' {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    bytes.len()
}

fn line_of(bytes: &[u8], pos: usize) -> usize {
    1 + bytes[..pos.min(bytes.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// Reads the identifier starting at `pos` (skipping leading whitespace).
fn ident_at(text: &str, mut pos: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    while pos < bytes.len() && (bytes[pos] == b' ' || bytes[pos] == b'\n') {
        pos += 1;
    }
    let start = pos;
    while pos < bytes.len() && is_ident_byte(bytes[pos]) {
        pos += 1;
    }
    (pos > start).then(|| (text[start..pos].to_string(), pos))
}

/// Last path segment of something like `kosha_rpc::PumpHook<T>`.
fn last_segment(path: &str) -> String {
    let trimmed = path.trim();
    let no_generics = trimmed.split('<').next().unwrap_or(trimmed);
    no_generics
        .rsplit("::")
        .next()
        .unwrap_or(no_generics)
        .trim()
        .to_string()
}

/// An `impl` block: `impl Type { .. }` or `impl Trait for Type { .. }`.
#[derive(Debug)]
struct ImplSpan {
    ty: String,
    trait_name: Option<String>,
    body: (usize, usize),
}

fn impl_spans(text: &str) -> Vec<ImplSpan> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for pos in crate::find_all(text, "impl") {
        // `impl` must be followed by whitespace or `<` (generic params).
        match bytes.get(pos + 4) {
            Some(b' ') | Some(b'\n') | Some(b'<') => {}
            _ => continue,
        }
        let mut k = pos + 4;
        // Skip generic parameter list `impl<T: Bound> ...`.
        if bytes.get(k) == Some(&b'<') {
            let mut depth = 0i32;
            while k < bytes.len() {
                match bytes[k] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        let Some(open_rel) = text[k..].find('{') else {
            continue;
        };
        let open = k + open_rel;
        let header = &text[k..open];
        // `where` clauses end the useful part of the header.
        let header = header.split(" where ").next().unwrap_or(header);
        let (trait_name, ty) = match header.find(" for ") {
            Some(at) => (
                Some(last_segment(&header[..at])),
                last_segment(&header[at + 5..]),
            ),
            None => (None, last_segment(header)),
        };
        if ty.is_empty() {
            continue;
        }
        out.push(ImplSpan {
            ty,
            trait_name,
            body: (open, close_of(bytes, open)),
        });
    }
    out
}

/// Extracts every function definition in (sanitized) `text`.
pub(crate) fn extract_fns(text: &str) -> Vec<FnInfo> {
    let bytes = text.as_bytes();
    let impls = impl_spans(text);
    let mut out = Vec::new();
    for pos in crate::find_all(text, "fn ") {
        let Some((name, after)) = ident_at(text, pos + 3) else {
            continue;
        };
        // Find the body `{` at paren depth 0 (or `;` for a bare
        // declaration, which has no body to analyze).
        let mut k = after;
        let mut paren = 0i32;
        let mut open = None;
        while k < bytes.len() {
            match bytes[k] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if paren == 0 => {
                    open = Some(k);
                    break;
                }
                b';' if paren == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else { continue };
        let body = (open, close_of(bytes, open));
        let enclosing = impls
            .iter()
            .filter(|i| i.body.0 < pos && pos < i.body.1)
            .min_by_key(|i| i.body.1 - i.body.0);
        out.push(FnInfo {
            name,
            impl_ty: enclosing.map(|i| i.ty.clone()),
            trait_name: enclosing.and_then(|i| i.trait_name.clone()),
            def_line: line_of(bytes, pos),
            body,
        });
    }
    out
}

/// How a call site addresses its callee — used to narrow resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Receiver {
    /// `self.f(..)` — prefer methods of the caller's own impl type.
    SelfDot,
    /// `x.f(..)`, `a.b.f(..)` — any method.
    Other,
    /// `f(..)`, `path::f(..)` — free function or associated call.
    Path,
}

/// One `name(` call site inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    pub name: String,
    pub pos: usize,
    pub receiver: Receiver,
}

const KEYWORDS: [&str; 13] = [
    "if", "match", "while", "for", "loop", "return", "fn", "let", "else", "move", "in", "as",
    "unsafe",
];

/// Extracts call sites within `text[span]`. Definitions (`fn name(`) and
/// macro invocations (`name!(`) are excluded.
pub(crate) fn call_sites(text: &str, span: (usize, usize)) -> Vec<CallSite> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = span.0;
    while i < span.1.min(bytes.len()) {
        if !is_ident_byte(bytes[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < span.1 && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        let name = &text[start..i];
        if name.is_empty() || name.as_bytes()[0].is_ascii_digit() || KEYWORDS.contains(&name) {
            continue;
        }
        // `fn name(` is the definition, not a call.
        if start >= 3 && &text[start - 3..start] == "fn " {
            continue;
        }
        let receiver = if start > 0 && bytes[start - 1] == b'.' {
            // Token before the dot decides self vs other receiver.
            let e = start - 1;
            let mut s = e;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            // `self.f(` only (not `x.selfish.f(`): the char before
            // `self` must not be a dot.
            if &text[s..e] == "self" && (s == 0 || bytes[s - 1] != b'.') {
                Receiver::SelfDot
            } else {
                Receiver::Other
            }
        } else {
            Receiver::Path
        };
        out.push(CallSite {
            name: name.to_string(),
            pos: start,
            receiver,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// The workspace model
// ---------------------------------------------------------------------------

/// Per-file record the workspace phase operates on. Built once per file
/// by [`crate::lint_files`] and shared by L005–L008.
pub(crate) struct FileUnit<'a> {
    pub ctx: FileCtx<'a>,
    pub fns: Vec<FnInfo>,
}

/// Global function id: (file index, fn index).
type FnId = (usize, usize);

pub(crate) struct Workspace<'a> {
    pub files: &'a [FileUnit<'a>],
    /// name → every definition with that name (non-test only).
    by_name: BTreeMap<&'a str, Vec<FnId>>,
}

impl<'a> Workspace<'a> {
    pub fn build(files: &'a [FileUnit<'a>]) -> Self {
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, g) in f.fns.iter().enumerate() {
                if f.ctx.in_test(g.def_line) {
                    continue;
                }
                by_name.entry(g.name.as_str()).or_default().push((fi, gi));
            }
        }
        Workspace { files, by_name }
    }

    fn fninfo(&self, id: FnId) -> &FnInfo {
        &self.files[id.0].fns[id.1]
    }

    /// Resolves one call site in `caller` to workspace definitions.
    /// `self.f(` calls resolve to the caller's own impl type (impls of
    /// one type span files, so the whole workspace is consulted). Every
    /// other shape — `x.f(`, `path::f(` — is followed only when `f` has
    /// exactly one definition in the workspace: generic method names
    /// (`read`, `call`, `new`, `handle`, …) collide across crates, and
    /// an ambiguous edge produces meaningless cross-crate paths, which
    /// is worse for this analyzer than a skipped edge. Project-specific
    /// helper names (`handle_control`, `mirror_op`, `hot_invalidate`)
    /// are unique, which is what the disciplines L005/L008 guard hang
    /// off.
    fn resolve(&self, caller: FnId, call: &CallSite) -> Vec<FnId> {
        let Some(all) = self.by_name.get(call.name.as_str()) else {
            return Vec::new();
        };
        if call.receiver == Receiver::SelfDot {
            if let Some(ty) = &self.fninfo(caller).impl_ty {
                let own: Vec<FnId> = all
                    .iter()
                    .copied()
                    .filter(|id| self.fninfo(*id).impl_ty.as_deref() == Some(ty))
                    .collect();
                if !own.is_empty() {
                    return own;
                }
            }
        }
        if all.len() == 1 {
            return all.clone();
        }
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// L005: transitive handler deadlock
// ---------------------------------------------------------------------------

/// Entry points: every non-test function inside an
/// `impl <entry trait> for <Type>` block, plus functions named in
/// [`Config::l005_extra_roots`]. An L005 waiver comment on (or one line
/// above) the entry's `fn` line waives the whole entry — the in-place
/// justification for a *designed* nesting level. A waiver on a call
/// line cuts traversal through that edge only; a waiver on the RPC line
/// accepts that one sink.
pub(crate) fn check_l005(ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    // Collect entries in deterministic (file, fn) order.
    let mut entries: Vec<FnId> = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            if f.ctx.in_test(g.def_line) {
                continue;
            }
            let by_trait = g
                .trait_name
                .as_deref()
                .is_some_and(|t| cfg.l005_entry_traits.iter().any(|e| e == t));
            let by_name = cfg.l005_extra_roots.iter().any(|r| r == &g.name);
            if by_trait || by_name {
                entries.push((fi, gi));
            }
        }
    }

    // Findings keyed by sink site so one risky call is reported once
    // even when several entries reach it.
    let mut findings: BTreeMap<(usize, usize), Finding> = BTreeMap::new();

    for entry in entries {
        let ef = &ws.files[entry.0];
        let eg = ws.fninfo(entry);
        // Entry-level waiver: the whole designed nesting is justified in
        // place at the `fn` line.
        if ef.ctx.consume_allow(Rule::L005, eg.def_line) {
            continue;
        }
        let entry_label = match &eg.impl_ty {
            Some(t) => format!("{t}::{}", eg.name),
            None => eg.name.clone(),
        };
        // BFS with parent links for shortest-path reconstruction.
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        parent.insert(entry, entry);
        queue.push_back(entry);
        while let Some(cur) = queue.pop_front() {
            let file = &ws.files[cur.0];
            let info = ws.fninfo(cur);
            let text = file.ctx.text;
            let bytes = text.as_bytes();
            // Sinks in this function.
            for pat in crate::CALL_PATS {
                for pos in crate::find_all(text, pat) {
                    if pos <= info.body.0 || pos >= info.body.1 {
                        continue;
                    }
                    let line = line_of(bytes, pos);
                    if file.ctx.in_test(line) {
                        continue;
                    }
                    let key = (cur.0, pos);
                    if findings.contains_key(&key) {
                        continue;
                    }
                    if file.ctx.consume_allow(Rule::L005, line) {
                        continue;
                    }
                    // Reconstruct entry → … → cur.
                    let mut chain = vec![info.name.clone()];
                    let mut walk = cur;
                    while walk != entry {
                        walk = parent[&walk];
                        chain.push(ws.fninfo(walk).name.clone());
                    }
                    chain.reverse();
                    findings.insert(
                        key,
                        Finding {
                            rule: Rule::L005,
                            file: file.ctx.path.to_string(),
                            line,
                            message: format!(
                                "blocking RPC reachable from handler/pump entry `{entry_label}` \
                                 ({}:{}) via {}; server handlers must stay RPC-free — move the \
                                 call off the handler path or waive the entry/edge in place",
                                ef.ctx.path,
                                eg.def_line,
                                chain.join(" -> "),
                            ),
                        },
                    );
                }
            }
            // Traverse call edges.
            for call in call_sites(text, info.body) {
                let line = line_of(bytes, call.pos);
                if file.ctx.in_test(line) {
                    continue;
                }
                let targets = ws.resolve(cur, &call);
                if targets.is_empty() {
                    continue;
                }
                // Edge waiver: an allow on the call line prunes the
                // traversal through this hand-off.
                if file.ctx.consume_allow(Rule::L005, line) {
                    continue;
                }
                for t in targets {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(t) {
                        e.insert(cur);
                        queue.push_back(t);
                    }
                }
            }
        }
    }
    out.extend(findings.into_values());
}

// ---------------------------------------------------------------------------
// L006: wire-tag registry
// ---------------------------------------------------------------------------

/// `u8` literals passed to `w.u8(..)` inside `text[span]`, in order.
fn encode_tags(text: &str, span: (usize, usize)) -> Vec<(u8, usize)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for pos in crate::find_all(text, ".u8(") {
        if pos < span.0 || pos >= span.1 {
            continue;
        }
        let mut k = pos + 4;
        while k < bytes.len() && bytes[k] == b' ' {
            k += 1;
        }
        let start = k;
        while k < bytes.len() && bytes[k].is_ascii_digit() {
            k += 1;
        }
        if k == start {
            continue; // not a literal (a field or expression)
        }
        // A pure literal argument ends right at the closing paren.
        if bytes.get(k) != Some(&b')') {
            continue;
        }
        if let Ok(v) = text[start..k].parse::<u8>() {
            out.push((v, pos));
        }
    }
    out
}

/// Decode-side dispatch: the literal arms (and catch-all presence) of
/// the first `match` in `text[span]` whose scrutinee reads a `u8`.
struct DecodeDispatch {
    tags: Vec<(u8, usize)>,
    has_catch_all: bool,
    match_pos: usize,
}

fn decode_dispatch(text: &str, span: (usize, usize)) -> Option<DecodeDispatch> {
    let bytes = text.as_bytes();
    for pos in crate::find_all(text, "match ") {
        if pos < span.0 || pos >= span.1 {
            continue;
        }
        let open_rel = text[pos..span.1].find('{')?;
        let open = pos + open_rel;
        // The scrutinee must be the tag byte: either read inline
        // (`match r.u8()? {`) or a plain binding fed by an earlier
        // `.u8()` read in the same impl (`let t = r.u8()?; match t {`).
        let scrutinee = text[pos + 6..open].trim();
        let inline = scrutinee.contains("u8()");
        let bound = scrutinee.bytes().all(is_ident_byte) && text[span.0..pos].contains(".u8()");
        if !inline && !bound {
            continue;
        }
        let close = close_of(bytes, open).min(span.1);
        // Walk the block at arm depth, collecting the pattern text before
        // each top-level `=>`.
        let mut depth = 0i32;
        let mut arm_start = open + 1;
        let mut tags = Vec::new();
        let mut has_catch_all = false;
        let mut k = open;
        while k < close {
            match bytes[k] {
                b'{' | b'(' | b'[' => depth += 1,
                b'}' | b')' | b']' => {
                    depth -= 1;
                    if depth == 1 {
                        // end of a braced arm body
                        arm_start = k + 1;
                    }
                }
                b',' if depth == 1 => arm_start = k + 1,
                b'=' if depth == 1 && bytes.get(k + 1) == Some(&b'>') => {
                    let pat = text[arm_start..k].trim();
                    if let Ok(v) = pat.parse::<u8>() {
                        tags.push((v, arm_start));
                    } else if !pat.is_empty() {
                        // `_`, a binding like `t`, or any non-literal
                        // pattern counts as the unknown-tag arm.
                        has_catch_all = true;
                    }
                    k += 1;
                }
                _ => {}
            }
            k += 1;
        }
        return Some(DecodeDispatch {
            tags,
            has_catch_all,
            match_pos: pos,
        });
    }
    None
}

fn fmt_tags(tags: &BTreeSet<u8>) -> String {
    tags.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Checks each `WireWrite`/`WireRead` pair in one file. Only codecs
/// with at least two distinct encode tags are treated as tag registries
/// (single-field codecs and plain struct codecs have no dispatch).
pub(crate) fn check_l006(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let text = ctx.text;
    let bytes = text.as_bytes();
    let writes = crate::impl_blocks(text, "WireWrite");
    let reads = crate::impl_blocks(text, "WireRead");
    for (ty, wstart, wend) in &writes {
        let Some((_, rstart, rend)) = reads.iter().find(|(t, _, _)| t == ty) else {
            continue;
        };
        let enc = encode_tags(text, (*wstart, *wend));
        let enc_set: BTreeSet<u8> = enc.iter().map(|&(v, _)| v).collect();
        if enc_set.len() < 2 {
            continue;
        }
        // Duplicate encode tags: two variants claiming one wire tag.
        let mut seen: BTreeMap<u8, usize> = BTreeMap::new();
        for &(v, pos) in &enc {
            if let Some(&first) = seen.get(&v) {
                ctx.emit(
                    out,
                    Rule::L006,
                    line_of(bytes, pos),
                    format!(
                        "duplicate wire tag {v} in `{ty}` encoder (first written at line {}); \
                         every variant needs a distinct tag",
                        line_of(bytes, first)
                    ),
                );
            } else {
                seen.insert(v, pos);
            }
        }
        let Some(dec) = decode_dispatch(text, (*rstart, *rend)) else {
            ctx.emit(
                out,
                Rule::L006,
                line_of(bytes, *rstart),
                format!(
                    "`{ty}` encoder advertises tags [{}] but the decoder has no `match` \
                     dispatch on a u8 tag",
                    fmt_tags(&enc_set)
                ),
            );
            continue;
        };
        let mut dec_seen: BTreeMap<u8, usize> = BTreeMap::new();
        for &(v, pos) in &dec.tags {
            if let std::collections::btree_map::Entry::Vacant(e) = dec_seen.entry(v) {
                e.insert(pos);
            } else {
                ctx.emit(
                    out,
                    Rule::L006,
                    line_of(bytes, pos),
                    format!(
                        "duplicate wire tag {v} in `{ty}` decode dispatch; the later arm is \
                         unreachable"
                    ),
                );
            }
        }
        let dec_set: BTreeSet<u8> = dec.tags.iter().map(|&(v, _)| v).collect();
        if enc_set != dec_set {
            let missing: BTreeSet<u8> = enc_set.difference(&dec_set).copied().collect();
            let extra: BTreeSet<u8> = dec_set.difference(&enc_set).copied().collect();
            let mut parts = Vec::new();
            if !missing.is_empty() {
                parts.push(format!(
                    "encoded tags [{}] have no decode arm (frames of those variants are \
                     rejected)",
                    fmt_tags(&missing)
                ));
            }
            if !extra.is_empty() {
                parts.push(format!(
                    "decode arms for tags [{}] are never encoded (dead dispatch)",
                    fmt_tags(&extra)
                ));
            }
            ctx.emit(
                out,
                Rule::L006,
                line_of(bytes, *rstart),
                format!("`{ty}` wire-tag sets disagree: {}", parts.join("; ")),
            );
        }
        if !dec.has_catch_all {
            ctx.emit(
                out,
                Rule::L006,
                line_of(bytes, dec.match_pos),
                format!(
                    "`{ty}` decode dispatch has no unknown-tag arm; a frame from a newer \
                     peer would panic instead of failing with a wire error"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L007: must-call-before invariant
// ---------------------------------------------------------------------------

/// One configured ordering invariant: inside every function named
/// `scope_fn` in files ending with `file_suffix`, each call to `target`
/// must be preceded — within its innermost enclosing block — by a call
/// to one of `before`.
#[derive(Debug, Clone)]
pub struct MustCallBefore {
    /// Path suffix selecting the file(s) the rule applies to.
    pub file_suffix: String,
    /// Name of the function(s) whose bodies are checked.
    pub scope_fn: String,
    /// Accepted "A" calls (any one satisfies the invariant).
    pub before: Vec<String>,
    /// The "B" call that triggers the check.
    pub target: String,
    /// Short rationale, quoted in the finding.
    pub why: String,
}

/// Innermost brace block inside `body` containing `pos`.
fn innermost_block(bytes: &[u8], body: (usize, usize), pos: usize) -> (usize, usize) {
    let mut best = body;
    let mut k = body.0;
    while k < body.1 {
        if bytes[k] == b'{' {
            let end = close_of(bytes, k);
            if k < pos && pos < end && (end - k) < (best.1 - best.0) {
                best = (k, end);
            }
            if end < pos {
                k = end; // skip blocks entirely before pos
            }
        }
        k += 1;
    }
    best
}

pub(crate) fn check_l007(ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    for rule in &cfg.l007_rules {
        for f in ws.files {
            if !f.ctx.path.ends_with(rule.file_suffix.as_str()) {
                continue;
            }
            let text = f.ctx.text;
            let bytes = text.as_bytes();
            let target_pat = format!("{}(", rule.target);
            for g in &f.fns {
                if g.name != rule.scope_fn || f.ctx.in_test(g.def_line) {
                    continue;
                }
                for pos in crate::find_all(text, &target_pat) {
                    if pos <= g.body.0 || pos >= g.body.1 {
                        continue;
                    }
                    let block = innermost_block(bytes, g.body, pos);
                    let window = &text[block.0..pos];
                    let satisfied = rule
                        .before
                        .iter()
                        .any(|a| !crate::find_all(window, &format!("{a}(")).is_empty());
                    if satisfied {
                        continue;
                    }
                    f.ctx.emit(
                        out,
                        Rule::L007,
                        line_of(bytes, pos),
                        format!(
                            "`{}` must call one of [{}] before `{}` in the same arm/block \
                             ({})",
                            rule.scope_fn,
                            rule.before.join(", "),
                            rule.target,
                            rule.why
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L008: unbounded state growth
// ---------------------------------------------------------------------------

const GROWABLE_TYPES: [&str; 4] = ["HashMap<", "BTreeMap<", "HashSet<", "BTreeSet<"];
const INSERT_METHODS: [&str; 2] = [".insert(", ".entry("];
const PRUNE_METHODS: [&str; 8] = [
    ".remove(",
    ".retain(",
    ".clear(",
    ".drain(",
    ".pop_first(",
    ".pop_last(",
    ".split_off(",
    ".take()",
];
/// Guard hops allowed between a field name and its method call
/// (`self.hot.lock().insert(..)`).
const GUARD_HOPS: [&str; 3] = [".lock()", ".read()", ".write()"];

#[derive(Debug)]
struct GrowableField {
    name: String,
    file: usize,
    line: usize,
    strukt: String,
}

/// Struct fields whose (possibly wrapped) type is a growable map/set.
fn growable_fields(files: &[FileUnit<'_>]) -> Vec<GrowableField> {
    let mut out = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let text = f.ctx.text;
        let bytes = text.as_bytes();
        for pos in crate::find_all(text, "struct ") {
            let Some((sname, after)) = ident_at(text, pos + 7) else {
                continue;
            };
            // Brace-bodied structs only (tuple structs carry no named
            // long-lived fields).
            let mut k = after;
            while k < bytes.len() && (bytes[k] == b' ' || bytes[k] == b'\n' || bytes[k] == b'<') {
                if bytes[k] == b'<' {
                    // generic struct: skip the parameter list
                    let mut depth = 0i32;
                    while k < bytes.len() {
                        match bytes[k] {
                            b'<' => depth += 1,
                            b'>' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                k += 1;
            }
            if bytes.get(k) != Some(&b'{') {
                continue;
            }
            let end = close_of(bytes, k);
            if f.ctx.in_test(line_of(bytes, pos)) {
                continue;
            }
            // Fields: `name: Type,` at depth 1.
            let mut depth = 0i32;
            let mut field_start = k + 1;
            let mut j = k;
            while j <= end && j < bytes.len() {
                match bytes[j] {
                    b'{' | b'<' | b'(' | b'[' => depth += 1,
                    b'}' | b'>' | b')' | b']' => {
                        depth -= 1;
                        if depth == 0 && bytes[j] == b'}' {
                            // struct end: final unterminated field
                            record_field(text, field_start, j, fi, &sname, &mut out);
                            break;
                        }
                    }
                    b',' if depth == 1 => {
                        record_field(text, field_start, j, fi, &sname, &mut out);
                        field_start = j + 1;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    out
}

fn record_field(
    text: &str,
    start: usize,
    end: usize,
    file: usize,
    strukt: &str,
    out: &mut Vec<GrowableField>,
) {
    let decl = &text[start..end.min(text.len())];
    let Some(colon) = decl.find(':') else { return };
    let ty = &decl[colon + 1..];
    if !GROWABLE_TYPES.iter().any(|t| ty.contains(t)) {
        return;
    }
    let name = decl[..colon]
        .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .next()
        .unwrap_or("")
        .to_string();
    if name.is_empty() {
        return;
    }
    let line = line_of(text.as_bytes(), start + colon);
    out.push(GrowableField {
        name,
        file,
        line,
        strukt: strukt.to_string(),
    });
}

/// Does `text[pos..]`, right after a field occurrence, reach one of
/// `methods` after at most two guard hops? Whitespace between chain
/// segments is skipped (rustfmt splits long chains across lines).
fn field_method(text: &str, pos: usize, methods: &[&str]) -> bool {
    fn skip_ws(s: &str) -> &str {
        let k = s.bytes().take_while(|&b| b == b' ' || b == b'\n').count();
        &s[k..]
    }
    let mut tail = skip_ws(&text[pos..]);
    for _ in 0..2 {
        let mut hopped = false;
        for hop in GUARD_HOPS {
            if let Some(t) = tail.strip_prefix(hop) {
                tail = skip_ws(t);
                hopped = true;
                break;
            }
        }
        if !hopped {
            break;
        }
    }
    methods.iter().any(|m| tail.starts_with(m))
}

pub(crate) fn check_l008(ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    let fields = growable_fields(ws.files);
    if fields.is_empty() {
        return;
    }
    // Functions reachable from the cleanup roots (by name), across the
    // whole workspace. Roots are cleanup APIs: their own bodies count.
    let mut reach: BTreeSet<FnId> = BTreeSet::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for (fi, f) in ws.files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            if !f.ctx.in_test(g.def_line) && cfg.l008_cleanup_roots.iter().any(|r| r == &g.name) {
                reach.insert((fi, gi));
                queue.push_back((fi, gi));
            }
        }
    }
    while let Some(cur) = queue.pop_front() {
        let f = &ws.files[cur.0];
        let info = &f.fns[cur.1];
        for call in call_sites(f.ctx.text, info.body) {
            for t in ws.resolve(cur, &call) {
                if reach.insert(t) {
                    queue.push_back(t);
                }
            }
        }
    }

    // For each growable field: insert sites and prune sites across the
    // workspace, attributed to their enclosing function.
    for field in &fields {
        let mut insert_total = 0usize;
        let mut first_insert: Option<(usize, usize)> = None; // (file, line)
        let mut prune_ok = false;
        for (fi, f) in ws.files.iter().enumerate() {
            let text = f.ctx.text;
            let bytes = text.as_bytes();
            for pos in crate::find_all(text, &field.name) {
                let line = line_of(bytes, pos);
                if f.ctx.in_test(line) {
                    continue;
                }
                let after = pos + field.name.len();
                // Inserts must be field accesses (`x.name.insert(`) so
                // same-named locals don't count. Prunes also count
                // through the guard-rebinding idiom (`let mut m =
                // self.m.lock(); … m.remove(k)`), where the local
                // deliberately shadows the field name.
                let dotted = pos > 0 && bytes[pos - 1] == b'.';
                let is_insert = dotted && field_method(text, after, &INSERT_METHODS);
                let is_prune = field_method(text, after, &PRUNE_METHODS);
                if !is_insert && !is_prune {
                    continue;
                }
                // Enclosing function, if any.
                let owner = f
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.body.0 < pos && pos < g.body.1)
                    .min_by_key(|(_, g)| g.body.1 - g.body.0)
                    .map(|(gi, _)| (fi, gi));
                if is_insert {
                    insert_total += 1;
                    if first_insert.is_none() {
                        first_insert = Some((fi, line));
                    }
                }
                if is_prune {
                    let Some(owner) = owner else {
                        prune_ok = true; // top-level (shouldn't happen)
                        continue;
                    };
                    if reach.contains(&owner) {
                        prune_ok = true;
                    } else {
                        // Self-bounding: the pruning function also
                        // inserts into the same field (eviction at the
                        // insert site — e.g. a capped sketch).
                        let g = &ws.files[owner.0].fns[owner.1];
                        let body_text = &ws.files[owner.0].ctx.text[g.body.0..g.body.1];
                        let bounded = crate::find_all(body_text, &field.name).iter().any(|&p| {
                            let abs = g.body.0 + p;
                            abs != pos
                                && ws.files[owner.0].ctx.text.as_bytes()[abs - 1] == b'.'
                                && field_method(
                                    ws.files[owner.0].ctx.text,
                                    abs + field.name.len(),
                                    &INSERT_METHODS,
                                )
                        });
                        if bounded {
                            prune_ok = true;
                        }
                    }
                }
            }
        }
        if insert_total == 0 || prune_ok {
            continue;
        }
        let f = &ws.files[field.file];
        let (ifile, iline) = first_insert.unwrap_or((field.file, field.line));
        f.ctx.emit(
            out,
            Rule::L008,
            field.line,
            format!(
                "map/set field `{}.{}` grows ({} insert site(s), first at {}:{}) but no \
                 prune path is reachable from the cleanup roots [{}]; long-lived state \
                 leaks under churn — add a prune to maintenance or bound the structure",
                field.strukt,
                field.name,
                insert_total,
                ws.files[ifile].ctx.path,
                iline,
                cfg.l008_cleanup_roots.join(", "),
            ),
        );
    }
}
