//! `kosha-lint` CLI: scans the workspace's non-test Rust sources and
//! reports rule violations (see the library docs for the rules).
//!
//! ```text
//! kosha-lint [--root PATH] [--json] [--deny] [--list-rules]
//! ```
//!
//! * `--root PATH`   workspace root to scan (default `.`)
//! * `--json`        machine-readable output
//! * `--deny`        exit 1 when any finding remains (CI mode)
//! * `--list-rules`  print the rule table and exit
//!
//! Scanned: `crates/*/src/**/*.rs` and the root `src/`. Skipped:
//! `target/`, vendored `compat/` shims, `tests/`, `benches/`,
//! `examples/`, and anything inside `#[cfg(test)]` modules. Bench
//! *binaries* under `crates/bench/src/bin/` are scanned on purpose —
//! they feed the BENCH_* determinism gates L002 protects.

use kosha_lint::{findings_to_json, Config, Finding, Rule};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const SKIP_DIRS: [&str; 7] = [
    "target", "compat", "tests", "benches", "examples", ".git", ".github",
];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("kosha-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--deny" => deny = true,
            "--list-rules" => {
                for r in Rule::ALL {
                    println!("{}  {}", r.id(), r.summary());
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("kosha-lint: unknown argument `{other}`");
                eprintln!("usage: kosha-lint [--root PATH] [--json] [--deny] [--list-rules]");
                return ExitCode::from(2);
            }
        }
    }

    let mut files = Vec::new();
    if let Err(e) = collect_rs_files(&root, &mut files) {
        eprintln!("kosha-lint: cannot walk {}: {e}", root.display());
        return ExitCode::from(2);
    }

    let cfg = Config::default();
    let mut findings: Vec<Finding> = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scanned += 1;
        findings.extend(kosha_lint::lint_source(&rel, &src, &cfg));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    if json {
        print!("{}", findings_to_json(&findings, scanned));
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "kosha-lint: {} finding(s) across {} file(s)",
            findings.len(),
            scanned
        );
    }

    if deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
