//! `kosha-lint` CLI: scans the workspace's non-test Rust sources and
//! reports rule violations (see the library docs for the rules).
//!
//! ```text
//! kosha-lint [--root PATH] [--json] [--deny] [--deny-unused-allow]
//!            [--baseline PATH] [--write-baseline PATH]
//!            [--explain L00x] [--list-rules]
//! ```
//!
//! * `--root PATH`          workspace root to scan (default `.`)
//! * `--json`               machine-readable output (double-run
//!   byte-identical; gated in CI)
//! * `--deny`               exit 1 when any active finding remains
//! * `--deny-unused-allow`  exit 1 on stale `lint: allow` comments or
//!   stale baseline entries too
//! * `--baseline PATH`      known-findings file (`L00x file:line` per
//!   line); defaults to `<root>/lint-baseline.txt` when present
//! * `--write-baseline PATH` write the current findings as a baseline
//!   and exit
//! * `--explain L00x`       print the long-form rule documentation
//! * `--list-rules`         print the rule table and exit
//!
//! Scanned: `crates/*/src/**/*.rs` and the root `src/`. Skipped:
//! `target/`, vendored `compat/` shims, `tests/` (including the lint
//! fixtures), `benches/`, `examples/`, and anything inside
//! `#[cfg(test)]` modules. Bench *binaries* under `crates/bench/src/bin/`
//! are scanned on purpose — they feed the BENCH_* determinism gates
//! L002 protects.

use kosha_lint::{baseline_key, parse_baseline, Config, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny = false;
    let mut deny_unused_allow = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("kosha-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--deny" => deny = true,
            "--deny-unused-allow" => deny_unused_allow = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("kosha-lint: --baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("kosha-lint: --write-baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            "--explain" => match args.next().and_then(|id| {
                Rule::ALL
                    .iter()
                    .copied()
                    .find(|r| r.id().eq_ignore_ascii_case(&id))
            }) {
                Some(rule) => {
                    println!("{}", rule.explain());
                    return ExitCode::SUCCESS;
                }
                None => {
                    eprintln!("kosha-lint: --explain needs a rule id (L001..L008)");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in Rule::ALL {
                    println!("{}  {}", r.id(), r.summary());
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("kosha-lint: unknown argument `{other}`");
                eprintln!(
                    "usage: kosha-lint [--root PATH] [--json] [--deny] [--deny-unused-allow] \
                     [--baseline PATH] [--write-baseline PATH] [--explain L00x] [--list-rules]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let cfg = Config::default();
    let mut report = match kosha_lint::scan_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kosha-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline {
        let mut s = String::from(
            "# kosha-lint baseline: known findings carried while being burned down.\n\
             # One `L00x file:line` per line; regenerate with --write-baseline.\n",
        );
        for f in &report.findings {
            s.push_str(&baseline_key(f));
            s.push('\n');
        }
        if let Err(e) = std::fs::write(&path, s) {
            eprintln!("kosha-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "kosha-lint: wrote {} baseline entr(ies) to {}",
            report.findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Baseline filtering: known findings don't fail --deny; baseline
    // entries matching nothing are stale and must be removed.
    let baseline_file = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    let baseline = std::fs::read_to_string(&baseline_file)
        .map(|s| parse_baseline(&s))
        .unwrap_or_default();
    let mut baselined = 0usize;
    let mut matched: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    report.findings.retain(|f| {
        let key = baseline_key(f);
        if baseline.contains(&key) {
            matched.insert(key);
            baselined += 1;
            false
        } else {
            true
        }
    });
    let stale_baseline: Vec<String> = baseline.difference(&matched).cloned().collect();

    if json {
        print!("{}", report.to_json(baselined, &stale_baseline));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        for u in &report.unused_allows {
            println!("{u}");
        }
        for k in &stale_baseline {
            println!("lint-baseline: stale entry `{k}` matches no finding — remove it");
        }
        println!(
            "kosha-lint: {} finding(s) ({} baselined), {} unused suppression(s) across {} file(s)",
            report.findings.len(),
            baselined,
            report.unused_allows.len(),
            report.files_scanned
        );
    }

    let fail_findings = deny && !report.findings.is_empty();
    let fail_allows =
        deny_unused_allow && (!report.unused_allows.is_empty() || !stale_baseline.is_empty());
    if fail_findings || fail_allows {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
