//! Cluster flight recorder: fixed-memory metric time-series, read-heat
//! tracking, and cluster-level load analytics.
//!
//! The registry ([`crate::Registry`]) answers "what is the value now";
//! this module answers "how did it get there". Three pieces:
//!
//! * [`Series`] — a fixed-capacity ring of `(t_nanos, value)` points.
//!   When the ring is full it does not drop history: it halves its
//!   resolution by merging adjacent pairs (keeping the earlier timestamp
//!   and the `max` of the two values, which preserves peaks for gauges
//!   and is the last value for monotonic counters), so a series always
//!   spans its whole lifetime in bounded memory.
//! * [`Recorder`] — a named set of series plus *sources* (counter,
//!   gauge, or histogram-percentile handles). [`Recorder::sample_all`]
//!   snapshots every source at a caller-supplied timestamp; under
//!   `SimNetwork` that timestamp comes from the virtual clock, so two
//!   runs with the same seed produce byte-identical series.
//! * [`ReadHeat`] — per-object read popularity: an EWMA with half-life
//!   decay per key, capped by a space-saving sketch so the hottest N
//!   objects are tracked in O(N) memory with a bounded overestimate.
//!
//! Free functions compute cluster analytics over plain slices:
//! [`load_skew_x1000`] (max/mean and Gini across nodes) and
//! [`slo_burn_x1000`] (fraction of latency samples over an SLO).
//!
//! Like the rest of the crate there are zero dependencies and no clock:
//! time is plain `u64` nanoseconds injected by the caller, which is the
//! determinism contract (DESIGN.md §13).

use crate::histogram::Histogram;
use crate::registry::{Counter, Gauge};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of points a series holds before downsampling.
pub const DEFAULT_SERIES_CAPACITY: usize = 256;

/// Default maximum number of series one recorder will hold; beyond this
/// new series are dropped (and counted in [`Recorder::dropped`]).
pub const DEFAULT_MAX_SERIES: usize = 512;

/// One `(t_nanos, value)` point.
pub type Point = (u64, u64);

/// Fixed-capacity time-series ring with pair-merge downsampling.
#[derive(Debug)]
pub struct Series {
    points: VecDeque<Point>,
    capacity: usize,
    /// How many pair-merge passes this series has absorbed.
    downsamples: u64,
}

impl Series {
    /// New empty series holding at most `capacity` points (min 2).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Series {
            points: VecDeque::new(),
            capacity: capacity.max(2),
            downsamples: 0,
        }
    }

    /// Appends a point; merges adjacent pairs when full.
    pub fn push(&mut self, t_nanos: u64, value: u64) {
        if self.points.len() >= self.capacity {
            self.downsample();
        }
        self.points.push_back((t_nanos, value));
    }

    /// Halves resolution: adjacent pairs become one point keeping the
    /// earlier timestamp and the larger value.
    fn downsample(&mut self) {
        let mut merged = VecDeque::with_capacity(self.capacity);
        let mut it = self.points.drain(..);
        while let Some((t, v)) = it.next() {
            match it.next() {
                Some((_, v2)) => merged.push_back((t, v.max(v2))),
                None => merged.push_back((t, v)),
            }
        }
        drop(it);
        self.points = merged;
        self.downsamples += 1;
    }

    /// All points, oldest first.
    #[must_use]
    pub fn points(&self) -> Vec<Point> {
        self.points.iter().copied().collect()
    }

    /// The most recent point, if any.
    #[must_use]
    pub fn last(&self) -> Option<Point> {
        self.points.back().copied()
    }

    /// Number of points currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points were recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// How many pair-merge passes have happened.
    #[must_use]
    pub fn downsamples(&self) -> u64 {
        self.downsamples
    }

    /// Worst-case payload bytes for this series (capacity × point size);
    /// the memory ceiling reported by benches.
    #[must_use]
    pub fn memory_ceiling_bytes(&self) -> usize {
        self.capacity * std::mem::size_of::<Point>()
    }
}

/// What a [`Recorder`] samples on each tick: a live handle plus how to
/// turn it into a `u64`.
#[derive(Debug, Clone)]
enum Source {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    /// Histogram percentile in parts-per-hundred (50 → p50, 99 → p99).
    HistPct(Arc<Histogram>, u8),
}

impl Source {
    fn read(&self) -> u64 {
        match self {
            Source::Counter(c) => c.get(),
            Source::Gauge(g) => g.get().max(0) as u64,
            Source::HistPct(h, pct) => h.quantile(f64::from(*pct) / 100.0),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    series: BTreeMap<String, Series>,
    sources: BTreeMap<String, Source>,
}

/// Named time-series store plus the sources sampled into it.
///
/// All mutation goes through one `Mutex`; `sample_all` only reads
/// atomics under it, so it never blocks on I/O or RPC.
#[derive(Debug)]
pub struct Recorder {
    inner: Mutex<Inner>,
    series_capacity: usize,
    max_series: usize,
    downsamples: AtomicU64,
    dropped: AtomicU64,
    ticks: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(DEFAULT_SERIES_CAPACITY, DEFAULT_MAX_SERIES)
    }
}

impl Recorder {
    /// New recorder: each series holds `series_capacity` points, at most
    /// `max_series` series are kept.
    #[must_use]
    pub fn new(series_capacity: usize, max_series: usize) -> Self {
        Recorder {
            inner: Mutex::new(Inner::default()),
            series_capacity: series_capacity.max(2),
            max_series: max_series.max(1),
            downsamples: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
        }
    }

    /// Registers a counter to be sampled as series `name` on every tick.
    pub fn watch_counter(&self, name: &str, c: &Arc<Counter>) {
        self.watch(name, Source::Counter(Arc::clone(c)));
    }

    /// Registers a gauge to be sampled as series `name` on every tick.
    /// Negative gauge values clamp to 0 (series points are `u64`).
    pub fn watch_gauge(&self, name: &str, g: &Arc<Gauge>) {
        self.watch(name, Source::Gauge(Arc::clone(g)));
    }

    /// Registers a histogram percentile (e.g. `pct = 99` for p99) to be
    /// sampled as series `name` on every tick.
    pub fn watch_histogram_pct(&self, name: &str, h: &Arc<Histogram>, pct: u8) {
        self.watch(name, Source::HistPct(Arc::clone(h), pct.min(100)));
    }

    fn watch(&self, name: &str, src: Source) {
        let mut inner = self.inner.lock().expect("recorder lock");
        if inner.sources.len() >= self.max_series && !inner.sources.contains_key(name) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner.sources.insert(name.to_string(), src);
    }

    /// Appends one point directly to series `name` (for values that are
    /// not registry handles). Drops the point if the series budget is
    /// exhausted.
    pub fn record(&self, name: &str, t_nanos: u64, value: u64) {
        let mut inner = self.inner.lock().expect("recorder lock");
        self.record_locked(&mut inner, name, t_nanos, value);
    }

    fn record_locked(&self, inner: &mut Inner, name: &str, t_nanos: u64, value: u64) {
        if inner.series.len() >= self.max_series && !inner.series.contains_key(name) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let cap = self.series_capacity;
        let s = inner
            .series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(cap));
        let before = s.downsamples();
        s.push(t_nanos, value);
        let merged = s.downsamples() - before;
        if merged > 0 {
            self.downsamples.fetch_add(merged, Ordering::Relaxed);
        }
    }

    /// Forgets series `name`: removes both its source registration and
    /// its recorded points, freeing a slot in the series budget. Returns
    /// whether anything was removed. Unlike budget exhaustion this is a
    /// deliberate retirement (a peer departed), so it does **not** count
    /// toward [`Recorder::dropped`].
    pub fn forget(&self, name: &str) -> bool {
        let mut inner = self.inner.lock().expect("recorder lock");
        let had_source = inner.sources.remove(name).is_some();
        let had_series = inner.series.remove(name).is_some();
        had_source || had_series
    }

    /// One tick: snapshots every registered source at `t_nanos`, in
    /// sorted name order. Deterministic given deterministic sources and
    /// timestamps.
    pub fn sample_all(&self, t_nanos: u64) {
        let mut inner = self.inner.lock().expect("recorder lock");
        let reads: Vec<(String, u64)> = inner
            .sources
            .iter()
            .map(|(name, src)| (name.clone(), src.read()))
            .collect();
        for (name, v) in reads {
            self.record_locked(&mut inner, &name, t_nanos, v);
        }
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Points of series `name`, oldest first.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<Vec<Point>> {
        self.inner
            .lock()
            .expect("recorder lock")
            .series
            .get(name)
            .map(Series::points)
    }

    /// The most recent point of series `name`.
    #[must_use]
    pub fn last(&self, name: &str) -> Option<Point> {
        self.inner
            .lock()
            .expect("recorder lock")
            .series
            .get(name)
            .and_then(Series::last)
    }

    /// Names of all live series, sorted.
    #[must_use]
    pub fn series_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("recorder lock")
            .series
            .keys()
            .cloned()
            .collect()
    }

    /// Number of live series.
    #[must_use]
    pub fn series_count(&self) -> usize {
        self.inner.lock().expect("recorder lock").series.len()
    }

    /// Worst-case payload bytes across all live series.
    #[must_use]
    pub fn memory_ceiling_bytes(&self) -> usize {
        self.inner
            .lock()
            .expect("recorder lock")
            .series
            .values()
            .map(Series::memory_ceiling_bytes)
            .sum()
    }

    /// Total pair-merge passes across all series.
    #[must_use]
    pub fn downsamples(&self) -> u64 {
        self.downsamples.load(Ordering::Relaxed)
    }

    /// Points or sources dropped because the series budget was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// How many [`Recorder::sample_all`] ticks have run.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

/// One entry reported by [`ReadHeat::top`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatEntry {
    /// Object key (virtual path).
    pub key: String,
    /// Decayed heat in milli-units (1000 = one undecayed read).
    pub heat_milli: u64,
    /// Overestimate bound inherited from evicted entries, milli-units.
    pub err_milli: u64,
}

#[derive(Debug)]
struct HeatSlot {
    key: String,
    heat: f64,
    err: f64,
    last_t: u64,
}

/// Per-object read popularity: EWMA with half-life decay per key, capped
/// by a space-saving sketch (on overflow the coldest entry is replaced
/// and its heat becomes the newcomer's overestimate bound).
#[derive(Debug)]
pub struct ReadHeat {
    half_life_nanos: u64,
    capacity: usize,
    slots: Mutex<Vec<HeatSlot>>,
    touches: AtomicU64,
    evictions: AtomicU64,
}

/// Default heat half-life: 5 virtual seconds.
pub const DEFAULT_HEAT_HALF_LIFE_NANOS: u64 = 5_000_000_000;

/// Default number of objects tracked per node.
pub const DEFAULT_HEAT_CAPACITY: usize = 64;

impl Default for ReadHeat {
    fn default() -> Self {
        ReadHeat::new(DEFAULT_HEAT_HALF_LIFE_NANOS, DEFAULT_HEAT_CAPACITY)
    }
}

impl ReadHeat {
    /// New tracker: heat halves every `half_life_nanos`, at most
    /// `capacity` objects tracked.
    #[must_use]
    pub fn new(half_life_nanos: u64, capacity: usize) -> Self {
        ReadHeat {
            half_life_nanos: half_life_nanos.max(1),
            capacity: capacity.max(1),
            slots: Mutex::new(Vec::new()),
            touches: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn decayed(&self, heat: f64, from_t: u64, to_t: u64) -> f64 {
        if to_t <= from_t {
            return heat;
        }
        let dt = (to_t - from_t) as f64 / self.half_life_nanos as f64;
        heat * (-dt).exp2()
    }

    /// Records one read of `key` at time `t_nanos`.
    pub fn touch(&self, key: &str, t_nanos: u64) {
        self.touches.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.lock().expect("heat lock");
        if let Some(s) = slots.iter_mut().find(|s| s.key == key) {
            s.heat = self.decayed(s.heat, s.last_t, t_nanos) + 1.0;
            s.err = self.decayed(s.err, s.last_t, t_nanos);
            s.last_t = t_nanos;
            return;
        }
        if slots.len() < self.capacity {
            slots.push(HeatSlot {
                key: key.to_string(),
                heat: 1.0,
                err: 0.0,
                last_t: t_nanos,
            });
            return;
        }
        // Space-saving: replace the coldest slot; its decayed heat
        // becomes the newcomer's overestimate bound.
        self.evictions.fetch_add(1, Ordering::Relaxed);
        let (idx, min_heat) = slots
            .iter()
            .enumerate()
            .map(|(i, s)| (i, self.decayed(s.heat, s.last_t, t_nanos)))
            // min by heat, ties broken by the later (greater) key so the
            // lexicographically-smallest survivor wins deterministically.
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| slots[b.0].key.cmp(&slots[a.0].key))
            })
            .expect("capacity >= 1");
        let s = &mut slots[idx];
        s.key = key.to_string();
        s.err = min_heat;
        s.heat = min_heat + 1.0;
        s.last_t = t_nanos;
    }

    /// The `n` hottest objects as of `now_nanos`, hottest first, ties
    /// broken by key. Heat is reported in milli-units.
    #[must_use]
    pub fn top(&self, n: usize, now_nanos: u64) -> Vec<HeatEntry> {
        let slots = self.slots.lock().expect("heat lock");
        let mut all: Vec<HeatEntry> = slots
            .iter()
            .map(|s| HeatEntry {
                key: s.key.clone(),
                heat_milli: (self.decayed(s.heat, s.last_t, now_nanos) * 1000.0).round() as u64,
                err_milli: (self.decayed(s.err, s.last_t, now_nanos) * 1000.0).round() as u64,
            })
            .collect();
        drop(slots);
        all.sort_by(|a, b| {
            b.heat_milli
                .cmp(&a.heat_milli)
                .then_with(|| a.key.cmp(&b.key))
        });
        all.truncate(n);
        all
    }

    /// Decayed heat of one key in milli-units as of `now_nanos`, or
    /// `None` if the sketch does not track it. Threshold checks (did
    /// this object cross the hot-spawn line? has it cooled past the shed
    /// line?) want a point query, not a full sorted `top` scan.
    #[must_use]
    pub fn heat_milli_of(&self, key: &str, now_nanos: u64) -> Option<u64> {
        let slots = self.slots.lock().expect("heat lock");
        slots
            .iter()
            .find(|s| s.key == key)
            .map(|s| (self.decayed(s.heat, s.last_t, now_nanos) * 1000.0).round() as u64)
    }

    /// Drops `key`'s slot, if tracked. Removal of the underlying object
    /// must not pin a space-saving slot (a deleted file would otherwise
    /// squat in the sketch until enough fresh heat evicts it), so
    /// unlink/rmdir paths call this alongside their cache invalidation.
    pub fn forget(&self, key: &str) {
        self.slots
            .lock()
            .expect("heat lock")
            .retain(|s| s.key != key);
    }

    /// Total reads observed.
    #[must_use]
    pub fn touches(&self) -> u64 {
        self.touches.load(Ordering::Relaxed)
    }

    /// Sketch evictions (non-zero means tail keys carry overestimates).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Load skew across nodes: `(max/mean × 1000, Gini × 1000)`.
///
/// A perfectly balanced cluster reports `(1000, 0)`; one node taking all
/// load in an `n`-node cluster reports `(n × 1000, (n-1)/n × 1000)`.
/// Pure integer math (`u128` intermediates), so deterministic.
#[must_use]
pub fn load_skew_x1000(loads: &[u64]) -> (u64, u64) {
    let n = loads.len() as u128;
    if n == 0 {
        return (1000, 0);
    }
    let sum: u128 = loads.iter().map(|&v| u128::from(v)).sum();
    if sum == 0 {
        return (1000, 0);
    }
    let max = u128::from(*loads.iter().max().expect("non-empty"));
    // max/mean = max * n / sum.
    let max_over_mean = (max * n * 1000 / sum) as u64;
    let mut diff: u128 = 0;
    for (i, &a) in loads.iter().enumerate() {
        for &b in &loads[i + 1..] {
            diff += u128::from(a.abs_diff(b));
        }
    }
    // Gini = Σij |xi−xj| / (2 n² mean) = 2·Σi<j |xi−xj| / (2 n sum).
    let gini = (diff * 1000 / (n * sum)) as u64;
    (max_over_mean, gini)
}

/// SLO burn over a latency series: the fraction (×1000) of points whose
/// value exceeds `slo_nanos`, plus the raw counts as `(burn_x1000,
/// over, total)`.
#[must_use]
pub fn slo_burn_x1000(points: &[Point], slo_nanos: u64) -> (u64, u64, u64) {
    let total = points.len() as u64;
    if total == 0 {
        return (0, 0, 0);
    }
    let over = points.iter().filter(|&&(_, v)| v > slo_nanos).count() as u64;
    (over * 1000 / total, over, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_downsamples_instead_of_dropping() {
        let mut s = Series::new(8);
        for i in 0..8u64 {
            s.push(i * 10, i);
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.downsamples(), 0);
        s.push(80, 100);
        // 8 points merged to 4, then the new one appended.
        assert_eq!(s.len(), 5);
        assert_eq!(s.downsamples(), 1);
        let pts = s.points();
        // First merged pair keeps t=0 and max(0,1)=1.
        assert_eq!(pts[0], (0, 1));
        assert_eq!(pts[1], (20, 3));
        assert_eq!(*pts.last().unwrap(), (80, 100));
        // History still spans from the very first timestamp.
        assert_eq!(pts[0].0, 0);
    }

    #[test]
    fn series_memory_is_bounded_forever() {
        let mut s = Series::new(16);
        for i in 0..10_000u64 {
            s.push(i, i);
        }
        assert!(s.len() <= 16);
        assert!(s.downsamples() > 0);
        assert_eq!(s.memory_ceiling_bytes(), 16 * 16);
        // Oldest point survives all merges.
        assert_eq!(s.points()[0].0, 0);
    }

    #[test]
    fn recorder_samples_sources_deterministically() {
        let rec = Recorder::default();
        let c = Arc::new(Counter::default());
        let g = Arc::new(Gauge::default());
        let h = Arc::new(Histogram::new());
        rec.watch_counter("c_total", &c);
        rec.watch_gauge("g_now", &g);
        rec.watch_histogram_pct("lat:p99", &h, 99);
        c.add(3);
        g.set(7);
        h.record(1000);
        rec.sample_all(100);
        c.add(2);
        rec.sample_all(200);
        assert_eq!(rec.series("c_total").unwrap(), vec![(100, 3), (200, 5)]);
        assert_eq!(rec.series("g_now").unwrap()[1], (200, 7));
        assert!(rec.series("lat:p99").unwrap()[0].1 >= 1000);
        assert_eq!(rec.ticks(), 2);
        assert_eq!(rec.series_names(), vec!["c_total", "g_now", "lat:p99"]);
    }

    #[test]
    fn recorder_negative_gauge_clamps_to_zero() {
        let rec = Recorder::default();
        let g = Arc::new(Gauge::default());
        g.set(-5);
        rec.watch_gauge("g", &g);
        rec.sample_all(1);
        assert_eq!(rec.last("g"), Some((1, 0)));
    }

    #[test]
    fn recorder_enforces_series_budget() {
        let rec = Recorder::new(4, 2);
        rec.record("a", 1, 1);
        rec.record("b", 1, 1);
        rec.record("c", 1, 1); // over budget → dropped
        rec.record("a", 2, 2); // existing series still accepts
        assert_eq!(rec.series_count(), 2);
        assert_eq!(rec.dropped(), 1);
        assert!(rec.series("c").is_none());
        assert!(rec.memory_ceiling_bytes() <= 2 * 4 * 16);
    }

    #[test]
    fn recorder_at_default_ceiling_drops_new_series_loudly() {
        // Churn scenario: 512 per-peer series exist, then new peers keep
        // arriving. Every new series past the ceiling must be refused
        // with a `dropped` increment — never a panic, never a silent
        // eviction of an existing series.
        let rec = Recorder::default();
        for i in 0..DEFAULT_MAX_SERIES {
            rec.record(&format!("peer{i:04}"), 1, i as u64);
        }
        assert_eq!(rec.series_count(), DEFAULT_MAX_SERIES);
        assert_eq!(rec.dropped(), 0);
        for i in 0..32 {
            rec.record(&format!("late{i:04}"), 2, 9);
        }
        assert_eq!(rec.series_count(), DEFAULT_MAX_SERIES, "no eviction");
        assert_eq!(rec.dropped(), 32, "each refusal counted");
        assert!(rec.series("late0000").is_none());
        // Every pre-ceiling series survived untouched.
        assert_eq!(rec.series("peer0000").unwrap(), vec![(1, 0)]);
        assert_eq!(
            rec.series(&format!("peer{:04}", DEFAULT_MAX_SERIES - 1))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn recorder_at_ceiling_refuses_new_sources_on_watch_and_tick() {
        let rec = Recorder::new(4, DEFAULT_MAX_SERIES);
        let old = Arc::new(Gauge::default());
        old.set(5);
        rec.watch_gauge("keeper", &old);
        for i in 1..DEFAULT_MAX_SERIES {
            rec.watch_gauge(&format!("g{i:04}"), &Arc::new(Gauge::default()));
        }
        assert_eq!(rec.dropped(), 0);
        // The 513th watch is refused and counted; ticking afterwards
        // must not panic and must still sample every accepted source.
        rec.watch_gauge("overflow", &Arc::new(Gauge::default()));
        assert_eq!(rec.dropped(), 1);
        rec.sample_all(10);
        assert_eq!(rec.series_count(), DEFAULT_MAX_SERIES);
        assert!(rec.series("overflow").is_none());
        assert_eq!(rec.last("keeper"), Some((10, 5)));
    }

    #[test]
    fn forget_retires_series_and_frees_budget() {
        let rec = Recorder::new(4, 2);
        let g = Arc::new(Gauge::default());
        g.set(3);
        rec.watch_gauge("a", &g);
        rec.record("b", 1, 1);
        rec.sample_all(2);
        assert_eq!(rec.series_count(), 2);
        // Budget full: a new series is refused...
        rec.record("c", 3, 1);
        assert_eq!(rec.dropped(), 1);
        // ...until the departed peer's series is forgotten.
        assert!(rec.forget("a"));
        assert!(!rec.forget("a"), "second forget is a no-op");
        assert!(rec.series("a").is_none());
        rec.record("c", 4, 1);
        assert_eq!(rec.series_count(), 2);
        assert_eq!(rec.dropped(), 1, "forget is not a drop");
        // The forgotten source is no longer sampled back into existence.
        rec.sample_all(5);
        assert!(rec.series("a").is_none());
    }

    #[test]
    fn heat_decays_with_half_life() {
        let hl = 1_000;
        let heat = ReadHeat::new(hl, 8);
        heat.touch("/a", 0);
        heat.touch("/a", 0);
        let top = heat.top(1, 0);
        assert_eq!(top[0].heat_milli, 2000);
        // One half-life later the heat halved.
        let top = heat.top(1, hl);
        assert_eq!(top[0].heat_milli, 1000);
        assert_eq!(heat.touches(), 2);
    }

    #[test]
    fn heat_space_saving_evicts_coldest() {
        let heat = ReadHeat::new(u64::MAX / 4, 2);
        heat.touch("/hot", 0);
        heat.touch("/hot", 1);
        heat.touch("/cold", 2);
        heat.touch("/new", 3); // evicts /cold (heat 1), inherits err
        assert_eq!(heat.evictions(), 1);
        let top = heat.top(2, 3);
        assert_eq!(top[0].key, "/hot");
        assert_eq!(top[1].key, "/new");
        // Newcomer carries the evicted heat as overestimate bound.
        assert!(top[1].err_milli >= 999);
        assert!(top[1].heat_milli >= top[1].err_milli + 999);
    }

    #[test]
    fn heat_top_order_is_deterministic_on_ties() {
        let heat = ReadHeat::new(u64::MAX / 4, 8);
        heat.touch("/b", 0);
        heat.touch("/a", 0);
        let top = heat.top(2, 0);
        assert_eq!(top[0].key, "/a");
        assert_eq!(top[1].key, "/b");
    }

    #[test]
    fn heat_top_ties_stable_across_insertion_orders() {
        // Any insertion order of equally-hot keys yields the same top-k:
        // the heat_milli tie breaks on the key, never on slot position.
        let keys = ["/m", "/z", "/a", "/q", "/c"];
        let mut orders: Vec<Vec<&str>> = vec![keys.to_vec()];
        orders.push(keys.iter().rev().copied().collect());
        orders.push(vec!["/q", "/a", "/z", "/c", "/m"]);
        let mut outputs = Vec::new();
        for order in orders {
            let heat = ReadHeat::new(u64::MAX / 4, 8);
            for k in order {
                heat.touch(k, 0);
            }
            outputs.push(heat.top(5, 0));
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for out in &outputs {
            let got: Vec<&str> = out.iter().map(|e| e.key.as_str()).collect();
            assert_eq!(got, sorted, "tie order must be key order");
            assert_eq!(out, &outputs[0], "insertion order leaked into top-k");
        }
    }

    #[test]
    fn heat_top_ties_after_rounding_break_by_key() {
        // Distinct raw heats that round to the same milli value still
        // order by key: the comparison runs on the reported integers.
        let hl = 1_000_000;
        let heat = ReadHeat::new(hl, 8);
        heat.touch("/y", 0);
        heat.touch("/x", 0);
        // Tiny time skew: decayed heats differ in f64 but both round to
        // the same heat_milli at the query instant.
        let top = heat.top(2, 1);
        assert_eq!(top[0].heat_milli, top[1].heat_milli);
        assert_eq!(top[0].key, "/x");
        assert_eq!(top[1].key, "/y");
    }

    #[test]
    fn heat_forget_drops_slot_and_frees_capacity() {
        let heat = ReadHeat::new(u64::MAX / 4, 2);
        heat.touch("/dead", 0);
        heat.touch("/dead", 1);
        heat.touch("/live", 2);
        heat.forget("/dead");
        let top = heat.top(2, 2);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].key, "/live");
        // The freed slot is reusable without an eviction: a newcomer
        // enters cleanly (err = 0) instead of inheriting stale heat.
        heat.touch("/next", 3);
        assert_eq!(heat.evictions(), 0);
        let top = heat.top(2, 3);
        assert!(top.iter().any(|e| e.key == "/next" && e.err_milli == 0));
        // Forgetting an untracked key is a no-op.
        heat.forget("/ghost");
        assert_eq!(heat.top(8, 3).len(), 2);
    }

    #[test]
    fn load_skew_balanced_and_skewed() {
        assert_eq!(load_skew_x1000(&[]), (1000, 0));
        assert_eq!(load_skew_x1000(&[0, 0]), (1000, 0));
        assert_eq!(load_skew_x1000(&[5, 5, 5, 5]), (1000, 0));
        let (mom, gini) = load_skew_x1000(&[100, 0, 0, 0]);
        assert_eq!(mom, 4000);
        assert_eq!(gini, 750); // (n-1)/n = 3/4
        let (mom, gini) = load_skew_x1000(&[3, 1]);
        assert_eq!(mom, 1500);
        assert_eq!(gini, 250);
    }

    #[test]
    fn slo_burn_counts_violations() {
        assert_eq!(slo_burn_x1000(&[], 10), (0, 0, 0));
        let pts = vec![(0, 5), (1, 15), (2, 25), (3, 10)];
        let (burn, over, total) = slo_burn_x1000(&pts, 10);
        assert_eq!((over, total), (2, 4));
        assert_eq!(burn, 500);
    }
}
