//! Dapper-style causal tracing: span trees with critical-path attribution.
//!
//! A *trace* is the tree of timed spans on one request's causal path —
//! the koshad procedure at the root, Pastry route hops, control calls,
//! replica fan-out, and local-store NFS work below it. Identifiers
//! propagate two ways:
//!
//! * **same thread** — a thread-local [`SpanContext`] installed by
//!   [`Tracer::child`] / [`with_context`], which nested spans pick up
//!   automatically (this covers `SimNetwork`, whose nested handler
//!   dispatch runs on the caller's thread), and
//! * **across threads/nodes** — an optional trace header on the RPC
//!   wire frame; the transport stamps outgoing requests from the ambient
//!   context and re-installs it around the server-side handler dispatch
//!   (this covers `ThreadedNetwork`'s mailbox and fan-out threads).
//!
//! The module is clock-agnostic: every recording call takes the current
//! time as plain `u64` nanoseconds, so spans land on the virtual clock
//! under `SimNetwork` (deterministic) and the monotonic wall clock under
//! `ThreadedNetwork`. Span ids are allocated from a per-tracer counter
//! namespaced by a process-wide tracer sequence, so ids are unique
//! across the per-node buffers of one simulated cluster and stable from
//! run to run.
//!
//! Analysis reconstructs trees from the merged per-node buffers
//! ([`build_traces`]) and attributes the root's duration along the
//! *critical path*: overlapping children — `call_many` replica fan-out
//! records its per-target RPCs as parallel siblings — are charged the
//! `max` of the group, not the sum ([`TraceTree::critical_path`]).
//! [`folded_stacks`] and [`report_json`] emit deterministic text/JSON
//! renderings for benches and CI.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The propagated identity of an in-flight span: which trace it belongs
/// to and which span is the parent of work started under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Trace the current work belongs to (root span's id).
    pub trace_id: u64,
    /// Innermost active span (parent of any span started now).
    pub span_id: u64,
}

thread_local! {
    static CURRENT: Cell<Option<SpanContext>> = const { Cell::new(None) };
}

/// The ambient span context on this thread, if any.
#[must_use]
pub fn current() -> Option<SpanContext> {
    CURRENT.with(Cell::get)
}

/// Runs `f` with `ctx` installed as the ambient context (replacing —
/// including clearing, when `ctx` is `None` — whatever was active), then
/// restores the previous context. Transports use this to bridge a
/// request's wire header onto the handler's thread.
pub fn with_context<R>(ctx: Option<SpanContext>, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT.with(|c| c.replace(ctx));
    let out = f();
    CURRENT.with(|c| c.set(prev));
    out
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique across all tracers in the process).
    pub span_id: u64,
    /// Parent span id, 0 for a trace root.
    pub parent_id: u64,
    /// Low-cardinality operation name, e.g. `"rpc:replica"`.
    pub name: String,
    /// Node the span executed on (transport address).
    pub node: u64,
    /// Start time, nanoseconds on the recording clock.
    pub start_nanos: u64,
    /// End time, nanoseconds on the recording clock.
    pub end_nanos: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds (0 if the clock did not advance).
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// Process-wide tracer sequence: namespaces each tracer's span ids so
/// the per-node buffers of one cluster never collide. Allocation order
/// is construction order, which is deterministic in simulations.
static TRACER_SEQ: AtomicU64 = AtomicU64::new(0);

/// Bits of a span id reserved for the per-tracer counter.
const LOCAL_BITS: u32 = 40;

/// A child span opened with [`Tracer::open_child`] and not yet closed:
/// the split-phase form of [`Tracer::child_with`], used when multiple
/// spans overlap on one thread (async fan-out).
#[derive(Debug, Clone, Copy)]
pub struct OpenSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    node: u64,
    start_nanos: u64,
}

impl OpenSpan {
    /// The span's context, for stamping into an outgoing wire header so
    /// server-side spans parent under it.
    #[must_use]
    pub fn ctx(&self) -> SpanContext {
        SpanContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
        }
    }
}

/// A bounded buffer of completed spans plus a deterministic id
/// allocator. One per [`crate::Obs`] domain.
#[derive(Debug)]
pub struct Tracer {
    /// Namespace (tracer sequence number shifted above [`LOCAL_BITS`]).
    ns: u64,
    next: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(Tracer::DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// Default span-buffer capacity.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// New tracer retaining up to `capacity` spans (min 1). Spans
    /// recorded beyond capacity are counted in [`Tracer::dropped`] and
    /// discarded — a full buffer must not distort the traced workload.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let seq = TRACER_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
        Tracer {
            ns: seq << LOCAL_BITS,
            next: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    fn next_id(&self) -> u64 {
        self.ns | self.next.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, rec: SpanRecord) {
        let mut spans = self.spans.lock().expect("tracer lock");
        if spans.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(rec);
    }

    /// Starts a new trace: runs `f` under a fresh root context and
    /// records the root span unconditionally. `now` is sampled once
    /// before and once after `f`.
    pub fn root<R>(
        &self,
        name: impl Into<String>,
        node: u64,
        now: impl Fn() -> u64,
        f: impl FnOnce() -> R,
    ) -> R {
        let span_id = self.next_id();
        let ctx = SpanContext {
            trace_id: span_id,
            span_id,
        };
        let start = now();
        let out = with_context(Some(ctx), f);
        self.push(SpanRecord {
            trace_id: span_id,
            span_id,
            parent_id: 0,
            name: name.into(),
            node,
            start_nanos: start,
            end_nanos: now(),
        });
        out
    }

    /// Runs `f` in a child span of the ambient context — or plainly,
    /// with no recording and without calling `name`, when no trace is
    /// active. The lazy `name` keeps the untraced fast path free of
    /// string formatting.
    pub fn child<R>(
        &self,
        name: impl FnOnce() -> String,
        node: u64,
        now: impl Fn() -> u64,
        f: impl FnOnce() -> R,
    ) -> R {
        self.child_with(name, node, now, |_| f())
    }

    /// Like [`Tracer::child`], but hands `f` the child's own context
    /// (`None` when no trace is active) so transports can copy it into
    /// an outgoing wire header.
    pub fn child_with<R>(
        &self,
        name: impl FnOnce() -> String,
        node: u64,
        now: impl Fn() -> u64,
        f: impl FnOnce(Option<SpanContext>) -> R,
    ) -> R {
        let Some(parent) = current() else {
            return f(None);
        };
        let span_id = self.next_id();
        let ctx = SpanContext {
            trace_id: parent.trace_id,
            span_id,
        };
        let start = now();
        let out = with_context(Some(ctx), || f(Some(ctx)));
        self.push(SpanRecord {
            trace_id: parent.trace_id,
            span_id,
            parent_id: parent.span_id,
            name: name(),
            node,
            start_nanos: start,
            end_nanos: now(),
        });
        out
    }

    /// Opens a child span of the ambient context *without* scoping it to
    /// a closure, for overlapped (fan-out / continuation-style) work
    /// where several spans must be in flight on one thread at once.
    /// Returns `None` when no trace is active. The caller stamps
    /// [`OpenSpan::ctx`] into outgoing wire headers and finishes the
    /// span with [`Tracer::close`] once the work completes; dropping an
    /// `OpenSpan` without closing records nothing.
    #[must_use]
    pub fn open_child(&self, node: u64, start_nanos: u64) -> Option<OpenSpan> {
        let parent = current()?;
        let span_id = self.next_id();
        Some(OpenSpan {
            trace_id: parent.trace_id,
            span_id,
            parent_id: parent.span_id,
            node,
            start_nanos,
        })
    }

    /// Records an [`OpenSpan`] opened by [`Tracer::open_child`] as
    /// completed at `end_nanos`.
    pub fn close(&self, span: OpenSpan, name: impl Into<String>, end_nanos: u64) {
        self.push(SpanRecord {
            trace_id: span.trace_id,
            span_id: span.span_id,
            parent_id: span.parent_id,
            name: name.into(),
            node: span.node,
            start_nanos: span.start_nanos,
            end_nanos,
        });
    }

    /// Number of buffered spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.lock().expect("tracer lock").len()
    }

    /// True if no spans are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans discarded because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains and returns the buffered spans (collection step: the
    /// analyzer merges the drains of every node's tracer).
    #[must_use]
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.spans.lock().expect("tracer lock"))
    }

    /// Clones the buffered spans without draining.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("tracer lock").clone()
    }
}

// ---- collection and analysis ------------------------------------------

/// One reconstructed trace: the root span and every descendant,
/// including spans whose parent never surfaced (*orphans* — e.g. the
/// parent was dropped by a full buffer), which are attached directly
/// under the root so their time is not lost.
#[derive(Debug)]
pub struct TraceTree {
    /// The trace id (== the root span's id when the root survived).
    pub trace_id: u64,
    spans: Vec<SpanRecord>,
    root: usize,
    children: HashMap<u64, Vec<usize>>,
}

/// Reconstructs trace trees from a merged pile of span records (any
/// order, any number of per-node buffers). Trees are ordered by root
/// start time (then trace id), spans within a tree by start time (then
/// span id) — deterministic given deterministic clocks and ids.
#[must_use]
pub fn build_traces(spans: Vec<SpanRecord>) -> Vec<TraceTree> {
    let mut by_trace: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    let mut trees: Vec<TraceTree> = by_trace
        .into_iter()
        .map(|(trace_id, mut spans)| {
            spans.sort_by_key(|s| (s.start_nanos, s.span_id));
            let root = spans
                .iter()
                .position(|s| s.parent_id == 0)
                .unwrap_or_default();
            let ids: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
            let root_id = spans[root].span_id;
            let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
            for (i, s) in spans.iter().enumerate() {
                if i == root {
                    continue;
                }
                // Orphans (missing or self-referential parent) hang off
                // the root so the tree stays connected.
                let parent = if ids.contains(&s.parent_id) && s.parent_id != s.span_id {
                    s.parent_id
                } else {
                    root_id
                };
                children.entry(parent).or_default().push(i);
            }
            TraceTree {
                trace_id,
                spans,
                root,
                children,
            }
        })
        .collect();
    trees.sort_by_key(|t| (t.spans[t.root].start_nanos, t.trace_id));
    trees
}

/// Coalesces sorted-by-start clipped intervals into maximal overlapping
/// groups; returns `(group_start, group_end, member_indices)`.
fn overlap_groups(kids: &[(usize, u64, u64)]) -> Vec<(u64, u64, Vec<usize>)> {
    let mut groups: Vec<(u64, u64, Vec<usize>)> = Vec::new();
    for &(idx, lo, hi) in kids {
        match groups.last_mut() {
            Some(g) if lo <= g.1 => {
                g.1 = g.1.max(hi);
                g.2.push(idx);
            }
            _ => groups.push((lo, hi, vec![idx])),
        }
    }
    groups
}

impl TraceTree {
    /// The root span.
    #[must_use]
    pub fn root_span(&self) -> &SpanRecord {
        &self.spans[self.root]
    }

    /// All spans of the trace, ordered by start time.
    #[must_use]
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// End-to-end duration: the root span's.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.root_span().duration()
    }

    /// Children of span index `idx`, clipped to `[lo, hi)` and sorted by
    /// clipped start; zero-length results are dropped.
    fn clipped_children(&self, idx: usize, lo: u64, hi: u64) -> Vec<(usize, u64, u64)> {
        let mut kids: Vec<(usize, u64, u64)> = self
            .children
            .get(&self.spans[idx].span_id)
            .into_iter()
            .flatten()
            .filter_map(|&c| {
                let s = &self.spans[c];
                let clo = s.start_nanos.max(lo);
                let chi = s.end_nanos.min(hi);
                (clo < chi).then_some((c, clo, chi))
            })
            .collect();
        kids.sort_by_key(|&(c, clo, _)| (clo, self.spans[c].span_id));
        kids
    }

    /// Critical-path attribution of the root's duration, aggregated by
    /// span name and sorted by name. The entries sum exactly to
    /// [`TraceTree::total_nanos`]: each span on the path is charged its
    /// *self* time (duration not covered by children), and each group of
    /// overlapping children — parallel siblings, e.g. a replica fan-out
    /// — is charged as the chain that determined when the group ended
    /// (the `max`, not the sum).
    #[must_use]
    pub fn critical_path(&self) -> Vec<(String, u64)> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        let root = self.root_span();
        self.attribute(self.root, root.start_nanos, root.end_nanos, &mut out);
        out.into_iter().collect()
    }

    /// Charges `[lo, hi)` of span `idx`: self time to the span's name,
    /// each overlap group to its critical chain.
    fn attribute(&self, idx: usize, lo: u64, hi: u64, out: &mut BTreeMap<String, u64>) {
        let s = &self.spans[idx];
        let lo = lo.max(s.start_nanos);
        let hi = hi.min(s.end_nanos);
        let entry = out.entry(s.name.clone()).or_insert(0);
        if lo >= hi {
            return;
        }
        let kids = self.clipped_children(idx, lo, hi);
        let groups = overlap_groups(&kids);
        let covered: u64 = groups.iter().map(|g| g.1 - g.0).sum();
        *entry += (hi - lo) - covered;
        for (glo, ghi, members) in groups {
            self.attribute_group(&members, glo, ghi, out);
        }
    }

    /// Charges `[lo, hi)`, fully covered by `members`, to the chain that
    /// ends it: the latest-ending member owns its tail, and the interval
    /// before that member started is resolved recursively among the
    /// others.
    fn attribute_group(
        &self,
        members: &[usize],
        lo: u64,
        hi: u64,
        out: &mut BTreeMap<String, u64>,
    ) {
        let Some(&critical) = members.iter().min_by_key(|&&c| {
            let s = &self.spans[c];
            (
                std::cmp::Reverse(s.end_nanos.min(hi)),
                s.start_nanos,
                s.span_id,
            )
        }) else {
            return;
        };
        let cstart = self.spans[critical].start_nanos.max(lo);
        self.attribute(critical, cstart, hi, out);
        if cstart > lo {
            let rest: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&c| c != critical && self.spans[c].start_nanos < cstart)
                .collect();
            if rest.is_empty() {
                // Defensive: a gap nothing covers is charged to the
                // critical member so totals still reconcile.
                *out.entry(self.spans[critical].name.clone()).or_insert(0) += cstart - lo;
            } else {
                self.attribute_group(&rest, lo, cstart, out);
            }
        }
    }

    /// Flamegraph self times: for every span, its duration minus the
    /// union of its children's (clipped) intervals, keyed by the
    /// `;`-joined name path from the root.
    fn fold_into(&self, out: &mut BTreeMap<String, u64>) {
        let mut stack = vec![(self.root, self.root_span().name.clone())];
        while let Some((idx, path)) = stack.pop() {
            let s = &self.spans[idx];
            let kids = self.clipped_children(idx, s.start_nanos, s.end_nanos);
            let covered: u64 = overlap_groups(&kids).iter().map(|g| g.1 - g.0).sum();
            *out.entry(path.clone()).or_insert(0) += s.duration() - covered;
            for (c, _, _) in kids {
                stack.push((c, format!("{path};{}", self.spans[c].name)));
            }
        }
    }
}

/// Renders trees in the folded-stacks format flamegraph tooling eats:
/// one `path;to;span <self_nanos>` line per distinct stack, aggregated
/// across traces and sorted by path.
#[must_use]
pub fn folded_stacks(trees: &[TraceTree]) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for t in trees {
        t.fold_into(&mut agg);
    }
    let mut out = String::new();
    for (path, nanos) in agg {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&nanos.to_string());
        out.push('\n');
    }
    out
}

/// Deterministic JSON report: traces grouped by root-span name, each
/// group carrying its count, summed end-to-end nanoseconds, and the
/// aggregated critical-path breakdown (share in basis points of the
/// group total, largest first). No raw ids appear, so two identical
/// runs emit identical bytes even across processes.
#[must_use]
pub fn report_json(trees: &[TraceTree]) -> String {
    struct Group {
        count: u64,
        total: u64,
        // lint: allow(L008) report-scoped accumulator: dropped when this function returns
        breakdown: BTreeMap<String, u64>,
    }
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    for t in trees {
        let g = groups
            .entry(t.root_span().name.clone())
            .or_insert_with(|| Group {
                count: 0,
                total: 0,
                breakdown: BTreeMap::new(),
            });
        g.count += 1;
        g.total += t.total_nanos();
        for (name, nanos) in t.critical_path() {
            *g.breakdown.entry(name).or_insert(0) += nanos;
        }
    }
    let mut out = String::from("{\n  \"ops\": [\n");
    let n_groups = groups.len();
    for (gi, (op, g)) in groups.into_iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"op\": {op:?},\n      \"traces\": {},\n      \"total_nanos\": {},\n      \"critical_path\": [\n",
            g.count, g.total
        ));
        let mut entries: Vec<(String, u64)> = g.breakdown.into_iter().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let n = entries.len();
        for (i, (name, nanos)) in entries.into_iter().enumerate() {
            let bps = nanos
                .saturating_mul(10_000)
                .checked_div(g.total)
                .unwrap_or(0);
            out.push_str(&format!(
                "        {{\"name\": {name:?}, \"nanos\": {nanos}, \"share_bps\": {bps}}}{}\n",
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if gi + 1 < n_groups { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            name: name.into(),
            node: 0,
            start_nanos: start,
            end_nanos: end,
        }
    }

    #[test]
    fn context_scoping_restores_previous() {
        assert_eq!(current(), None);
        let ctx = SpanContext {
            trace_id: 9,
            span_id: 9,
        };
        with_context(Some(ctx), || {
            assert_eq!(current(), Some(ctx));
            with_context(None, || assert_eq!(current(), None));
            assert_eq!(current(), Some(ctx));
        });
        assert_eq!(current(), None);
    }

    #[test]
    fn child_without_active_trace_records_nothing() {
        let t = Tracer::default();
        let ran = t.child(|| unreachable!("name must stay lazy"), 1, || 0, || true);
        assert!(ran);
        assert!(t.is_empty());
    }

    #[test]
    fn root_and_children_share_a_trace() {
        let t = Tracer::default();
        let clock = AtomicU64::new(0);
        let now = || clock.fetch_add(10, Ordering::Relaxed);
        t.root("op", 1, now, || {
            t.child(|| "inner".into(), 2, now, || {});
        });
        let spans = t.take();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.parent_id == 0).unwrap();
        let inner = spans.iter().find(|s| s.parent_id != 0).unwrap();
        assert_eq!(inner.trace_id, root.trace_id);
        assert_eq!(inner.parent_id, root.span_id);
        assert_eq!(current(), None);
    }

    #[test]
    fn span_ids_are_namespaced_per_tracer() {
        let a = Tracer::default();
        let b = Tracer::default();
        a.root("x", 0, || 0, || {});
        b.root("x", 0, || 0, || {});
        let ia = a.take()[0].span_id;
        let ib = b.take()[0].span_id;
        assert_ne!(ia, ib);
        assert_ne!(ia >> LOCAL_BITS, ib >> LOCAL_BITS);
    }

    #[test]
    fn full_buffer_drops_and_counts() {
        let t = Tracer::with_capacity(1);
        t.root("a", 0, || 0, || {});
        t.root("b", 0, || 0, || {});
        assert_eq!(t.len(), 1);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn parallel_fanout_charges_max_not_sum() {
        // root [0,100) with fan-out children [10,50) and [10,80):
        // overlapping siblings cost max (70), root keeps 30 self.
        let trees = build_traces(vec![
            span(1, 1, 0, "write", 0, 100),
            span(1, 2, 1, "rpc:replica", 10, 50),
            span(1, 3, 1, "rpc:replica", 10, 80),
        ]);
        assert_eq!(trees.len(), 1);
        let cp = trees[0].critical_path();
        assert_eq!(cp, vec![("rpc:replica".into(), 70), ("write".into(), 30)]);
        let total: u64 = cp.iter().map(|(_, n)| n).sum();
        assert_eq!(total, trees[0].total_nanos());
    }

    #[test]
    fn serial_children_sum_along_the_path() {
        let trees = build_traces(vec![
            span(1, 1, 0, "op", 0, 100),
            span(1, 2, 1, "a", 10, 30),
            span(1, 3, 1, "b", 40, 90),
        ]);
        let cp = trees[0].critical_path();
        assert_eq!(
            cp,
            vec![("a".into(), 20), ("b".into(), 50), ("op".into(), 30)]
        );
    }

    #[test]
    fn degenerate_single_child_gets_its_interval() {
        let trees = build_traces(vec![
            span(1, 1, 0, "op", 0, 50),
            span(1, 2, 1, "only", 5, 45),
        ]);
        let cp = trees[0].critical_path();
        assert_eq!(cp, vec![("only".into(), 40), ("op".into(), 10)]);
    }

    #[test]
    fn staggered_overlap_walks_the_critical_chain() {
        // a [0,10) then b [8,20): b owns [8,20), a owns [0,8).
        let trees = build_traces(vec![
            span(1, 1, 0, "op", 0, 20),
            span(1, 2, 1, "a", 0, 10),
            span(1, 3, 1, "b", 8, 20),
        ]);
        let cp = trees[0].critical_path();
        assert_eq!(
            cp,
            vec![("a".into(), 8), ("b".into(), 12), ("op".into(), 0)]
        );
    }

    #[test]
    fn orphaned_span_attaches_under_root() {
        // Parent id 99 never surfaced; the orphan still counts.
        let trees = build_traces(vec![
            span(1, 1, 0, "op", 0, 100),
            span(1, 2, 99, "lost", 20, 60),
        ]);
        let cp = trees[0].critical_path();
        assert_eq!(cp, vec![("lost".into(), 40), ("op".into(), 60)]);
        let total: u64 = cp.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn rootless_trace_promotes_earliest_span() {
        let trees = build_traces(vec![
            span(7, 3, 99, "late", 50, 60),
            span(7, 2, 99, "early", 10, 90),
        ]);
        assert_eq!(trees[0].root_span().name, "early");
        assert_eq!(trees[0].spans().len(), 2);
    }

    #[test]
    fn children_clip_to_parent_bounds() {
        // Child overruns the root; attribution clips so sums reconcile.
        let trees = build_traces(vec![
            span(1, 1, 0, "op", 10, 50),
            span(1, 2, 1, "runaway", 0, 80),
        ]);
        let cp = trees[0].critical_path();
        assert_eq!(cp, vec![("op".into(), 0), ("runaway".into(), 40)]);
    }

    #[test]
    fn folded_stacks_are_sorted_and_aggregated() {
        let trees = build_traces(vec![
            span(1, 1, 0, "op", 0, 100),
            span(1, 2, 1, "a", 0, 30),
            span(2, 5, 0, "op", 200, 260),
            span(2, 6, 5, "a", 200, 210),
        ]);
        let folded = folded_stacks(&trees);
        assert_eq!(folded, "op 120\nop;a 40\n");
    }

    #[test]
    fn report_json_is_deterministic_and_grouped() {
        let spans = vec![
            span(1, 1, 0, "write", 0, 100),
            span(1, 2, 1, "mirror", 10, 90),
            span(2, 5, 0, "write", 200, 280),
            span(3, 7, 0, "read", 300, 310),
        ];
        let a = report_json(&build_traces(spans.clone()));
        let b = report_json(&build_traces(spans));
        assert_eq!(a, b);
        assert!(a.contains("\"op\": \"write\""));
        assert!(a.contains("\"traces\": 2"));
        assert!(a.contains("\"op\": \"read\""));
        // Shares are in basis points of the group total.
        assert!(a.contains("\"share_bps\""));
    }
}
