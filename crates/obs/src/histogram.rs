//! Lock-free log-linear histogram.
//!
//! Values (typically latencies in nanoseconds) are binned into buckets
//! whose width grows geometrically: each power-of-two octave is split
//! into 16 linear sub-buckets, so the relative error of any recorded
//! value is at most 1/16 (~6%). All state is atomic; recording is a
//! single `fetch_add` plus a `fetch_max`, safe from any thread without
//! locks. Histograms merge losslessly (bucket-wise addition), which the
//! property tests exercise for associativity/commutativity.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^4 = 16 linear bins per octave.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Octaves above the linear region: enough for u64::MAX.
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total buckets: one linear region of 2*SUBS values, then (OCTAVES-1)
/// log regions of SUBS buckets each.
const BUCKETS: usize = 2 * SUBS + (OCTAVES - 1) * SUBS;

/// Index of the bucket containing `v`.
fn bucket_index(v: u64) -> usize {
    if v < (2 * SUBS) as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS + 1 here
    let octave = (msb - SUB_BITS) as usize; // >= 1
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUBS - 1);
    SUBS + octave * SUBS + sub
}

/// Inclusive upper bound of bucket `i` (the value reported for
/// quantiles, guaranteeing estimates bound true sample quantiles from
/// above).
fn bucket_upper(i: usize) -> u64 {
    if i < 2 * SUBS {
        return i as u64;
    }
    let rel = i - SUBS;
    let octave = rel / SUBS; // >= 1
    let sub = rel % SUBS;
    let base = 1u64 << (octave + SUB_BITS as usize);
    let width = base >> SUB_BITS;
    // The top bucket's exclusive end is 2^64; wrapping yields u64::MAX.
    base.wrapping_add((sub as u64 + 1) * width).wrapping_sub(1)
}

/// Lock-free log-linear histogram of `u64` samples.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// New empty histogram.
    #[must_use]
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            v.into_boxed_slice().try_into().expect("bucket count");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a `Duration` as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Upper bound on the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// samples: the reported value is ≥ the true sample quantile and
    /// within one bucket width (≤ ~6% relative) above it. Returns 0 for
    /// an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic (1-based, ceil), e.g. q=0.5 of
        // n=10 is the 5th smallest sample.
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Adds all of `other`'s buckets into `self` (lossless; the merged
    /// histogram equals one built from the concatenated sample streams).
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Bucket-wise equality (used by merge property tests).
    #[must_use]
    pub fn same_distribution(&self, other: &Histogram) -> bool {
        self.count() == other.count()
            && self.sum() == other.sum()
            && self.max() == other.max()
            && self
                .buckets
                .iter()
                .zip(other.buckets.iter())
                .all(|(a, b)| a.load(Ordering::Relaxed) == b.load(Ordering::Relaxed))
    }

    /// `(p50, p95, p99, max)` convenience tuple.
    #[must_use]
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_and_order() {
        // Every value maps to a bucket whose bounds contain it, and
        // bucket uppers are non-decreasing.
        let mut prev = 0;
        for i in 0..BUCKETS {
            let u = bucket_upper(i);
            assert!(u >= prev, "bucket {i} upper {u} < {prev}");
            prev = u;
        }
        for v in [0u64, 1, 15, 16, 31, 32, 33, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_upper(i) >= v, "v={v} i={i}");
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "v={v} i={i}");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.count(), 32);
        assert_eq!(h.sum(), (0..32).sum::<u64>());
    }

    #[test]
    fn quantile_bounds_relative_error() {
        let h = Histogram::new();
        let mut samples: Vec<u64> = (0..1000u64).map(|i| i * i * 37 + 5).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let truth = samples[rank - 1];
            let est = h.quantile(q);
            assert!(est >= truth, "q={q} est={est} truth={truth}");
            assert!(
                est as f64 <= truth as f64 * (1.0 + 1.0 / SUBS as f64) + 1.0,
                "q={q} est={est} truth={truth}"
            );
        }
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.summary(), (0, 0, 0, 0));
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::new();
        h.record(12_345);
        // With one sample every quantile is that sample; the max clamp
        // makes the estimate exact despite ~6% bucket width.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 12_345, "q={q}");
        }
        assert_eq!(h.summary(), (12_345, 12_345, 12_345, 12_345));
    }

    #[test]
    fn saturating_max_bucket_holds_u64_max() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1);
        // The top bucket's wrapped upper bound is u64::MAX — quantiles
        // neither overflow nor under-report the extreme samples.
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.99), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        // Quantile below the extremes still resolves the small sample.
        assert_eq!(h.quantile(0.01), 1);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile(7.5), u64::MAX);
        assert_eq!(h.quantile(-1.0), 1);
    }

    #[test]
    fn merge_is_lossless() {
        let (a, b, c) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 99, 12_345, 1 << 40] {
            a.record(v);
            c.record(v);
        }
        for v in [7u64, 7, 1 << 30] {
            b.record(v);
            c.record(v);
        }
        a.merge_from(&b);
        assert!(a.same_distribution(&c));
    }
}
