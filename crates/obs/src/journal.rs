//! Bounded structured event journal.
//!
//! A ring buffer of the most recent events: what a production `koshad`
//! would write to its log, kept in memory so simulations and tests can
//! assert on causality ("a failover event was journaled before the
//! promotion"). Events carry the transport clock's timestamp (virtual
//! nanoseconds under `SimNetwork`, so output is deterministic), the node
//! the event happened on, a free-form kind, an op-id correlating events
//! of one logical operation across layers, and a human-readable detail.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One journaled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (1-based, gap-free per journal).
    pub seq: u64,
    /// Timestamp in nanoseconds on the caller's clock.
    pub t_nanos: u64,
    /// Node the event happened on (transport address).
    pub node: u64,
    /// Event kind, e.g. `"failover"`, `"promotion"`, `"leaf_repair"`.
    pub kind: &'static str,
    /// Operation id correlating events across layers (0 = none).
    pub op_id: u64,
    /// Trace active when the event was recorded (0 = none): stamped
    /// automatically from the thread's ambient [`crate::trace`] context
    /// so journal lines correlate with collected span trees.
    pub trace_id: u64,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>12}ns] n{} #{} {}: {}",
            self.t_nanos, self.node, self.op_id, self.kind, self.detail
        )?;
        if self.trace_id != 0 {
            write!(f, " trace={:#x}", self.trace_id)?;
        }
        Ok(())
    }
}

/// Bounded ring of recent [`Event`]s.
#[derive(Debug)]
pub struct Journal {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl Journal {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// New journal retaining the last `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Journal {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(
        &self,
        t_nanos: u64,
        node: u64,
        kind: &'static str,
        op_id: u64,
        detail: impl Into<String>,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let ev = Event {
            seq,
            t_nanos,
            node,
            kind,
            op_id,
            trace_id: crate::trace::current().map_or(0, |c| c.trace_id),
            detail: detail.into(),
        };
        let mut ring = self.ring.lock().expect("journal lock");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().expect("journal lock").len()
    }

    /// True if no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted due to capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The most recent `n` events, oldest first.
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let ring = self.ring.lock().expect("journal lock");
        ring.iter().rev().take(n).rev().cloned().collect()
    }

    /// All retained events of the given kind, oldest first.
    #[must_use]
    pub fn of_kind(&self, kind: &str) -> Vec<Event> {
        let ring = self.ring.lock().expect("journal lock");
        ring.iter().filter(|e| e.kind == kind).cloned().collect()
    }

    /// Renders the last `n` events, one per line (deterministic given a
    /// deterministic clock).
    #[must_use]
    pub fn render_recent(&self, n: usize) -> String {
        self.recent(n).iter().map(|e| format!("{e}\n")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let j = Journal::new(3);
        for i in 0..5u64 {
            j.record(i * 10, 1, "tick", i, format!("event {i}"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let recent = j.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 3);
        assert_eq!(recent[2].seq, 5);
    }

    #[test]
    fn events_link_to_the_active_trace() {
        let j = Journal::new(4);
        j.record(1, 1, "plain", 0, "outside any trace");
        let ctx = crate::trace::SpanContext {
            trace_id: 0xAB,
            span_id: 0xAB,
        };
        crate::trace::with_context(Some(ctx), || {
            j.record(2, 1, "linked", 0, "inside a trace");
        });
        let events = j.recent(4);
        assert_eq!(events[0].trace_id, 0);
        assert_eq!(events[1].trace_id, 0xAB);
        assert!(events[1].to_string().contains("trace=0xab"));
        assert!(!events[0].to_string().contains("trace="));
    }

    #[test]
    fn of_kind_after_wraparound_sees_only_retained_events() {
        let j = Journal::new(4);
        for i in 0..10u64 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            j.record(i, 1, kind, i, format!("e{i}"));
        }
        // Capacity 4 → only i = 6..=9 survive the wrap.
        assert_eq!(j.dropped(), 6);
        let even = j.of_kind("even");
        assert_eq!(even.len(), 2);
        assert_eq!(even[0].t_nanos, 6);
        assert_eq!(even[1].t_nanos, 8);
        let odd: Vec<u64> = j.of_kind("odd").iter().map(|e| e.seq).collect();
        assert_eq!(odd, vec![8, 10]);
        assert!(j.of_kind("gone").is_empty());
    }

    #[test]
    fn kind_filter_and_render() {
        let j = Journal::new(10);
        j.record(5, 2, "failover", 1, "n3 dead");
        j.record(9, 2, "promotion", 1, "replica -> primary");
        assert_eq!(j.of_kind("failover").len(), 1);
        let text = j.render_recent(10);
        assert!(text.contains("failover: n3 dead"));
        assert!(text.lines().count() == 2);
    }
}
