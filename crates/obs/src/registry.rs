//! Named-metric registry with Prometheus-style text exposition.
//!
//! Metric names follow Prometheus conventions: `snake_case` with a unit
//! suffix (`_total`, `_nanos`, `_bytes`), optionally followed by a
//! `{label="value",...}` set baked into the name (the registry treats the
//! full string as the key; [`Registry::render`] splits base name and
//! labels when emitting `# TYPE` headers). Handles returned by
//! [`Registry::counter`] / [`gauge`](Registry::gauge) /
//! [`histogram`](Registry::histogram) are cheap `Arc`s — fetch once, bump
//! forever, no lock on the hot path.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named counters, gauges, and histograms. Lookup/creation takes a lock;
/// returned handles do not.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    /// New empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Gets or creates the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Gets or creates the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Attaches help text to a base metric name, emitted as a `# HELP`
    /// line by [`Registry::render`] (with exposition-format escaping).
    pub fn describe(&self, base: &str, help: &str) {
        self.help
            .lock()
            .expect("registry help lock")
            .insert(base.to_string(), help.to_string());
    }

    /// Removes the metric named `name`, returning whether it existed.
    ///
    /// Existing handles keep working (they are plain `Arc`s) but the
    /// metric no longer appears in exposition — the hook for pruning
    /// per-peer label sets when a peer permanently departs, so the
    /// registry does not grow without bound under churn.
    pub fn remove(&self, name: &str) -> bool {
        self.metrics
            .lock()
            .expect("registry lock")
            .remove(name)
            .is_some()
    }

    /// Names of all registered metrics, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .lock()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Prometheus-style text exposition. Deterministic: metrics are
    /// emitted in sorted name order; histograms render as summaries
    /// (`{quantile="..."}` samples plus `_sum`/`_count`/`_max`).
    #[must_use]
    pub fn render(&self) -> String {
        let snapshot: Vec<(String, Metric)> = {
            let m = self.metrics.lock().expect("registry lock");
            m.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, metric) in snapshot {
            let (base, labels) = split_labels(&name);
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "summary",
            };
            if base != last_base {
                if let Some(help) = self.help.lock().expect("registry help lock").get(base) {
                    out.push_str(&format!("# HELP {base} {}\n", escape_help(help)));
                }
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => {
                    let (p50, p95, p99, max) = h.summary();
                    for (q, v) in [("0.5", p50), ("0.95", p95), ("0.99", p99)] {
                        out.push_str(&format!(
                            "{base}{} {v}\n",
                            with_label(labels, "quantile", q)
                        ));
                    }
                    out.push_str(&format!("{base}_sum{labels} {}\n", h.sum()));
                    out.push_str(&format!("{base}_count{labels} {}\n", h.count()));
                    out.push_str(&format!("{base}_max{labels} {max}\n"));
                }
            }
        }
        out
    }

    /// Compact single-line-per-metric JSON dump (sorted keys) for bench
    /// artifacts. Histograms emit `{count, sum, max, p50, p95, p99}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let snapshot: Vec<(String, Metric)> = {
            let m = self.metrics.lock().expect("registry lock");
            m.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut out = String::from("{");
        for (i, (name, metric)) in snapshot.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n  \"{}\": ", escape_json(name)));
            match metric {
                Metric::Counter(c) => out.push_str(&c.get().to_string()),
                Metric::Gauge(g) => out.push_str(&g.get().to_string()),
                Metric::Histogram(h) => {
                    let (p50, p95, p99, max) = h.summary();
                    out.push_str(&format!(
                        "{{\"count\": {}, \"sum\": {}, \"max\": {max}, \
                         \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}",
                        h.count(),
                        h.sum(),
                    ));
                }
            }
        }
        out.push_str("\n}");
        out
    }
}

/// Splits `name{l="v"}` into (`name`, `{l="v"}`); no labels → empty set.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Inserts `key="value"` into an existing (possibly empty) label set.
fn with_label(labels: &str, key: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        format!("{{{},{key}=\"{value}\"}}", &labels[1..labels.len() - 1])
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double-quote, and line-feed become `\\`, `\"`, `\n`.
#[must_use]
pub fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes `# HELP` text per the exposition format: backslash and
/// line-feed become `\\` and `\n` (quotes are legal in help text).
#[must_use]
pub fn escape_help(h: &str) -> String {
    h.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Undoes [`escape_label_value`] (for tests and scrape-side parsing).
#[must_use]
pub fn unescape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Builds a full metric key `base{k="v",...}` with label values escaped
/// per the exposition format. Callers with untrusted label values (file
/// paths, peer names) must use this instead of hand-formatting.
#[must_use]
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::from(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
        .replace('\t', "\\t")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("ops_total");
        let b = r.counter("ops_total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("ops_total").get(), 3);
    }

    #[test]
    fn render_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("b_total").add(2);
        r.gauge("a_now").set(-5);
        r.histogram("lat_nanos").record(100);
        let text = r.render();
        let a = text.find("a_now").unwrap();
        let b = text.find("b_total").unwrap();
        let l = text.find("lat_nanos").unwrap();
        assert!(a < b && b < l, "{text}");
        assert!(text.contains("# TYPE a_now gauge"));
        assert!(text.contains("# TYPE b_total counter"));
        assert!(text.contains("# TYPE lat_nanos summary"));
        assert!(text.contains("lat_nanos{quantile=\"0.5\"}"));
        assert!(text.contains("lat_nanos_count 1"));
    }

    #[test]
    fn labeled_histograms_merge_label_sets() {
        let r = Registry::new();
        r.histogram("rpc_nanos{service=\"nfs\"}").record(7);
        let text = r.render();
        assert!(
            text.contains("rpc_nanos{service=\"nfs\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("rpc_nanos_count{service=\"nfs\"} 1"));
    }

    #[test]
    fn hostile_label_values_round_trip_through_exposition() {
        let hostile = "pa\\th\"with\nnewline";
        let name = labeled("kosha_heat", &[("path", hostile)]);
        let r = Registry::new();
        r.counter(&name).add(7);
        let text = r.render();
        // The rendered sample line carries the escaped value and stays on
        // one physical line (no raw newline leaks into the exposition).
        let sample = text
            .lines()
            .find(|l| l.starts_with("kosha_heat{"))
            .expect("sample line");
        assert!(sample.contains("pa\\\\th\\\"with\\nnewline"), "{sample}");
        assert_eq!(sample.matches('\n').count(), 0);
        // Round trip: extracting and unescaping recovers the raw value.
        let start = sample.find("path=\"").unwrap() + 6;
        let end = sample.rfind("\"}").unwrap();
        assert_eq!(unescape_label_value(&sample[start..end]), hostile);
        // JSON stays parseable too: the key re-escapes onto one line.
        let json = r.to_json();
        let key_line = json
            .lines()
            .find(|l| l.contains("kosha_heat"))
            .expect("json key");
        assert!(key_line.trim_end().ends_with(": 7"), "{json}");
    }

    #[test]
    fn help_text_is_emitted_and_escaped() {
        let r = Registry::new();
        r.counter("x_total").inc();
        r.describe("x_total", "line one\nline two \\ backslash");
        let text = r.render();
        assert!(
            text.contains("# HELP x_total line one\\nline two \\\\ backslash"),
            "{text}"
        );
        let help_pos = text.find("# HELP x_total").unwrap();
        let type_pos = text.find("# TYPE x_total").unwrap();
        assert!(help_pos < type_pos);
    }

    #[test]
    fn labeled_builds_plain_and_multi_label_names() {
        assert_eq!(labeled("m", &[]), "m");
        assert_eq!(
            labeled("m", &[("a", "1"), ("b", "x\"y")]),
            "m{a=\"1\",b=\"x\\\"y\"}"
        );
    }

    #[test]
    fn json_dump_is_stable() {
        let r = Registry::new();
        r.counter("z_total").inc();
        r.gauge("m_now").set(4);
        let j1 = r.to_json();
        let j2 = r.to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"m_now\": 4"));
        assert!(j1.contains("\"z_total\": 1"));
        assert!(j1.find("m_now").unwrap() < j1.find("z_total").unwrap());
    }
}
