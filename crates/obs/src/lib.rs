//! Observability for the Kosha reproduction.
//!
//! The paper evaluates Kosha purely by external wall-clock measurement
//! (Modified Andrew Benchmark, §5/§6); the only internal visibility the
//! prototype had was printf. This crate gives every layer of the
//! reproduction the instrumentation-first tooling the DHT-storage
//! literature uses to attribute cost:
//!
//! * [`Histogram`] — a lock-free log-linear latency histogram (atomic
//!   buckets, ~6% relative error) with p50/p95/p99/max and lossless
//!   merge,
//! * [`Registry`] — named counters, gauges, and histograms with a
//!   Prometheus-style text exposition ([`Registry::render`]) and a
//!   compact JSON dump ([`Registry::to_json`]) for benches,
//! * [`Journal`] — a bounded ring buffer of structured events stamped
//!   with the transport clock ([`crate::journal::Event`]) and an op-id
//!   for causality, scoped per node,
//! * [`trace`] — Dapper-style causal tracing: per-node span buffers
//!   ([`Tracer`]) whose ids propagate through the RPC wire header, plus
//!   a collector/analyzer that reconstructs span trees and attributes
//!   critical-path time (parallel fan-out charged as `max`, not sum).
//!
//! The crate has zero dependencies (it sits *below* `kosha-rpc` in the
//! dependency graph, so every layer can use it). Time is plain `u64`
//! nanoseconds; callers stamp events from whatever clock their transport
//! uses (`SimTime` under `SimNetwork`, monotonic wall time under
//! `ThreadedNetwork`), keeping output deterministic in simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod journal;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use histogram::Histogram;
pub use journal::{Event, Journal};
pub use recorder::{HeatEntry, ReadHeat, Recorder, Series};
pub use registry::{Counter, Gauge, Registry};
pub use trace::{SpanContext, SpanRecord, Tracer};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One observability domain: a metrics registry plus an event journal
/// sharing an op-id sequence. Layers within one node (or one transport)
/// share a single `Obs` so their metrics and events correlate.
#[derive(Debug)]
pub struct Obs {
    /// Named metrics.
    pub registry: Registry,
    /// Structured event ring.
    pub journal: Journal,
    /// Causal-trace span buffer (see [`trace`]).
    pub tracer: Tracer,
    /// Flight-recorder time-series store (see [`recorder`]).
    pub recorder: Recorder,
    next_op: AtomicU64,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::with_journal_capacity(Journal::DEFAULT_CAPACITY)
    }
}

impl Obs {
    /// New domain with the default journal capacity.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Obs::default())
    }

    /// New domain whose journal keeps the last `capacity` events.
    #[must_use]
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Obs {
            registry: Registry::new(),
            journal: Journal::new(capacity),
            tracer: Tracer::default(),
            recorder: Recorder::default(),
            next_op: AtomicU64::new(1),
        }
    }

    /// Allocates the next operation id (used to correlate journal events
    /// belonging to one logical operation across layers).
    pub fn next_op_id(&self) -> u64 {
        self.next_op.fetch_add(1, Ordering::Relaxed)
    }

    /// Self-observability: publishes this domain's own telemetry-loss
    /// counters as registry gauges, so silent drops (journal ring full,
    /// tracer buffer full, recorder series budget exhausted) are visible
    /// through the same exposition as everything else. Called on each
    /// sampler tick; cheap (four atomic loads, four atomic stores).
    pub fn export_self_gauges(&self) {
        self.registry
            .gauge("kosha_obs_journal_dropped_total")
            .set(self.journal.dropped() as i64);
        self.registry
            .gauge("kosha_obs_trace_dropped_total")
            .set(self.tracer.dropped() as i64);
        self.registry
            .gauge("kosha_obs_recorder_dropped_total")
            .set(self.recorder.dropped() as i64);
        self.registry
            .gauge("kosha_obs_recorder_downsamples_total")
            .set(self.recorder.downsamples() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_ids_are_unique_and_monotonic() {
        let obs = Obs::new();
        let a = obs.next_op_id();
        let b = obs.next_op_id();
        assert!(b > a);
    }

    #[test]
    fn self_gauges_expose_telemetry_loss() {
        let obs = Obs::with_journal_capacity(2);
        obs.journal.record(0, 1, "k", 1, "a");
        obs.journal.record(1, 1, "k", 2, "b");
        obs.journal.record(2, 1, "k", 3, "c"); // ring full → one drop
        obs.export_self_gauges();
        assert_eq!(
            obs.registry.gauge("kosha_obs_journal_dropped_total").get(),
            1
        );
        assert_eq!(obs.registry.gauge("kosha_obs_trace_dropped_total").get(), 0);
        assert_eq!(
            obs.registry.gauge("kosha_obs_recorder_dropped_total").get(),
            0
        );
        assert_eq!(
            obs.registry
                .gauge("kosha_obs_recorder_downsamples_total")
                .get(),
            0
        );
    }

    #[test]
    fn recorder_ceiling_overflow_surfaces_in_self_gauges() {
        // Churn past the series ceiling must show up in the standard
        // exposition (`kosha_obs_recorder_dropped_total`), not vanish.
        let obs = Obs::default();
        for i in 0..recorder::DEFAULT_MAX_SERIES {
            obs.recorder.record(&format!("s{i:04}"), 1, 0);
        }
        obs.recorder.record("one-too-many", 2, 0);
        obs.recorder.record("two-too-many", 2, 0);
        obs.export_self_gauges();
        assert_eq!(
            obs.registry.gauge("kosha_obs_recorder_dropped_total").get(),
            2
        );
        assert_eq!(
            obs.recorder.series_count(),
            recorder::DEFAULT_MAX_SERIES,
            "ceiling held without eviction"
        );
    }

    #[test]
    fn registry_and_journal_share_a_domain() {
        let obs = Obs::new();
        obs.registry.counter("x_total").inc();
        let op = obs.next_op_id();
        obs.journal.record(0, 7, "test", op, "hello");
        assert_eq!(obs.registry.counter("x_total").get(), 1);
        assert_eq!(obs.journal.len(), 1);
    }
}
