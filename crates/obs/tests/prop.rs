//! Property tests for the observability primitives: histogram merge
//! algebra, quantile error bounds, and exposition stability.

use kosha_obs::{Histogram, Registry};
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..64)
}

proptest! {
    // merge(a, b) and merge(b, a) describe the same distribution: the
    // merged histogram equals one built from the concatenated streams,
    // in either order.
    #[test]
    fn merge_is_commutative(xs in arb_samples(), ys in arb_samples()) {
        let ab = hist_of(&xs);
        ab.merge_from(&hist_of(&ys));
        let ba = hist_of(&ys);
        ba.merge_from(&hist_of(&xs));
        prop_assert!(ab.same_distribution(&ba));
    }

    // (a + b) + c == a + (b + c).
    #[test]
    fn merge_is_associative(
        xs in arb_samples(),
        ys in arb_samples(),
        zs in arb_samples(),
    ) {
        let left = hist_of(&xs);
        left.merge_from(&hist_of(&ys));
        left.merge_from(&hist_of(&zs));

        let bc = hist_of(&ys);
        bc.merge_from(&hist_of(&zs));
        let right = hist_of(&xs);
        right.merge_from(&bc);

        prop_assert!(left.same_distribution(&right));
    }

    // Merging is lossless: the merge of two halves is indistinguishable
    // from recording every sample into one histogram.
    #[test]
    fn merge_is_lossless(xs in arb_samples(), ys in arb_samples()) {
        let merged = hist_of(&xs);
        merged.merge_from(&hist_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert!(merged.same_distribution(&hist_of(&all)));
    }

    // Quantile estimates bound the true sample quantile from above and
    // stay within one sub-bucket width (1/16 relative, +1 for the
    // integer boundary) of it.
    #[test]
    fn quantiles_bound_true_sample_quantiles(
        mut samples in proptest::collection::vec(any::<u64>(), 1..64),
        qs in proptest::collection::vec(0u32..=1000, 1..6),
    ) {
        let h = hist_of(&samples);
        samples.sort_unstable();
        for q in qs.into_iter().map(|m| f64::from(m) / 1000.0) {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let truth = samples[rank - 1];
            let est = h.quantile(q);
            prop_assert!(est >= truth, "q={} est={} truth={}", q, est, truth);
            prop_assert!(
                est as f64 <= truth as f64 * (1.0 + 1.0 / 16.0) + 1.0,
                "q={} est={} truth={}", q, est, truth
            );
        }
    }

    // count/sum/max always agree with the recorded stream.
    #[test]
    fn totals_match_the_stream(samples in arb_samples()) {
        let h = hist_of(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().fold(0u64, |a, &b| a.wrapping_add(b)));
        prop_assert_eq!(h.max(), samples.iter().copied().max().unwrap_or(0));
    }

    // The text exposition is deterministic (two renders agree) and every
    // sample line parses as `name[{labels}] <integer>`.
    #[test]
    fn exposition_is_stable_and_parseable(
        counters in proptest::collection::vec(("[a-z]{1,12}", any::<u32>()), 0..6),
        gauges in proptest::collection::vec(("[a-z]{1,12}", any::<i32>()), 0..6),
        hist_samples in arb_samples(),
    ) {
        let r = Registry::new();
        for (stem, v) in &counters {
            r.counter(&format!("{stem}_total")).add(u64::from(*v));
        }
        for (stem, v) in &gauges {
            r.gauge(&format!("{stem}_now")).set(i64::from(*v));
        }
        let h = r.histogram("lat_nanos{service=\"test\"}");
        for &s in &hist_samples {
            h.record(s);
        }

        let text = r.render();
        prop_assert_eq!(&text, &r.render(), "render is not deterministic");
        prop_assert_eq!(&r.to_json(), &r.to_json(), "to_json is not deterministic");

        for line in text.lines() {
            if line.starts_with('#') {
                let mut parts = line.split_whitespace();
                prop_assert_eq!(parts.next(), Some("#"));
                prop_assert_eq!(parts.next(), Some("TYPE"));
                prop_assert!(parts.next().is_some(), "TYPE line missing name: {}", line);
                let kind = parts.next();
                prop_assert!(
                    matches!(kind, Some("counter" | "gauge" | "summary")),
                    "bad kind in {}", line
                );
                continue;
            }
            // Sample line: name (with optional {labels}) SPACE value.
            let split = line.rsplit_once(' ');
            prop_assert!(split.is_some(), "unsplittable line: {}", line);
            let (name, value) = split.unwrap();
            prop_assert!(!name.is_empty(), "empty metric name: {}", line);
            prop_assert!(
                value.parse::<i64>().is_ok() || value.parse::<u64>().is_ok(),
                "non-integer value {} in {}", value, line
            );
            if let Some(i) = name.find('{') {
                prop_assert!(name.ends_with('}'), "unterminated labels: {}", line);
                prop_assert!(i > 0, "label-only name: {}", line);
            }
        }

        // Registered names all surface in the exposition.
        for name in r.names() {
            let base = name.split('{').next().unwrap();
            prop_assert!(text.contains(base), "{} missing from exposition", base);
        }
    }
}
