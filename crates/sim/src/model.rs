//! The analytical overhead model of Section 6.1.2.
//!
//! The paper derives the average per-operation overhead of Kosha over
//! NFS as
//!
//! ```text
//! D = I + (H · hc) · (N − 1)/N
//! ```
//!
//! where `I` is the constant interposition cost, `H = ⌈log_{2^b} N⌉` the
//! overlay hop count, `hc` the per-hop latency, and `(N−1)/N` the
//! fraction of files served from remote nodes. The paper evaluates it at
//! N = 10⁴, H ≤ 4, hc < 1 ms to argue D stays under "4 ms plus a
//! constant factor".

use std::time::Duration;

/// Model inputs.
#[derive(Debug, Clone)]
pub struct OverheadModel {
    /// Constant interposition cost `I`.
    pub interposition: Duration,
    /// Per-hop latency `hc`.
    pub hop_latency: Duration,
    /// Pastry digit bits `b` (hop count base is `2^b`).
    pub digit_bits: u32,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            interposition: Duration::from_micros(350),
            hop_latency: Duration::from_micros(500),
            digit_bits: 4,
        }
    }
}

impl OverheadModel {
    /// Expected overlay hops for an `n`-node network: `⌈log_{2^b} n⌉`,
    /// minimum 1 for n > 1.
    #[must_use]
    pub fn hops(&self, n: u64) -> u32 {
        if n <= 1 {
            return 0;
        }
        let base = f64::from(1u32 << self.digit_bits);
        (n as f64).log(base).ceil().max(1.0) as u32
    }

    /// The remote-file fraction `(N − 1)/N`.
    #[must_use]
    pub fn remote_fraction(&self, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            (n - 1) as f64 / n as f64
        }
    }

    /// The modeled average overhead `D(N)`.
    #[must_use]
    pub fn overhead(&self, n: u64) -> Duration {
        let network =
            self.hop_latency.as_secs_f64() * f64::from(self.hops(n)) * self.remote_fraction(n);
        self.interposition + Duration::from_secs_f64(network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_counts_match_paper() {
        let m = OverheadModel::default();
        assert_eq!(m.hops(1), 0);
        assert_eq!(m.hops(8), 1);
        assert_eq!(m.hops(16), 1);
        assert_eq!(m.hops(256), 2);
        // Paper: "For a typical network of 10,000 nodes, the maximum
        // value of H is 4."
        assert!(m.hops(10_000) <= 4);
    }

    #[test]
    fn overhead_is_bounded_at_scale() {
        let m = OverheadModel {
            hop_latency: Duration::from_millis(1), // "hc is under 1ms"
            ..Default::default()
        };
        let d = m.overhead(10_000);
        // "the overhead D does not exceed 4ms plus a constant factor."
        assert!(d <= Duration::from_millis(4) + m.interposition);
    }

    #[test]
    fn overhead_monotone_then_saturates() {
        let m = OverheadModel::default();
        let d1 = m.overhead(1);
        let d8 = m.overhead(8);
        let d16 = m.overhead(16);
        assert!(d8 > d1);
        assert!(d16 >= d8);
        // Remote fraction saturates: 8→16 nodes adds only ~6.25%.
        let grow_small = m.remote_fraction(8) - m.remote_fraction(1);
        let grow_large = m.remote_fraction(16) - m.remote_fraction(8);
        assert!(grow_small > 10.0 * grow_large);
    }
}
