//! Full-stack simulated Kosha cluster: N machines running koshad on a
//! modeled 100 Mb/s switched LAN — the substitute for the paper's
//! FreeBSD testbed (Section 6.1).

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_rpc::{LatencyModel, Network, NodeAddr, SimNetwork, VirtualClock};
use std::sync::Arc;

/// Parameters of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Number of Kosha nodes.
    pub nodes: usize,
    /// Kosha deployment configuration (distribution level, replicas, …).
    pub kosha: KoshaConfig,
    /// Network cost model.
    pub latency: LatencyModel,
    /// Seed namespace so different experiments get different node ids.
    pub seed: u64,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            nodes: 8,
            kosha: KoshaConfig::default(),
            latency: LatencyModel::default(),
            seed: 0,
        }
    }
}

/// A running cluster plus its transport and virtual clock.
pub struct SimCluster {
    /// The transport.
    pub net: Arc<SimNetwork>,
    /// All nodes, in join order.
    pub nodes: Vec<Arc<KoshaNode>>,
}

impl SimCluster {
    /// Boots `params.nodes` machines, joining them one at a time through
    /// the first.
    #[must_use]
    pub fn build(params: &ClusterParams) -> Self {
        let net = SimNetwork::new(params.latency.clone());
        let mut nodes = Vec::with_capacity(params.nodes);
        for i in 0..params.nodes {
            let id = node_id_from_seed(&format!("cluster{}-host-{i}", params.seed));
            let (node, mux) = KoshaNode::build(
                params.kosha.clone(),
                id,
                NodeAddr(i as u64),
                net.clone() as Arc<dyn Network>,
            );
            net.attach(node.addr(), mux);
            node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
                .expect("join overlay");
            nodes.push(node);
        }
        SimCluster { net, nodes }
    }

    /// Mounts `/kosha` through node `idx`'s koshad.
    pub fn mount(&self, idx: usize) -> KoshaMount {
        KoshaMount::new(
            self.net.clone() as Arc<dyn Network>,
            self.nodes[idx].addr(),
            self.nodes[idx].addr(),
        )
        .expect("mount kosha")
    }

    /// The shared virtual clock.
    #[must_use]
    pub fn clock(&self) -> Arc<VirtualClock> {
        self.net.virtual_clock()
    }

    /// Runs the cluster's event loop for `d` of virtual time: every
    /// registered pump (write-behind flushers, samplers) fires as a
    /// recurring scheduler timer at its own interval, in deterministic
    /// `(deadline, seq)` order, and the clock lands exactly `d` later.
    /// The event-driven counterpart of calling
    /// [`SimNetwork::run_pumps`] in a manual loop.
    pub fn run_for(&self, d: std::time::Duration) {
        self.net.run_for(d);
    }
}

impl Drop for SimCluster {
    /// Breaks the `SimNetwork → ServiceMux → services → KoshaNode → net`
    /// reference cycle so dropped clusters actually free their memory.
    /// Long-lived deployments never notice the cycle; benchmark loops
    /// that build thousands of clusters would otherwise leak each one.
    fn drop(&mut self) {
        for node in &self.nodes {
            self.net.detach(node.addr());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosha_rpc::Clock;

    #[test]
    fn cluster_boots_and_serves() {
        let p = ClusterParams {
            nodes: 4,
            kosha: KoshaConfig::for_tests(),
            latency: LatencyModel::zero(),
            ..Default::default()
        };
        let c = SimCluster::build(&p);
        let m = c.mount(0);
        m.mkdir_p("/boot").unwrap();
        m.write_file("/boot/ok", b"1").unwrap();
        assert_eq!(c.mount(3).read_file("/boot/ok").unwrap(), b"1");
    }

    #[test]
    fn latency_model_advances_clock() {
        let p = ClusterParams {
            nodes: 2,
            kosha: KoshaConfig::for_tests(),
            ..Default::default()
        };
        let c = SimCluster::build(&p);
        let before = c.clock().now();
        let m = c.mount(0);
        m.mkdir_p("/t").unwrap();
        m.write_file("/t/f", &[0u8; 100_000]).unwrap();
        assert!(c.clock().now() > before, "virtual time did not advance");
    }
}
