//! A `/kosha` mount that behaves like a *caching* kernel NFS client.
//!
//! [`crate::cluster::SimCluster::mount`] models a cache-less client so
//! every operation's cost is visible (the Table 1/2 configuration).
//! `CachedKoshaMount` layers [`kosha_nfs::CachingClient`] in front of the
//! koshad loopback server instead, demonstrating the paper's §4.1.1
//! claim that Kosha behaves identically under client caching — and
//! showing, in `ablation_client_cache`, how much of the measured
//! overhead a real deployment's caches would absorb.

use crate::workbench::Workbench;
use kosha_nfs::{CacheConfig, CachingClient, Fh, NfsClient, NfsError, NfsResult, NfsStatus};
use kosha_rpc::{Network, NodeAddr, ServiceId};
use kosha_vfs::path::{parent_and_name, split_path};
use kosha_vfs::{normalize, Attr, FileType, SetAttr};
use std::sync::Arc;

/// A caching client of one node's koshad virtual file system.
pub struct CachedKoshaMount {
    cc: CachingClient,
    root: Fh,
}

impl CachedKoshaMount {
    /// Mounts through `koshad` with the given cache configuration.
    pub fn new(
        net: Arc<dyn Network>,
        client_addr: NodeAddr,
        koshad: NodeAddr,
        cache: CacheConfig,
    ) -> NfsResult<Self> {
        let clock = net.clock();
        let inner = NfsClient::with_service(net, client_addr, ServiceId::KoshaFs);
        let cc = CachingClient::new(inner, koshad, clock, cache);
        let root = cc.mount()?;
        Ok(CachedKoshaMount { cc, root })
    }

    /// The underlying caching client (stats inspection).
    #[must_use]
    pub fn cache(&self) -> &CachingClient {
        &self.cc
    }

    fn resolve_dir(&self, path: &str) -> NfsResult<Fh> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let mut cur = self.root;
        for c in split_path(&path).map_err(|e| NfsError::Status(e.into()))? {
            let (fh, attr) = self.cc.lookup(cur, c)?;
            if attr.ftype != FileType::Directory {
                return Err(NfsError::Status(NfsStatus::NotDir));
            }
            cur = fh;
        }
        Ok(cur)
    }

    fn resolve_entry(&self, path: &str) -> NfsResult<(Fh, String, Fh, Attr)> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.resolve_dir(pp)?;
        let (fh, attr) = self.cc.lookup(dir, name)?;
        Ok((dir, name.to_string(), fh, attr))
    }
}

impl Workbench for CachedKoshaMount {
    fn mkdir_p(&self, path: &str) -> NfsResult<()> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let mut cur = self.root;
        for c in split_path(&path).map_err(|e| NfsError::Status(e.into()))? {
            cur = match self.cc.lookup(cur, c) {
                Ok((fh, attr)) => {
                    if attr.ftype != FileType::Directory {
                        return Err(NfsError::Status(NfsStatus::NotDir));
                    }
                    fh
                }
                Err(NfsError::Status(NfsStatus::NoEnt)) => self.cc.mkdir(cur, c, 0o755, 0, 0)?.0,
                Err(e) => return Err(e),
            };
        }
        Ok(())
    }

    fn write_file(&self, path: &str, data: &[u8]) -> NfsResult<()> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.resolve_dir(pp)?;
        let fh = match self.cc.create(dir, name, 0o644, 0, 0) {
            Ok((fh, _)) => fh,
            Err(NfsError::Status(NfsStatus::Exist)) => {
                let (fh, attr) = self.cc.lookup(dir, name)?;
                if attr.size > 0 {
                    self.cc.setattr(
                        fh,
                        SetAttr {
                            size: Some(0),
                            ..Default::default()
                        },
                    )?;
                }
                fh
            }
            Err(e) => return Err(e),
        };
        let mut off = 0usize;
        while off < data.len() {
            let end = (off + 32 * 1024).min(data.len());
            self.cc.write(fh, off as u64, &data[off..end])?;
            off = end;
        }
        Ok(())
    }

    fn read_file(&self, path: &str) -> NfsResult<Vec<u8>> {
        let (_, _, fh, _) = self.resolve_entry(path)?;
        self.cc.read_file(fh)
    }

    fn stat(&self, path: &str) -> NfsResult<Attr> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        if path == "/" {
            return self.cc.getattr(self.root);
        }
        let (_, _, _, attr) = self.resolve_entry(&path)?;
        Ok(attr)
    }

    fn readdir(&self, path: &str) -> NfsResult<Vec<(String, FileType)>> {
        let dir = self.resolve_dir(path)?;
        Ok(self
            .cc
            .readdir(dir)?
            .into_iter()
            .map(|e| (e.name, e.ftype))
            .collect())
    }

    fn remove(&self, path: &str) -> NfsResult<()> {
        let (dir, name, _, _) = self.resolve_entry(path)?;
        self.cc.remove(dir, &name)
    }

    fn rmdir(&self, path: &str) -> NfsResult<()> {
        let (dir, name, _, _) = self.resolve_entry(path)?;
        self.cc.rmdir(dir, &name)
    }

    fn rename(&self, from: &str, to: &str) -> NfsResult<()> {
        let from = normalize(from).map_err(|e| NfsError::Status(e.into()))?;
        let to = normalize(to).map_err(|e| NfsError::Status(e.into()))?;
        let (fp, fname) = parent_and_name(&from).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let (tp, tname) = parent_and_name(&to).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let sdir = self.resolve_dir(fp)?;
        let ddir = self.resolve_dir(tp)?;
        self.cc.rename(sdir, fname, ddir, tname)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterParams, SimCluster};
    use crate::experiments::{mab_lan, table1_kosha_config};
    use crate::mab::{run_mab, MabParams};
    use kosha::KoshaConfig;
    use kosha_rpc::LatencyModel;

    fn cached_mount(c: &SimCluster, idx: usize) -> CachedKoshaMount {
        CachedKoshaMount::new(
            c.net.clone() as Arc<dyn Network>,
            c.nodes[idx].addr(),
            c.nodes[idx].addr(),
            CacheConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn cached_mount_round_trips() {
        let c = SimCluster::build(&ClusterParams {
            nodes: 4,
            kosha: KoshaConfig::for_tests(),
            latency: LatencyModel::zero(),
            seed: 31,
        });
        let m = cached_mount(&c, 0);
        m.mkdir_p("/cachetest/sub").unwrap();
        m.write_file("/cachetest/sub/f", b"cached bytes").unwrap();
        assert_eq!(m.read_file("/cachetest/sub/f").unwrap(), b"cached bytes");
        assert_eq!(m.read_file("/cachetest/sub/f").unwrap(), b"cached bytes");
        let (_, _, _, _, data_hits, _) = m.cache().stats().snapshot();
        assert!(data_hits >= 1, "repeat read missed the cache");
        assert_eq!(m.stat("/cachetest/sub/f").unwrap().size, 12);
        m.remove("/cachetest/sub/f").unwrap();
        assert!(m.read_file("/cachetest/sub/f").is_err());
    }

    #[test]
    fn client_caching_cuts_mab_time() {
        // §4.1.1: Kosha behaves the same under client caching — and the
        // caches absorb a large share of the interposition cost.
        let params = MabParams::small();
        let uncached = {
            let c = SimCluster::build(&ClusterParams {
                nodes: 4,
                kosha: table1_kosha_config(),
                latency: mab_lan(),
                seed: 32,
            });
            let m = c.mount(0);
            let clock = c.clock();
            clock.reset();
            run_mab(&params, &m, &clock).unwrap().total()
        };
        let cached = {
            let c = SimCluster::build(&ClusterParams {
                nodes: 4,
                kosha: table1_kosha_config(),
                latency: mab_lan(),
                seed: 32,
            });
            let m = cached_mount(&c, 0);
            let clock = c.clock();
            clock.reset();
            run_mab(&params, &m, &clock).unwrap().total()
        };
        assert!(
            cached < uncached,
            "caching did not help: {cached:?} !< {uncached:?}"
        );
    }
}
