//! Synthetic file-system trace generator.
//!
//! Substitute for the departmental trace the paper collected from
//! Purdue's central NFS server: "221K files of 130 users, for a total of
//! 17.9 GB of data" (Section 6.2). The generator reproduces those
//! aggregates with realistic shape: per-user home trees, skewed per-user
//! file counts (a few users own most files), directory trees up to a
//! configurable depth, and log-normally distributed file sizes. Output
//! is deterministic per seed, so every experiment run is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One file of the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFile {
    /// Absolute virtual path (`/u042/…/fNNN`).
    pub path: String,
    /// Size in bytes.
    pub size: u64,
    /// Owning user index.
    pub uid: u32,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct TraceParams {
    /// Number of users (paper: 130).
    pub users: usize,
    /// Total number of files (paper: 221 000).
    pub files: usize,
    /// Total bytes (paper: 17.9 GB).
    pub total_bytes: u64,
    /// Maximum directory depth below a user's home.
    pub max_depth: usize,
    /// Average files per directory.
    pub files_per_dir: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            users: 130,
            files: 221_000,
            total_bytes: 17_900_000_000,
            max_depth: 8,
            files_per_dir: 12,
            seed: 42,
        }
    }
}

impl TraceParams {
    /// Scales file count and volume by `f` (for fast tests/benches),
    /// keeping the per-file statistics intact.
    #[must_use]
    pub fn scaled(&self, f: f64) -> Self {
        TraceParams {
            // Users shrink more gently than files (sqrt) so scaled
            // traces keep name/tree diversity.
            users: ((self.users as f64 * f.sqrt()).ceil() as usize).max(2),
            files: ((self.files as f64 * f).ceil() as usize).max(10),
            total_bytes: (self.total_bytes as f64 * f) as u64,
            ..self.clone()
        }
    }
}

/// The generated trace: a directory tree plus sized files.
#[derive(Debug, Clone)]
pub struct FsTrace {
    /// Every directory path, parents before children.
    pub dirs: Vec<String>,
    /// Every file.
    pub files: Vec<TraceFile>,
}

impl FsTrace {
    /// Generates a trace for `params`.
    #[must_use]
    pub fn generate(params: &TraceParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);

        // Skewed per-user file counts: Zipf-ish weights.
        let weights: Vec<f64> = (0..params.users)
            .map(|i| 1.0 / ((i + 1) as f64).powf(0.8))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let mut per_user: Vec<usize> = weights
            .iter()
            .map(|w| ((w / wsum) * params.files as f64).round() as usize)
            .collect();
        // Adjust rounding drift onto the heaviest user.
        let assigned: usize = per_user.iter().sum();
        if assigned < params.files {
            per_user[0] += params.files - assigned;
        } else {
            per_user[0] -= (assigned - params.files).min(per_user[0]);
        }

        // Log-normal sizes with sigma ~1.7 (long tail of big files);
        // calibrate mu for the target mean, then rescale exactly.
        let mean = params.total_bytes as f64 / params.files as f64;
        let sigma = 1.7f64;
        let mu = mean.ln() - sigma * sigma / 2.0;

        let mut dirs: Vec<String> = Vec::new();
        let mut files: Vec<TraceFile> = Vec::with_capacity(params.files);

        for (u, &count) in per_user.iter().enumerate() {
            let home = format!("/u{u:03}");
            dirs.push(home.clone());
            // Build this user's directory list: a random tree under home.
            let ndirs = (count / params.files_per_dir).max(1);
            let mut user_dirs: Vec<String> = vec![home.clone()];
            for _d in 1..ndirs {
                // Attach under a random existing dir, respecting depth.
                let parent = loop {
                    let cand = &user_dirs[rng.random_range(0..user_dirs.len())];
                    if cand.matches('/').count() < params.max_depth {
                        break cand.clone();
                    }
                };
                // Mostly-unique directory names with a sprinkling of
                // common ones (src/doc/bin), like real home directories.
                // Uniform `dN` names would make every user's `d1` hash to
                // one node — a collision artifact real traces don't have.
                let name = match rng.random_range(0..24u32) {
                    0 => "src".to_string(),
                    1 => "doc".to_string(),
                    2 => "bin".to_string(),
                    _ => format!("d{:x}", rng.random::<u32>()),
                };
                let dir = format!("{parent}/{name}");
                user_dirs.push(dir.clone());
                dirs.push(dir);
            }
            for i in 0..count {
                let dir = &user_dirs[rng.random_range(0..user_dirs.len())];
                let z = sample_standard_normal(&mut rng);
                let size = (mu + sigma * z).exp().max(1.0);
                files.push(TraceFile {
                    path: format!("{dir}/f{i}"),
                    size: size as u64,
                    uid: u as u32,
                });
            }
        }

        // Exact-total rescale.
        let raw_total: u64 = files.iter().map(|f| f.size).sum();
        if raw_total > 0 {
            let ratio = params.total_bytes as f64 / raw_total as f64;
            for f in &mut files {
                f.size = ((f.size as f64 * ratio) as u64).max(1);
            }
        }
        FsTrace { dirs, files }
    }

    /// Total bytes of the trace.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }
}

/// Standard normal via Box–Muller (rand_distr is not in the offline
/// dependency set).
pub fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_match_params() {
        let p = TraceParams::default().scaled(0.01); // ~2210 files
        let t = FsTrace::generate(&p);
        assert_eq!(t.files.len(), p.files);
        let total = t.total_bytes();
        let target = p.total_bytes;
        let err = (total as f64 - target as f64).abs() / target as f64;
        assert!(err < 0.02, "total {total} vs target {target}");
        // Every user appears.
        let users: std::collections::HashSet<u32> = t.files.iter().map(|f| f.uid).collect();
        assert_eq!(users.len(), p.users);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = TraceParams::default().scaled(0.005);
        let a = FsTrace::generate(&p);
        let b = FsTrace::generate(&p);
        assert_eq!(a.files, b.files);
        let mut p2 = p.clone();
        p2.seed = 43;
        let c = FsTrace::generate(&p2);
        assert_ne!(a.files, c.files);
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let p = TraceParams::default().scaled(0.02);
        let t = FsTrace::generate(&p);
        let mut sizes: Vec<u64> = t.files.iter().map(|f| f.size).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let mean = t.total_bytes() / sizes.len() as u64;
        // Log-normal: mean well above median.
        assert!(
            mean > median * 2,
            "mean {mean} not >> median {median}; distribution not skewed"
        );
    }

    #[test]
    fn depth_respected_and_paths_valid() {
        let p = TraceParams::default().scaled(0.01);
        let t = FsTrace::generate(&p);
        for d in &t.dirs {
            assert!(d.matches('/').count() <= p.max_depth + 1, "{d} too deep");
            assert!(kosha_vfs::split_path(d).is_ok());
        }
        for f in t.files.iter().take(500) {
            assert!(kosha_vfs::split_path(&f.path).is_ok());
        }
    }
}
