//! The unmodified-NFS baseline: one client machine, one central NFS
//! server, connected by the same modeled LAN (the paper's "NFS
//! configuration consists of two nodes with one running as a client, and
//! the other running as a server", Section 6.1.1).

use crate::workbench::Workbench;
use kosha_nfs::{DiskModel, Fh, NfsClient, NfsError, NfsResult, NfsServer, NfsStatus};
use kosha_rpc::{LatencyModel, Network, NodeAddr, ServiceId, ServiceMux, SimNetwork, VirtualClock};
use kosha_vfs::path::parent_and_name;
use kosha_vfs::{normalize, split_path, Attr, FileType, Vfs};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Address of the central server in the baseline setup.
pub const SERVER: NodeAddr = NodeAddr(1);
/// Address of the client machine.
pub const CLIENT: NodeAddr = NodeAddr(2);

/// A plain NFS client/server pair over the simulated LAN.
pub struct NfsBaseline {
    net: Arc<SimNetwork>,
    nfs: NfsClient,
    root: Fh,
    // lint: allow(L008) run-scoped sim harness cache: one baseline run's namespace, dropped with the harness
    dcache: Mutex<HashMap<String, Fh>>,
    chunk: u32,
}

impl NfsBaseline {
    /// Boots the two-machine baseline with the given cost models.
    #[must_use]
    pub fn build(latency: LatencyModel, disk: DiskModel, capacity: u64) -> Self {
        let net = SimNetwork::new(latency);
        let server = NfsServer::new(Vfs::new(capacity), net.clock(), disk);
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Nfs, server);
        net.attach(SERVER, mux);
        // The client machine needs no services; it only issues calls.
        net.attach(CLIENT, Arc::new(ServiceMux::new()));
        let nfs = NfsClient::new(net.clone() as Arc<dyn Network>, CLIENT);
        let root = nfs.mount(SERVER).expect("mount baseline");
        NfsBaseline {
            net,
            nfs,
            root,
            dcache: Mutex::new(HashMap::new()),
            chunk: 32 * 1024,
        }
    }

    /// The shared virtual clock.
    #[must_use]
    pub fn clock(&self) -> Arc<VirtualClock> {
        self.net.virtual_clock()
    }

    fn dir_handle(&self, path: &str) -> NfsResult<Fh> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        if path == "/" {
            return Ok(self.root);
        }
        if let Some(&fh) = self.dcache.lock().get(&path) {
            return Ok(fh);
        }
        let comps = split_path(&path).map_err(|e| NfsError::Status(e.into()))?;
        let mut cur = self.root;
        let mut cur_path = String::new();
        for c in comps {
            cur_path.push('/');
            cur_path.push_str(c);
            // Copy the hit out before matching: a guard in the match
            // scrutinee lives through the arms, where the miss path
            // both calls the server and re-locks the cache to insert —
            // a self-deadlock on the first successful miss lookup.
            let cached = self.dcache.lock().get(&cur_path).copied();
            cur = match cached {
                Some(fh) => fh,
                None => {
                    let (fh, _) = self.nfs.lookup(SERVER, cur, c)?;
                    self.dcache.lock().insert(cur_path.clone(), fh);
                    fh
                }
            };
        }
        Ok(cur)
    }
}

impl Workbench for NfsBaseline {
    fn mkdir_p(&self, path: &str) -> NfsResult<()> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let comps = split_path(&path).map_err(|e| NfsError::Status(e.into()))?;
        let mut cur = self.root;
        let mut cur_path = String::new();
        for c in comps {
            cur_path.push('/');
            cur_path.push_str(c);
            cur = match self.nfs.lookup(SERVER, cur, c) {
                Ok((fh, _)) => fh,
                Err(NfsError::Status(NfsStatus::NoEnt)) => {
                    self.nfs.mkdir(SERVER, cur, c, 0o755, 0, 0)?.0
                }
                Err(e) => return Err(e),
            };
            self.dcache.lock().insert(cur_path.clone(), cur);
        }
        Ok(())
    }

    fn write_file(&self, path: &str, data: &[u8]) -> NfsResult<()> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        let fh = match self.nfs.lookup(SERVER, dir, name) {
            Ok((fh, attr)) => {
                if attr.size > 0 {
                    // Truncate-on-overwrite, like KoshaMount::write_file.
                    self.nfs.setattr(
                        SERVER,
                        fh,
                        kosha_vfs::SetAttr {
                            size: Some(0),
                            ..Default::default()
                        },
                    )?;
                }
                fh
            }
            Err(NfsError::Status(NfsStatus::NoEnt)) => {
                self.nfs.create(SERVER, dir, name, 0o644, 0, 0)?.0
            }
            Err(e) => return Err(e),
        };
        let mut off = 0usize;
        while off < data.len() {
            let end = (off + self.chunk as usize).min(data.len());
            self.nfs.write(SERVER, fh, off as u64, &data[off..end])?;
            off = end;
        }
        Ok(())
    }

    fn read_file(&self, path: &str) -> NfsResult<Vec<u8>> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        let (fh, attr) = self.nfs.lookup(SERVER, dir, name)?;
        let mut out = Vec::with_capacity(attr.size as usize);
        let mut off = 0u64;
        loop {
            let (data, eof) = self.nfs.read(SERVER, fh, off, self.chunk)?;
            off += data.len() as u64;
            out.extend_from_slice(&data);
            if eof || data.is_empty() {
                break;
            }
        }
        Ok(out)
    }

    fn stat(&self, path: &str) -> NfsResult<Attr> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        if path == "/" {
            return self.nfs.getattr(SERVER, self.root);
        }
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        Ok(self.nfs.lookup(SERVER, dir, name)?.1)
    }

    fn readdir(&self, path: &str) -> NfsResult<Vec<(String, FileType)>> {
        let dir = self.dir_handle(path)?;
        Ok(self
            .nfs
            .readdir(SERVER, dir)?
            .into_iter()
            .map(|e| (e.name, e.ftype))
            .collect())
    }

    fn remove(&self, path: &str) -> NfsResult<()> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        self.nfs.remove(SERVER, dir, name)
    }

    fn rmdir(&self, path: &str) -> NfsResult<()> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        self.nfs.rmdir(SERVER, dir, name)?;
        self.dcache.lock().remove(&path);
        let prefix = format!("{path}/");
        self.dcache.lock().retain(|p, _| !p.starts_with(&prefix));
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> NfsResult<()> {
        let from = normalize(from).map_err(|e| NfsError::Status(e.into()))?;
        let to = normalize(to).map_err(|e| NfsError::Status(e.into()))?;
        let (fp, fname) = parent_and_name(&from).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let (tp, tname) = parent_and_name(&to).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let sdir = self.dir_handle(fp)?;
        let ddir = self.dir_handle(tp)?;
        self.nfs.rename(SERVER, sdir, fname, ddir, tname)?;
        let mut cache = self.dcache.lock();
        cache.remove(&from);
        let fprefix = format!("{from}/");
        let tprefix = format!("{to}/");
        cache.retain(|p, _| !p.starts_with(&fprefix) && !p.starts_with(&tprefix) && p != &to);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosha_rpc::Clock;

    #[test]
    fn baseline_round_trip() {
        let b = NfsBaseline::build(LatencyModel::zero(), DiskModel::zero(), 1 << 24);
        b.mkdir_p("/a/b").unwrap();
        b.write_file("/a/b/f.txt", b"baseline").unwrap();
        assert_eq!(b.read_file("/a/b/f.txt").unwrap(), b"baseline");
        assert_eq!(b.stat("/a/b/f.txt").unwrap().size, 8);
        assert_eq!(
            b.readdir("/a/b").unwrap(),
            vec![("f.txt".to_string(), FileType::Regular)]
        );
    }

    #[test]
    fn baseline_pays_network_costs() {
        let b = NfsBaseline::build(LatencyModel::default(), DiskModel::default(), 1 << 24);
        let t0 = b.clock().now();
        b.mkdir_p("/x").unwrap();
        b.write_file("/x/big", &[0u8; 1 << 20]).unwrap();
        let dt = b.clock().now().since(t0);
        // 1 MiB at 12.5 MB/s is at least ~80 ms of wire time.
        assert!(dt.as_millis() >= 80, "{dt:?}");
    }
}
