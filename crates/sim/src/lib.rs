//! Simulation testbed and experiment drivers for the Kosha reproduction.
//!
//! The paper's evaluation has two halves, and this crate implements both:
//!
//! * **Prototype measurements** (Tables 1–2): the Modified Andrew
//!   Benchmark run against the *full* Kosha stack (overlay + NFS + koshad)
//!   on a simulated LAN with a virtual clock — [`cluster`], [`workbench`],
//!   [`mab`], with the unmodified-NFS baseline in [`baseline`].
//! * **Trace-driven simulations** (Figures 5–7): load balance,
//!   redirection, and availability studies driven by synthetic traces
//!   that match the aggregate statistics of the paper's Purdue
//!   file-system trace and Microsoft availability trace — [`fstrace`],
//!   [`placement`], [`availability`]. The paper, too, ran these as
//!   simulations rather than on the 8-node prototype.
//!
//! [`experiments`] exposes one entry point per table/figure; the
//! `kosha-bench` crate prints the paper-style rows, and EXPERIMENTS.md
//! records paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod baseline;
pub mod cached_mount;
pub mod churn;
pub mod cluster;
pub mod experiments;
pub mod fstrace;
pub mod mab;
pub mod model;
pub mod placement;
pub mod replay;
pub mod workbench;

pub use availability::{AvailabilityParams, AvailabilityTrace};
pub use cached_mount::CachedKoshaMount;
pub use churn::{run_churn, ChurnParams, ChurnReport, ChurnWindow, DivergencePoint};
pub use cluster::{ClusterParams, SimCluster};
pub use fstrace::{FsTrace, TraceFile, TraceParams};
pub use mab::{MabParams, MabTimes};
pub use placement::{PlacementParams, PlacementSim};
