//! The Modified Andrew Benchmark (MAB).
//!
//! Section 6.1 measures Kosha with "a modified Andrew benchmark" — the
//! classic five phases (mkdir, copy, stat, grep, compile) "modified to
//! run ... with a larger workload": a 51 MB source tree with a maximum
//! subdirectory level of 5. This module generates such a tree
//! deterministically and drives the phases against any [`Workbench`]
//! (Kosha mount or plain-NFS baseline), measuring each phase on the
//! shared virtual clock.

use crate::workbench::Workbench;
use kosha_nfs::NfsResult;
use kosha_rpc::{Clock, VirtualClock};
use kosha_vfs::FileType;
use std::sync::Arc;
use std::time::Duration;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct MabParams {
    /// Top-level directories of the source tree.
    pub top_dirs: usize,
    /// Sub-branching at each deeper level.
    pub branch: usize,
    /// Tree depth (paper: maximum subdirectory level of 5).
    pub depth: usize,
    /// Number of source files.
    pub files: usize,
    /// Total bytes across all files (paper: 51 MB).
    pub total_bytes: u64,
    /// Simulated CPU cost of compiling one KiB of source.
    pub compile_cpu_per_kib: Duration,
    /// Root of the tree inside the target file system.
    pub root: String,
}

impl Default for MabParams {
    fn default() -> Self {
        MabParams {
            top_dirs: 6,
            branch: 2,
            depth: 5,
            files: 240,
            total_bytes: 51 * 1024 * 1024,
            // 2.0 GHz P4-era compiler throughput ≈ a few hundred KB/s of
            // source; 1.5 ms/KiB keeps the compile phase dominant, as in
            // the paper's timings.
            compile_cpu_per_kib: Duration::from_micros(1500),
            // Top-level directories sit directly under /kosha so the
            // level-1 distribution spreads them over the nodes — the
            // (N−1)/N remote fraction of Section 6.1.2.
            root: "/".to_string(),
        }
    }
}

impl MabParams {
    /// A tiny variant for unit tests.
    #[must_use]
    pub fn small() -> Self {
        MabParams {
            top_dirs: 2,
            branch: 2,
            depth: 3,
            files: 12,
            total_bytes: 96 * 1024,
            compile_cpu_per_kib: Duration::from_micros(100),
            root: "/".to_string(),
        }
    }

    /// All directory paths of the tree, shallow-first.
    #[must_use]
    pub fn dirs(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        if self.root != "/" {
            out.push(self.root.clone());
        }
        let prefix = if self.root == "/" {
            ""
        } else {
            self.root.as_str()
        };
        let mut frontier: Vec<String> = Vec::new();
        for t in 0..self.top_dirs {
            let d = format!("{prefix}/mabd{t}");
            out.push(d.clone());
            frontier.push(d);
        }
        for level in 2..=self.depth {
            let mut next = Vec::new();
            for parent in &frontier {
                for b in 0..self.branch {
                    let d = format!("{parent}/l{level}b{b}");
                    out.push(d.clone());
                    next.push(d);
                }
            }
            frontier = next;
        }
        out
    }

    /// All `(path, size)` source files, deterministically sized so sizes
    /// vary but sum exactly to `total_bytes`.
    #[must_use]
    pub fn files(&self) -> Vec<(String, u64)> {
        let dirs = self.dirs();
        let mut out = Vec::with_capacity(self.files);
        // Size pattern: a repeating mix of small/medium/large around the
        // mean, adjusted on the last file to hit the exact total.
        let mean = self.total_bytes / self.files as u64;
        let pattern = [3u64, 5, 7, 10, 13, 18, 7, 17]; // tenths of mean
        let mut acc = 0u64;
        for i in 0..self.files {
            let dir = &dirs[i % dirs.len()];
            let size = if i + 1 == self.files {
                self.total_bytes - acc
            } else {
                (mean * pattern[i % pattern.len()] / 10).max(1)
            };
            acc += size;
            out.push((format!("{dir}/src{i}.c"), size));
        }
        out
    }
}

/// Per-phase execution times, in simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MabTimes {
    /// Directory-creation phase.
    pub mkdir: Duration,
    /// File copy-in phase.
    pub copy: Duration,
    /// Recursive stat (`ls -lR`) phase.
    pub stat: Duration,
    /// Full-content scan phase.
    pub grep: Duration,
    /// Compile-and-link phase.
    pub compile: Duration,
}

impl MabTimes {
    /// Sum of all phases.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.mkdir + self.copy + self.stat + self.grep + self.compile
    }

    /// Percentage overhead of `self` relative to a baseline, per phase
    /// and total, as `(mkdir, copy, stat, grep, compile, total)`.
    #[must_use]
    pub fn overhead_vs(&self, base: &MabTimes) -> (f64, f64, f64, f64, f64, f64) {
        fn pct(a: Duration, b: Duration) -> f64 {
            if b.is_zero() {
                0.0
            } else {
                (a.as_secs_f64() / b.as_secs_f64() - 1.0) * 100.0
            }
        }
        (
            pct(self.mkdir, base.mkdir),
            pct(self.copy, base.copy),
            pct(self.stat, base.stat),
            pct(self.grep, base.grep),
            pct(self.compile, base.compile),
            pct(self.total(), base.total()),
        )
    }
}

/// Runs all five phases against `fs`, measuring on `clock`.
pub fn run_mab(
    params: &MabParams,
    fs: &dyn Workbench,
    clock: &Arc<VirtualClock>,
) -> NfsResult<MabTimes> {
    let dirs = params.dirs();
    let files = params.files();

    // Phase 1: mkdir.
    let t0 = clock.now();
    for d in &dirs {
        fs.mkdir_p(d)?;
    }
    let mkdir = clock.now().since(t0);

    // Phase 2: copy — write every source file.
    let t0 = clock.now();
    for (path, size) in &files {
        let data = vec![b'x'; *size as usize];
        fs.write_file(path, &data)?;
    }
    let copy = clock.now().since(t0);

    // Phase 3: stat — recursive directory walk with per-entry stats
    // (the benchmark's `ls -lR`).
    let t0 = clock.now();
    let mut stack: Vec<String> = params.dirs().into_iter().take(params.top_dirs).collect();
    while let Some(dir) = stack.pop() {
        for (name, ftype) in fs.readdir(&dir)? {
            let p = format!("{dir}/{name}");
            fs.stat(&p)?;
            if ftype == FileType::Directory {
                stack.push(p);
            }
        }
    }
    let stat = clock.now().since(t0);

    // Phase 4: grep — read every file end to end.
    let t0 = clock.now();
    for (path, size) in &files {
        let data = fs.read_file(path)?;
        debug_assert_eq!(data.len() as u64, *size);
    }
    let grep = clock.now().since(t0);

    // Phase 5: compile — read each source, burn CPU, emit an object
    // file, then link everything.
    let t0 = clock.now();
    let mut objects = Vec::with_capacity(files.len());
    for (path, size) in &files {
        let src = fs.read_file(path)?;
        let kib = (src.len() as u64).div_ceil(1024);
        clock.advance(params.compile_cpu_per_kib * kib as u32);
        let obj_path = format!("{path}.o");
        let obj = vec![b'o'; (*size as usize) / 2];
        fs.write_file(&obj_path, &obj)?;
        objects.push((obj_path, obj.len() as u64));
    }
    // Link: read all objects, write the final binary.
    let mut bin_size = 0u64;
    for (path, size) in &objects {
        let _ = fs.read_file(path)?;
        bin_size += size / 2;
    }
    clock.advance(params.compile_cpu_per_kib * (bin_size.div_ceil(1024)) as u32);
    let link_dir = params.dirs().into_iter().next().expect("at least one dir");
    fs.write_file(&format!("{link_dir}/a.out"), &vec![b'b'; bin_size as usize])?;
    let compile = clock.now().since(t0);

    Ok(MabTimes {
        mkdir,
        copy,
        stat,
        grep,
        compile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::NfsBaseline;
    use kosha_nfs::DiskModel;
    use kosha_rpc::LatencyModel;

    #[test]
    fn tree_spec_is_deterministic_and_sums() {
        let p = MabParams::default();
        let d1 = p.dirs();
        let d2 = p.dirs();
        assert_eq!(d1, d2);
        let mut expect = p.top_dirs + usize::from(p.root != "/");
        let mut level_count = p.top_dirs;
        for _ in 2..=p.depth {
            level_count *= p.branch;
            expect += level_count;
        }
        assert_eq!(d1.len(), expect);
        let files = p.files();
        assert_eq!(files.len(), p.files);
        let total: u64 = files.iter().map(|(_, s)| s).sum();
        assert_eq!(total, p.total_bytes);
    }

    #[test]
    fn mab_runs_on_baseline() {
        let b = NfsBaseline::build(LatencyModel::default(), DiskModel::default(), 1 << 30);
        let clock = b.clock();
        let times = run_mab(&MabParams::small(), &b, &clock).unwrap();
        assert!(times.mkdir > Duration::ZERO);
        assert!(times.copy > Duration::ZERO);
        assert!(times.stat > Duration::ZERO);
        assert!(times.grep > Duration::ZERO);
        assert!(times.compile > times.grep, "compile should dominate grep");
    }

    #[test]
    fn overhead_vs_math() {
        let a = MabTimes {
            mkdir: Duration::from_secs(11),
            copy: Duration::from_secs(22),
            stat: Duration::from_secs(11),
            grep: Duration::from_secs(11),
            compile: Duration::from_secs(11),
        };
        let b = MabTimes {
            mkdir: Duration::from_secs(10),
            copy: Duration::from_secs(20),
            stat: Duration::from_secs(10),
            grep: Duration::from_secs(10),
            compile: Duration::from_secs(10),
        };
        let (mk, cp, _, _, _, total) = a.overhead_vs(&b);
        assert!((mk - 10.0).abs() < 1e-9);
        assert!((cp - 10.0).abs() < 1e-9);
        assert!((total - 10.0).abs() < 1e-9);
    }
}
