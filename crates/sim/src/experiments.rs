//! One entry point per table and figure of the paper's evaluation.
//!
//! Each experiment returns a result struct with a `render()` that prints
//! rows shaped like the paper's (EXPERIMENTS.md records the comparison).
//! `quick` variants shrink workloads for tests; the `kosha-bench`
//! binaries run the full configurations.

use crate::availability::{
    simulate_availability, AvailabilityParams, AvailabilitySeries, AvailabilityTrace,
};
use crate::baseline::NfsBaseline;
use crate::cluster::{ClusterParams, SimCluster};
use crate::fstrace::{FsTrace, TraceParams};
use crate::mab::{run_mab, MabParams, MabTimes};
use crate::placement::{BalanceStats, PlacementParams, PlacementSim, UtilSample};
use kosha::KoshaConfig;
use kosha_nfs::DiskModel;
use kosha_rpc::LatencyModel;
use std::fmt::Write as _;
use std::time::Duration;

fn fmt_secs(d: Duration) -> String {
    format!("{:8.2}", d.as_secs_f64())
}

/// LAN cost model for the prototype measurements. Bandwidth is the
/// *effective pipelined* throughput seen by NFS traffic (write-behind and
/// read-ahead overlap wire time with disk and CPU; a strict
/// store-and-forward charge would double-count data-path costs that the
/// real client pipelines). Per-message latency matches a switched
/// 100 Mb/s LAN.
#[must_use]
pub fn mab_lan() -> LatencyModel {
    LatencyModel {
        hop_latency: Duration::from_micros(150),
        per_distance_unit: Duration::ZERO,
        bandwidth_bps: 125_000_000,
        server_op_cost: Duration::from_micros(60),
        loopback_cost: Duration::from_micros(25),
        timeout: Duration::from_millis(800),
    }
}

/// Disk model for the prototype measurements: synchronous FFS metadata
/// operations pay rotational latency; data transfers run at effective
/// (cache-assisted) media speed.
#[must_use]
pub fn mab_disk() -> DiskModel {
    DiskModel {
        bandwidth_bps: 100_000_000,
        meta_op_cost: Duration::from_millis(3),
    }
}

/// The Kosha configuration used for the prototype measurements
/// (Section 6.1: distribution level 1, replication "fixed at 1" — one
/// stored instance, i.e. no additional replicas — 35 GB contributed per
/// node, no redirection pressure).
#[must_use]
pub fn table1_kosha_config() -> KoshaConfig {
    KoshaConfig {
        distribution_level: 1,
        replicas: 0,
        contributed_bytes: 35 * 1_000_000_000,
        disk_bandwidth_bps: 100_000_000,
        disk_meta_op: Duration::from_millis(3),
        koshad_op_cost: Duration::from_micros(520),
        ..KoshaConfig::default()
    }
}

/// Table 1: MAB phase times for NFS and for Kosha at 1–8 nodes.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Workload used.
    pub params: MabParams,
    /// Unmodified-NFS baseline times.
    pub nfs: MabTimes,
    /// `(node count, times)` for each Kosha configuration.
    pub kosha: Vec<(usize, MabTimes)>,
}

impl Table1 {
    /// Runs the experiment. `quick` shrinks the tree for unit tests.
    #[must_use]
    pub fn run(quick: bool) -> Self {
        let params = if quick {
            MabParams::small()
        } else {
            MabParams::default()
        };
        let nfs = {
            let b = NfsBaseline::build(mab_lan(), mab_disk(), 64 << 30);
            let clock = b.clock();
            run_mab(&params, &b, &clock).expect("baseline MAB")
        };
        let mut kosha = Vec::new();
        for &n in &[1usize, 2, 4, 8] {
            let cluster = SimCluster::build(&ClusterParams {
                nodes: n,
                kosha: table1_kosha_config(),
                latency: mab_lan(),
                seed: 100 + n as u64,
            });
            let m = cluster.mount(0);
            let clock = cluster.clock();
            clock.reset();
            let times = run_mab(&params, &m, &clock).expect("kosha MAB");
            kosha.push((n, times));
        }
        Table1 { params, nfs, kosha }
    }

    /// Paper-style table text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Table 1: Modified Andrew Benchmark, Kosha vs NFS (times in seconds)"
        );
        let _ = writeln!(
            s,
            "{:<10} {:>8} | {}",
            "phase",
            "NFS",
            self.kosha
                .iter()
                .map(|(n, _)| format!("{:>8}N {:>7}%", n, "ovhd"))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        type PhaseGet = fn(&MabTimes) -> Duration;
        let phases: [(&str, PhaseGet); 5] = [
            ("mkdir", |t| t.mkdir),
            ("copy", |t| t.copy),
            ("stat", |t| t.stat),
            ("grep", |t| t.grep),
            ("compile", |t| t.compile),
        ];
        for (name, get) in phases {
            let base = get(&self.nfs);
            let mut row = format!("{:<10} {} |", name, fmt_secs(base));
            for (_, t) in &self.kosha {
                let v = get(t);
                let ov = (v.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
                let _ = write!(row, " {} {:>7.2} |", fmt_secs(v), ov);
            }
            let _ = writeln!(s, "{row}");
        }
        let base = self.nfs.total();
        let mut row = format!("{:<10} {} |", "Total", fmt_secs(base));
        for (_, t) in &self.kosha {
            let v = t.total();
            let ov = (v.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
            let _ = write!(row, " {} {:>7.2} |", fmt_secs(v), ov);
        }
        let _ = writeln!(s, "{row}");
        s
    }

    /// Total-overhead percentages per node count.
    #[must_use]
    pub fn total_overheads(&self) -> Vec<(usize, f64)> {
        self.kosha
            .iter()
            .map(|(n, t)| {
                (
                    *n,
                    (t.total().as_secs_f64() / self.nfs.total().as_secs_f64() - 1.0) * 100.0,
                )
            })
            .collect()
    }
}

/// Table 2: MAB vs distribution level at a fixed node count (4).
#[derive(Debug, Clone)]
pub struct Table2 {
    /// `(level, times)`; level 1 is the baseline column.
    pub levels: Vec<(usize, MabTimes)>,
}

impl Table2 {
    /// Runs the experiment at 4 nodes, distribution levels 1–4.
    #[must_use]
    pub fn run(quick: bool) -> Self {
        let params = if quick {
            MabParams::small()
        } else {
            MabParams::default()
        };
        let mut levels = Vec::new();
        for level in 1..=4usize {
            let mut kosha = table1_kosha_config();
            kosha.distribution_level = level;
            let cluster = SimCluster::build(&ClusterParams {
                nodes: 4,
                kosha,
                latency: mab_lan(),
                seed: 200,
            });
            let m = cluster.mount(0);
            let clock = cluster.clock();
            clock.reset();
            let times = run_mab(&params, &m, &clock).expect("kosha MAB");
            levels.push((level, times));
        }
        Table2 { levels }
    }

    /// Paper-style table text: levels 2–4 shown as overhead relative to
    /// level 1.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Table 2: MAB vs distribution level (4 nodes; times in seconds)"
        );
        let base = &self.levels[0].1;
        let _ = writeln!(
            s,
            "{:<10} {:>10} | {}",
            "phase",
            "level 1",
            self.levels[1..]
                .iter()
                .map(|(l, _)| format!("level {l} {:>7}%", "ovhd"))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        type PhaseGet = fn(&MabTimes) -> Duration;
        let phases: [(&str, PhaseGet); 5] = [
            ("mkdir", |t| t.mkdir),
            ("copy", |t| t.copy),
            ("stat", |t| t.stat),
            ("grep", |t| t.grep),
            ("compile", |t| t.compile),
        ];
        for (name, get) in phases {
            let b = get(base);
            let mut row = format!("{:<10} {:>10.2} |", name, b.as_secs_f64());
            for (_, t) in &self.levels[1..] {
                let v = get(t);
                let ov = (v.as_secs_f64() / b.as_secs_f64() - 1.0) * 100.0;
                let _ = write!(row, " {:>8.2} {:>7.2} |", v.as_secs_f64(), ov);
            }
            let _ = writeln!(s, "{row}");
        }
        let b = base.total();
        let mut row = format!("{:<10} {:>10.2} |", "Total", b.as_secs_f64());
        for (_, t) in &self.levels[1..] {
            let v = t.total();
            let ov = (v.as_secs_f64() / b.as_secs_f64() - 1.0) * 100.0;
            let _ = write!(row, " {:>8.2} {:>7.2} |", v.as_secs_f64(), ov);
        }
        let _ = writeln!(s, "{row}");
        s
    }

    /// Total overhead of each level relative to level 1, percent.
    #[must_use]
    pub fn overheads_vs_level1(&self) -> Vec<(usize, f64)> {
        let base = self.levels[0].1.total().as_secs_f64();
        self.levels[1..]
            .iter()
            .map(|(l, t)| (*l, (t.total().as_secs_f64() / base - 1.0) * 100.0))
            .collect()
    }
}

/// Figure 5: load balance vs distribution level.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// `(distribution level, averaged stats)`.
    pub rows: Vec<(usize, BalanceStats)>,
    /// Per-file-hashing upper bound (the dotted lines).
    pub per_file: BalanceStats,
}

impl Fig5 {
    /// Runs the load-balance study: `runs` seeds per level, trace scaled
    /// by `scale` (1.0 = the full 221 K-file trace).
    #[must_use]
    pub fn run(levels: std::ops::RangeInclusive<usize>, runs: u64, scale: f64) -> Self {
        let trace = FsTrace::generate(&TraceParams::default().scaled(scale));
        let avg = |stats: &[BalanceStats]| BalanceStats {
            files_mean_pct: stats.iter().map(|s| s.files_mean_pct).sum::<f64>()
                / stats.len() as f64,
            files_std_pct: stats.iter().map(|s| s.files_std_pct).sum::<f64>() / stats.len() as f64,
            bytes_mean_pct: stats.iter().map(|s| s.bytes_mean_pct).sum::<f64>()
                / stats.len() as f64,
            bytes_std_pct: stats.iter().map(|s| s.bytes_std_pct).sum::<f64>() / stats.len() as f64,
        };
        let mut rows = Vec::new();
        for level in levels {
            let stats: Vec<BalanceStats> = (0..runs)
                .map(|seed| {
                    let mut sim = PlacementSim::new(PlacementParams::fig5(level, seed));
                    sim.insert_trace(&trace);
                    sim.balance_stats()
                })
                .collect();
            rows.push((level, avg(&stats)));
        }
        let baseline: Vec<BalanceStats> = (0..runs)
            .map(|seed| PlacementSim::per_file_baseline(&PlacementParams::fig5(1, seed), &trace))
            .collect();
        Fig5 {
            rows,
            per_file: avg(&baseline),
        }
    }

    /// Paper-style series text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Figure 5: per-node load share vs distribution level (16 nodes, mean±std %)"
        );
        let _ = writeln!(
            s,
            "{:<6} {:>12} {:>12} {:>12} {:>12}",
            "level", "files mean%", "files std%", "bytes mean%", "bytes std%"
        );
        for (level, b) in &self.rows {
            let _ = writeln!(
                s,
                "{:<6} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
                level, b.files_mean_pct, b.files_std_pct, b.bytes_mean_pct, b.bytes_std_pct
            );
        }
        let _ = writeln!(
            s,
            "{:<6} {:>12.2} {:>12.2} {:>12.2} {:>12.2}   (per-file hashing bound)",
            "file",
            self.per_file.files_mean_pct,
            self.per_file.files_std_pct,
            self.per_file.bytes_mean_pct,
            self.per_file.bytes_std_pct
        );
        s
    }
}

/// Figure 6: cumulative insertion-failure ratio vs utilization, per
/// redirection-attempt budget.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// `(redirect attempts, samples)` series.
    pub series: Vec<(usize, Vec<UtilSample>)>,
}

impl Fig6 {
    /// Runs the redirection study. The trace is scaled by `scale` and the
    /// node capacities are scaled proportionally, preserving the paper's
    /// pressure (17.9 GB × 4 copies against 60 GB of raw capacity).
    #[must_use]
    pub fn run(attempt_budgets: &[usize], runs: u64, scale: f64) -> Self {
        let trace = FsTrace::generate(&TraceParams::default().scaled(scale));
        let mut series = Vec::new();
        for &attempts in attempt_budgets {
            // Average the sample curves across runs on a fixed grid.
            let mut grids: Vec<Vec<UtilSample>> = Vec::new();
            for seed in 0..runs {
                let mut p = PlacementParams::fig6(attempts, seed);
                for c in &mut p.capacities {
                    *c = ((*c as f64) * scale) as u64;
                }
                let mut sim = PlacementSim::new(p);
                sim.insert_trace(&trace);
                grids.push(sim.samples().to_vec());
            }
            let len = grids.iter().map(Vec::len).min().unwrap_or(0);
            let avg: Vec<UtilSample> = (0..len)
                .map(|i| UtilSample {
                    utilization: grids.iter().map(|g| g[i].utilization).sum::<f64>()
                        / grids.len() as f64,
                    failure_ratio: grids.iter().map(|g| g[i].failure_ratio).sum::<f64>()
                        / grids.len() as f64,
                })
                .collect();
            series.push((attempts, avg));
        }
        Fig6 { series }
    }

    /// Failure ratio of a series at (closest sample to) a utilization.
    #[must_use]
    pub fn failure_at(&self, attempts: usize, utilization: f64) -> Option<f64> {
        let (_, samples) = self.series.iter().find(|(a, _)| *a == attempts)?;
        samples
            .iter()
            .min_by(|a, b| {
                (a.utilization - utilization)
                    .abs()
                    .partial_cmp(&(b.utilization - utilization).abs())
                    .expect("finite")
            })
            .map(|s| s.failure_ratio)
    }

    /// Paper-style series text at round utilization points.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Figure 6: cumulative failure ratio vs utilization (level 4, 3 replicas)"
        );
        let points = [0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0];
        let _ = write!(s, "{:<10}", "redirects");
        for p in points {
            let _ = write!(s, " {:>8.0}%", p * 100.0);
        }
        let _ = writeln!(s);
        for (attempts, _) in &self.series {
            let _ = write!(s, "{:<10}", attempts);
            for p in points {
                match self.failure_at(*attempts, p) {
                    Some(f) => {
                        let _ = write!(s, " {:>9.4}", f);
                    }
                    None => {
                        let _ = write!(s, " {:>9}", "-");
                    }
                }
            }
            let _ = writeln!(s);
        }
        s
    }
}

/// Figure 7: file availability over the trace period per replica count.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// `(K, series)` for K = 0..=4.
    pub series: Vec<(usize, AvailabilitySeries)>,
    /// The availability-trace parameters used.
    pub params: AvailabilityParams,
}

impl Fig7 {
    /// Runs the availability study with `runs` seeds averaged.
    #[must_use]
    pub fn run(params: AvailabilityParams, trace_scale: f64, runs: u64) -> Self {
        let fstrace = FsTrace::generate(&TraceParams::default().scaled(trace_scale));
        let mut series = Vec::new();
        for k in 0..=4usize {
            let mut agg: Option<AvailabilitySeries> = None;
            for run in 0..runs {
                let mut p = params.clone();
                p.seed = params.seed + run;
                let avail = AvailabilityTrace::generate(&p);
                let s = simulate_availability(&fstrace, &avail, 3, k, run);
                agg = Some(match agg {
                    None => s,
                    Some(prev) => AvailabilitySeries {
                        pct_available: prev
                            .pct_available
                            .iter()
                            .zip(&s.pct_available)
                            .map(|(a, b)| a + b)
                            .collect(),
                        average: prev.average + s.average,
                        minimum: prev.minimum + s.minimum,
                    },
                });
            }
            let mut s = agg.expect("runs >= 1");
            let n = runs as f64;
            for v in &mut s.pct_available {
                *v /= n;
            }
            s.average /= n;
            s.minimum /= n;
            series.push((k, s));
        }
        Fig7 { series, params }
    }

    /// Paper-style summary text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Figure 7: file availability over {} hours (distribution level 3)",
            self.params.hours
        );
        let _ = writeln!(
            s,
            "{:<8} {:>10} {:>10} {:>14}",
            "K", "avg %", "min %", "dip@spike %"
        );
        for (k, series) in &self.series {
            let dip = 100.0
                - series
                    .pct_available
                    .get(self.params.spike_hour)
                    .copied()
                    .unwrap_or(100.0);
            let _ = writeln!(
                s,
                "Kosha-{:<2} {:>10.4} {:>10.4} {:>14.2}",
                k, series.average, series.minimum, dip
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quick_shapes() {
        let t = Table1::run(true);
        let overheads = t.total_overheads();
        // Kosha's total overhead is positive but modest, and grows (or at
        // least does not shrink dramatically) as nodes increase.
        for (n, ov) in &overheads {
            assert!(*ov > -15.0, "kosha-{n} faster than NFS by {ov}%?");
            assert!(*ov < 150.0, "kosha-{n} overhead {ov}% out of regime");
        }
        let first = overheads.first().unwrap().1;
        let last = overheads.last().unwrap().1;
        assert!(last >= first - 5.0, "overhead fell from {first} to {last}");
        assert!(t.render().contains("Total"));
    }

    #[test]
    fn table2_quick_shapes() {
        let t = Table2::run(true);
        let ovs = t.overheads_vs_level1();
        assert_eq!(ovs.len(), 3);
        for (level, ov) in &ovs {
            assert!(*ov > -15.0 && *ov < 150.0, "level {level} overhead {ov}%");
        }
        assert!(t.render().contains("level 1"));
    }

    #[test]
    fn fig5_quick_shapes() {
        let f = Fig5::run(1..=6, 3, 0.01);
        // Balance improves toward the per-file bound as the level grows.
        let first = f.rows.first().unwrap().1.files_std_pct;
        let last = f.rows.last().unwrap().1.files_std_pct;
        assert!(last < first, "std did not shrink: {first} -> {last}");
        assert!(f.per_file.files_std_pct <= first);
        assert!(f.render().contains("per-file"));
    }

    #[test]
    fn fig6_quick_shapes() {
        let f = Fig6::run(&[0, 4], 2, 0.01);
        let no = f.failure_at(0, 0.9).unwrap();
        let four = f.failure_at(4, 0.9).unwrap();
        assert!(four <= no, "4 redirects worse than none: {four} > {no}");
        assert!(f.render().contains("redirects"));
    }

    #[test]
    fn fig7_quick_shapes() {
        let p = AvailabilityParams {
            machines: 64,
            hours: 100,
            spike_hour: 70,
            ..Default::default()
        };
        let f = Fig7::run(p, 0.003, 1);
        let k0 = &f.series[0].1;
        let k3 = &f.series[3].1;
        assert!(k3.average > k0.average);
        assert!(k3.average > 99.0);
        assert!(f.render().contains("Kosha-3"));
    }
}
