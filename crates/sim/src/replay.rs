//! Operation-trace workloads: day-in-the-life replays against any
//! [`Workbench`].
//!
//! The MAB measures a compile-style burst; real NFS servers mostly see
//! long mixed streams of metadata and I/O with a skewed hot set. This
//! module generates such streams deterministically (Zipf-like file
//! popularity, configurable read/write mix, rename/delete churn) and
//! replays them, reporting per-class operation counts and the virtual
//! time consumed — the raw material for throughput-style comparisons
//! between Kosha and the NFS baseline beyond the paper's benchmark.

use crate::fstrace::FsTrace;
use crate::workbench::Workbench;
use kosha_rpc::{Clock, VirtualClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// One replayable operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOp {
    /// Read a whole file.
    Read(String),
    /// Overwrite a whole file with `len` bytes.
    Write(String, u32),
    /// Stat a path.
    Stat(String),
    /// List a directory.
    List(String),
    /// Rename a file within its directory.
    Rename(String, String),
    /// Delete and immediately recreate a file (temp-file churn).
    Recreate(String, u32),
}

/// Trace-generation parameters.
#[derive(Debug, Clone)]
pub struct ReplayParams {
    /// Number of operations to generate.
    pub ops: usize,
    /// Fraction of operations that are reads (the NFS-typical mix is
    /// read-heavy; Sprite/NFS studies put reads at 70–90 %).
    pub read_fraction: f64,
    /// Fraction that are metadata-only (stat/list) of the non-read rest.
    pub meta_fraction: f64,
    /// Zipf-ish skew exponent for file popularity (0 = uniform).
    pub skew: f64,
    /// Written-file size range.
    pub write_len: std::ops::Range<u32>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReplayParams {
    fn default() -> Self {
        ReplayParams {
            ops: 2000,
            read_fraction: 0.7,
            meta_fraction: 0.5,
            skew: 0.9,
            write_len: 256..16384,
            seed: 11,
        }
    }
}

/// Per-class outcome counts and elapsed virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Reads performed.
    pub reads: u64,
    /// Writes performed.
    pub writes: u64,
    /// Metadata operations performed.
    pub metas: u64,
    /// Structural churn operations performed.
    pub churn: u64,
    /// Operations that failed (should be zero on a healthy cluster).
    pub errors: u64,
    /// Virtual nanoseconds consumed by the whole replay.
    pub elapsed_ns: u64,
}

impl ReplayReport {
    /// Total successful operations.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes + self.metas + self.churn
    }

    /// Mean virtual latency per successful operation.
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        if self.total_ops() == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.elapsed_ns / self.total_ops())
        }
    }
}

/// Generates a deterministic operation stream over the files of `trace`.
#[must_use]
pub fn generate_ops(trace: &FsTrace, params: &ReplayParams) -> Vec<ReplayOp> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let files: Vec<&str> = trace.files.iter().map(|f| f.path.as_str()).collect();
    let dirs: Vec<&str> = trace.dirs.iter().map(|d| d.as_str()).collect();
    assert!(!files.is_empty() && !dirs.is_empty(), "empty trace");

    // Zipf-ish popularity: rank r gets weight 1/(r+1)^skew.
    let weights: Vec<f64> = (0..files.len())
        .map(|r| 1.0 / ((r + 1) as f64).powf(params.skew))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let pick_file = |rng: &mut StdRng| -> &str {
        let mut x: f64 = rng.random::<f64>() * wsum;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return files[i];
            }
        }
        files[files.len() - 1]
    };

    let mut ops = Vec::with_capacity(params.ops);
    for i in 0..params.ops {
        let roll: f64 = rng.random();
        if roll < params.read_fraction {
            ops.push(ReplayOp::Read(pick_file(&mut rng).to_string()));
        } else if rng.random::<f64>() < params.meta_fraction {
            if rng.random::<bool>() {
                ops.push(ReplayOp::Stat(pick_file(&mut rng).to_string()));
            } else {
                let d = dirs[rng.random_range(0..dirs.len())];
                ops.push(ReplayOp::List(d.to_string()));
            }
        } else {
            let len = rng.random_range(params.write_len.clone());
            let f = pick_file(&mut rng).to_string();
            match rng.random_range(0..10u32) {
                0 => {
                    let to = format!("{f}.r{i}");
                    ops.push(ReplayOp::Rename(f, to.clone()));
                    // Rename back so later ops still find the file.
                    ops.push(ReplayOp::Rename(to, files_name_of(&ops)));
                }
                1 => ops.push(ReplayOp::Recreate(f, len)),
                _ => ops.push(ReplayOp::Write(f, len)),
            }
        }
    }
    ops
}

/// Helper: recover the original name for the rename-back op (the `from`
/// of the rename two entries earlier).
fn files_name_of(ops: &[ReplayOp]) -> String {
    if let Some(ReplayOp::Rename(from, _)) = ops.last() {
        from.clone()
    } else {
        unreachable!("called right after pushing a rename")
    }
}

/// Replays `ops` against `fs`, timing on `clock`. The target tree (dirs
/// and files of `trace`) must already be populated.
pub fn replay(ops: &[ReplayOp], fs: &dyn Workbench, clock: &Arc<VirtualClock>) -> ReplayReport {
    let start = clock.now();
    let mut rep = ReplayReport::default();
    for op in ops {
        let ok = match op {
            ReplayOp::Read(p) => fs.read_file(p).map(|_| &mut rep.reads),
            ReplayOp::Write(p, len) => {
                let data = vec![0xCD; *len as usize];
                fs.write_file(p, &data).map(|()| &mut rep.writes)
            }
            ReplayOp::Stat(p) => fs.stat(p).map(|_| &mut rep.metas),
            ReplayOp::List(d) => fs.readdir(d).map(|_| &mut rep.metas),
            ReplayOp::Rename(from, to) => fs.rename(from, to).map(|()| &mut rep.churn),
            ReplayOp::Recreate(p, len) => fs
                .remove(p)
                .and_then(|()| fs.write_file(p, &vec![0xEF; *len as usize]))
                .map(|()| &mut rep.churn),
        };
        match ok {
            Ok(counter) => *counter += 1,
            Err(_) => rep.errors += 1,
        }
    }
    rep.elapsed_ns = clock.now().since(start).as_nanos() as u64;
    rep
}

/// Populates `fs` with the trace's directories and (zero-filled) files so
/// a replay has its targets.
pub fn populate(trace: &FsTrace, fs: &dyn Workbench) -> Result<(), kosha_nfs::NfsError> {
    for d in &trace.dirs {
        fs.mkdir_p(d)?;
    }
    for f in &trace.files {
        // Small real payloads keep the replay cheap while exercising the
        // data path (the byte sizes of the original trace are exercised
        // by the placement experiments instead).
        let len = (f.size as usize).min(4096);
        fs.write_file(&f.path, &vec![0xAA; len])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterParams, SimCluster};
    use crate::fstrace::TraceParams;
    use kosha::KoshaConfig;
    use kosha_rpc::LatencyModel;

    fn small_trace() -> FsTrace {
        FsTrace::generate(&TraceParams {
            seed: 5,
            ..TraceParams::default().scaled(0.001)
        })
    }

    #[test]
    fn generation_is_deterministic_and_mixed() {
        let trace = small_trace();
        let p = ReplayParams::default();
        let a = generate_ops(&trace, &p);
        let b = generate_ops(&trace, &p);
        assert_eq!(a, b);
        let reads = a.iter().filter(|o| matches!(o, ReplayOp::Read(_))).count();
        let frac = reads as f64 / a.len() as f64;
        assert!((frac - p.read_fraction).abs() < 0.1, "read mix off: {frac}");
    }

    #[test]
    fn replay_runs_clean_on_kosha() {
        let trace = small_trace();
        let c = SimCluster::build(&ClusterParams {
            nodes: 5,
            kosha: KoshaConfig {
                distribution_level: 2,
                replicas: 1,
                contributed_bytes: 1 << 26,
                ..KoshaConfig::for_tests()
            },
            latency: LatencyModel::zero(),
            seed: 55,
        });
        let m = c.mount(0);
        populate(&trace, &m).unwrap();
        let ops = generate_ops(
            &trace,
            &ReplayParams {
                ops: 400,
                ..Default::default()
            },
        );
        let clock = c.clock();
        let rep = replay(&ops, &m, &clock);
        assert_eq!(rep.errors, 0, "replay errors: {rep:?}");
        assert!(rep.reads > 0 && rep.writes > 0 && rep.metas > 0);
    }

    #[test]
    fn hot_set_is_skewed() {
        let trace = small_trace();
        let ops = generate_ops(
            &trace,
            &ReplayParams {
                ops: 5000,
                skew: 1.2,
                ..Default::default()
            },
        );
        use std::collections::HashMap;
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for op in &ops {
            if let ReplayOp::Read(p) = op {
                *counts.entry(p.as_str()).or_insert(0) += 1;
            }
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest file should see far more traffic than the median.
        let hot = freq[0];
        let median = freq[freq.len() / 2];
        assert!(hot >= median * 3, "no skew: hot {hot}, median {median}");
    }
}
