//! Trace-driven placement simulator for the load-balance and redirection
//! experiments (Figures 5 and 6).
//!
//! This reproduces the paper's own methodology: Sections 6.2's studies
//! were *simulations* of a 16-node Kosha cluster driven by the
//! file-system trace, not runs of the 8-node prototype. The simulator
//! applies exactly the production placement rules — directory-name
//! hashing ([`kosha_id::dir_key`]), distribution level, iterative salt
//! redirection against a utilization threshold, and leaf-set replica
//! charging — over a ring of node identifiers, and records per-node load
//! and insertion failures.

use crate::fstrace::FsTrace;
use kosha_id::id::numerically_closest;
use kosha_id::{node_id_from_seed, salted_dir_key, Id};
use kosha_vfs::path::parent_and_name;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Simulator parameters.
#[derive(Debug, Clone)]
pub struct PlacementParams {
    /// Per-node capacities in bytes (length = node count).
    pub capacities: Vec<u64>,
    /// Distribution level (paper: 1–10 in Fig 5; 4 in Fig 6).
    pub level: usize,
    /// Additional replicas per file (paper: 3 in both experiments).
    pub replicas: usize,
    /// Directory redirection attempts (0 disables redirection).
    pub redirect_attempts: usize,
    /// Utilization above which a node refuses new directories.
    pub redirect_utilization: f64,
    /// Seed controlling node-id assignment and salts (the paper varies
    /// "the nodeId assignments in the Pastry network" across runs).
    pub seed: u64,
}

impl PlacementParams {
    /// The paper's Fig 5 configuration: 16 homogeneous 10 GB nodes.
    #[must_use]
    pub fn fig5(level: usize, seed: u64) -> Self {
        PlacementParams {
            capacities: vec![10_000_000_000; 16],
            level,
            replicas: 3,
            redirect_attempts: 0,
            redirect_utilization: 1.0,
            seed,
        }
    }

    /// The paper's Fig 6 configuration: 8×3 GB + 4×4 GB + 4×5 GB nodes,
    /// distribution level 4.
    #[must_use]
    pub fn fig6(redirect_attempts: usize, seed: u64) -> Self {
        let mut capacities = vec![3_000_000_000u64; 8];
        capacities.extend(vec![4_000_000_000; 4]);
        capacities.extend(vec![5_000_000_000; 4]);
        PlacementParams {
            capacities,
            level: 4,
            replicas: 3,
            redirect_attempts,
            redirect_utilization: 0.95,
            seed,
        }
    }
}

/// Per-node load tallies after placement.
#[derive(Debug, Clone, Default)]
pub struct NodeLoad {
    /// Primary files stored.
    pub files: u64,
    /// Primary bytes stored.
    pub bytes: u64,
    /// Total bytes charged (primary + replicas).
    pub used: u64,
}

/// One `(utilization, cumulative failure ratio)` sample (Fig 6's axes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilSample {
    /// Total stored bytes / total capacity at this point.
    pub utilization: f64,
    /// Failed insertions / attempted insertions so far.
    pub failure_ratio: f64,
}

/// The placement simulator.
pub struct PlacementSim {
    params: PlacementParams,
    ids: Vec<Id>,
    load: Vec<NodeLoad>,
    /// Cache: anchor directory path → chosen node (after redirection).
    // lint: allow(L008) run-scoped sim harness state: one placement run's anchors, dropped with the harness
    anchor_home: HashMap<String, Option<usize>>,
    rng: StdRng,
    attempts: u64,
    failures: u64,
    /// Periodic samples taken during insertion.
    samples: Vec<UtilSample>,
}

impl PlacementSim {
    /// Builds the ring with seeded node ids.
    #[must_use]
    pub fn new(params: PlacementParams) -> Self {
        let ids: Vec<Id> = (0..params.capacities.len())
            .map(|i| node_id_from_seed(&format!("ring{}-{i}", params.seed)))
            .collect();
        let n = params.capacities.len();
        PlacementSim {
            rng: StdRng::seed_from_u64(params.seed.wrapping_mul(0x9E37_79B9)),
            params,
            ids,
            load: vec![NodeLoad::default(); n],
            anchor_home: HashMap::new(),
            attempts: 0,
            failures: 0,
            samples: Vec::new(),
        }
    }

    fn owner_idx(&self, key: Id) -> usize {
        let owner = numerically_closest(key, &self.ids).expect("non-empty ring");
        self.ids.iter().position(|&i| i == owner).expect("present")
    }

    /// The K ring neighbors of `idx` (alternating clockwise and
    /// counter-clockwise), mirroring leaf-set replica placement.
    fn replica_idxs(&self, idx: usize) -> Vec<usize> {
        let n = self.ids.len();
        let me = self.ids[idx];
        // Order every other node by ring distance to me.
        let mut others: Vec<usize> = (0..n).filter(|&i| i != idx).collect();
        others.sort_by_key(|&i| me.ring_distance(self.ids[i]));
        others.truncate(self.params.replicas);
        others
    }

    /// The anchor (deepest distributed ancestor directory) of a file
    /// path, per §3.1–3.2.
    fn anchor_of(&self, file_path: &str) -> String {
        let (dir, _) = parent_and_name(file_path).unwrap_or(("/", ""));
        crate::placement::anchor_dir_of(dir, self.params.level)
    }

    /// Resolves (or decides, with redirection) the home node of an
    /// anchor directory. `None` means no node could host it.
    fn home_of_anchor(&mut self, anchor: &str) -> Option<usize> {
        if let Some(&h) = self.anchor_home.get(anchor) {
            return h;
        }
        let name = if anchor == "/" {
            "/"
        } else {
            parent_and_name(anchor).map(|(_, n)| n).unwrap_or("/")
        };
        let mut chosen = None;
        for attempt in 0..=self.params.redirect_attempts {
            let salt = if attempt == 0 {
                None
            } else {
                Some(self.rng.random_range(0..1_000_000u64))
            };
            let idx = self.owner_idx(salted_dir_key(name, salt));
            let cap = self.params.capacities[idx];
            let util = self.load[idx].used as f64 / cap as f64;
            if util < self.params.redirect_utilization {
                chosen = Some(idx);
                break;
            }
        }
        self.anchor_home.insert(anchor.to_string(), chosen);
        chosen
    }

    /// Inserts one file; returns false if the insertion failed (its
    /// node, or a replica's node, had no room).
    pub fn insert(&mut self, file_path: &str, size: u64) -> bool {
        self.attempts += 1;
        let anchor = self.anchor_of(file_path);
        let ok = (|| {
            let idx = self.home_of_anchor(&anchor)?;
            if self.load[idx].used + size > self.params.capacities[idx] {
                return None;
            }
            // Charge the primary.
            self.load[idx].files += 1;
            self.load[idx].bytes += size;
            self.load[idx].used += size;
            // Charge replicas (best effort: replicas that do not fit are
            // skipped, as a real push would fail, without failing the
            // insertion).
            for r in self.replica_idxs(idx) {
                if self.load[r].used + size <= self.params.capacities[r] {
                    self.load[r].used += size;
                }
            }
            Some(())
        })()
        .is_some();
        if !ok {
            self.failures += 1;
        }
        ok
    }

    /// Inserts an entire trace, sampling utilization/failure curves.
    pub fn insert_trace(&mut self, trace: &FsTrace) {
        let every = (trace.files.len() / 200).max(1);
        for (i, f) in trace.files.iter().enumerate() {
            self.insert(&f.path, f.size);
            if i % every == 0 {
                self.samples.push(self.sample());
            }
        }
        self.samples.push(self.sample());
    }

    /// Current utilization / failure-ratio sample.
    #[must_use]
    pub fn sample(&self) -> UtilSample {
        let cap: u64 = self.params.capacities.iter().sum();
        let used: u64 = self.load.iter().map(|l| l.used).sum();
        UtilSample {
            utilization: used as f64 / cap as f64,
            failure_ratio: if self.attempts == 0 {
                0.0
            } else {
                self.failures as f64 / self.attempts as f64
            },
        }
    }

    /// Per-node load tallies.
    #[must_use]
    pub fn loads(&self) -> &[NodeLoad] {
        &self.load
    }

    /// All samples recorded during [`PlacementSim::insert_trace`].
    #[must_use]
    pub fn samples(&self) -> &[UtilSample] {
        &self.samples
    }

    /// `(mean %, stdev %)` of per-node share of file count and of bytes
    /// (primary copies), the quantities plotted in Fig 5.
    #[must_use]
    pub fn balance_stats(&self) -> BalanceStats {
        let total_files: u64 = self.load.iter().map(|l| l.files).sum();
        let total_bytes: u64 = self.load.iter().map(|l| l.bytes).sum();
        let n = self.load.len() as f64;
        let fpcts: Vec<f64> = self
            .load
            .iter()
            .map(|l| 100.0 * l.files as f64 / total_files.max(1) as f64)
            .collect();
        let bpcts: Vec<f64> = self
            .load
            .iter()
            .map(|l| 100.0 * l.bytes as f64 / total_bytes.max(1) as f64)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
        let std = |v: &[f64], m: f64| (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n).sqrt();
        let fm = mean(&fpcts);
        let bm = mean(&bpcts);
        BalanceStats {
            files_mean_pct: fm,
            files_std_pct: std(&fpcts, fm),
            bytes_mean_pct: bm,
            bytes_std_pct: std(&bpcts, bm),
        }
    }

    /// Places each file *individually* by hashing its full path — the
    /// paper's "hypothetical scheme which distributed individual files",
    /// the finest-grained upper bound in Fig 5.
    #[must_use]
    pub fn per_file_baseline(params: &PlacementParams, trace: &FsTrace) -> BalanceStats {
        let mut sim = PlacementSim::new(params.clone());
        for f in &trace.files {
            let idx = sim.owner_idx(kosha_id::dir_key(&f.path));
            sim.load[idx].files += 1;
            sim.load[idx].bytes += f.size;
            sim.load[idx].used += f.size;
        }
        sim.balance_stats()
    }
}

/// Fig 5's plotted statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceStats {
    /// Mean per-node share of file count, percent (≈ 100/N).
    pub files_mean_pct: f64,
    /// Standard deviation of the per-node file-count share.
    pub files_std_pct: f64,
    /// Mean per-node share of bytes, percent.
    pub bytes_mean_pct: f64,
    /// Standard deviation of the per-node byte share.
    pub bytes_std_pct: f64,
}

/// Anchor of a *directory* path at a distribution level (shared with the
/// core crate's semantics; duplicated here so the lightweight simulator
/// has no dependency on koshad internals).
#[must_use]
pub fn anchor_dir_of(dir: &str, level: usize) -> String {
    if dir == "/" || level == 0 {
        return "/".to_string();
    }
    let comps: Vec<&str> = dir.split('/').filter(|c| !c.is_empty()).collect();
    let take = comps.len().min(level);
    if take == 0 {
        return "/".to_string();
    }
    let mut s = String::new();
    for c in comps.iter().take(take) {
        s.push('/');
        s.push_str(c);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fstrace::{FsTrace, TraceParams};

    fn small_trace(seed: u64) -> FsTrace {
        FsTrace::generate(&TraceParams {
            seed,
            ..TraceParams::default().scaled(0.01)
        })
    }

    #[test]
    fn anchor_computation() {
        assert_eq!(anchor_dir_of("/a/b/c", 1), "/a");
        assert_eq!(anchor_dir_of("/a/b/c", 2), "/a/b");
        assert_eq!(anchor_dir_of("/a", 4), "/a");
        assert_eq!(anchor_dir_of("/", 3), "/");
    }

    #[test]
    fn higher_level_improves_balance() {
        let trace = small_trace(7);
        let coarse = {
            let mut s = PlacementSim::new(PlacementParams::fig5(1, 3));
            s.insert_trace(&trace);
            s.balance_stats()
        };
        let fine = {
            let mut s = PlacementSim::new(PlacementParams::fig5(8, 3));
            s.insert_trace(&trace);
            s.balance_stats()
        };
        assert!(
            fine.files_std_pct < coarse.files_std_pct,
            "level 8 std {} !< level 1 std {}",
            fine.files_std_pct,
            coarse.files_std_pct
        );
    }

    #[test]
    fn mean_share_is_one_over_n() {
        let trace = small_trace(9);
        let mut s = PlacementSim::new(PlacementParams::fig5(4, 1));
        s.insert_trace(&trace);
        let b = s.balance_stats();
        assert!((b.files_mean_pct - 100.0 / 16.0).abs() < 1e-6);
    }

    #[test]
    fn per_file_baseline_is_at_least_as_balanced() {
        let trace = small_trace(11);
        let params = PlacementParams::fig5(2, 5);
        let mut s = PlacementSim::new(params.clone());
        s.insert_trace(&trace);
        let dir_stats = s.balance_stats();
        let file_stats = PlacementSim::per_file_baseline(&params, &trace);
        assert!(file_stats.files_std_pct <= dir_stats.files_std_pct + 0.5);
    }

    #[test]
    fn redirection_reduces_failures() {
        // Tiny nodes so capacity pressure is high.
        let trace = small_trace(13);
        let total = trace.total_bytes();
        let mk = |attempts| {
            let mut p = PlacementParams::fig6(attempts, 3);
            // Scale capacities so the trace fills ~85% of primaries+replicas.
            let scale = (total * 4) as f64 / 0.85 / 60_000_000_000.0;
            for c in &mut p.capacities {
                *c = ((*c as f64) * scale) as u64;
            }
            let mut s = PlacementSim::new(p);
            s.insert_trace(&trace);
            s.sample().failure_ratio
        };
        let no_redir = mk(0);
        let with_redir = mk(8);
        assert!(
            with_redir <= no_redir,
            "redirection made it worse: {with_redir} > {no_redir}"
        );
    }

    #[test]
    fn failure_ratio_grows_with_utilization() {
        let trace = small_trace(17);
        let total = trace.total_bytes();
        let mut p = PlacementParams::fig6(4, 3);
        let scale = (total * 4) as f64 / 1.2 / 60_000_000_000.0; // overfill
        for c in &mut p.capacities {
            *c = ((*c as f64) * scale) as u64;
        }
        let mut s = PlacementSim::new(p);
        s.insert_trace(&trace);
        let samples = s.samples();
        let early = samples[samples.len() / 4];
        let late = *samples.last().unwrap();
        assert!(late.failure_ratio >= early.failure_ratio);
        assert!(late.utilization > 0.5, "utilization {}", late.utilization);
    }

    #[test]
    fn same_directory_files_share_a_node() {
        let mut s = PlacementSim::new(PlacementParams::fig5(2, 3));
        for i in 0..50 {
            assert!(s.insert(&format!("/user/proj/f{i}"), 1000));
        }
        let with_files = s.load.iter().filter(|l| l.files > 0).count();
        assert_eq!(with_files, 1, "one directory spread across nodes");
    }
}
