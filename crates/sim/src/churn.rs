//! Churn survival driver (DESIGN.md §15): replays an availability
//! trace against a **live** [`SimCluster`] — real koshad nodes, real
//! overlay, real replication — while a seeded mutation workload runs
//! through a `/kosha` mount, and measures what survives.
//!
//! This is the dynamic counterpart of the Figure 7 availability *model*
//! ([`crate::availability`]): instead of an analytic holder-set
//! simulation, machines actually crash ([`kosha_rpc::SimNetwork::fail_node`])
//! and return ([`kosha_rpc::SimNetwork::recover_node`], a fraction with
//! their disks wiped via [`kosha::KoshaNode::purge`], §4.3), write-behind
//! queues really drop batches, failover really promotes replicas, and
//! the consistency observatory ([`kosha::audit_cluster`]) is sampled on
//! a fixed cadence to produce the divergence-over-time series.
//!
//! Everything runs on the virtual clock with seeded randomness, so a
//! given [`ChurnParams`] always yields a byte-identical
//! [`ChurnReport::to_json`] — the `BENCH_churn.json` CI gate diffs
//! exactly that across double runs.

use crate::availability::{AvailabilityParams, AvailabilityTrace};
use crate::cluster::{ClusterParams, SimCluster};
use kosha::{audit_cluster, AuditOptions, KoshaConfig, KoshaNode, ReplicationMode};
use kosha_rpc::{Clock, LatencyModel, NodeAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Parameters of one churn-survival run.
#[derive(Debug, Clone)]
pub struct ChurnParams {
    /// Cluster size (the trace is generated for exactly this many
    /// machines; node 0 is pinned up as bootstrap and mount gateway).
    pub nodes: usize,
    /// First trace hour to replay (lets a run center on the correlated
    /// failure spike without replaying 600 quiet hours).
    pub start_hour: usize,
    /// Trace hours replayed.
    pub hours: usize,
    /// Virtual time per trace hour. Write-behind flush windows (5 ms)
    /// and samplers tick inside it; it need not be a real hour.
    pub hour_virtual: Duration,
    /// Distinct top-level directories the workload mutates (each is an
    /// anchor at distribution level 1, placed on its own primary).
    pub dirs: usize,
    /// Files per directory the workload cycles through.
    pub files_per_dir: usize,
    /// Mutations attempted per replayed hour.
    pub writes_per_hour: usize,
    /// Audit-pass cadence in hours (also fires on the final hour).
    pub audit_every_hours: usize,
    /// Every Nth recovery comes back with a wiped disk (0 = never).
    pub purge_every_nth_recovery: usize,
    /// Replication factor K.
    pub replicas: usize,
    /// Seed for the trace, node ids, and the workload RNG.
    pub seed: u64,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            nodes: 64,
            start_hour: 600,
            hours: 24,
            hour_virtual: Duration::from_millis(40),
            dirs: 8,
            files_per_dir: 4,
            writes_per_hour: 16,
            audit_every_hours: 4,
            purge_every_nth_recovery: 4,
            replicas: 2,
            seed: 7,
        }
    }
}

/// One replayed hour's availability window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnWindow {
    /// Trace hour (absolute, so the spike hour is recognizable).
    pub hour: usize,
    /// Machines up during this hour.
    pub up_nodes: usize,
    /// Mutations attempted through the mount.
    pub attempted: u64,
    /// Mutations acknowledged by koshad.
    pub acked: u64,
}

/// One audit-pass sample in the divergence-over-time series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergencePoint {
    /// Trace hour the pass ran at.
    pub hour: usize,
    /// Objects whose replica digests disagreed with the primary.
    pub objects_divergent: u64,
    /// Bytes at risk in those objects.
    pub bytes_divergent: u64,
    /// Objects below the configured K.
    pub under_replicated: u64,
    /// Outstanding `.kosha_lag` markers cluster-wide.
    pub lag_markers: u64,
    /// Nodes the audit could not reach (crashed).
    pub nodes_unreachable: u64,
}

/// Everything a churn run measured.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Cluster size.
    pub nodes: usize,
    /// Hours replayed.
    pub hours: usize,
    /// Replication factor K.
    pub replicas: usize,
    /// Per-hour availability windows.
    pub windows: Vec<ChurnWindow>,
    /// Divergence-over-time from the periodic audit passes.
    pub divergence: Vec<DivergencePoint>,
    /// Peak of `objects_divergent` over the series.
    pub peak_objects_divergent: u64,
    /// Peak of `bytes_divergent` over the series.
    pub peak_bytes_divergent: u64,
    /// Total mutations attempted / acked across all hours.
    pub mutations_attempted: u64,
    /// Mutations koshad acknowledged.
    pub mutations_acked: u64,
    /// Acked mutations whose effect was readable after final repair.
    pub mutations_survived: u64,
    /// Acked mutations lost to churn (write-behind windows dropped with
    /// their primary, promotions of lagging replicas).
    pub mutations_lost: u64,
    /// Workload objects checked in the final read-back.
    pub objects_total: u64,
    /// Objects whose final content matched no acked write (or were
    /// unreadable even after repair).
    pub objects_lost: u64,
    /// `objects_divergent` after the final repair + audit pass.
    pub final_objects_divergent: u64,
    /// `under_replicated` after the final repair + audit pass.
    pub final_under_replicated: u64,
    /// Copies above K after repair (stale ex-holders churn left behind
    /// — exactly the kind of residue the observatory exists to surface).
    pub final_over_replicated: u64,
    /// Replica slots with no primary after repair.
    pub final_orphaned: u64,
    /// Slots claimed by more than one primary after repair.
    pub final_duplicate_primaries: u64,
    /// `.kosha_lag` markers still outstanding after repair.
    pub final_lag_markers: u64,
    /// RPC calls spent in the final repair phase.
    pub repair_rpc_calls: u64,
    /// RPC bytes moved in the final repair phase.
    pub repair_rpc_bytes: u64,
    /// Final-repair bytes by service, name-sorted.
    pub repair_bytes_by_service: Vec<(String, u64)>,
    /// Full replica-tree pushes over the whole run (repair traffic).
    pub replica_pushes: u64,
    /// Replica promotions over the whole run.
    pub promotions: u64,
    /// Client failovers over the whole run.
    pub failovers: u64,
    /// Recoveries that came back with a purged disk.
    pub purged_recoveries: u64,
    /// Virtual time the whole run spanned.
    pub virtual_elapsed_nanos: u64,
}

/// Sums `rpc_{what}_total{service=...}` counters on the transport,
/// per-service, name-sorted.
fn rpc_totals(net: &kosha_rpc::SimNetwork, what: &str) -> BTreeMap<String, u64> {
    let prefix = format!("rpc_{what}_total{{service=");
    let obs = net.obs();
    let mut out = BTreeMap::new();
    for name in obs.registry.names() {
        if let Some(rest) = name.strip_prefix(&prefix) {
            let service = rest
                .trim_start_matches('"')
                .trim_end_matches("\"}")
                .to_string();
            out.insert(service, obs.registry.counter(&name).get());
        }
    }
    out
}

fn sum_deltas(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>) -> u64 {
    after
        .iter()
        .map(|(k, v)| v - before.get(k).copied().unwrap_or(0))
        .sum()
}

/// Runs the churn survival experiment.
///
/// Shape of one replayed hour:
/// 1. apply the trace's up/down transitions (node 0 pinned up) —
///    crashes keep their disks; every Nth recovery purges first;
/// 2. run maintenance on recovered nodes and on every live node hosting
///    an anchor (the paper's background daemon activity);
/// 3. half the hour of virtual time passes (flush pumps tick);
/// 4. the workload attempts its seeded mutations through the gateway;
/// 5. the other half passes;
/// 6. on the audit cadence, an [`audit_cluster`] pass over the live
///    nodes records a [`DivergencePoint`].
///
/// Afterwards everything is recovered, repaired (maintain + flush +
/// settle, with the RPC counters bracketing the phase), audited one
/// last time, and every workload object read back against the acked
/// write history to classify mutations as survived or lost.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_churn(p: &ChurnParams) -> ChurnReport {
    let mut kosha = KoshaConfig::for_tests();
    kosha.distribution_level = 1;
    kosha.replicas = p.replicas;
    kosha.read_from_replicas = true;
    kosha.replication_mode = ReplicationMode::WriteBehind {
        queue_ops: 64,
        flush_interval: Duration::from_millis(5),
    };
    let cluster = SimCluster::build(&ClusterParams {
        nodes: p.nodes,
        kosha,
        latency: LatencyModel::zero(),
        seed: p.seed,
    });
    let net = &cluster.net;
    let start_t = cluster.clock().now().0;

    let trace = AvailabilityTrace::generate(&AvailabilityParams {
        machines: p.nodes,
        hours: p.start_hour + p.hours,
        seed: p.seed,
        ..AvailabilityParams::default()
    });

    let mount = cluster.mount(0);
    let mut paths = Vec::new();
    for d in 0..p.dirs {
        mount.mkdir_p(&format!("/churn{d}")).expect("workload dir");
        for f in 0..p.files_per_dir {
            paths.push(format!("/churn{d}/f{f}"));
        }
    }
    cluster.run_for(p.hour_virtual);

    // Acked-write history per path: survival is judged against it after
    // the final repair. Content encodes (hour, write#) so any surviving
    // state identifies exactly which acked write it came from.
    let mut history: BTreeMap<String, Vec<Vec<u8>>> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(p.seed ^ 0xC0FF_EE00);
    let mut up: Vec<bool> = vec![true; p.nodes];
    let mut recoveries = 0u64;
    let mut purged_recoveries = 0u64;
    let mut windows = Vec::with_capacity(p.hours);
    let mut divergence: Vec<DivergencePoint> = Vec::new();
    let mut attempted_total = 0u64;
    let mut acked_total = 0u64;

    let audit_pass = |up: &[bool]| -> (kosha::AuditReport, u64) {
        let peers: Vec<NodeAddr> = cluster
            .nodes
            .iter()
            .enumerate()
            .filter(|&(i, _)| up[i])
            .map(|(_, n)| n.addr())
            .collect();
        let down = (p.nodes - peers.len()) as u64;
        let report = audit_cluster(
            net.as_ref(),
            cluster.nodes[0].addr(),
            &peers,
            cluster.clock().now().0,
            &AuditOptions {
                replicas: p.replicas,
                max_examples: 4,
            },
        );
        (report, down)
    };
    let point = |report: &kosha::AuditReport, down: u64, hour: usize| DivergencePoint {
        hour,
        objects_divergent: report.objects_divergent,
        bytes_divergent: report.bytes_divergent,
        under_replicated: report.under_replicated,
        lag_markers: report.lag_markers,
        nodes_unreachable: report.nodes_unreachable + down,
    };

    for h in 0..p.hours {
        let hour = p.start_hour + h;
        let target = &trace.up[hour];
        let mut recovered: Vec<usize> = Vec::new();
        for i in 1..p.nodes {
            // Node 0 stays up: it bootstraps the overlay and fronts the
            // workload mount.
            let want = target[i];
            if up[i] && !want {
                net.fail_node(cluster.nodes[i].addr());
                up[i] = false;
            } else if !up[i] && want {
                recoveries += 1;
                if p.purge_every_nth_recovery != 0
                    && recoveries.is_multiple_of(p.purge_every_nth_recovery as u64)
                {
                    // Disk loss: the machine rejoins empty (§4.3).
                    cluster.nodes[i].purge();
                    purged_recoveries += 1;
                }
                net.recover_node(cluster.nodes[i].addr());
                up[i] = true;
                recovered.push(i);
            }
        }
        for &i in &recovered {
            cluster.nodes[i].maintain();
        }
        for (i, node) in cluster.nodes.iter().enumerate() {
            if up[i] && !node.hosted_anchors().is_empty() {
                node.maintain();
            }
        }
        cluster.run_for(p.hour_virtual / 2);

        let mut acked = 0u64;
        for _ in 0..p.writes_per_hour {
            let path = &paths[rng.random_range(0..paths.len())];
            let fill = rng.random::<u8>();
            let mut content = format!("h{h} {fill:03} ").into_bytes();
            content.extend(std::iter::repeat_n(fill, 64));
            if mount.write_file(path, &content).is_ok() {
                acked += 1;
                history.entry(path.clone()).or_default().push(content);
            }
        }
        attempted_total += p.writes_per_hour as u64;
        acked_total += acked;
        cluster.run_for(p.hour_virtual / 2);

        windows.push(ChurnWindow {
            hour,
            up_nodes: up.iter().filter(|&&b| b).count(),
            attempted: p.writes_per_hour as u64,
            acked,
        });
        if h % p.audit_every_hours == p.audit_every_hours - 1 || h == p.hours - 1 {
            let (report, down) = audit_pass(&up);
            divergence.push(point(&report, down, hour));
        }
    }

    // Final repair: bring every machine back, run maintenance to
    // completion, force flush barriers, and let the cluster settle. The
    // RPC counters bracket the phase so its cost is attributable.
    let calls_before = rpc_totals(net, "calls");
    let bytes_before = rpc_totals(net, "bytes");
    for (i, node) in cluster.nodes.iter().enumerate() {
        if !up[i] {
            net.recover_node(node.addr());
            up[i] = true;
        }
    }
    for _ in 0..2 {
        for node in &cluster.nodes {
            node.maintain();
        }
        for node in &cluster.nodes {
            node.flush_replication();
        }
        cluster.run_for(p.hour_virtual);
    }
    let calls_after = rpc_totals(net, "calls");
    let bytes_after = rpc_totals(net, "bytes");
    let repair_bytes_by_service: Vec<(String, u64)> = bytes_after
        .iter()
        .map(|(k, v)| (k.clone(), v - bytes_before.get(k).copied().unwrap_or(0)))
        .collect();

    let (final_audit, _) = audit_pass(&up);

    // Survival read-back: an object survived if its final content is
    // some acked write; every acked write up to (and including) that one
    // did its job, everything after it was lost.
    let mut survived = 0u64;
    let mut lost = 0u64;
    let mut objects_lost = 0u64;
    for (path, writes) in &history {
        let last_match = mount
            .read_file(path)
            .ok()
            .and_then(|got| writes.iter().rposition(|w| *w == got));
        match last_match {
            Some(idx) => {
                survived += (idx + 1) as u64;
                lost += (writes.len() - idx - 1) as u64;
            }
            None => {
                lost += writes.len() as u64;
                objects_lost += 1;
            }
        }
    }

    let mut report = ChurnReport {
        nodes: p.nodes,
        hours: p.hours,
        replicas: p.replicas,
        peak_objects_divergent: divergence
            .iter()
            .map(|d| d.objects_divergent)
            .max()
            .unwrap_or(0),
        peak_bytes_divergent: divergence
            .iter()
            .map(|d| d.bytes_divergent)
            .max()
            .unwrap_or(0),
        windows,
        divergence,
        mutations_attempted: attempted_total,
        mutations_acked: acked_total,
        mutations_survived: survived,
        mutations_lost: lost,
        objects_total: history.len() as u64,
        objects_lost,
        final_objects_divergent: final_audit.objects_divergent,
        final_under_replicated: final_audit.under_replicated,
        final_over_replicated: final_audit.over_replicated,
        final_orphaned: final_audit.orphaned_replicas,
        final_duplicate_primaries: final_audit.duplicate_primaries,
        final_lag_markers: final_audit.lag_markers,
        repair_rpc_calls: sum_deltas(&calls_before, &calls_after),
        repair_rpc_bytes: sum_deltas(&bytes_before, &bytes_after),
        repair_bytes_by_service,
        replica_pushes: 0,
        promotions: 0,
        failovers: 0,
        purged_recoveries,
        virtual_elapsed_nanos: cluster.clock().now().0 - start_t,
    };
    for node in &cluster.nodes {
        let s = node.stats();
        report.replica_pushes += s.replica_pushes;
        report.promotions += s.promotions;
        report.failovers += s.failovers;
    }
    report
}

impl ChurnReport {
    /// Hand-formatted JSON (sorted, no deps, trailing-newline-free);
    /// byte-identical across runs with equal params.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"cluster\": {{\"nodes\": {}, \"hours\": {}, \"replicas\": {}}},\n",
            self.nodes, self.hours, self.replicas
        ));
        out.push_str(&format!(
            "  \"mutations\": {{\"attempted\": {}, \"acked\": {}, \"survived\": {}, \"lost\": {}}},\n",
            self.mutations_attempted,
            self.mutations_acked,
            self.mutations_survived,
            self.mutations_lost
        ));
        out.push_str(&format!(
            "  \"objects\": {{\"total\": {}, \"lost\": {}}},\n",
            self.objects_total, self.objects_lost
        ));
        out.push_str(&format!(
            "  \"divergence_peak\": {{\"objects\": {}, \"bytes\": {}}},\n",
            self.peak_objects_divergent, self.peak_bytes_divergent
        ));
        out.push_str(&format!(
            "  \"final\": {{\"objects_divergent\": {}, \"under_replicated\": {}, \
             \"over_replicated\": {}, \"orphaned\": {}, \"duplicate_primaries\": {}, \
             \"lag_markers\": {}}},\n",
            self.final_objects_divergent,
            self.final_under_replicated,
            self.final_over_replicated,
            self.final_orphaned,
            self.final_duplicate_primaries,
            self.final_lag_markers
        ));
        out.push_str(&format!(
            "  \"repair\": {{\"rpc_calls\": {}, \"rpc_bytes\": {}, \"replica_pushes\": {}, \
             \"promotions\": {}, \"failovers\": {}, \"purged_recoveries\": {}}},\n",
            self.repair_rpc_calls,
            self.repair_rpc_bytes,
            self.replica_pushes,
            self.promotions,
            self.failovers,
            self.purged_recoveries
        ));
        out.push_str("  \"repair_bytes_by_service\": {");
        for (i, (svc, bytes)) in self.repair_bytes_by_service.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{svc}\": {bytes}"));
        }
        out.push_str("},\n");
        out.push_str("  \"windows\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"hour\": {}, \"up_nodes\": {}, \"attempted\": {}, \"acked\": {}}}{}\n",
                w.hour,
                w.up_nodes,
                w.attempted,
                w.acked,
                if i + 1 < self.windows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"divergence_series\": [\n");
        for (i, d) in self.divergence.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"hour\": {}, \"objects_divergent\": {}, \"bytes_divergent\": {}, \
                 \"under_replicated\": {}, \"lag_markers\": {}, \"nodes_unreachable\": {}}}{}\n",
                d.hour,
                d.objects_divergent,
                d.bytes_divergent,
                d.under_replicated,
                d.lag_markers,
                d.nodes_unreachable,
                if i + 1 < self.divergence.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"virtual_elapsed_nanos\": {}\n",
            self.virtual_elapsed_nanos
        ));
        out.push('}');
        out
    }

    /// Human-readable summary for stdout.
    #[must_use]
    pub fn render(&self) -> String {
        let min_up = self.windows.iter().map(|w| w.up_nodes).min().unwrap_or(0);
        format!(
            "CHURN  {} nodes, {} hours, K={}\n\
             mutations: {} attempted, {} acked, {} survived, {} lost\n\
             objects: {} written, {} lost\n\
             divergence peak: {} objects ({}B); final: {} divergent, {} under-rep, {} over-rep, \
             {} orphaned, {} dup primaries, {} lag markers\n\
             repair: {} rpc calls, {}B, {} pushes, {} promotions, {} failovers, {} purged disks\n\
             availability floor: {}/{} nodes up at the worst hour\n",
            self.nodes,
            self.hours,
            self.replicas,
            self.mutations_attempted,
            self.mutations_acked,
            self.mutations_survived,
            self.mutations_lost,
            self.objects_total,
            self.objects_lost,
            self.peak_objects_divergent,
            self.peak_bytes_divergent,
            self.final_objects_divergent,
            self.final_under_replicated,
            self.final_over_replicated,
            self.final_orphaned,
            self.final_duplicate_primaries,
            self.final_lag_markers,
            self.repair_rpc_calls,
            self.repair_rpc_bytes,
            self.replica_pushes,
            self.promotions,
            self.failovers,
            self.purged_recoveries,
            min_up,
            self.nodes,
        )
    }
}

/// Convenience: sums a stats counter over nodes (used by tests).
#[must_use]
pub fn live_nodes(nodes: &[Arc<KoshaNode>], up: &[bool]) -> usize {
    nodes
        .iter()
        .enumerate()
        .filter(|&(i, _)| up.get(i).copied().unwrap_or(false))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> ChurnParams {
        ChurnParams {
            nodes: 12,
            start_hour: 610,
            hours: 8,
            hour_virtual: Duration::from_millis(30),
            dirs: 3,
            files_per_dir: 2,
            writes_per_hour: 6,
            audit_every_hours: 2,
            purge_every_nth_recovery: 2,
            replicas: 2,
            seed: 11,
        }
    }

    #[test]
    fn churn_run_accounts_for_every_mutation() {
        let p = small_params();
        let r = run_churn(&p);
        assert_eq!(r.windows.len(), p.hours);
        assert_eq!(r.mutations_attempted, (p.hours * p.writes_per_hour) as u64);
        assert!(r.mutations_acked <= r.mutations_attempted);
        assert_eq!(
            r.mutations_survived + r.mutations_lost,
            r.mutations_acked,
            "every acked mutation is classified: {r:?}"
        );
        assert!(!r.divergence.is_empty());
        assert!(
            r.peak_objects_divergent >= r.final_objects_divergent,
            "peak below final: {r:?}"
        );
        assert!(r.repair_rpc_calls > 0, "repair phase issued no RPCs");
    }

    #[test]
    fn churn_report_is_deterministic() {
        let p = small_params();
        let a = run_churn(&p).to_json();
        let b = run_churn(&p).to_json();
        assert_eq!(a, b, "same params must produce byte-identical reports");
    }

    #[test]
    fn quiet_cluster_loses_nothing() {
        // A window with no churn (all machines up the whole time): every
        // acked mutation must survive and the final audit must be clean.
        let p = ChurnParams {
            nodes: 8,
            start_hour: 0,
            hours: 4,
            purge_every_nth_recovery: 0,
            seed: 3,
            ..small_params()
        };
        // Hour 0..4 of the trace can still contain down machines; force
        // a custom run by retrying seeds is flaky — instead just assert
        // the accounting invariants and that repair converges.
        let r = run_churn(&p);
        assert_eq!(r.final_objects_divergent, 0, "repair must converge: {r:?}");
        assert_eq!(r.objects_lost, 0, "{r:?}");
    }
}
