//! Machine-availability trace and the Figure 7 availability study.
//!
//! The paper replays "an availability trace of machines in a large
//! corporation over a consecutive 35-day (840-hour) period" (Bolosky et
//! al.'s Microsoft desktop study) against the file placement, varying the
//! replica count 0–4. That trace is proprietary, so we synthesize one
//! with the same relevant structure (see DESIGN.md §2): hourly up/down
//! states, ~90% baseline availability with a diurnal dip, and one large
//! correlated failure event at hour 615 taking out ~12% of machines — the
//! spike at which the paper reports 12% of files unavailable for Kosha-0
//! versus 0.16% for Kosha-3.
//!
//! The replica-maintenance model follows Sections 4.2–4.4: every
//! placement unit (an anchor directory's subtree) keeps K+1 holders; each
//! hour, dead holders are replaced with the nearest live ring nodes *as
//! long as at least one holder is alive* to drive re-replication. If all
//! holders are down the unit is unavailable and its holder set freezes
//! until one returns (a failed machine's disk persists).

use crate::fstrace::FsTrace;
use crate::placement::anchor_dir_of;
use kosha_id::{dir_key, node_id_from_seed, Id};
use kosha_vfs::path::parent_and_name;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// Trace-generation parameters.
#[derive(Debug, Clone)]
pub struct AvailabilityParams {
    /// Number of machines.
    pub machines: usize,
    /// Trace length in hours (paper: 840).
    pub hours: usize,
    /// Long-run availability of a typical machine.
    pub base_availability: f64,
    /// Amplitude of the diurnal dip (fraction of machines that go down
    /// off-hours).
    pub diurnal_amplitude: f64,
    /// Hour of the correlated mass failure (paper: 615).
    pub spike_hour: usize,
    /// Fraction of machines taken down by the spike (paper: ~12%).
    pub spike_fraction: f64,
    /// How many hours the spike outage lasts.
    pub spike_duration: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AvailabilityParams {
    fn default() -> Self {
        AvailabilityParams {
            machines: 1024,
            hours: 840,
            base_availability: 0.92,
            diurnal_amplitude: 0.05,
            spike_hour: 615,
            spike_fraction: 0.12,
            spike_duration: 2,
            seed: 7,
        }
    }
}

/// An hourly up/down trace: `up[h][m]` is machine `m`'s state at hour `h`.
pub struct AvailabilityTrace {
    /// Per-hour machine states.
    pub up: Vec<Vec<bool>>,
}

impl AvailabilityTrace {
    /// Generates a synthetic trace.
    #[must_use]
    pub fn generate(p: &AvailabilityParams) -> Self {
        let mut rng = StdRng::seed_from_u64(p.seed);
        // Two-state Markov chain per machine. Mean downtime ~4 hours:
        // P(recover) = 0.25/hour; choose P(fail) for the target
        // availability: avail = up_rate/(up_rate+down_rate).
        let p_recover = 0.25f64;
        let p_fail = p_recover * (1.0 - p.base_availability) / p.base_availability;
        let mut state: Vec<bool> = (0..p.machines)
            .map(|_| rng.random::<f64>() < p.base_availability)
            .collect();
        let spike_victims: Vec<bool> = (0..p.machines)
            .map(|_| rng.random::<f64>() < p.spike_fraction)
            .collect();
        let mut up = Vec::with_capacity(p.hours);
        for h in 0..p.hours {
            // Diurnal modulation: more failures around hour 0-6 of each day.
            let hour_of_day = h % 24;
            let night = (2..7).contains(&hour_of_day);
            let fail_rate = if night {
                p_fail + p.diurnal_amplitude * p_recover
            } else {
                p_fail
            };
            for s in state.iter_mut() {
                if *s {
                    if rng.random::<f64>() < fail_rate {
                        *s = false;
                    }
                } else if rng.random::<f64>() < p_recover {
                    *s = true;
                }
            }
            if h >= p.spike_hour && h < p.spike_hour + p.spike_duration {
                for (s, &v) in state.iter_mut().zip(&spike_victims) {
                    if v {
                        *s = false;
                    }
                }
            }
            up.push(state.clone());
        }
        AvailabilityTrace { up }
    }

    /// Mean machine availability over the whole trace.
    #[must_use]
    pub fn mean_availability(&self) -> f64 {
        let total: usize = self
            .up
            .iter()
            .map(|h| h.iter().filter(|&&b| b).count())
            .sum();
        total as f64 / (self.up.len() * self.up[0].len()) as f64
    }

    /// Number of machines down at `hour`.
    #[must_use]
    pub fn down_at(&self, hour: usize) -> usize {
        self.up[hour].iter().filter(|&&b| !b).count()
    }
}

/// One placement unit: an anchor subtree with its file population.
struct Unit {
    key: Id,
    files: u64,
    /// Current holder machines (primary + K replicas).
    holders: Vec<usize>,
}

/// Hourly availability series produced by [`simulate_availability`].
#[derive(Debug, Clone)]
pub struct AvailabilitySeries {
    /// Percentage of files available at each hour.
    pub pct_available: Vec<f64>,
    /// Mean over all hours.
    pub average: f64,
    /// Minimum (the dip at the failure spike).
    pub minimum: f64,
}

/// Replays the availability trace against the placed file system with
/// `k` replicas per file and the given distribution level.
#[must_use]
pub fn simulate_availability(
    trace: &FsTrace,
    avail: &AvailabilityTrace,
    level: usize,
    k: usize,
    seed: u64,
) -> AvailabilitySeries {
    let machines = avail.up[0].len();
    let ids: Vec<Id> = (0..machines)
        .map(|i| node_id_from_seed(&format!("avail{seed}-{i}")))
        .collect();
    // Ring index for nearest-live queries.
    let ring: BTreeMap<Id, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();

    // Group files into placement units by anchor directory.
    let mut unit_files: HashMap<String, u64> = HashMap::new();
    for f in &trace.files {
        let (dir, _) = parent_and_name(&f.path).unwrap_or(("/", ""));
        let anchor = anchor_dir_of(dir, level);
        *unit_files.entry(anchor).or_insert(0) += 1;
    }
    let total_files: u64 = unit_files.values().sum();

    let nearest_live = |key: Id, exclude: &[usize], up: &[bool], want: usize| -> Vec<usize> {
        // Walk outward from the key in both ring directions.
        let mut out = Vec::with_capacity(want);
        let mut fwd = ring.range(key..).chain(ring.range(..key));
        let mut bwd = ring.range(..key).rev().chain(ring.range(key..).rev());
        let mut fcand = fwd.next();
        let mut bcand = bwd.next();
        let mut seen = vec![false; up.len()];
        for &e in exclude {
            seen[e] = true;
        }
        while out.len() < want {
            // Pick whichever candidate is ring-closer to the key.
            let pick = match (fcand, bcand) {
                (Some((&fi, &fm)), Some((&bi, &bm))) => {
                    if key.ring_distance(fi) <= key.ring_distance(bi) {
                        fcand = fwd.next();
                        Some((fi, fm))
                    } else {
                        bcand = bwd.next();
                        Some((bi, bm))
                    }
                }
                (Some((&fi, &fm)), None) => {
                    fcand = fwd.next();
                    Some((fi, fm))
                }
                (None, Some((&bi, &bm))) => {
                    bcand = bwd.next();
                    Some((bi, bm))
                }
                (None, None) => None,
            };
            let Some((_, m)) = pick else { break };
            if !seen[m] && up[m] {
                out.push(m);
            }
            seen[m] = true;
            if seen.iter().all(|&s| s) {
                break;
            }
        }
        out
    };

    // Initial placement: holders are the K+1 nearest machines that are
    // up at hour 0.
    let mut units: Vec<Unit> = unit_files
        .into_iter()
        .map(|(anchor, files)| {
            let name = if anchor == "/" {
                "/"
            } else {
                parent_and_name(&anchor).map(|(_, n)| n).unwrap_or("/")
            };
            let key = dir_key(name);
            let holders = nearest_live(key, &[], &avail.up[0], k + 1);
            Unit {
                key,
                files,
                holders,
            }
        })
        .collect();

    let mut pct = Vec::with_capacity(avail.up.len());
    for up in &avail.up {
        let mut available = 0u64;
        for u in &mut units {
            let live: Vec<usize> = u.holders.iter().copied().filter(|&m| up[m]).collect();
            if live.is_empty() {
                // All holders down: unavailable; holder set frozen (their
                // disks persist) until one returns.
                continue;
            }
            available += u.files;
            if live.len() < u.holders.len() || u.holders.len() < k + 1 {
                // A live holder re-replicates onto nearby live machines.
                let mut holders = live.clone();
                let extra = nearest_live(u.key, &holders, up, (k + 1) - holders.len());
                holders.extend(extra);
                u.holders = holders;
            }
        }
        pct.push(100.0 * available as f64 / total_files.max(1) as f64);
    }
    let average = pct.iter().sum::<f64>() / pct.len() as f64;
    let minimum = pct.iter().copied().fold(f64::INFINITY, f64::min);
    AvailabilitySeries {
        pct_available: pct,
        average,
        minimum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fstrace::TraceParams;

    fn small_setup() -> (FsTrace, AvailabilityTrace, AvailabilityParams) {
        let trace = FsTrace::generate(&TraceParams::default().scaled(0.005));
        let p = AvailabilityParams {
            machines: 64,
            hours: 120,
            spike_hour: 80,
            ..Default::default()
        };
        let avail = AvailabilityTrace::generate(&p);
        (trace, avail, p)
    }

    #[test]
    fn trace_hits_target_availability() {
        let p = AvailabilityParams {
            machines: 256,
            hours: 400,
            spike_fraction: 0.0,
            ..Default::default()
        };
        let t = AvailabilityTrace::generate(&p);
        let avail = t.mean_availability();
        assert!(
            (avail - p.base_availability).abs() < 0.05,
            "availability {avail} far from target {}",
            p.base_availability
        );
    }

    #[test]
    fn spike_downs_requested_fraction() {
        let p = AvailabilityParams {
            machines: 500,
            hours: 700,
            ..Default::default()
        };
        let t = AvailabilityTrace::generate(&p);
        let before = t.down_at(p.spike_hour - 1);
        let during = t.down_at(p.spike_hour);
        assert!(
            during as f64 >= before as f64 + 0.8 * p.spike_fraction * 0.88 * p.machines as f64,
            "spike too small: {before} -> {during}"
        );
    }

    #[test]
    fn replicas_improve_availability() {
        let (trace, avail, _) = small_setup();
        let k0 = simulate_availability(&trace, &avail, 3, 0, 1);
        let k1 = simulate_availability(&trace, &avail, 3, 1, 1);
        let k3 = simulate_availability(&trace, &avail, 3, 3, 1);
        assert!(k1.average > k0.average, "{} !> {}", k1.average, k0.average);
        assert!(k3.average >= k1.average);
        assert!(k3.average > 99.5, "Kosha-3 average {}", k3.average);
        assert!(k3.minimum >= k0.minimum);
    }

    #[test]
    fn no_replica_availability_tracks_machine_availability() {
        let (trace, avail, _) = small_setup();
        let k0 = simulate_availability(&trace, &avail, 3, 0, 1);
        let machine_avail = avail.mean_availability() * 100.0;
        // With re-placement on failure (repair), Kosha-0 does somewhat
        // better than raw machine availability but in the same regime.
        assert!(k0.average > machine_avail - 10.0);
        assert!(k0.average <= 100.0);
    }
}
