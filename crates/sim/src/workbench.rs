//! The file-system interface workloads are written against, so the same
//! benchmark drives both Kosha and the unmodified-NFS baseline.

use kosha::KoshaMount;
use kosha_nfs::NfsResult;
use kosha_vfs::{Attr, FileType};

/// Minimal file-system surface the Modified Andrew Benchmark needs.
pub trait Workbench {
    /// Create a directory chain.
    fn mkdir_p(&self, path: &str) -> NfsResult<()>;
    /// Write a whole file (creating it).
    fn write_file(&self, path: &str, data: &[u8]) -> NfsResult<()>;
    /// Read a whole file.
    fn read_file(&self, path: &str) -> NfsResult<Vec<u8>>;
    /// Stat a path.
    fn stat(&self, path: &str) -> NfsResult<Attr>;
    /// List a directory: names and types.
    fn readdir(&self, path: &str) -> NfsResult<Vec<(String, FileType)>>;
    /// Remove a file or symlink.
    fn remove(&self, path: &str) -> NfsResult<()>;
    /// Remove an empty directory.
    fn rmdir(&self, path: &str) -> NfsResult<()>;
    /// Rename within the tree.
    fn rename(&self, from: &str, to: &str) -> NfsResult<()>;
}

impl Workbench for KoshaMount {
    fn mkdir_p(&self, path: &str) -> NfsResult<()> {
        KoshaMount::mkdir_p(self, path).map(|_| ())
    }

    fn write_file(&self, path: &str, data: &[u8]) -> NfsResult<()> {
        KoshaMount::write_file(self, path, data).map(|_| ())
    }

    fn read_file(&self, path: &str) -> NfsResult<Vec<u8>> {
        KoshaMount::read_file(self, path)
    }

    fn stat(&self, path: &str) -> NfsResult<Attr> {
        KoshaMount::stat(self, path).map(|(_, a)| a)
    }

    fn readdir(&self, path: &str) -> NfsResult<Vec<(String, FileType)>> {
        Ok(KoshaMount::readdir(self, path)?
            .into_iter()
            .map(|e| (e.name, e.ftype))
            .collect())
    }

    fn remove(&self, path: &str) -> NfsResult<()> {
        KoshaMount::remove(self, path)
    }

    fn rmdir(&self, path: &str) -> NfsResult<()> {
        KoshaMount::rmdir(self, path)
    }

    fn rename(&self, from: &str, to: &str) -> NfsResult<()> {
        KoshaMount::rename(self, from, to)
    }
}
