//! Heat-driven read scaling (DESIGN.md §16): popularity-aware cached
//! replicas beyond K.
//!
//! The K durable replicas of §4.2 spread read load by a constant factor,
//! but a Zipf-popular object still funnels most of its reads through one
//! primary and K neighbors. This module lets a primary react to measured
//! demand: each primary feeds its [`kosha_obs::ReadHeat`] sketch from the
//! `ReplicaTargets` read-path RPC, and when an object's decayed heat
//! crosses [`crate::KoshaConfig::hot_threshold_milli`] it pushes up to
//! [`crate::KoshaConfig::hot_replicas`] extra **read-only cached copies**
//! onto the next leaf-set neighbors past the K replica targets.
//!
//! A hot copy is not a durable replica: it never counts toward K, is
//! never promoted, and is advertised to readers only while it holds a
//! **lease** — a `(mutation sequence, expiry)` pair stamped into the
//! holding slot's `.kosha_hot` marker. Any mutation of the object voids
//! the lease at the primary *before the mutation is acknowledged*, so a
//! reader that re-fetches targets (every `/kosha` read does) can never be
//! steered to pre-write data; the next flush barrier or maintenance tick
//! re-pushes fresh payload under a new lease while the object stays hot,
//! and drops the copies once heat decays below half the spawn threshold
//! (hysteresis). Copies orphaned by a primary failure age out through the
//! regular replica-slot GC: the slot carries a `.kosha_anchor`, and the
//! new owner's `ReplicaTargetsBySlot` answer will not list the holder.

use crate::control::{KoshaRequest, MigrateItem, MigrateKind, ReplicaOp};
use crate::node::KoshaNode;
use crate::paths::{anchor_slot, slot_local_path, Area, ANCHOR_META, HOT_MARK};
use kosha_nfs::{NfsReply, NfsRequest, NfsStatus};
use kosha_rpc::{NodeAddr, RpcRequest, ServiceId};
use kosha_vfs::path::parent_and_name;
use kosha_vfs::SetAttr;
use std::collections::BTreeMap;

/// Primary-side record of one object's outstanding hot copies.
#[derive(Debug, Clone)]
pub(crate) struct HotObject {
    /// Covering anchor of the object (hot state dies with the anchor).
    pub anchor: String,
    /// Nodes currently holding a pushed copy, in push order.
    pub holders: Vec<NodeAddr>,
    /// Primary mutation sequence the outstanding copies reflect; bumped
    /// on every mutation of the object.
    pub seq: u64,
    /// False after a mutation until the next refresh re-pushes fresh
    /// payload. Invalid copies are never advertised to readers.
    pub valid: bool,
    /// Lease expiry (virtual nanoseconds); expired copies are not
    /// advertised even if still valid.
    pub expires_nanos: u64,
}

/// Weight at which the rotor stops giving the primary data-read turns
/// entirely: the primary already pays a targets RPC per read, and a
/// scorching object's data path belongs on the copy holders.
pub(crate) const HOT_ROTOR_FULL_OFFLOAD: u64 = 5;

/// Deterministic heat-weighted read rotor: maps a monotonically
/// increasing turn counter to a read slot. Slot `0` is the primary;
/// slots `1..=targets` are the advertised copy holders, visited
/// round-robin. Each holder slot is repeated `weight` times per cycle,
/// so the primary serves `1/(1 + targets×weight)` of reads — with
/// `weight == 1` (cold object, or the feature off) this is exactly the
/// plain `turn % (targets + 1)` rotor the replica-read path always
/// used, and at [`HOT_ROTOR_FULL_OFFLOAD`] and above the primary serves
/// none at all (pure holder round-robin).
#[must_use]
pub(crate) fn heat_rotor_slot(turn: u64, targets: usize, weight: u64) -> usize {
    if targets == 0 {
        return 0;
    }
    let w = weight.max(1);
    if w >= HOT_ROTOR_FULL_OFFLOAD {
        return 1 + (turn % targets as u64) as usize;
    }
    let total = 1 + targets as u64 * w;
    let x = turn % total;
    if x == 0 {
        0
    } else {
        1 + ((x - 1) % targets as u64) as usize
    }
}

/// Path of `vpath` relative to its covering `anchor` (the
/// [`MigrateItem::rel_path`] convention).
fn anchor_rel(anchor: &str, vpath: &str) -> String {
    if anchor == "/" {
        vpath.strip_prefix('/').unwrap_or("").to_string()
    } else {
        vpath
            .strip_prefix(anchor)
            .map(|r| r.strip_prefix('/').unwrap_or(r))
            .unwrap_or("")
            .to_string()
    }
}

impl KoshaNode {
    fn hot_enabled(&self) -> bool {
        self.cfg.hot_replicas > 0
    }

    /// Heat a mutation-free read shed to cooled copies: below half the
    /// spawn threshold the copies are dropped (hysteresis).
    fn hot_shed_milli(&self) -> u64 {
        self.cfg.hot_threshold_milli / 2
    }

    /// Sets the `kosha_hot_copies` gauge to the number of pushed copies
    /// this primary currently tracks (valid or awaiting refresh).
    fn hot_gauge_sync(&self, map: &BTreeMap<String, HotObject>) {
        let n: i64 = map.values().map(|o| o.holders.len() as i64).sum();
        self.obs.registry.gauge("kosha_hot_copies").set(n);
    }

    /// Candidate holders for hot copies: the leaf-set neighbors *past*
    /// the K replica targets, in leaf-set order — deterministic, and by
    /// construction disjoint from the durable replica set.
    fn hot_candidates(&self) -> Vec<NodeAddr> {
        self.pastry
            .replica_targets(self.cfg.replicas + self.cfg.hot_replicas)
            .into_iter()
            .map(|n| n.addr)
            .skip(self.cfg.replicas)
            .collect()
    }

    /// Exports the object's current payload as a push item, or `None`
    /// when it is not (or no longer) a plain local file.
    fn hot_export(&self, anchor: &str, vpath: &str) -> Option<MigrateItem> {
        let store_path = slot_local_path(Area::Store, anchor, vpath);
        self.store.with_store(|v| {
            let (id, attr) = v.resolve(&store_path).ok()?;
            if attr.ftype != kosha_vfs::FileType::Regular {
                return None;
            }
            let (data, _) = v
                .read(id, 0, attr.size.min(u64::from(u32::MAX)) as u32)
                .ok()?;
            Some(MigrateItem {
                rel_path: anchor_rel(anchor, vpath),
                kind: MigrateKind::Bytes(data),
                mode: attr.mode,
                uid: attr.uid,
                gid: attr.gid,
            })
        })
    }

    /// Read-path hook, called from the primary's `ReplicaTargets`
    /// handler: records one unit of heat for `path`, spawns hot copies
    /// when it crosses the threshold, and returns the holders a reader
    /// may be steered to (valid, unexpired leases only).
    pub(crate) fn hot_read_extras(&self, path: &str, anchor: &str) -> Vec<NodeAddr> {
        if !self.hot_enabled() {
            return Vec::new();
        }
        let now = self.net.clock().now().0;
        self.heat.touch(path, now);
        let tracked = self.hot.lock().contains_key(path);
        if !tracked
            && self
                .heat
                .heat_milli_of(path, now)
                .is_some_and(|h| h >= self.cfg.hot_threshold_milli)
        {
            self.hot_spawn(path, anchor, now);
        }
        let map = self.hot.lock();
        match map.get(path) {
            Some(o) if o.valid && now < o.expires_nanos => o.holders.clone(),
            _ => Vec::new(),
        }
    }

    /// Pushes fresh copies of `path` to the candidate set and records
    /// the lease. `seq` continuity: a re-spawn after a drop starts a new
    /// lease generation, readers only ever see the latest.
    fn hot_spawn(&self, path: &str, anchor: &str, now: u64) {
        let Some(routing) = self.anchors.lock().get(anchor).cloned() else {
            return;
        };
        let Some(item) = self.hot_export(anchor, path) else {
            return;
        };
        let candidates = self.hot_candidates();
        if candidates.is_empty() {
            return;
        }
        let seq = self.hot.lock().get(path).map_or(1, |o| o.seq + 1);
        let expires = now + self.cfg.hot_lease_nanos;
        let holders = self.hot_push_to(&candidates, anchor, &routing, path, seq, expires, item);
        if holders.is_empty() {
            return;
        }
        self.journal(
            "hot_push",
            format!(
                "spawned {} hot cop(ies) of {path} (lease seq {seq})",
                holders.len()
            ),
        );
        let mut map = self.hot.lock();
        map.insert(
            path.to_string(),
            HotObject {
                anchor: anchor.to_string(),
                holders,
                seq,
                valid: true,
                expires_nanos: expires,
            },
        );
        self.hot_gauge_sync(&map);
    }

    /// Fans one `HotReplicaPush` out to `targets`, returning the subset
    /// that accepted the copy. Counts each success as a hot push.
    #[allow(clippy::too_many_arguments)]
    fn hot_push_to(
        &self,
        targets: &[NodeAddr],
        anchor: &str,
        routing: &str,
        path: &str,
        seq: u64,
        expires_nanos: u64,
        item: MigrateItem,
    ) -> Vec<NodeAddr> {
        let req = RpcRequest::new(
            ServiceId::KoshaReplica,
            &KoshaRequest::HotReplicaPush {
                anchor: anchor.to_string(),
                routing: routing.to_string(),
                path: path.to_string(),
                seq,
                expires_nanos,
                item,
            },
        );
        let batch = targets.iter().map(|a| (*a, req.clone())).collect();
        let results = self.net.call_many(self.info.addr, batch);
        let mut ok = Vec::new();
        for (addr, result) in targets.iter().zip(results) {
            if crate::primary::mirror_succeeded(result) {
                self.stats.hot_pushes.inc();
                ok.push(*addr);
            }
        }
        ok
    }

    /// Revokes the copies on `holders` (best-effort; a holder that
    /// misses the drop converges through replica-slot GC).
    fn hot_drop_on(&self, holders: &[NodeAddr], anchor: &str, path: &str) {
        if holders.is_empty() {
            return;
        }
        let req = RpcRequest::new(
            ServiceId::KoshaReplica,
            &KoshaRequest::HotReplicaDrop {
                anchor: anchor.to_string(),
                path: path.to_string(),
            },
        );
        let batch = holders.iter().map(|a| (*a, req.clone())).collect();
        let _ = self.net.call_many(self.info.addr, batch);
        self.stats.hot_drops.add(holders.len() as u64);
    }

    /// Mutation hook: voids `path`'s hot-copy leases *before* the
    /// mutation is acknowledged. From this moment `ReplicaTargets` stops
    /// advertising the holders, so no reader can be steered to pre-write
    /// data; the copies themselves are refreshed or dropped later.
    pub(crate) fn hot_invalidate(&self, path: &str) {
        if !self.hot_enabled() {
            return;
        }
        let mut map = self.hot.lock();
        if let Some(o) = map.get_mut(path) {
            o.seq += 1;
            if o.valid {
                o.valid = false;
                self.stats.hot_lease_invalidations.inc();
                drop(map);
                self.journal(
                    "hot_lease_invalidate",
                    format!("write to hot object {path} voided its copy leases"),
                );
            }
        }
    }

    /// Removal hook: forgets `path`'s heat and revokes its hot copies
    /// (the object is gone, so there is nothing left to refresh).
    pub(crate) fn hot_forget_object(&self, path: &str) {
        self.heat.forget(path);
        if !self.hot_enabled() {
            return;
        }
        let entry = self.hot.lock().remove(path);
        let Some(o) = entry else { return };
        self.hot_drop_on(&o.holders, &o.anchor, path);
        self.journal(
            "hot_drop",
            format!(
                "removed object {path}: revoked {} hot cop(ies)",
                o.holders.len()
            ),
        );
        self.hot_gauge_sync(&self.hot.lock());
    }

    /// Anchor teardown hook (rmdir of an anchor, demotion, migration
    /// away): drops every hot object the anchor covers.
    pub(crate) fn hot_forget_anchor(&self, anchor: &str) {
        if !self.hot_enabled() {
            return;
        }
        let victims: Vec<(String, HotObject)> = {
            let mut map = self.hot.lock();
            let keys: Vec<String> = map
                .iter()
                .filter(|(_, o)| o.anchor == anchor)
                .map(|(p, _)| p.clone())
                .collect();
            keys.into_iter()
                .filter_map(|p| map.remove(&p).map(|o| (p, o)))
                .collect()
        };
        for (path, o) in &victims {
            self.heat.forget(path);
            self.hot_drop_on(&o.holders, &o.anchor, path);
        }
        if !victims.is_empty() {
            self.journal(
                "hot_drop",
                format!(
                    "anchor {anchor} left this node: revoked hot copies of {} object(s)",
                    victims.len()
                ),
            );
            self.hot_gauge_sync(&self.hot.lock());
        }
    }

    /// Lease upkeep, piggybacked on [`KoshaNode::maintain`] (with
    /// `refresh_valid`) and on every write-behind flush barrier (without,
    /// so barriers only repair what a mutation invalidated):
    ///
    /// * heat below the shed threshold → revoke the copies and journal a
    ///   `hot_drop` (the decay path, mirroring `replica_gc`'s logging);
    /// * lease voided by a mutation → re-push fresh payload under a new
    ///   lease;
    /// * (`refresh_valid`) lease nearing expiry on a still-hot object →
    ///   renew it; holders that left the candidate set are revoked and
    ///   replaced.
    pub(crate) fn hot_sweep(&self, refresh_valid: bool) {
        if !self.hot_enabled() {
            return;
        }
        let snapshot: Vec<(String, HotObject)> = {
            let map = self.hot.lock();
            if map.is_empty() {
                return;
            }
            map.iter().map(|(p, o)| (p.clone(), o.clone())).collect()
        };
        let now = self.net.clock().now().0;
        for (path, o) in snapshot {
            let heat = self.heat.heat_milli_of(&path, now).unwrap_or(0);
            if heat < self.hot_shed_milli() {
                let removed = self.hot.lock().remove(&path);
                if let Some(o) = removed {
                    self.hot_drop_on(&o.holders, &o.anchor, &path);
                    self.journal(
                        "hot_drop",
                        format!(
                            "heat of {path} decayed to {heat} (< {}): revoked {} hot cop(ies)",
                            self.hot_shed_milli(),
                            o.holders.len()
                        ),
                    );
                    self.hot_gauge_sync(&self.hot.lock());
                }
                continue;
            }
            let lease_low = o.expires_nanos.saturating_sub(now) < self.cfg.hot_lease_nanos / 4;
            if !o.valid || (refresh_valid && lease_low) {
                self.hot_refresh(&path, &o, now);
            }
        }
    }

    /// Re-pushes fresh payload for a still-hot object under a new lease,
    /// re-aiming at the current candidate set (leaf churn may have moved
    /// it). Only commits the new lease if the tracked generation has not
    /// changed underneath the push (a concurrent write re-invalidates).
    fn hot_refresh(&self, path: &str, o: &HotObject, now: u64) {
        let Some(routing) = self.anchors.lock().get(&o.anchor).cloned() else {
            // No longer the primary for this anchor: forget the state;
            // holders converge through replica-slot GC.
            self.hot.lock().remove(path);
            self.hot_gauge_sync(&self.hot.lock());
            return;
        };
        let Some(item) = self.hot_export(&o.anchor, path) else {
            self.hot_forget_object(path);
            return;
        };
        let candidates = self.hot_candidates();
        let stale: Vec<NodeAddr> = o
            .holders
            .iter()
            .copied()
            .filter(|a| !candidates.contains(a))
            .collect();
        self.hot_drop_on(&stale, &o.anchor, path);
        if candidates.is_empty() {
            self.hot.lock().remove(path);
            self.hot_gauge_sync(&self.hot.lock());
            return;
        }
        let seq = o.seq + 1;
        let expires = now + self.cfg.hot_lease_nanos;
        let holders = self.hot_push_to(&candidates, &o.anchor, &routing, path, seq, expires, item);
        let mut map = self.hot.lock();
        match map.get_mut(path) {
            // A mutation may have raced the push fan-out; its seq bump
            // makes the entry visibly newer than the payload we shipped,
            // and the lease must then stay void until the next sweep.
            Some(cur) if cur.seq == o.seq => {
                cur.holders = holders;
                cur.seq = seq;
                cur.valid = true;
                cur.expires_nanos = expires;
            }
            Some(cur) => {
                cur.holders = holders;
            }
            None => {}
        }
        self.hot_gauge_sync(&map);
    }

    /// Hot-copy holders the anchor's owner still vouches for, appended
    /// to `ReplicaTargetsBySlot` GC answers so active hot slots survive
    /// the replica-slot GC while orphaned ones (dead or demoted primary)
    /// are collected.
    pub(crate) fn hot_holders_for_slot(&self, slot: &str) -> Vec<NodeAddr> {
        if !self.hot_enabled() {
            return Vec::new();
        }
        let map = self.hot.lock();
        let mut out = Vec::new();
        for o in map.values() {
            if anchor_slot(&o.anchor) == slot {
                for a in &o.holders {
                    if !out.contains(a) {
                        out.push(*a);
                    }
                }
            }
        }
        out
    }

    // ---- the holder (replica-service) side --------------------------------

    /// Parses the local slot's `.kosha_hot` marker:
    /// `(path, seq, expires)` per line, sorted by path.
    fn read_hot_mark(&self, anchor: &str) -> Vec<(String, u64, u64)> {
        let mark = format!(
            "{}/{}",
            slot_local_path(Area::Replica, anchor, anchor),
            HOT_MARK
        );
        let Some(text) = self.store.with_store(|v| {
            let (id, attr) = v.resolve(&mark).ok()?;
            let (data, _) = v.read(id, 0, attr.size as u32).ok()?;
            String::from_utf8(data).ok()
        }) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for line in text.lines() {
            let mut it = line.rsplitn(3, ' ');
            let (Some(exp), Some(seq), Some(path)) = (it.next(), it.next(), it.next()) else {
                continue;
            };
            if let (Ok(seq), Ok(exp)) = (seq.parse(), exp.parse()) {
                out.push((path.to_string(), seq, exp));
            }
        }
        out
    }

    /// Rewrites the slot's `.kosha_hot` marker (sorted, one lease per
    /// line), or removes it when no leases remain.
    fn write_hot_mark(
        &self,
        anchor: &str,
        mut leases: Vec<(String, u64, u64)>,
    ) -> Result<(), NfsStatus> {
        let dir = self.replica_dir_local(anchor, anchor)?;
        if leases.is_empty() {
            return match self.apply(NfsRequest::Remove {
                dir,
                name: HOT_MARK.into(),
            }) {
                Ok(_) | Err(NfsStatus::NoEnt) => Ok(()),
                Err(e) => Err(e),
            };
        }
        leases.sort();
        let mut text = String::new();
        for (path, seq, exp) in &leases {
            text.push_str(&format!("{path} {seq} {exp}\n"));
        }
        let fh = match self.apply(NfsRequest::Lookup {
            dir,
            name: HOT_MARK.into(),
        }) {
            Ok(NfsReply::Handle { fh, .. }) => fh,
            Err(NfsStatus::NoEnt) => match self.apply(NfsRequest::Create {
                dir,
                name: HOT_MARK.into(),
                mode: 0o600,
                uid: 0,
                gid: 0,
            })? {
                NfsReply::Handle { fh, .. } => fh,
                _ => return Err(NfsStatus::Io),
            },
            Err(e) => return Err(e),
            Ok(_) => return Err(NfsStatus::Io),
        };
        self.apply(NfsRequest::Setattr {
            fh,
            sattr: kosha_nfs::messages::WireSetAttr(SetAttr {
                size: Some(0),
                ..Default::default()
            }),
        })?;
        self.apply(NfsRequest::Write {
            fh,
            offset: 0,
            data: text.into_bytes(),
        })
        .map(|_| ())
    }

    /// `HotReplicaPush` handler: materializes the pushed copy in the
    /// local replica area and stamps its lease into `.kosha_hot`. Local
    /// state only — the payload rides in the request — preserving the
    /// replica service's no-nested-RPC discipline.
    pub(crate) fn receive_hot_push(
        &self,
        anchor: &str,
        routing: &str,
        path: &str,
        seq: u64,
        expires_nanos: u64,
        item: &MigrateItem,
    ) -> Result<(), NfsStatus> {
        let MigrateKind::Bytes(data) = &item.kind else {
            return Err(NfsStatus::Inval); // only plain files go hot
        };
        // The copy lands exactly where a durable replica of the object
        // would live, so the client's replica-read path serves it with
        // no special casing.
        let (pp, name) = parent_and_name(path).ok_or(NfsStatus::Inval)?;
        let dir = self.replica_dir_local(anchor, pp)?;
        let fh = match self.apply(NfsRequest::Lookup {
            dir,
            name: name.to_string(),
        }) {
            Ok(NfsReply::Handle { fh, .. }) => fh,
            Err(NfsStatus::NoEnt) => match self.apply(NfsRequest::Create {
                dir,
                name: name.to_string(),
                mode: item.mode,
                uid: item.uid,
                gid: item.gid,
            })? {
                NfsReply::Handle { fh, .. } => fh,
                _ => return Err(NfsStatus::Io),
            },
            Err(e) => return Err(e),
            Ok(_) => return Err(NfsStatus::Io),
        };
        self.apply(NfsRequest::Setattr {
            fh,
            sattr: kosha_nfs::messages::WireSetAttr(SetAttr {
                size: Some(0),
                ..Default::default()
            }),
        })?;
        self.apply(NfsRequest::Write {
            fh,
            offset: 0,
            data: data.clone(),
        })?;
        // Record the anchor's routing name so replica-slot GC can ask
        // the owner about this slot even though no full replica push
        // ever wrote the meta here.
        let root = self.replica_dir_local(anchor, anchor)?;
        if let Err(NfsStatus::NoEnt) = self
            .apply(NfsRequest::Lookup {
                dir: root,
                name: ANCHOR_META.into(),
            })
            .map(|_| ())
        {
            if let NfsReply::Handle { fh, .. } = self.apply(NfsRequest::Create {
                dir: root,
                name: ANCHOR_META.into(),
                mode: 0o600,
                uid: 0,
                gid: 0,
            })? {
                self.apply(NfsRequest::Write {
                    fh,
                    offset: 0,
                    data: routing.as_bytes().to_vec(),
                })?;
            }
        }
        let mut leases = self.read_hot_mark(anchor);
        leases.retain(|(p, _, _)| p != path);
        leases.push((path.to_string(), seq, expires_nanos));
        self.write_hot_mark(anchor, leases)
    }

    /// `HotReplicaDrop` handler: removes the leased copy and its marker
    /// line. A no-op when the slot carries no `.kosha_hot` lease for the
    /// path — in particular when this holder has since been promoted to
    /// a durable replica target (the full push's bracket replace cleared
    /// the marker, and the file now *is* the replica). When the last
    /// lease goes, the slot held nothing but hot copies, so the whole
    /// slot is removed.
    pub(crate) fn receive_hot_drop(&self, anchor: &str, path: &str) -> Result<(), NfsStatus> {
        let mut leases = self.read_hot_mark(anchor);
        let before = leases.len();
        leases.retain(|(p, _, _)| p != path);
        if leases.len() == before {
            return Ok(()); // nothing leased under that path here
        }
        if leases.is_empty() {
            // Drop the entire slot; it existed only for hot copies.
            return self.apply_replica_op(ReplicaOp::RemoveSlot {
                anchor: anchor.to_string(),
            });
        }
        let (pp, name) = parent_and_name(path).ok_or(NfsStatus::Inval)?;
        let dirp = slot_local_path(Area::Replica, anchor, pp);
        if let Ok(dir) = self.fh_of(&dirp) {
            match self.apply(NfsRequest::Remove {
                dir,
                name: name.to_string(),
            }) {
                Ok(_) | Err(NfsStatus::NoEnt) => {}
                Err(e) => return Err(e),
            }
        }
        self.write_hot_mark(anchor, leases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotor_weight_one_is_the_plain_round_robin() {
        // weight 1 must reproduce `turn % (targets + 1)` exactly — the
        // selection the replica-read path shipped with before heat
        // weighting existed (bench baselines depend on it).
        for targets in 1..5usize {
            for turn in 0..50u64 {
                let want = (turn % (targets as u64 + 1)) as usize;
                assert_eq!(heat_rotor_slot(turn, targets, 1), want);
            }
        }
    }

    #[test]
    fn rotor_weight_shrinks_the_primary_share() {
        // 3 targets at weight 4: the primary serves 1 read in 13.
        let mut primary = 0;
        let mut per_target = [0u32; 3];
        for turn in 0..13_000u64 {
            match heat_rotor_slot(turn, 3, 4) {
                0 => primary += 1,
                s => per_target[s - 1] += 1,
            }
        }
        assert_eq!(primary, 1000);
        assert_eq!(per_target, [4000, 4000, 4000]);
    }

    #[test]
    fn rotor_is_deterministic_for_a_fixed_seed() {
        // Property: for any seeded sequence of (turn, targets, weight)
        // triples, two evaluations agree — the rotor is a pure function
        // of its inputs, so read spreading cannot depend on timing.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let sample = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..512)
                .map(|_| {
                    let turn = rng.random_range(0..u64::MAX);
                    let targets = rng.random_range(0..8usize);
                    let weight = rng.random_range(0..6u64);
                    heat_rotor_slot(turn, targets, weight)
                })
                .collect()
        };
        assert_eq!(sample(42), sample(42));
        assert_eq!(sample(7), sample(7));
        // And every slot stays in range.
        for s in sample(42) {
            assert!(s <= 8);
        }
    }

    #[test]
    fn rotor_full_offload_never_picks_primary() {
        // At the weight cap the primary serves no data reads: the
        // holders take a pure round-robin.
        for turn in 0..30u64 {
            let slot = heat_rotor_slot(turn, 3, HOT_ROTOR_FULL_OFFLOAD);
            assert_eq!(slot, 1 + (turn % 3) as usize);
        }
        // ...unless there are no holders to offload to.
        assert_eq!(heat_rotor_slot(9, 0, HOT_ROTOR_FULL_OFFLOAD), 0);
    }

    #[test]
    fn rotor_no_targets_always_primary() {
        for turn in 0..10 {
            assert_eq!(heat_rotor_slot(turn, 0, 3), 0);
        }
    }

    #[test]
    fn anchor_rel_matches_slot_layout() {
        assert_eq!(anchor_rel("/", "/f.txt"), "f.txt");
        assert_eq!(anchor_rel("/a", "/a/b/c"), "b/c");
        assert_eq!(anchor_rel("/a", "/a"), "");
    }
}
