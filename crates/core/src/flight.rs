//! Cluster flight report: the analytics layer over the per-node flight
//! recorders, rendered as the `kosha-top` text dashboard and as a JSON
//! snapshot for benches.
//!
//! The report is assembled from already-collected state only — node
//! registries, journals, recorders, and read-heat trackers, plus the
//! transport's own observability domain. Building it issues no RPCs and
//! takes no node locks beyond the metric/journal mutexes, so it is safe
//! to render at any point of a simulation. Given a deterministic
//! transport (SimNetwork with a fixed seed) both renderings are
//! byte-identical across runs, which CI enforces.

use crate::audit::AuditReport;
use crate::node::KoshaNode;
use kosha_obs::recorder::{load_skew_x1000, slo_burn_x1000};
use kosha_obs::{HeatEntry, Obs};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Tuning for [`cluster_flight`].
#[derive(Debug, Clone)]
pub struct FlightOptions {
    /// How many heavy-hitter objects to report.
    pub top_n: usize,
    /// Latency SLO threshold in nanoseconds, applied to `slo_series`.
    pub slo_nanos: u64,
    /// Name of the transport-recorder series the SLO burn is computed
    /// from (a p99 latency series registered by the transport metrics).
    pub slo_series: String,
}

impl Default for FlightOptions {
    fn default() -> Self {
        FlightOptions {
            top_n: 5,
            slo_nanos: 2_000_000, // 2 ms
            slo_series: "rpc_latency_nanos{service=\"koshafs\"}:p99".to_string(),
        }
    }
}

/// One node's row in the dashboard.
#[derive(Debug, Clone)]
pub struct NodeRow {
    /// Transport address.
    pub addr: u64,
    /// `/kosha` operations served by this koshad.
    pub fs_ops: u64,
    /// Real NFS store operations executed on this node (its share of
    /// cluster load: primaries and replica holders do this work).
    pub store_ops: u64,
    /// READs this node served from a replica instead of the primary.
    pub replica_reads: u64,
    /// Heat-driven cached copies this node currently has outstanding as
    /// a primary (DESIGN.md §16; the `kosha_hot_copies` gauge).
    pub hot_copies: i64,
    /// Write-behind ops currently queued.
    pub wb_depth: i64,
    /// Coalesce ratio ×1000 (coalesced ops / enqueued ops).
    pub wb_coalesce_x1000: u64,
    /// Current distinct leaf-set membership.
    pub leaf_size: i64,
    /// Journal events retained / dropped.
    pub journal_len: usize,
    /// Journal events evicted by the ring.
    pub journal_dropped: u64,
    /// Live flight-recorder series on this node.
    pub series: usize,
}

/// The assembled cluster report.
#[derive(Debug, Clone)]
pub struct FlightReport {
    /// Virtual (or wall) time the report was taken at.
    pub now_nanos: u64,
    /// Per-node rows, address order.
    pub rows: Vec<NodeRow>,
    /// Store-load skew across nodes: max/mean ×1000.
    pub skew_max_over_mean_x1000: u64,
    /// Store-load Gini coefficient ×1000.
    pub skew_gini_x1000: u64,
    /// Cluster-wide heavy hitters (heat merged across nodes by key).
    pub heat: Vec<HeatEntry>,
    /// Hot-copy read scaling totals across nodes: `(outstanding copies,
    /// pushes, drops, lease invalidations)` — all zero with the feature
    /// off (DESIGN.md §16).
    pub hot: (u64, u64, u64, u64),
    /// `(burn ×1000, points over SLO, points total)` from the transport
    /// latency series; all zero when the series does not exist.
    pub slo: (u64, u64, u64),
    /// Replica-lag journal events across nodes, and the age of the
    /// oldest one still retained (`now - t_event`).
    pub lag_events: u64,
    /// Age in nanoseconds of the oldest retained lag event (0 if none).
    pub lag_max_age_nanos: u64,
    /// Summed telemetry-loss counters across node + transport domains:
    /// `(journal_dropped, trace_dropped, recorder_dropped, downsamples)`.
    pub telemetry_drops: (u64, u64, u64, u64),
    /// Live series across all domains.
    pub total_series: usize,
    /// Worst-case recorder payload bytes across all domains.
    pub memory_ceiling_bytes: usize,
    /// Anti-entropy audit results, when an audit pass was attached via
    /// [`FlightReport::attach_audit`]. `None` keeps the report (and its
    /// rendering) identical to pre-observatory output.
    pub audit: Option<AuditReport>,
}

/// Sums every `nfs_server_ops_total{proc=...}` counter in a registry.
fn store_ops(obs: &Obs) -> u64 {
    obs.registry
        .names()
        .iter()
        .filter(|n| n.starts_with("nfs_server_ops_total{"))
        .map(|n| obs.registry.counter(n).get())
        .sum()
}

/// Assembles the report at `now_nanos` from the nodes' and (optionally)
/// the transport's observability domains.
#[must_use]
pub fn cluster_flight(
    transport: Option<&Obs>,
    nodes: &[&KoshaNode],
    now_nanos: u64,
    opts: &FlightOptions,
) -> FlightReport {
    let mut rows = Vec::with_capacity(nodes.len());
    let mut heat_merge: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut lag_events = 0u64;
    let mut lag_max_age = 0u64;
    let mut drops = (0u64, 0u64, 0u64, 0u64);
    let mut hot = (0u64, 0u64, 0u64, 0u64);
    let mut total_series = 0usize;
    let mut mem = 0usize;

    let mut domains: Vec<Arc<Obs>> = Vec::new();
    for node in nodes {
        let obs = node.obs();
        let stats = node.stats();
        let enq = stats.writeback_enqueued;
        let coal = stats.writeback_coalesced_ops;
        let hot_copies = obs.registry.gauge("kosha_hot_copies").get();
        hot.0 += hot_copies.max(0) as u64;
        hot.1 += stats.hot_pushes;
        hot.2 += stats.hot_drops;
        hot.3 += stats.hot_lease_invalidations;
        rows.push(NodeRow {
            addr: node.addr().0,
            fs_ops: stats.fs_ops,
            store_ops: store_ops(&obs),
            replica_reads: stats.replica_reads,
            hot_copies,
            wb_depth: obs.registry.gauge("kosha_writeback_queue_depth").get(),
            wb_coalesce_x1000: (coal * 1000).checked_div(enq).unwrap_or(0),
            leaf_size: obs.registry.gauge("pastry_leaf_set_size").get(),
            journal_len: obs.journal.len(),
            journal_dropped: obs.journal.dropped(),
            series: obs.recorder.series_count(),
        });
        for e in node.heat.top(opts.top_n.max(1), now_nanos) {
            let slot = heat_merge.entry(e.key).or_insert((0, 0));
            slot.0 += e.heat_milli;
            slot.1 += e.err_milli;
        }
        for ev in obs.journal.of_kind("replica_lag") {
            lag_events += 1;
            lag_max_age = lag_max_age.max(now_nanos.saturating_sub(ev.t_nanos));
        }
        domains.push(obs);
    }
    rows.sort_by_key(|r| r.addr);

    if let Some(t) = transport {
        // The transport domain is not Arc-shared here; account it inline.
        drops.0 += t.journal.dropped();
        drops.1 += t.tracer.dropped();
        drops.2 += t.recorder.dropped();
        drops.3 += t.recorder.downsamples();
        total_series += t.recorder.series_count();
        mem += t.recorder.memory_ceiling_bytes();
    }
    for obs in &domains {
        drops.0 += obs.journal.dropped();
        drops.1 += obs.tracer.dropped();
        drops.2 += obs.recorder.dropped();
        drops.3 += obs.recorder.downsamples();
        total_series += obs.recorder.series_count();
        mem += obs.recorder.memory_ceiling_bytes();
    }

    let loads: Vec<u64> = rows.iter().map(|r| r.store_ops).collect();
    let (skew, gini) = load_skew_x1000(&loads);

    let mut heat: Vec<HeatEntry> = heat_merge
        .into_iter()
        .map(|(key, (heat_milli, err_milli))| HeatEntry {
            key,
            heat_milli,
            err_milli,
        })
        .collect();
    heat.sort_by(|a, b| {
        b.heat_milli
            .cmp(&a.heat_milli)
            .then_with(|| a.key.cmp(&b.key))
    });
    heat.truncate(opts.top_n);

    let slo = transport
        .and_then(|t| t.recorder.series(&opts.slo_series))
        .map(|pts| slo_burn_x1000(&pts, opts.slo_nanos))
        .unwrap_or((0, 0, 0));

    FlightReport {
        now_nanos,
        rows,
        skew_max_over_mean_x1000: skew,
        skew_gini_x1000: gini,
        heat,
        hot,
        slo,
        lag_events,
        lag_max_age_nanos: lag_max_age,
        telemetry_drops: drops,
        total_series,
        memory_ceiling_bytes: mem,
        audit: None,
    }
}

/// `1234` → `"1.234"` (milli-unit fixed point, always three decimals).
fn fmt_milli(v: u64) -> String {
    format!("{}.{:03}", v / 1000, v % 1000)
}

impl FlightReport {
    /// Attaches the result of an [`crate::audit_cluster`] pass taken at
    /// (roughly) the same instant; `render` and `to_json` then include
    /// the consistency-observatory panel.
    pub fn attach_audit(&mut self, audit: AuditReport) {
        self.audit = Some(audit);
    }

    /// The `kosha-top` text dashboard. Deterministic given deterministic
    /// inputs: fixed column set, address-sorted rows, integer math only.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "KOSHA-TOP  t={}ns  nodes={}\n",
            self.now_nanos,
            self.rows.len()
        ));
        out.push_str(&format!(
            "load skew: max/mean {}x  gini {}  |  slo burn {} ({}/{} over)\n",
            fmt_milli(self.skew_max_over_mean_x1000),
            fmt_milli(self.skew_gini_x1000),
            fmt_milli(self.slo.0),
            self.slo.1,
            self.slo.2,
        ));
        out.push_str(&format!(
            "replica lag: {} event(s), max age {}ns\n",
            self.lag_events, self.lag_max_age_nanos
        ));
        out.push('\n');
        out.push_str(
            "NODE      FSOPS   STOREOPS  REPL.RD  HOT  WB.Q  COAL   LEAF  J.LEN  J.DROP  SERIES\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "n{:<8} {:<7} {:<9} {:<8} {:<4} {:<5} {:<6} {:<5} {:<6} {:<7} {}\n",
                r.addr,
                r.fs_ops,
                r.store_ops,
                r.replica_reads,
                r.hot_copies,
                r.wb_depth,
                fmt_milli(r.wb_coalesce_x1000),
                r.leaf_size,
                r.journal_len,
                r.journal_dropped,
                r.series,
            ));
        }
        out.push('\n');
        out.push_str(&format!("HOT OBJECTS (top {})\n", self.heat.len()));
        for (i, e) in self.heat.iter().enumerate() {
            out.push_str(&format!(
                "{:>3}. {}  heat={}  err={}\n",
                i + 1,
                e.key,
                fmt_milli(e.heat_milli),
                fmt_milli(e.err_milli),
            ));
        }
        out.push_str(&format!(
            "hot copies: {} outstanding (pushes {}, drops {}, lease invalidations {})\n",
            self.hot.0, self.hot.1, self.hot.2, self.hot.3,
        ));
        out.push('\n');
        out.push_str(&format!(
            "telemetry: journal_drops={} trace_drops={} recorder_drops={} \
             downsamples={} series={} mem_ceiling={}B\n",
            self.telemetry_drops.0,
            self.telemetry_drops.1,
            self.telemetry_drops.2,
            self.telemetry_drops.3,
            self.total_series,
            self.memory_ceiling_bytes,
        ));
        if let Some(audit) = &self.audit {
            out.push('\n');
            out.push_str(&audit.render());
        }
        out
    }

    /// The report as a JSON object (hand-formatted, sorted, no deps).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"t_nanos\": {},\n", self.now_nanos));
        out.push_str(&format!(
            "  \"skew\": {{\"max_over_mean_x1000\": {}, \"gini_x1000\": {}}},\n",
            self.skew_max_over_mean_x1000, self.skew_gini_x1000
        ));
        out.push_str(&format!(
            "  \"slo\": {{\"burn_x1000\": {}, \"over\": {}, \"total\": {}}},\n",
            self.slo.0, self.slo.1, self.slo.2
        ));
        out.push_str(&format!(
            "  \"replica_lag\": {{\"events\": {}, \"max_age_nanos\": {}}},\n",
            self.lag_events, self.lag_max_age_nanos
        ));
        out.push_str("  \"nodes\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"addr\": {}, \"fs_ops\": {}, \"store_ops\": {}, \
                 \"replica_reads\": {}, \"hot_copies\": {}, \"wb_depth\": {}, \
                 \"wb_coalesce_x1000\": {}, \"leaf_size\": {}, \
                 \"journal_len\": {}, \"journal_dropped\": {}, \
                 \"series\": {}}}{}\n",
                r.addr,
                r.fs_ops,
                r.store_ops,
                r.replica_reads,
                r.hot_copies,
                r.wb_depth,
                r.wb_coalesce_x1000,
                r.leaf_size,
                r.journal_len,
                r.journal_dropped,
                r.series,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"heat_top\": [\n");
        for (i, e) in self.heat.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"key\": \"{}\", \"heat_milli\": {}, \"err_milli\": {}}}{}\n",
                e.key.replace('\\', "\\\\").replace('"', "\\\""),
                e.heat_milli,
                e.err_milli,
                if i + 1 < self.heat.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"hot\": {{\"copies\": {}, \"pushes\": {}, \"drops\": {}, \
             \"lease_invalidations\": {}}},\n",
            self.hot.0, self.hot.1, self.hot.2, self.hot.3,
        ));
        out.push_str(&format!(
            "  \"telemetry\": {{\"journal_drops\": {}, \"trace_drops\": {}, \
             \"recorder_drops\": {}, \"downsamples\": {}, \"series\": {}, \
             \"memory_ceiling_bytes\": {}}}{}\n",
            self.telemetry_drops.0,
            self.telemetry_drops.1,
            self.telemetry_drops.2,
            self.telemetry_drops.3,
            self.total_series,
            self.memory_ceiling_bytes,
            if self.audit.is_some() { "," } else { "" },
        ));
        if let Some(audit) = &self.audit {
            out.push_str(&format!("  \"audit\": {}\n", audit.to_json()));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KoshaConfig;
    use crate::mount::KoshaMount;
    use kosha_id::node_id_from_seed;
    use kosha_rpc::{Network, NodeAddr, SimNetwork};

    fn build_cluster(n: usize) -> (Arc<SimNetwork>, Vec<Arc<KoshaNode>>) {
        let net = SimNetwork::new_zero_latency();
        let mut nodes = Vec::new();
        for i in 0..n {
            let addr = NodeAddr(i as u64 + 1);
            let id = node_id_from_seed(&format!("kosha-host-{i}"));
            let mut cfg = KoshaConfig::for_tests();
            cfg.distribution_level = 1;
            cfg.read_from_replicas = true;
            let (node, mux) = KoshaNode::build(cfg, id, addr, net.clone() as _);
            net.attach(addr, mux);
            node.join(if i == 0 { None } else { Some(NodeAddr(1)) })
                .expect("join");
            nodes.push(node);
        }
        (net, nodes)
    }

    #[test]
    fn flight_report_is_deterministic_and_complete() {
        let run = || {
            let (net, nodes) = build_cluster(4);
            let mount = KoshaMount::new(net.clone() as _, NodeAddr(1), NodeAddr(1)).expect("mount");
            mount.mkdir_p("/kosha/proj").expect("mkdir");
            for i in 0..6 {
                mount
                    .write_file(&format!("/kosha/proj/f{i}"), &[7u8; 256])
                    .expect("write");
            }
            for _ in 0..10 {
                mount.read_file("/kosha/proj/f0").expect("read hot");
            }
            mount.read_file("/kosha/proj/f1").expect("read cold");
            net.run_pumps();
            let refs: Vec<&KoshaNode> = nodes.iter().map(|n| n.as_ref()).collect();
            let report = cluster_flight(
                Some(&net.obs()),
                &refs,
                net.clock().now().0,
                &FlightOptions::default(),
            );
            (report.render(), report.to_json())
        };
        let (text1, json1) = run();
        let (text2, json2) = run();
        assert_eq!(text1, text2, "kosha-top text must be deterministic");
        assert_eq!(json1, json2);
        // The hottest object is the repeatedly-read file.
        assert!(text1.contains("  1. /kosha/proj/f0"), "{text1}");
        assert!(json1.contains("\"key\": \"/kosha/proj/f0\""));
        // Hot-copy read scaling is off in for_tests() config, so the
        // panel and JSON report the feature as all-zero.
        assert!(text1.contains("hot copies: 0 outstanding"), "{text1}");
        assert!(json1.contains(
            "\"hot\": {\"copies\": 0, \"pushes\": 0, \"drops\": 0, \
             \"lease_invalidations\": 0}"
        ));
        // Rows exist for every node and series were recorded.
        assert_eq!(text1.matches("\nn").count(), 4, "{text1}");
        assert!(json1.contains("\"series\": "));
        // Store load is spread over more than one node at level 1
        // distribution, so skew is finite and gini is below 1.
        let report_line = text1.lines().nth(1).unwrap().to_string();
        assert!(report_line.contains("load skew"), "{report_line}");
    }

    #[test]
    fn flight_report_includes_audit_panel_when_attached() {
        let (net, nodes) = build_cluster(3);
        let mount = KoshaMount::new(net.clone() as _, NodeAddr(1), NodeAddr(1)).expect("mount");
        mount.mkdir_p("/proj").expect("mkdir");
        mount.write_file("/proj/f", b"audited").expect("write");
        net.run_pumps();
        let refs: Vec<&KoshaNode> = nodes.iter().map(|n| n.as_ref()).collect();
        let now = net.clock().now().0;
        let mut report = cluster_flight(Some(&net.obs()), &refs, now, &FlightOptions::default());
        let plain = report.to_json();
        assert!(!plain.contains("\"audit\""), "audit absent until attached");

        let peers: Vec<NodeAddr> = nodes.iter().map(|n| n.addr()).collect();
        let audit = crate::audit::audit_cluster(
            net.as_ref(),
            NodeAddr(1),
            &peers,
            now,
            &crate::audit::AuditOptions::default(),
        );
        report.attach_audit(audit);
        let text = report.render();
        assert!(text.contains("AUDIT  t="), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"audit\": {\"t_nanos\""), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn fmt_milli_is_fixed_point() {
        assert_eq!(fmt_milli(0), "0.000");
        assert_eq!(fmt_milli(1500), "1.500");
        assert_eq!(fmt_milli(12), "0.012");
    }
}
