//! The per-machine Kosha daemon (`koshad`) and its wiring.

use crate::config::KoshaConfig;
use crate::handles::{HandleTable, Location};
use crate::stats::{KoshaStats, StatsSnapshot};
use kosha_id::Id;
use kosha_nfs::{DiskModel, NfsClient, NfsServer};
use kosha_obs::Obs;
use kosha_pastry::{NodeInfo, OverlayError, OverlayObserver, PastryConfig, PastryNode};
use kosha_rpc::{Network, NodeAddr, ServiceId, ServiceMux};
use kosha_vfs::Vfs;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Weak};

/// Per-anchor memo of the last fully-acknowledged replica push: content
/// digest and the target set it was acked by.
pub(crate) type PushMemo = BTreeMap<String, ([u8; 20], Vec<NodeAddr>)>;

/// Client-side (interposition) state: the virtual handle table and the
/// resolution caches.
pub(crate) struct ClientState {
    /// Virtual handle table (§4.1.2).
    pub handles: HandleTable,
    /// Cache: virtual directory path → real location of its listing.
    pub dir_cache: HashMap<String, Location>,
    /// Cache: node address → handle of its `/kosha_store` export root.
    pub root_cache: HashMap<NodeAddr, kosha_nfs::Fh>,
}

/// One machine's Kosha instance: overlay endpoint, real NFS store, and
/// the koshad interposition layer. Create with [`KoshaNode::build`],
/// attach the returned mux to the transport, then call
/// [`KoshaNode::join`].
pub struct KoshaNode {
    pub(crate) cfg: KoshaConfig,
    pub(crate) info: NodeInfo,
    pub(crate) net: Arc<dyn Network>,
    pub(crate) pastry: Arc<PastryNode>,
    pub(crate) store: Arc<NfsServer>,
    pub(crate) nfs: NfsClient,
    pub(crate) client: Mutex<ClientState>,
    /// Anchors this node hosts as primary: virtual path → routing name.
    pub(crate) anchors: Mutex<BTreeMap<String, String>>,
    /// Salt source for capacity redirection (seeded from the node id for
    /// reproducible simulations).
    pub(crate) salt_rng: Mutex<StdRng>,
    /// Round-robin counter for read-from-replica selection (§4.2's
    /// future-work optimization, enabled by
    /// [`KoshaConfig::read_from_replicas`]).
    pub(crate) read_rr: std::sync::atomic::AtomicU64,
    /// Operational counters (handles into `obs`'s registry).
    pub(crate) stats: KoshaStats,
    /// Counts requests arriving at the koshad loopback server without a
    /// caller trace, for [`KoshaConfig::trace_sampling`].
    pub(crate) trace_seq: std::sync::atomic::AtomicU64,
    /// Per-node observability domain, shared by this koshad's overlay
    /// endpoint, NFS server/client, and interposition layer so their
    /// metrics and journal events correlate.
    pub(crate) obs: Arc<Obs>,
    /// Write-behind replication queues (one per replica target) and the
    /// flush-path metric handles; idle under `ReplicationMode::Sync`.
    pub(crate) writeback: crate::writeback::WritebackState,
    /// Per-object read popularity (EWMA with half-life decay, capped by
    /// a space-saving sketch) fed by the `/kosha` read path — the input
    /// the ROADMAP's popularity-aware read scaling needs.
    pub(crate) heat: kosha_obs::ReadHeat,
    /// Primary-side hot-copy ledger (DESIGN.md §16): virtual path → the
    /// object's outstanding heat-driven cached copies and their lease.
    /// Empty unless [`KoshaConfig::hot_replicas`] is non-zero.
    pub(crate) hot: Mutex<BTreeMap<String, crate::hot::HotObject>>,
    /// Full-push memo: per hosted anchor, the content digest and target
    /// set of the last fully-acknowledged replica push. Maintenance
    /// skips the `MigrateBatch` fan-out while both still match — the
    /// bracket replace would churn holder file identities (and every
    /// reader's cached replica handles) for nothing. Any mirror/push
    /// failure clears the memo, so anti-entropy healing still converges.
    pub(crate) replica_push_memo: Mutex<PushMemo>,
    /// Keeps the flight-recorder sampler hook alive: the transport holds
    /// only a `Weak`, so the node owns the `Arc` (dropping the node
    /// silently unregisters the hook on both transports).
    _sampler: Arc<NodeSampler>,
}

/// Per-node flight-recorder ticker. Registered as a transport pump hook:
/// `SimNetwork` fires it through its event heap — one-shot per
/// `run_pumps()` call, or as a recurring scheduler timer under
/// `run_until`/`run_for` (deterministic virtual time either way) —
/// while `ThreadedNetwork` ticks it from its shared timer thread. Each
/// tick refreshes the self-observability gauges and snapshots every
/// recorder source at the transport clock's current time.
struct NodeSampler {
    obs: Arc<Obs>,
    clock: Arc<dyn kosha_rpc::Clock>,
    /// Back-reference to the owning node, filled in right after the node
    /// is built (the sampler must exist first — the node owns it). Weak,
    /// so the sampler never keeps a dropped node alive.
    node: Mutex<Weak<KoshaNode>>,
}

impl kosha_rpc::PumpHook for NodeSampler {
    fn pump(&self) {
        if let Some(node) = self.node.lock().upgrade() {
            // Scan-based, self-healing census of outstanding `.kosha_lag`
            // markers (the consistency observatory's per-node gauge).
            node.refresh_lag_marker_gauge();
        }
        self.obs.export_self_gauges();
        self.obs.recorder.sample_all(self.clock.now().0);
    }
}

/// Handler wrapper for the Kosha control service.
pub(crate) struct ControlService(pub Arc<KoshaNode>);
/// Handler wrapper for the replica-maintenance service (a leaf service:
/// it only mutates the local replica area, never issuing nested RPCs, so
/// primaries can fan out to each other concurrently without deadlock).
pub(crate) struct ReplicaService(pub Arc<KoshaNode>);
/// Handler wrapper for the koshad loopback (virtual `/kosha`) NFS server.
pub(crate) struct VirtualFs(pub Arc<KoshaNode>);

/// Overlay observer relaying leaf-set changes into replica/migration
/// maintenance (§4.3).
struct LeafWatcher(Weak<KoshaNode>);

impl OverlayObserver for LeafWatcher {
    fn on_leaf_joined(&self, node: NodeInfo) {
        if let Some(k) = self.0.upgrade() {
            k.on_leaf_change(Some(node));
        }
    }
    fn on_leaf_left(&self, node: NodeInfo) {
        if let Some(k) = self.0.upgrade() {
            let _ = node;
            k.on_leaf_change(None);
        }
    }
}

impl KoshaNode {
    /// Builds a node and its service mux. The caller attaches the mux to
    /// the transport at `addr` and then calls [`KoshaNode::join`].
    pub fn build(
        cfg: KoshaConfig,
        id: Id,
        addr: NodeAddr,
        net: Arc<dyn Network>,
    ) -> (Arc<Self>, Arc<ServiceMux>) {
        let obs = Obs::new();
        let mut vfs = Vfs::new(cfg.contributed_bytes);
        vfs.mkdir_p("/kosha_store", 0o755).expect("store area");
        vfs.mkdir_p("/kosha_replica", 0o700).expect("replica area");
        let store = NfsServer::new_with_obs(
            vfs,
            net.clock(),
            DiskModel {
                bandwidth_bps: cfg.disk_bandwidth_bps,
                meta_op_cost: cfg.disk_meta_op,
            },
            &obs,
            addr,
        );
        let pastry = PastryNode::new_with_obs(
            PastryConfig {
                leaf_half: cfg.leaf_half,
                max_hops: 64,
                proximity_aware: false,
            },
            id,
            addr,
            Arc::clone(&net),
            Arc::clone(&obs),
        );
        let sampler = Arc::new(NodeSampler {
            obs: Arc::clone(&obs),
            clock: net.clock(),
            node: Mutex::new(Weak::new()),
        });
        // The lag-marker gauge doubles as a flight-recorder series so
        // churn analysis can plot outstanding write-behind windows.
        let lag_gauge = obs.registry.gauge("kosha_replica_lag_markers");
        obs.recorder
            .watch_gauge("kosha_replica_lag_markers", &lag_gauge);
        // Outstanding heat-driven cached copies pushed by this primary
        // (DESIGN.md §16), also recorded so the hotspot bench can plot
        // spawn and decay over time.
        let hot_gauge = obs.registry.gauge("kosha_hot_copies");
        obs.recorder.watch_gauge("kosha_hot_copies", &hot_gauge);
        let node = Arc::new(KoshaNode {
            info: pastry.info(),
            nfs: NfsClient::new(Arc::clone(&net), addr).observed(&obs),
            salt_rng: Mutex::new(StdRng::seed_from_u64(id.0 as u64)),
            read_rr: std::sync::atomic::AtomicU64::new(0),
            stats: KoshaStats::new(&obs),
            trace_seq: std::sync::atomic::AtomicU64::new(0),
            writeback: crate::writeback::WritebackState::new(&obs),
            heat: kosha_obs::ReadHeat::default(),
            hot: Mutex::new(BTreeMap::new()),
            replica_push_memo: Mutex::new(BTreeMap::new()),
            _sampler: Arc::clone(&sampler),
            obs,
            cfg,
            net,
            pastry: Arc::clone(&pastry),
            store,
            client: Mutex::new(ClientState {
                handles: HandleTable::new(),
                dir_cache: HashMap::new(),
                root_cache: HashMap::new(),
            }),
            anchors: Mutex::new(BTreeMap::new()),
        });
        *sampler.node.lock() = Arc::downgrade(&node);
        pastry.add_observer(Arc::new(LeafWatcher(Arc::downgrade(&node))));
        if let crate::config::ReplicationMode::WriteBehind { flush_interval, .. } =
            node.cfg.replication_mode
        {
            // ThreadedNetwork drives the pump from its shared timer
            // thread; SimNetwork records the hook in its event heap and
            // leaves pumping to explicit `run_pumps()` / `run_for()`
            // calls so simulations stay deterministic.
            let hook = Arc::downgrade(&node) as Weak<dyn kosha_rpc::PumpHook>;
            let _ = node.net.schedule_pump(hook, flush_interval);
        }
        // The sampler is always armed (every replication mode): under
        // SimNetwork each `run_pumps()` call (or `run_for` timer tick)
        // takes one flight-recorder snapshot per node; under
        // ThreadedNetwork the shared timer ticks it on the sampling
        // interval.
        let _ = node.net.schedule_pump(
            Arc::downgrade(&sampler) as Weak<dyn kosha_rpc::PumpHook>,
            node.cfg.sample_interval,
        );

        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Pastry, pastry);
        mux.register(ServiceId::Nfs, Arc::clone(&node.store) as _);
        mux.register(
            ServiceId::Kosha,
            Arc::new(ControlService(Arc::clone(&node))),
        );
        mux.register(ServiceId::KoshaFs, Arc::new(VirtualFs(Arc::clone(&node))));
        mux.register(
            ServiceId::KoshaReplica,
            Arc::new(ReplicaService(Arc::clone(&node))),
        );
        (node, mux)
    }

    /// Joins the overlay (pass `None` to start a new deployment).
    pub fn join(&self, bootstrap: Option<NodeAddr>) -> Result<(), OverlayError> {
        self.pastry.join(bootstrap)
    }

    /// This node's transport address.
    #[must_use]
    pub fn addr(&self) -> NodeAddr {
        self.info.addr
    }

    /// This node's Pastry identifier.
    #[must_use]
    pub fn id(&self) -> Id {
        self.info.id
    }

    /// The overlay endpoint (tests and experiments probe it directly).
    #[must_use]
    pub fn pastry(&self) -> &Arc<PastryNode> {
        &self.pastry
    }

    /// The deployment configuration.
    #[must_use]
    pub fn config(&self) -> &KoshaConfig {
        &self.cfg
    }

    /// Direct access to the node's local store (administration and test
    /// inspection; users go through the `/kosha` mount).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut Vfs) -> R) -> R {
        self.store.with_store(f)
    }

    /// Runs periodic maintenance: overlay liveness probes, replica
    /// refresh for every hosted anchor, garbage collection of replica
    /// slots whose owner no longer counts us as a target, and hot-copy
    /// lease upkeep (refresh leases still-hot objects, shed cooled
    /// ones — DESIGN.md §16). Simulations call this after failure
    /// events, standing in for the paper's background daemon activity.
    pub fn maintain(&self) {
        self.pastry.maintain();
        self.on_leaf_change(None);
        self.gc_replica_slots();
        self.hot_sweep(true);
        // Drop cached export-root handles for peers the overlay no longer
        // knows. A departed node's handle is dead weight, and a revived
        // node purges its Kosha data (§4.3) and re-exports, so a stale
        // entry would dangle anyway — without this, churn grows the
        // per-peer cache without bound.
        let known: std::collections::HashSet<NodeAddr> =
            self.pastry.known_nodes().iter().map(|n| n.addr).collect();
        self.client
            .lock()
            .root_cache
            .retain(|addr, _| known.contains(addr));
    }

    /// Point-in-time operational counters for this koshad.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// This node's observability domain: the metric registry behind
    /// [`KoshaNode::stats`] plus the event journal recording failovers,
    /// promotions, migrations, and redirections. Shared with the node's
    /// overlay endpoint and NFS components.
    #[must_use]
    pub fn obs(&self) -> Arc<Obs> {
        Arc::clone(&self.obs)
    }

    /// The `n` hottest objects read through this node's `/kosha` mount,
    /// decayed to the transport clock's current time. Heat is an EWMA
    /// with half-life decay in milli-units (1000 ≈ one recent read);
    /// entries may carry an overestimate bound from sketch evictions.
    #[must_use]
    pub fn read_heat_top(&self, n: usize) -> Vec<kosha_obs::HeatEntry> {
        self.heat.top(n, self.net.clock().now().0)
    }

    /// Journals a node-scoped event stamped on the transport clock.
    pub(crate) fn journal(&self, kind: &'static str, detail: String) {
        let op = self.obs.next_op_id();
        self.obs
            .journal
            .record(self.net.clock().now().0, self.info.addr.0, kind, op, detail);
    }

    /// Anchors hosted on this node as primary: `(path, routing name)`.
    #[must_use]
    pub fn hosted_anchors(&self) -> Vec<(String, String)> {
        self.anchors
            .lock()
            .iter()
            .map(|(p, r)| (p.clone(), r.clone()))
            .collect()
    }

    /// Simulates this machine being reincarnated: wipes all Kosha data
    /// (§4.3: "all Kosha data on a revived node is purged") and rejoins
    /// the overlay under a new identity is left to the caller (purge only
    /// here).
    pub fn purge(&self) {
        self.store.with_store(|v| {
            v.purge();
            v.mkdir_p("/kosha_store", 0o755).expect("store area");
            v.mkdir_p("/kosha_replica", 0o700).expect("replica area");
        });
        self.anchors.lock().clear();
        let mut c = self.client.lock();
        c.dir_cache.clear();
        c.root_cache.clear();
    }
}
