//! The koshad client-side operations: the virtual `/kosha` file system.
//!
//! These are the operations the loopback NFS server (Figure 4 of the
//! paper) performs for local applications. Handles are *virtual*
//! (§4.1.2); every operation resolves (or reuses) the real location,
//! forwards mutations to the primary via the control protocol, performs
//! reads via direct NFS, and transparently retries through failures
//! (§4.4).

use crate::control::{KoshaReply, KoshaRequest};
use crate::handles::Location;
use crate::node::{KoshaNode, VirtualFs};
use crate::paths::{is_distributed_dir, is_internal_name};
use crate::resolve::is_special_link_mode;
use kosha_id::salted_name;
use kosha_nfs::messages::{NfsReplyFrame, WireAttr, WireDirEntry, WireSetAttr};
use kosha_nfs::{Fh, NfsError, NfsReply, NfsRequest, NfsResult, NfsStatus};
use kosha_pastry::NodeInfo;
use kosha_rpc::{NodeAddr, RpcError, RpcHandler, RpcResponse, WireRead};
use kosha_vfs::path::validate_name;
use kosha_vfs::{join_path, Attr, FileType, SetAttr};
use rand::Rng;

/// A directory entry of the virtual file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KoshaDirEntry {
    /// Entry name.
    pub name: String,
    /// Virtual handle.
    pub fh: Fh,
    /// Entry type as users see it (special links appear as directories).
    pub ftype: FileType,
}

impl KoshaNode {
    // ---- handle plumbing ---------------------------------------------

    /// The virtual root handle (what MOUNT returns for `/kosha`).
    #[must_use]
    pub fn k_root(&self) -> Fh {
        self.client.lock().handles.root()
    }

    fn vh_path(&self, fh: Fh) -> NfsResult<String> {
        self.client
            .lock()
            .handles
            .get(fh)
            .map(|e| e.path.clone())
            .ok_or(NfsError::Status(NfsStatus::Stale))
    }

    fn mint(&self, path: &str, ftype: FileType, loc: Option<Location>) -> Fh {
        let mut c = self.client.lock();
        let fh = c.handles.mint(path, ftype);
        if let Some(l) = loc {
            c.handles.set_location(fh, l);
        }
        fh
    }

    fn ensure_obj(&self, fh: Fh) -> NfsResult<(String, Location, FileType)> {
        let (path, ftype, loc) = {
            let c = self.client.lock();
            let e = c
                .handles
                .get(fh)
                .ok_or(NfsError::Status(NfsStatus::Stale))?;
            (e.path.clone(), e.ftype, e.loc)
        };
        if let Some(l) = loc {
            return Ok((path, l, ftype));
        }
        let (l, attr) = self.resolve_object(&path)?;
        let mut c = self.client.lock();
        c.handles.set_location(fh, l);
        Ok((path, l, attr.ftype))
    }

    // ---- namespace operations -----------------------------------------

    /// LOOKUP: resolve `name` under the directory handle `dir`.
    pub fn k_lookup(&self, dir: Fh, name: &str) -> NfsResult<(Fh, Attr)> {
        validate_name(name).map_err(|e| NfsError::Status(e.into()))?;
        let dpath = self.vh_path(dir)?;
        let vpath = join_path(&dpath, name);
        let (loc, mut attr) = self.with_path_retry(&vpath, |s| s.resolve_object(&vpath))?;
        if attr.ftype == FileType::Symlink && is_special_link_mode(attr.mode) {
            attr.ftype = FileType::Directory;
        }
        let fh = self.mint(&vpath, attr.ftype, Some(loc));
        Ok((fh, attr))
    }

    /// GETATTR on a virtual handle.
    pub fn k_getattr(&self, fh: Fh) -> NfsResult<Attr> {
        let vpath = self.vh_path(fh)?;
        self.with_path_retry(&vpath, |s| {
            let (_, loc, _) = s.ensure_obj(fh)?;
            s.nfs.getattr(loc.addr, loc.fh)
        })
    }

    /// SETATTR (replicated through the primary).
    pub fn k_setattr(&self, fh: Fh, sattr: SetAttr) -> NfsResult<Attr> {
        let vpath = self.vh_path(fh)?;
        self.with_path_retry(&vpath, |s| {
            let (path, loc, _) = s.ensure_obj(fh)?;
            s.control(
                loc.addr,
                &KoshaRequest::SetAttr {
                    path,
                    sattr: WireSetAttr(sattr.clone()),
                },
            )?;
            s.nfs.getattr(loc.addr, loc.fh)
        })
    }

    /// READ directly from the primary's store over NFS — or, when
    /// [`crate::KoshaConfig::read_from_replicas`] is on, round-robined
    /// across the primary and its replica holders (§4.2's future-work
    /// optimization), with transparent fallback to the primary. Replica
    /// reads trade a window of staleness for read scalability, like NFS
    /// client caching does.
    pub fn k_read(&self, fh: Fh, offset: u64, count: u32) -> NfsResult<(Vec<u8>, bool)> {
        let vpath = self.vh_path(fh)?;
        // Feed the read-heat tracker before target selection: heat
        // counts demand for the object regardless of which holder ends
        // up serving it (the signal hot-replica spawning needs).
        self.heat.touch(&vpath, self.net.clock().now().0);
        if self.cfg.read_from_replicas {
            if let Some(out) = self.try_replica_read(&vpath, offset, count) {
                return Ok(out);
            }
        }
        self.with_path_retry(&vpath, |s| {
            let (_, loc, ftype) = s.ensure_obj(fh)?;
            if ftype == FileType::Directory {
                return Err(NfsError::Status(NfsStatus::IsDir));
            }
            s.nfs.read(loc.addr, loc.fh, offset, count)
        })
    }

    /// Attempts one replica read; `None` falls back to the primary
    /// (primary's round-robin turn, no replicas, or any failure).
    ///
    /// Target choice is latency-aware: when the transport exposes
    /// per-peer latency EWMAs, the round-robin is restricted to targets
    /// within 10% of the fastest (unmeasured targets always qualify —
    /// they need traffic to get measured at all). The replica's real
    /// file handle is cached per `(node, path)` in the handle table, so
    /// repeated reads skip the mount + lookup RPCs; the cache entry is
    /// dropped on a failed read and by the same chain-, node-, and
    /// subtree-scoped invalidation as primary locations.
    fn try_replica_read(&self, vpath: &str, offset: u64, count: u32) -> Option<(Vec<u8>, bool)> {
        use crate::paths::{slot_local_path, Area};
        let (ppath, _) = kosha_vfs::path::parent_and_name(vpath)?;
        let ploc = self.resolve_dir(ppath).ok()?;
        let targets = match self
            .control(
                ploc.addr,
                &KoshaRequest::ReplicaTargets {
                    path: vpath.to_string(),
                },
            )
            .ok()?
        {
            KoshaReply::Nodes(v) => v,
            _ => return None,
        };
        if targets.is_empty() {
            return None;
        }
        // Heat-weighted rotor (DESIGN.md §16): a hot object leans harder
        // on its copy holders — each holder slot repeats once per
        // threshold-multiple of the object's locally-observed heat, and
        // at the 4× cap the primary stops taking data-read turns
        // entirely — while a cold object (or the feature being off)
        // degenerates to the plain `turn % (targets + 1)` round-robin
        // this path always used.
        let turn = self
            .read_rr
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let weight = if self.cfg.hot_replicas > 0 && self.cfg.hot_threshold_milli > 0 {
            let heat = self
                .heat
                .heat_milli_of(vpath, self.net.clock().now().0)
                .unwrap_or(0);
            1 + (heat / self.cfg.hot_threshold_milli).min(4)
        } else {
            1
        };
        let turn = crate::hot::heat_rotor_slot(turn, targets.len(), weight) as u64;
        if turn == 0 {
            return None; // the primary's turn
        }
        let lats: Vec<Option<u64>> = targets
            .iter()
            .map(|&a| self.net.peer_latency_nanos(self.info.addr, a))
            .collect();
        let eligible: Vec<NodeAddr> = match lats.iter().flatten().min().copied() {
            None => targets.clone(),
            Some(best) => targets
                .iter()
                .zip(&lats)
                .filter(|(_, l)| l.is_none_or(|l| l <= best + best / 10))
                .map(|(&a, _)| a)
                .collect(),
        };
        let addr = eligible[(turn - 1) as usize % eligible.len()];
        let cached = self.client.lock().handles.replica_location(addr, vpath);
        let rfh = match cached {
            Some(fh) => {
                self.stats.replica_handle_hits.inc();
                fh
            }
            None => {
                let anchor = self.covering_anchor(ppath);
                let rpath = slot_local_path(Area::Replica, &anchor, vpath);
                let root = self.nfs.mount(addr).ok()?;
                let (rfh, attr) = self.nfs.lookup_path(addr, root, &rpath).ok()?;
                if attr.ftype != FileType::Regular {
                    return None;
                }
                self.client
                    .lock()
                    .handles
                    .set_replica_location(addr, vpath, rfh);
                rfh
            }
        };
        match self.nfs.read(addr, rfh, offset, count) {
            Ok(out) => {
                self.stats.replica_reads.inc();
                Some(out)
            }
            Err(_) => {
                self.client
                    .lock()
                    .handles
                    .clear_replica_location(addr, vpath);
                None
            }
        }
    }

    /// COMMIT: an fsync barrier through the virtual mount. Store writes
    /// are synchronous at the primary, so COMMIT's remaining duty is the
    /// write-behind flush barrier — the primary must push every queued
    /// mirrored op to its replicas before acknowledging (a no-op under
    /// `Sync` replication).
    pub fn k_commit(&self, fh: Fh) -> NfsResult<()> {
        let vpath = self.vh_path(fh)?;
        self.with_path_retry(&vpath, |s| {
            let (path, loc, _) = s.ensure_obj(fh)?;
            s.control(loc.addr, &KoshaRequest::Flush { path })
                .map(|_| ())
        })
    }

    /// WRITE through the primary (which fans out to replicas).
    pub fn k_write(&self, fh: Fh, offset: u64, data: &[u8]) -> NfsResult<u32> {
        let vpath = self.vh_path(fh)?;
        self.with_path_retry(&vpath, |s| {
            let (path, loc, ftype) = s.ensure_obj(fh)?;
            if ftype == FileType::Directory {
                return Err(NfsError::Status(NfsStatus::IsDir));
            }
            s.control(
                loc.addr,
                &KoshaRequest::Write {
                    path,
                    offset,
                    data: data.to_vec(),
                },
            )?;
            Ok(data.len() as u32)
        })
    }

    /// CREATE a regular file in the directory `dir`.
    pub fn k_create(
        &self,
        dir: Fh,
        name: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> NfsResult<(Fh, Attr)> {
        self.k_create_inner(dir, name, mode, uid, gid, None)
    }

    /// CREATE a quota-charged sparse file (simulation workloads).
    pub fn k_create_sized(
        &self,
        dir: Fh,
        name: &str,
        size: u64,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> NfsResult<(Fh, Attr)> {
        self.k_create_inner(dir, name, mode, uid, gid, Some(size))
    }

    fn k_create_inner(
        &self,
        dir: Fh,
        name: &str,
        mode: u32,
        uid: u32,
        gid: u32,
        size: Option<u64>,
    ) -> NfsResult<(Fh, Attr)> {
        validate_name(name).map_err(|e| NfsError::Status(e.into()))?;
        let dpath = self.vh_path(dir)?;
        let vpath = join_path(&dpath, name);
        let (loc, attr) = self.with_path_retry(&vpath, |s| {
            let parent = s.resolve_dir(&dpath)?;
            let reply = s.control(
                parent.addr,
                &KoshaRequest::CreateFile {
                    path: vpath.clone(),
                    mode,
                    uid,
                    gid,
                    size,
                },
            )?;
            let (efh, attr) = match reply {
                KoshaReply::Handle { fh, attr } => (fh, attr.0),
                _ => s.nfs.lookup(parent.addr, parent.fh, name)?,
            };
            Ok((
                Location {
                    addr: parent.addr,
                    fh: efh,
                },
                attr,
            ))
        })?;
        let fh = self.mint(&vpath, attr.ftype, Some(loc));
        Ok((fh, attr))
    }

    /// MKDIR: distributed placement for directories within the
    /// distribution level (§3.1–3.3), plain creation below it.
    pub fn k_mkdir(
        &self,
        dir: Fh,
        name: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> NfsResult<(Fh, Attr)> {
        validate_name(name).map_err(|e| NfsError::Status(e.into()))?;
        let dpath = self.vh_path(dir)?;
        let vpath = join_path(&dpath, name);
        let distributed = is_distributed_dir(&vpath, self.cfg.distribution_level);
        let (loc, attr) = self.with_path_retry(&vpath, |s| {
            let parent = s.resolve_dir(&dpath)?;
            if distributed {
                match s.nfs.lookup(parent.addr, parent.fh, name) {
                    Ok(_) => return Err(NfsError::Status(NfsStatus::Exist)),
                    Err(NfsError::Status(NfsStatus::NoEnt)) => {}
                    Err(e) => return Err(e),
                }
                let (owner, routing) = s.place_with_redirection(name)?;
                s.control(
                    owner.addr,
                    &KoshaRequest::MkdirAnchor {
                        path: vpath.clone(),
                        routing_name: routing.clone(),
                        mode,
                        uid,
                        gid,
                    },
                )?;
                s.control(
                    parent.addr,
                    &KoshaRequest::PlaceLink {
                        path: vpath.clone(),
                        target: routing,
                        uid,
                        gid,
                    },
                )?;
            } else {
                let reply = s.control(
                    parent.addr,
                    &KoshaRequest::MkdirLocal {
                        path: vpath.clone(),
                        mode,
                        uid,
                        gid,
                    },
                )?;
                if let KoshaReply::Handle { fh, attr } = reply {
                    let loc = Location {
                        addr: parent.addr,
                        fh,
                    };
                    s.client.lock().dir_cache.insert(vpath.clone(), loc);
                    return Ok((loc, attr.0));
                }
            }
            let loc = s.resolve_dir(&vpath)?;
            let attr = s.nfs.getattr(loc.addr, loc.fh)?;
            Ok((loc, attr))
        })?;
        let fh = self.mint(&vpath, FileType::Directory, Some(loc));
        Ok((fh, attr))
    }

    /// Chooses the storage node for a new distributed directory, salting
    /// and re-hashing while the mapped node is too full (§3.3).
    fn place_with_redirection(&self, name: &str) -> NfsResult<(NodeInfo, String)> {
        let mut last_err = NfsError::Status(NfsStatus::NoSpc);
        for attempt in 0..=self.cfg.redirect_attempts {
            let salt = if attempt == 0 {
                None
            } else {
                self.stats.redirections.inc();
                self.journal(
                    "redirection",
                    format!("placement attempt {attempt} for {name:?} (previous node full)"),
                );
                Some(self.salt_rng.lock().random_range(0..1_000_000u64))
            };
            let routing = salted_name(name, salt);
            let owner = match self.owner_of(&routing) {
                Ok(o) => o,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            match self.control(owner.addr, &KoshaRequest::StoreStats) {
                Ok(KoshaReply::Stats { capacity, used, .. }) => {
                    let util = if capacity == 0 {
                        1.0
                    } else {
                        used as f64 / capacity as f64
                    };
                    if util < self.cfg.redirect_utilization {
                        return Ok((owner, routing));
                    }
                }
                Ok(_) => {}
                Err(e) => last_err = e,
            }
        }
        let _ = last_err;
        Err(NfsError::Status(NfsStatus::NoSpc))
    }

    /// SYMLINK (user-level; lives with its parent directory).
    pub fn k_symlink(
        &self,
        dir: Fh,
        name: &str,
        target: &str,
        uid: u32,
        gid: u32,
    ) -> NfsResult<(Fh, Attr)> {
        validate_name(name).map_err(|e| NfsError::Status(e.into()))?;
        let dpath = self.vh_path(dir)?;
        let vpath = join_path(&dpath, name);
        let (loc, attr) = self.with_path_retry(&vpath, |s| {
            let parent = s.resolve_dir(&dpath)?;
            s.control(
                parent.addr,
                &KoshaRequest::SymlinkFile {
                    path: vpath.clone(),
                    target: target.to_string(),
                    uid,
                    gid,
                },
            )?;
            let (efh, attr) = s.nfs.lookup(parent.addr, parent.fh, name)?;
            Ok((
                Location {
                    addr: parent.addr,
                    fh: efh,
                },
                attr,
            ))
        })?;
        let fh = self.mint(&vpath, attr.ftype, Some(loc));
        Ok((fh, attr))
    }

    /// ACCESS (NFSv3): which permission bits `uid`/`gid` hold on the
    /// object. Kosha preserves permissions unchanged, so the check is
    /// simply forwarded to wherever the object lives (§4.1.6: "Security
    /// in Kosha is identical to NFS since files in Kosha maintain their
    /// permissions").
    pub fn k_access(&self, fh: Fh, uid: u32, gid: u32, want: u32) -> NfsResult<u32> {
        let vpath = self.vh_path(fh)?;
        self.with_path_retry(&vpath, |s| {
            let (_, loc, _) = s.ensure_obj(fh)?;
            s.nfs.access(loc.addr, loc.fh, uid, gid, want)
        })
    }

    /// READLINK on a user symlink.
    pub fn k_readlink(&self, fh: Fh) -> NfsResult<String> {
        let vpath = self.vh_path(fh)?;
        self.with_path_retry(&vpath, |s| {
            let (_, loc, _) = s.ensure_obj(fh)?;
            s.nfs.readlink(loc.addr, loc.fh)
        })
    }

    /// REMOVE a file or user symlink.
    pub fn k_remove(&self, dir: Fh, name: &str) -> NfsResult<()> {
        validate_name(name).map_err(|e| NfsError::Status(e.into()))?;
        let dpath = self.vh_path(dir)?;
        let vpath = join_path(&dpath, name);
        self.with_path_retry(&vpath, |s| {
            let parent = s.resolve_dir(&dpath)?;
            let (_, attr) = s.nfs.lookup(parent.addr, parent.fh, name)?;
            match attr.ftype {
                FileType::Directory => Err(NfsError::Status(NfsStatus::IsDir)),
                FileType::Symlink
                    if is_special_link_mode(attr.mode)
                        && is_distributed_dir(&vpath, s.cfg.distribution_level) =>
                {
                    Err(NfsError::Status(NfsStatus::IsDir))
                }
                _ => s
                    .control(
                        parent.addr,
                        &KoshaRequest::Remove {
                            path: vpath.clone(),
                        },
                    )
                    .map(|_| ()),
            }
        })?;
        self.forget_path(&vpath);
        Ok(())
    }

    /// RMDIR: empty-directory removal, including distributed directories
    /// (anchor teardown plus special-link removal, §4.1.5).
    pub fn k_rmdir(&self, dir: Fh, name: &str) -> NfsResult<()> {
        validate_name(name).map_err(|e| NfsError::Status(e.into()))?;
        let dpath = self.vh_path(dir)?;
        let vpath = join_path(&dpath, name);
        self.with_path_retry(&vpath, |s| {
            let parent = s.resolve_dir(&dpath)?;
            let (_, attr) = s.nfs.lookup(parent.addr, parent.fh, name)?;
            match attr.ftype {
                FileType::Regular => Err(NfsError::Status(NfsStatus::NotDir)),
                FileType::Symlink
                    if is_special_link_mode(attr.mode)
                        && is_distributed_dir(&vpath, s.cfg.distribution_level) =>
                {
                    let anchor = s.resolve_dir(&vpath)?;
                    s.control(
                        anchor.addr,
                        &KoshaRequest::RmdirAnchor {
                            path: vpath.clone(),
                        },
                    )?;
                    s.control(
                        parent.addr,
                        &KoshaRequest::RemoveLink {
                            path: vpath.clone(),
                        },
                    )?;
                    Ok(())
                }
                FileType::Symlink => Err(NfsError::Status(NfsStatus::NotDir)),
                FileType::Directory => s
                    .control(
                        parent.addr,
                        &KoshaRequest::Rmdir {
                            path: vpath.clone(),
                        },
                    )
                    .map(|_| ()),
            }
        })?;
        self.forget_path(&vpath);
        Ok(())
    }

    /// RENAME (§4.1.4). Same-node renames move the entry (and for
    /// distributed directories, rename both the special link and the
    /// materialized directory, leaving the link target untouched).
    /// Cross-node file renames degrade to copy-plus-delete; cross-node
    /// directory renames and renames of distributed directories that
    /// contain nested distributed children return `NotSupp`, the
    /// expensive traversal the paper describes but does not evaluate.
    pub fn k_rename(&self, sdir: Fh, sname: &str, ddir: Fh, dname: &str) -> NfsResult<()> {
        validate_name(sname).map_err(|e| NfsError::Status(e.into()))?;
        validate_name(dname).map_err(|e| NfsError::Status(e.into()))?;
        let sdpath = self.vh_path(sdir)?;
        let ddpath = self.vh_path(ddir)?;
        let spath = join_path(&sdpath, sname);
        let dpath = join_path(&ddpath, dname);
        if spath == dpath {
            return Ok(());
        }
        self.with_path_retry(&spath, |s| {
            let sp = s.resolve_dir(&sdpath)?;
            let dp = s.resolve_dir(&ddpath)?;
            let (sefh, sattr) = s.nfs.lookup(sp.addr, sp.fh, sname)?;
            let special = sattr.ftype == FileType::Symlink
                && is_special_link_mode(sattr.mode)
                && is_distributed_dir(&spath, s.cfg.distribution_level);
            if special {
                if sdpath != ddpath {
                    return Err(NfsError::Status(NfsStatus::NotSupp));
                }
                match s.nfs.lookup(dp.addr, dp.fh, dname) {
                    Ok(_) => return Err(NfsError::Status(NfsStatus::Exist)),
                    Err(NfsError::Status(NfsStatus::NoEnt)) => {}
                    Err(e) => return Err(e),
                }
                let anchor = s.resolve_dir(&spath)?;
                // Nested distributed children would need their own slots
                // re-keyed on other nodes — the expensive recursive case.
                let entries = s.nfs.readdir(anchor.addr, anchor.fh)?;
                for e in &entries {
                    if e.ftype == FileType::Symlink {
                        let a = s.nfs.getattr(anchor.addr, e.fh)?;
                        if is_special_link_mode(a.mode) {
                            return Err(NfsError::Status(NfsStatus::NotSupp));
                        }
                    }
                }
                s.control(
                    anchor.addr,
                    &KoshaRequest::RenameAnchorDir {
                        from: spath.clone(),
                        to: dpath.clone(),
                    },
                )?;
                s.control(
                    sp.addr,
                    &KoshaRequest::RenameLocal {
                        from: spath.clone(),
                        to: dpath.clone(),
                    },
                )?;
                Ok(())
            } else if sattr.ftype == FileType::Directory {
                if sp.addr != dp.addr {
                    return Err(NfsError::Status(NfsStatus::NotSupp));
                }
                s.control(
                    sp.addr,
                    &KoshaRequest::RenameLocal {
                        from: spath.clone(),
                        to: dpath.clone(),
                    },
                )
                .map(|_| ())
            } else if sp.addr == dp.addr {
                s.control(
                    sp.addr,
                    &KoshaRequest::RenameLocal {
                        from: spath.clone(),
                        to: dpath.clone(),
                    },
                )
                .map(|_| ())
            } else {
                // Cross-node move: copy then delete.
                if sattr.ftype == FileType::Symlink {
                    let target = s.nfs.readlink(sp.addr, sefh)?;
                    s.control(
                        dp.addr,
                        &KoshaRequest::SymlinkFile {
                            path: dpath.clone(),
                            target,
                            uid: sattr.uid,
                            gid: sattr.gid,
                        },
                    )?;
                } else {
                    s.control(
                        dp.addr,
                        &KoshaRequest::CreateFile {
                            path: dpath.clone(),
                            mode: sattr.mode,
                            uid: sattr.uid,
                            gid: sattr.gid,
                            size: None,
                        },
                    )?;
                    let chunk = s.cfg.io_chunk;
                    let mut off = 0u64;
                    loop {
                        let (data, eof) = s.nfs.read(sp.addr, sefh, off, chunk)?;
                        if !data.is_empty() {
                            s.control(
                                dp.addr,
                                &KoshaRequest::Write {
                                    path: dpath.clone(),
                                    offset: off,
                                    data: data.clone(),
                                },
                            )?;
                            off += data.len() as u64;
                        }
                        if eof {
                            break;
                        }
                    }
                }
                s.control(
                    sp.addr,
                    &KoshaRequest::Remove {
                        path: spath.clone(),
                    },
                )
                .map(|_| ())
            }
        })?;
        {
            let mut c = self.client.lock();
            c.handles.rename_subtree(&spath, &dpath);
        }
        self.invalidate_dir_subtree(&spath);
        self.invalidate_dir_subtree(&dpath);
        Ok(())
    }

    /// READDIR: the directory's authoritative listing, with Kosha's
    /// internal names hidden and special links shown as directories.
    pub fn k_readdir(&self, dir: Fh) -> NfsResult<Vec<KoshaDirEntry>> {
        let dpath = self.vh_path(dir)?;
        let (loc, entries) = self.with_path_retry(&dpath, |s| {
            let loc = s.resolve_dir(&dpath)?;
            Ok((loc, s.nfs.readdir(loc.addr, loc.fh)?))
        })?;
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            if is_internal_name(&e.name) {
                continue;
            }
            let vpath = join_path(&dpath, &e.name);
            let ftype = if e.ftype == FileType::Symlink
                && is_distributed_dir(&vpath, self.cfg.distribution_level)
            {
                // A symlink at distributed depth is either a Kosha special
                // link (render as directory) or a user symlink; the mode's
                // sticky bit distinguishes them (one GETATTR, as in
                // READDIRPLUS).
                match self.nfs.getattr(loc.addr, e.fh) {
                    Ok(a) if is_special_link_mode(a.mode) => FileType::Directory,
                    _ => FileType::Symlink,
                }
            } else {
                e.ftype
            };
            let fh = self.mint(&vpath, ftype, None);
            out.push(KoshaDirEntry {
                name: e.name,
                fh,
                ftype,
            });
        }
        Ok(out)
    }

    /// Recursive removal of a whole subtree through the virtual
    /// namespace (convenience; the paper's distributed-directory
    /// deletion traversal, §4.1.5).
    pub fn k_remove_tree(&self, dir: Fh, name: &str) -> NfsResult<()> {
        let (fh, attr) = self.k_lookup(dir, name)?;
        if attr.ftype != FileType::Directory {
            return self.k_remove(dir, name);
        }
        let entries = self.k_readdir(fh)?;
        for e in entries {
            if e.ftype == FileType::Directory {
                self.k_remove_tree(fh, &e.name)?;
            } else {
                self.k_remove(fh, &e.name)?;
            }
        }
        self.k_rmdir(dir, name)
    }

    /// FSSTAT aggregated over this node and its leaf set — the visible
    /// "one big disk" the paper's aggregation provides.
    pub fn k_fsstat(&self) -> NfsResult<(u64, u64, u64)> {
        let mut nodes: Vec<NodeAddr> = vec![self.info.addr];
        for m in self.pastry.leaf_members() {
            if !nodes.contains(&m.addr) {
                nodes.push(m.addr);
            }
        }
        let mut cap = 0u64;
        let mut used = 0u64;
        for addr in nodes {
            if let Ok((c, u, _)) = self.nfs.fsstat(addr) {
                cap += c;
                used += u;
            }
        }
        Ok((cap, used, cap.saturating_sub(used)))
    }

    fn forget_path(&self, vpath: &str) {
        let mut c = self.client.lock();
        c.handles.forget_subtree(vpath);
        drop(c);
        self.invalidate_dir_subtree(vpath);
        // A removed object must not squat in the read-heat sketch: its
        // slot would otherwise pin sketch capacity (and could even keep
        // spawning hot copies) until enough fresh traffic evicts it.
        self.heat.forget(vpath);
    }
}

fn nfs_error_to_status(e: NfsError) -> NfsStatus {
    match e {
        NfsError::Status(s) => s,
        NfsError::Rpc(_) => NfsStatus::Io,
    }
}

impl RpcHandler for VirtualFs {
    // lint: allow(L005) client-side loopback facade: the koshad's own NFS interposition executes cluster ops by design and is never invoked from a remote handler context
    fn handle(&self, _from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
        let req = NfsRequest::decode(body)?;
        let k = &self.0;
        let proc = req.proc_name();
        let clock = k.net.clock();
        // Server span for the koshad loopback op. Requests arriving with
        // a caller trace always record a child span; untraced requests
        // start a sampled root per [`KoshaConfig::trace_sampling`].
        let frame = if kosha_obs::trace::current().is_some() {
            k.obs.tracer.child(
                || format!("koshafs:{proc}"),
                k.info.addr.0,
                || clock.now().0,
                || self.execute(req),
            )
        } else if k.cfg.trace_sampling > 0
            && k.trace_seq
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                .is_multiple_of(k.cfg.trace_sampling)
        {
            k.obs.tracer.root(
                format!("koshafs:{proc}"),
                k.info.addr.0,
                || clock.now().0,
                || self.execute(req),
            )
        } else {
            self.execute(req)
        };
        Ok(RpcResponse::new(&frame))
    }
}

impl VirtualFs {
    fn execute(&self, req: NfsRequest) -> NfsReplyFrame {
        let k = &self.0;
        // Fixed interposition cost of the user-level loopback server
        // (the `I` term of the Section 6.1.2 overhead model).
        k.net.clock().advance(k.cfg.koshad_op_cost);
        k.stats.fs_ops.inc();
        let result: Result<NfsReply, NfsStatus> = (|| {
            Ok(match req {
                NfsRequest::Null => NfsReply::Void,
                NfsRequest::Mount => NfsReply::Root { fh: k.k_root() },
                NfsRequest::Getattr { fh } => NfsReply::Attr {
                    attr: WireAttr(k.k_getattr(fh).map_err(nfs_error_to_status)?),
                },
                NfsRequest::Setattr { fh, sattr } => NfsReply::Attr {
                    attr: WireAttr(k.k_setattr(fh, sattr.0).map_err(nfs_error_to_status)?),
                },
                NfsRequest::Lookup { dir, name } => {
                    let (fh, attr) = k.k_lookup(dir, &name).map_err(nfs_error_to_status)?;
                    NfsReply::Handle {
                        fh,
                        attr: WireAttr(attr),
                    }
                }
                NfsRequest::Readlink { fh } => NfsReply::Target {
                    target: k.k_readlink(fh).map_err(nfs_error_to_status)?,
                },
                NfsRequest::Read { fh, offset, count } => {
                    let (data, eof) = k.k_read(fh, offset, count).map_err(nfs_error_to_status)?;
                    NfsReply::Data { data, eof }
                }
                NfsRequest::Write { fh, offset, data } => NfsReply::Written {
                    count: k.k_write(fh, offset, &data).map_err(nfs_error_to_status)?,
                },
                NfsRequest::Create {
                    dir,
                    name,
                    mode,
                    uid,
                    gid,
                } => {
                    let (fh, attr) = k
                        .k_create(dir, &name, mode, uid, gid)
                        .map_err(nfs_error_to_status)?;
                    NfsReply::Handle {
                        fh,
                        attr: WireAttr(attr),
                    }
                }
                NfsRequest::CreateSized {
                    dir,
                    name,
                    size,
                    mode,
                    uid,
                    gid,
                } => {
                    let (fh, attr) = k
                        .k_create_sized(dir, &name, size, mode, uid, gid)
                        .map_err(nfs_error_to_status)?;
                    NfsReply::Handle {
                        fh,
                        attr: WireAttr(attr),
                    }
                }
                NfsRequest::Mkdir {
                    dir,
                    name,
                    mode,
                    uid,
                    gid,
                } => {
                    let (fh, attr) = k
                        .k_mkdir(dir, &name, mode, uid, gid)
                        .map_err(nfs_error_to_status)?;
                    NfsReply::Handle {
                        fh,
                        attr: WireAttr(attr),
                    }
                }
                NfsRequest::Symlink {
                    dir,
                    name,
                    target,
                    mode: _,
                    uid,
                    gid,
                } => {
                    let (fh, attr) = k
                        .k_symlink(dir, &name, &target, uid, gid)
                        .map_err(nfs_error_to_status)?;
                    NfsReply::Handle {
                        fh,
                        attr: WireAttr(attr),
                    }
                }
                NfsRequest::Remove { dir, name } => {
                    k.k_remove(dir, &name).map_err(nfs_error_to_status)?;
                    NfsReply::Void
                }
                NfsRequest::Rmdir { dir, name } => {
                    k.k_rmdir(dir, &name).map_err(nfs_error_to_status)?;
                    NfsReply::Void
                }
                NfsRequest::RemoveTree { dir, name } => {
                    k.k_remove_tree(dir, &name).map_err(nfs_error_to_status)?;
                    NfsReply::Void
                }
                NfsRequest::Rename {
                    sdir,
                    sname,
                    ddir,
                    dname,
                } => {
                    k.k_rename(sdir, &sname, ddir, &dname)
                        .map_err(nfs_error_to_status)?;
                    NfsReply::Void
                }
                NfsRequest::Readdir { dir } => NfsReply::Entries {
                    entries: k
                        .k_readdir(dir)
                        .map_err(nfs_error_to_status)?
                        .into_iter()
                        .map(|e| WireDirEntry {
                            name: e.name,
                            fh: e.fh,
                            ftype: e.ftype,
                        })
                        .collect(),
                },
                NfsRequest::Access { fh, uid, gid, want } => NfsReply::Granted {
                    granted: k
                        .k_access(fh, uid, gid, want)
                        .map_err(nfs_error_to_status)?,
                },
                NfsRequest::Fsstat => {
                    let (capacity, used, free) = k.k_fsstat().map_err(nfs_error_to_status)?;
                    NfsReply::Stat {
                        capacity,
                        used,
                        free,
                    }
                }
                NfsRequest::Commit { fh } => {
                    k.k_commit(fh).map_err(nfs_error_to_status)?;
                    NfsReply::Void
                }
                // Compound lookup is a server-to-server optimization used
                // by the resolver; the loopback mount keeps NFS semantics
                // (applications walk component-by-component).
                NfsRequest::LookupPath { .. } => return Err(NfsStatus::NotSupp),
            })
        })();
        NfsReplyFrame(result)
    }
}
