//! Operational counters for a koshad instance.
//!
//! The paper's prototype was evaluated by external measurement only;
//! production operators need visibility into what the daemon is doing.
//! These counters are updated by the client-side interposition layer and
//! the primary-side replica manager, and are exposed through
//! [`crate::KoshaNode::stats`] (tests also use them to assert that a
//! scenario exercised the intended mechanism, e.g. that a failover
//! actually promoted a replica rather than finding the data by luck).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing a node's Kosha activity.
#[derive(Debug, Default)]
pub struct KoshaStats {
    /// Virtual-filesystem operations served by this koshad to local
    /// applications.
    pub fs_ops: AtomicU64,
    /// Failovers performed: a node was declared dead and cached
    /// locations were rebound (§4.4).
    pub failovers: AtomicU64,
    /// Replica-to-primary promotions performed on this node (§4.4).
    pub promotions: AtomicU64,
    /// Anchors migrated *away* to a new owner (§4.3.1).
    pub migrations_out: AtomicU64,
    /// Anchors received from a previous owner (§4.3.1).
    pub migrations_in: AtomicU64,
    /// Full replica pushes completed to neighbor nodes (§4.2).
    pub replica_pushes: AtomicU64,
    /// Anchors pulled from a neighbor's replica area because this node
    /// became owner without holding a copy.
    pub replica_pulls: AtomicU64,
    /// Directory-placement redirections caused by full nodes (§3.3).
    pub redirections: AtomicU64,
    /// READs served from a replica instead of the primary (§4.2's
    /// read-spreading optimization).
    pub replica_reads: AtomicU64,
}

/// A plain-value snapshot of [`KoshaStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// See [`KoshaStats::fs_ops`].
    pub fs_ops: u64,
    /// See [`KoshaStats::failovers`].
    pub failovers: u64,
    /// See [`KoshaStats::promotions`].
    pub promotions: u64,
    /// See [`KoshaStats::migrations_out`].
    pub migrations_out: u64,
    /// See [`KoshaStats::migrations_in`].
    pub migrations_in: u64,
    /// See [`KoshaStats::replica_pushes`].
    pub replica_pushes: u64,
    /// See [`KoshaStats::replica_pulls`].
    pub replica_pulls: u64,
    /// See [`KoshaStats::redirections`].
    pub redirections: u64,
    /// See [`KoshaStats::replica_reads`].
    pub replica_reads: u64,
}

impl KoshaStats {
    /// Atomically increments one counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            fs_ops: self.fs_ops.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            migrations_out: self.migrations_out.load(Ordering::Relaxed),
            migrations_in: self.migrations_in.load(Ordering::Relaxed),
            replica_pushes: self.replica_pushes.load(Ordering::Relaxed),
            replica_pulls: self.replica_pulls.load(Ordering::Relaxed),
            redirections: self.redirections.load(Ordering::Relaxed),
            replica_reads: self.replica_reads.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = KoshaStats::default();
        KoshaStats::bump(&s.promotions);
        KoshaStats::bump(&s.promotions);
        KoshaStats::bump(&s.fs_ops);
        let snap = s.snapshot();
        assert_eq!(snap.promotions, 2);
        assert_eq!(snap.fs_ops, 1);
        assert_eq!(snap.failovers, 0);
    }
}
