//! Operational counters for a koshad instance.
//!
//! The paper's prototype was evaluated by external measurement only;
//! production operators need visibility into what the daemon is doing.
//! Each counter is a handle into the node's [`kosha_obs::Registry`]
//! (named `kosha_*_total`), so the same numbers appear in the node's
//! Prometheus-style exposition and in [`crate::KoshaNode::stats`]
//! snapshots. They are updated by the client-side interposition layer
//! and the primary-side replica manager; tests also use them to assert
//! that a scenario exercised the intended mechanism, e.g. that a
//! failover actually promoted a replica rather than finding the data by
//! luck.

use kosha_obs::{Counter, Obs};
use std::sync::Arc;

/// Monotonic counters describing a node's Kosha activity. Handles into
/// the owning node's metric registry; bump with `stats.failovers.inc()`.
#[derive(Debug)]
pub struct KoshaStats {
    /// Virtual-filesystem operations served by this koshad to local
    /// applications (`kosha_fs_ops_total`).
    pub fs_ops: Arc<Counter>,
    /// Failovers performed: a node was declared dead and cached
    /// locations were rebound (§4.4; `kosha_failovers_total`).
    pub failovers: Arc<Counter>,
    /// Replica-to-primary promotions performed on this node (§4.4;
    /// `kosha_promotions_total`).
    pub promotions: Arc<Counter>,
    /// Anchors migrated *away* to a new owner (§4.3.1;
    /// `kosha_migrations_out_total`).
    pub migrations_out: Arc<Counter>,
    /// Anchors received from a previous owner (§4.3.1;
    /// `kosha_migrations_in_total`).
    pub migrations_in: Arc<Counter>,
    /// Full replica pushes completed to neighbor nodes (§4.2;
    /// `kosha_replica_pushes_total`).
    pub replica_pushes: Arc<Counter>,
    /// Full replica pushes skipped because the anchor's content digest
    /// and target set matched the last acknowledged push
    /// (`kosha_replica_push_skips_total`).
    pub replica_push_skips: Arc<Counter>,
    /// Anchors pulled from a neighbor's replica area because this node
    /// became owner without holding a copy
    /// (`kosha_replica_pulls_total`).
    pub replica_pulls: Arc<Counter>,
    /// Directory-placement redirections caused by full nodes (§3.3;
    /// `kosha_redirections_total`).
    pub redirections: Arc<Counter>,
    /// READs served from a replica instead of the primary (§4.2's
    /// read-spreading optimization; `kosha_replica_reads_total`).
    pub replica_reads: Arc<Counter>,
    /// Mirror fan-outs that failed on a replica target, leaving that
    /// replica behind the primary until the next full push
    /// (`kosha_replica_mirror_failures_total`).
    pub replica_mirror_failures: Arc<Counter>,
    /// Replica reads that reused a cached replica file handle, skipping
    /// the mount + lookup RPCs (`kosha_replica_handle_hits_total`).
    pub replica_handle_hits: Arc<Counter>,
    /// Ops enqueued on write-behind replica queues instead of being
    /// mirrored synchronously, counted per target queue — the same unit
    /// as [`KoshaStats::writeback_flushed_ops`]
    /// (`kosha_writeback_enqueued_total`).
    pub writeback_enqueued: Arc<Counter>,
    /// Write-behind flush rounds completed (one per barrier or pump
    /// tick that found queued ops; `kosha_writeback_flushes_total`).
    pub writeback_flushes: Arc<Counter>,
    /// Replica ops actually shipped by write-behind flushes, after
    /// coalescing (`kosha_writeback_flushed_ops_total`). The coalesce
    /// ratio is `writeback_enqueued / writeback_flushed_ops`.
    pub writeback_flushed_ops: Arc<Counter>,
    /// Queued ops eliminated by coalescing before a flush
    /// (`kosha_writeback_coalesced_ops_total`).
    pub writeback_coalesced_ops: Arc<Counter>,
    /// Replica-lag events: a write-behind queue was dropped on an
    /// unreachable target, or a promotion found a lag marker — either
    /// way the divergence was journaled rather than silently served
    /// (`kosha_replica_lag_total`).
    pub replica_lag_events: Arc<Counter>,
    /// Stale replica slots garbage-collected by the maintenance pass:
    /// the anchor's owner confirmed this node is no longer a replica
    /// target, so the leftover copy was dropped
    /// (`kosha_replica_gc_total`).
    pub replica_gc: Arc<Counter>,
    /// Heat-driven hot-copy pushes: an object crossed the configured
    /// heat threshold and the primary placed an extra read-only cached
    /// copy beyond K (DESIGN.md §16; `kosha_hot_pushes_total`).
    pub hot_pushes: Arc<Counter>,
    /// Hot copies dropped: heat decayed below the shed threshold, the
    /// object was removed, or a holder left the candidate set
    /// (`kosha_hot_drops_total`).
    pub hot_drops: Arc<Counter>,
    /// Lease invalidations: a mutation to a hot object immediately
    /// voided its outstanding hot-copy leases so no reader can see
    /// pre-write data (`kosha_hot_lease_invalidations_total`).
    pub hot_lease_invalidations: Arc<Counter>,
}

/// A plain-value snapshot of [`KoshaStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// See [`KoshaStats::fs_ops`].
    pub fs_ops: u64,
    /// See [`KoshaStats::failovers`].
    pub failovers: u64,
    /// See [`KoshaStats::promotions`].
    pub promotions: u64,
    /// See [`KoshaStats::migrations_out`].
    pub migrations_out: u64,
    /// See [`KoshaStats::migrations_in`].
    pub migrations_in: u64,
    /// See [`KoshaStats::replica_pushes`].
    pub replica_pushes: u64,
    /// See [`KoshaStats::replica_push_skips`].
    pub replica_push_skips: u64,
    /// See [`KoshaStats::replica_pulls`].
    pub replica_pulls: u64,
    /// See [`KoshaStats::redirections`].
    pub redirections: u64,
    /// See [`KoshaStats::replica_reads`].
    pub replica_reads: u64,
    /// See [`KoshaStats::replica_mirror_failures`].
    pub replica_mirror_failures: u64,
    /// See [`KoshaStats::replica_handle_hits`].
    pub replica_handle_hits: u64,
    /// See [`KoshaStats::writeback_enqueued`].
    pub writeback_enqueued: u64,
    /// See [`KoshaStats::writeback_flushes`].
    pub writeback_flushes: u64,
    /// See [`KoshaStats::writeback_flushed_ops`].
    pub writeback_flushed_ops: u64,
    /// See [`KoshaStats::writeback_coalesced_ops`].
    pub writeback_coalesced_ops: u64,
    /// See [`KoshaStats::replica_lag_events`].
    pub replica_lag_events: u64,
    /// See [`KoshaStats::replica_gc`].
    pub replica_gc: u64,
    /// See [`KoshaStats::hot_pushes`].
    pub hot_pushes: u64,
    /// See [`KoshaStats::hot_drops`].
    pub hot_drops: u64,
    /// See [`KoshaStats::hot_lease_invalidations`].
    pub hot_lease_invalidations: u64,
}

impl KoshaStats {
    /// Resolves (or creates) every counter in `obs`'s registry.
    #[must_use]
    pub fn new(obs: &Obs) -> Self {
        let c = |name: &str| {
            let counter = obs.registry.counter(name);
            // Every koshad counter doubles as a flight-recorder source,
            // so samplers capture its evolution (rates, not just totals).
            obs.recorder.watch_counter(name, &counter);
            counter
        };
        KoshaStats {
            fs_ops: c("kosha_fs_ops_total"),
            failovers: c("kosha_failovers_total"),
            promotions: c("kosha_promotions_total"),
            migrations_out: c("kosha_migrations_out_total"),
            migrations_in: c("kosha_migrations_in_total"),
            replica_pushes: c("kosha_replica_pushes_total"),
            replica_push_skips: c("kosha_replica_push_skips_total"),
            replica_pulls: c("kosha_replica_pulls_total"),
            redirections: c("kosha_redirections_total"),
            replica_reads: c("kosha_replica_reads_total"),
            replica_mirror_failures: c("kosha_replica_mirror_failures_total"),
            replica_handle_hits: c("kosha_replica_handle_hits_total"),
            writeback_enqueued: c("kosha_writeback_enqueued_total"),
            writeback_flushes: c("kosha_writeback_flushes_total"),
            writeback_flushed_ops: c("kosha_writeback_flushed_ops_total"),
            writeback_coalesced_ops: c("kosha_writeback_coalesced_ops_total"),
            replica_lag_events: c("kosha_replica_lag_total"),
            replica_gc: c("kosha_replica_gc_total"),
            hot_pushes: c("kosha_hot_pushes_total"),
            hot_drops: c("kosha_hot_drops_total"),
            hot_lease_invalidations: c("kosha_hot_lease_invalidations_total"),
        }
    }

    /// Takes a point-in-time snapshot.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            fs_ops: self.fs_ops.get(),
            failovers: self.failovers.get(),
            promotions: self.promotions.get(),
            migrations_out: self.migrations_out.get(),
            migrations_in: self.migrations_in.get(),
            replica_pushes: self.replica_pushes.get(),
            replica_push_skips: self.replica_push_skips.get(),
            replica_pulls: self.replica_pulls.get(),
            redirections: self.redirections.get(),
            replica_reads: self.replica_reads.get(),
            replica_mirror_failures: self.replica_mirror_failures.get(),
            replica_handle_hits: self.replica_handle_hits.get(),
            writeback_enqueued: self.writeback_enqueued.get(),
            writeback_flushes: self.writeback_flushes.get(),
            writeback_flushed_ops: self.writeback_flushed_ops.get(),
            writeback_coalesced_ops: self.writeback_coalesced_ops.get(),
            replica_lag_events: self.replica_lag_events.get(),
            replica_gc: self.replica_gc.get(),
            hot_pushes: self.hot_pushes.get(),
            hot_drops: self.hot_drops.get(),
            hot_lease_invalidations: self.hot_lease_invalidations.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let obs = Obs::new();
        let s = KoshaStats::new(&obs);
        s.promotions.inc();
        s.promotions.inc();
        s.fs_ops.inc();
        let snap = s.snapshot();
        assert_eq!(snap.promotions, 2);
        assert_eq!(snap.fs_ops, 1);
        assert_eq!(snap.failovers, 0);
    }

    #[test]
    fn counters_surface_in_the_registry() {
        let obs = Obs::new();
        let s = KoshaStats::new(&obs);
        s.failovers.inc();
        assert_eq!(obs.registry.counter("kosha_failovers_total").get(), 1);
        let text = obs.registry.render();
        assert!(text.contains("kosha_failovers_total 1"), "{text}");
    }
}
