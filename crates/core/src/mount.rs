//! `KoshaMount`: the application-side view of the `/kosha` mount point.
//!
//! In the paper, applications reach Kosha through the kernel's NFS client
//! talking to the koshad loopback server (Figure 4). `KoshaMount` plays
//! the kernel-NFS-client role: it speaks the NFS protocol to the local
//! node's [`kosha_rpc::ServiceId::KoshaFs`] service, caches directory
//! handles exactly as a kernel client caches lookups, and exposes a
//! path-level convenience API that examples and workloads drive.

use kosha_nfs::client::ClientDirEntry;
use kosha_nfs::{Fh, NfsClient, NfsError, NfsResult, NfsStatus};
use kosha_rpc::{Network, NodeAddr, ServiceId};
use kosha_vfs::path::{parent_and_name, split_path};
use kosha_vfs::{normalize, Attr, FileType, SetAttr};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A mounted view of `/kosha` through one node's koshad.
///
/// ```
/// use kosha::{KoshaConfig, KoshaMount, KoshaNode};
/// use kosha_id::node_id_from_seed;
/// use kosha_rpc::{Network, NodeAddr, SimNetwork};
/// use std::sync::Arc;
///
/// // One-machine deployment for brevity; see the examples/ directory
/// // for multi-node clusters.
/// let net = SimNetwork::new_zero_latency();
/// let (node, mux) = KoshaNode::build(
///     KoshaConfig::for_tests(),
///     node_id_from_seed("doc-host"),
///     NodeAddr(0),
///     net.clone() as Arc<dyn Network>,
/// );
/// net.attach(node.addr(), mux);
/// node.join(None).unwrap();
///
/// let m = KoshaMount::new(net as Arc<dyn Network>, NodeAddr(0), NodeAddr(0)).unwrap();
/// m.mkdir_p("/docs").unwrap();
/// m.write_file("/docs/hello.txt", b"hi").unwrap();
/// assert_eq!(m.read_file("/docs/hello.txt").unwrap(), b"hi");
/// ```
pub struct KoshaMount {
    nfs: NfsClient,
    koshad: NodeAddr,
    root: Fh,
    /// Directory-handle cache (the kernel NFS client's dcache analogue).
    // lint: allow(L008) client-session cache: lives only as long as one mount and is invalidated on mutations, not node state
    dcache: Mutex<HashMap<String, Fh>>,
    /// Default identity for operations.
    uid: u32,
    /// Default group.
    gid: u32,
    /// Transfer chunk for whole-file helpers.
    chunk: u32,
}

impl KoshaMount {
    /// Mounts the virtual file system exported by the koshad at
    /// `koshad` (normally the caller's own machine — the loopback).
    pub fn new(net: Arc<dyn Network>, client_addr: NodeAddr, koshad: NodeAddr) -> NfsResult<Self> {
        let nfs = NfsClient::with_service(net, client_addr, ServiceId::KoshaFs);
        let root = nfs.mount(koshad)?;
        Ok(KoshaMount {
            nfs,
            koshad,
            root,
            dcache: Mutex::new(HashMap::new()),
            uid: 0,
            gid: 0,
            chunk: 32 * 1024,
        })
    }

    /// Sets the identity used for subsequent creations.
    pub fn set_identity(&mut self, uid: u32, gid: u32) {
        self.uid = uid;
        self.gid = gid;
    }

    /// The virtual root handle.
    #[must_use]
    pub fn root(&self) -> Fh {
        self.root
    }

    fn cached_dir(&self, path: &str) -> Option<Fh> {
        self.dcache.lock().get(path).copied()
    }

    fn cache_dir(&self, path: &str, fh: Fh) {
        self.dcache.lock().insert(path.to_string(), fh);
    }

    fn drop_cache_subtree(&self, path: &str) {
        let prefix = format!("{path}/");
        self.dcache
            .lock()
            .retain(|p, _| p != path && !p.starts_with(&prefix));
    }

    /// Resolves a directory path to its (virtual) handle, caching
    /// intermediate directories like a kernel NFS client.
    pub fn dir_handle(&self, path: &str) -> NfsResult<Fh> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        if path == "/" {
            return Ok(self.root);
        }
        if let Some(fh) = self.cached_dir(&path) {
            return Ok(fh);
        }
        let comps = split_path(&path).map_err(|e| NfsError::Status(e.into()))?;
        let mut cur = self.root;
        let mut cur_path = String::new();
        for c in comps {
            cur_path.push('/');
            cur_path.push_str(c);
            cur = match self.cached_dir(&cur_path) {
                Some(fh) => fh,
                None => {
                    let (fh, attr) = self.nfs.lookup(self.koshad, cur, c)?;
                    if attr.ftype != FileType::Directory {
                        return Err(NfsError::Status(NfsStatus::NotDir));
                    }
                    self.cache_dir(&cur_path, fh);
                    fh
                }
            };
        }
        Ok(cur)
    }

    /// LOOKUP of an arbitrary path, returning `(handle, attributes)`.
    pub fn stat(&self, path: &str) -> NfsResult<(Fh, Attr)> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        if path == "/" {
            let attr = self.nfs.getattr(self.koshad, self.root)?;
            return Ok((self.root, attr));
        }
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        self.nfs.lookup(self.koshad, dir, name)
    }

    /// True if the path resolves.
    #[must_use]
    pub fn exists(&self, path: &str) -> bool {
        self.stat(path).is_ok()
    }

    /// Creates a directory (parents must exist).
    pub fn mkdir(&self, path: &str) -> NfsResult<Fh> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        let (fh, _) = self
            .nfs
            .mkdir(self.koshad, dir, name, 0o755, self.uid, self.gid)?;
        self.cache_dir(&path, fh);
        Ok(fh)
    }

    /// Creates a directory and any missing ancestors.
    pub fn mkdir_p(&self, path: &str) -> NfsResult<Fh> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        if path == "/" {
            return Ok(self.root);
        }
        let comps = split_path(&path).map_err(|e| NfsError::Status(e.into()))?;
        let mut cur = self.root;
        let mut cur_path = String::new();
        for c in comps {
            cur_path.push('/');
            cur_path.push_str(c);
            cur = match self.nfs.lookup(self.koshad, cur, c) {
                Ok((fh, attr)) => {
                    if attr.ftype != FileType::Directory {
                        return Err(NfsError::Status(NfsStatus::NotDir));
                    }
                    fh
                }
                Err(NfsError::Status(NfsStatus::NoEnt)) => {
                    self.nfs
                        .mkdir(self.koshad, cur, c, 0o755, self.uid, self.gid)?
                        .0
                }
                Err(e) => return Err(e),
            };
            self.cache_dir(&cur_path, cur);
        }
        Ok(cur)
    }

    /// Creates an empty file (parents must exist), returning its handle.
    pub fn create(&self, path: &str) -> NfsResult<Fh> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        Ok(self
            .nfs
            .create(self.koshad, dir, name, 0o644, self.uid, self.gid)?
            .0)
    }

    /// Creates a quota-charged sparse file of `size` bytes (simulation
    /// workloads).
    pub fn create_sized(&self, path: &str, size: u64) -> NfsResult<Fh> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        Ok(self
            .nfs
            .create_sized(self.koshad, dir, name, size, 0o644, self.uid, self.gid)?
            .0)
    }

    /// Writes `data` into an existing file at `offset` (one WRITE per
    /// chunk, like an appending NFS client).
    pub fn write_at(&self, path: &str, offset: u64, data: &[u8]) -> NfsResult<()> {
        let (fh, _) = self.stat(path)?;
        let mut off = 0usize;
        while off < data.len() {
            let end = (off + self.chunk as usize).min(data.len());
            self.nfs
                .write(self.koshad, fh, offset + off as u64, &data[off..end])?;
            off = end;
        }
        Ok(())
    }

    /// Writes an entire file (creating it if missing), chunked like an
    /// NFS client. Creation is attempted first — the common case when
    /// populating a tree — falling back to truncate-and-rewrite when the
    /// file already exists.
    pub fn write_file(&self, path: &str, data: &[u8]) -> NfsResult<Fh> {
        let fh = match self.create(path) {
            Ok(fh) => fh,
            Err(NfsError::Status(NfsStatus::Exist)) => {
                let (fh, attr) = self.stat(path)?;
                if attr.ftype != FileType::Regular {
                    return Err(NfsError::Status(NfsStatus::IsDir));
                }
                if attr.size > 0 {
                    self.nfs.setattr(
                        self.koshad,
                        fh,
                        SetAttr {
                            size: Some(0),
                            ..Default::default()
                        },
                    )?;
                }
                fh
            }
            Err(e) => return Err(e),
        };
        let mut off = 0usize;
        while off < data.len() {
            let end = (off + self.chunk as usize).min(data.len());
            self.nfs
                .write(self.koshad, fh, off as u64, &data[off..end])?;
            off = end;
        }
        Ok(fh)
    }

    /// Reads an entire file.
    pub fn read_file(&self, path: &str) -> NfsResult<Vec<u8>> {
        let (fh, attr) = self.stat(path)?;
        if attr.ftype != FileType::Regular {
            return Err(NfsError::Status(NfsStatus::IsDir));
        }
        let mut out = Vec::with_capacity(attr.size as usize);
        let mut off = 0u64;
        loop {
            let (data, eof) = self.nfs.read(self.koshad, fh, off, self.chunk)?;
            off += data.len() as u64;
            out.extend_from_slice(&data);
            if eof || data.is_empty() {
                break;
            }
        }
        Ok(out)
    }

    /// Reads a byte range.
    pub fn read_at(&self, path: &str, offset: u64, count: u32) -> NfsResult<Vec<u8>> {
        let (fh, _) = self.stat(path)?;
        Ok(self.nfs.read(self.koshad, fh, offset, count)?.0)
    }

    /// Lists a directory.
    pub fn readdir(&self, path: &str) -> NfsResult<Vec<ClientDirEntry>> {
        let dir = self.dir_handle(path)?;
        self.nfs.readdir(self.koshad, dir)
    }

    /// Removes a file or symlink.
    pub fn remove(&self, path: &str) -> NfsResult<()> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        self.nfs.remove(self.koshad, dir, name)?;
        self.drop_cache_subtree(&path);
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, path: &str) -> NfsResult<()> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        self.nfs.rmdir(self.koshad, dir, name)?;
        self.dcache.lock().remove(&path);
        self.drop_cache_subtree(&path);
        Ok(())
    }

    /// Recursively removes a subtree.
    pub fn remove_tree(&self, path: &str) -> NfsResult<()> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        self.nfs.remove_tree(self.koshad, dir, name)?;
        self.drop_cache_subtree(&path);
        self.dcache.lock().remove(&path);
        Ok(())
    }

    /// Renames a file or directory.
    pub fn rename(&self, from: &str, to: &str) -> NfsResult<()> {
        let from = normalize(from).map_err(|e| NfsError::Status(e.into()))?;
        let to = normalize(to).map_err(|e| NfsError::Status(e.into()))?;
        let (fp, fname) = parent_and_name(&from).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let (tp, tname) = parent_and_name(&to).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let sdir = self.dir_handle(fp)?;
        let ddir = self.dir_handle(tp)?;
        self.nfs.rename(self.koshad, sdir, fname, ddir, tname)?;
        self.drop_cache_subtree(&from);
        self.drop_cache_subtree(&to);
        self.dcache.lock().remove(&from);
        Ok(())
    }

    /// Creates a symlink.
    pub fn symlink(&self, path: &str, target: &str) -> NfsResult<Fh> {
        let path = normalize(path).map_err(|e| NfsError::Status(e.into()))?;
        let (pp, name) = parent_and_name(&path).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let dir = self.dir_handle(pp)?;
        Ok(self
            .nfs
            .symlink(self.koshad, dir, name, target, 0o777, self.uid, self.gid)?
            .0)
    }

    /// Reads a symlink target.
    pub fn readlink(&self, path: &str) -> NfsResult<String> {
        let (fh, _) = self.stat(path)?;
        self.nfs.readlink(self.koshad, fh)
    }

    /// Updates attributes.
    pub fn setattr(&self, path: &str, sattr: SetAttr) -> NfsResult<Attr> {
        let (fh, _) = self.stat(path)?;
        self.nfs.setattr(self.koshad, fh, sattr)
    }

    /// COMMIT (fsync) on `path`: forces the primary to flush any queued
    /// write-behind replication for the file before returning. A cheap
    /// no-op under synchronous replication.
    pub fn commit(&self, path: &str) -> NfsResult<()> {
        let (fh, _) = self.stat(path)?;
        self.nfs.commit(self.koshad, fh)
    }

    /// ACCESS check for the mount's identity on `path`.
    pub fn access(&self, path: &str, want: u32) -> NfsResult<u32> {
        let (fh, _) = self.stat(path)?;
        self.nfs.access(self.koshad, fh, self.uid, self.gid, want)
    }

    /// Aggregate `(capacity, used, free)` of the visible storage pool.
    pub fn fsstat(&self) -> NfsResult<(u64, u64, u64)> {
        self.nfs.fsstat(self.koshad)
    }
}
