//! Kosha: a peer-to-peer enhancement for the Network File System.
//!
//! This crate is the paper's primary contribution (Butt, Johnson, Zheng &
//! Hu, SC 2004): the `koshad` daemon that blends NFS with a Pastry DHT to
//! aggregate the unused disk space of many machines into one shared file
//! system with normal NFS semantics. Each participating machine runs a
//! [`KoshaNode`], which bundles
//!
//! * the node's **real NFS server** exporting its contributed partition
//!   (`/kosha_store` for primary data, `/kosha_replica` for the shadow
//!   replica area users cannot touch),
//! * a **Pastry overlay** endpoint used to map directory names to storage
//!   nodes ([`kosha_pastry`]),
//! * the **koshad loopback NFS server** exporting the virtual `/kosha`
//!   file system with *virtual file handles* that transparently follow
//!   data across node failures and migrations, and
//! * the **Kosha control service** carrying primary-side mutations (with
//!   replica fan-out), promotion, and migration traffic between koshad
//!   instances.
//!
//! Key mechanisms, with their paper sections:
//!
//! * directory-granularity distribution bounded by a **distribution
//!   level** (§3.1–3.2): a directory at depth ≤ L is placed on
//!   `DHT(SHA1(name))`; everything deeper lives with its ancestor;
//! * **capacity redirection** (§3.3): when the mapped node is too full, a
//!   random salt is appended and the name re-hashed (iteratively, up to a
//!   retry bound), leaving a *special link* `name → name#salt` in the
//!   parent directory;
//! * **virtual handles** (§4.1.2): clients hold stable handles; koshad
//!   maps them to `(node, real handle)` pairs and re-binds on failure;
//! * **replication** (§4.2): the primary maintains K replicas on its leaf
//!   set neighbors and fans every mutation out to them;
//! * **transparent fault handling** (§4.4): an RPC error drops the cached
//!   mapping, re-routes the key — which lands on a replica holder — and
//!   promotes that replica to primary;
//! * **migration** (§4.3): when a node joins, anchors whose keys now map
//!   to it are pushed over (guarded by a `MIGRATION_NOT_COMPLETE` flag),
//!   and the old primary's copy becomes a replica.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod control;
pub mod flight;
pub mod handles;
mod hot;
pub mod mount;
pub mod node;
pub mod ops;
pub mod paths;
pub mod primary;
pub mod resolve;
pub mod stats;
pub mod writeback;

pub use audit::{audit_cluster, slot_summary, tree_digest, AuditOptions, AuditReport, SlotSummary};
pub use config::{KoshaConfig, ReplicationMode};
pub use flight::{cluster_flight, FlightOptions, FlightReport, NodeRow};
pub use mount::KoshaMount;
pub use node::KoshaNode;
pub use stats::{KoshaStats, StatsSnapshot};
