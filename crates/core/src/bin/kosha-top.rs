//! `kosha-top` — the cluster health dashboard, demonstrated against a
//! deterministic simulated deployment.
//!
//! Builds an 8-node `SimNetwork` cluster, runs a short mixed workload
//! (directory churn, a hot read set, replica reads, write-behind
//! flushes), ticks the per-node flight recorders via `run_pumps()`, and
//! prints the assembled [`kosha::FlightReport`]. Everything runs on the
//! virtual clock with seeded ids, so two invocations print byte-for-byte
//! identical output — CI diffs exactly that. Pass `--json` for the JSON
//! snapshot instead of the text dashboard.

use kosha::{
    audit_cluster, cluster_flight, AuditOptions, FlightOptions, KoshaConfig, KoshaMount, KoshaNode,
    ReplicationMode,
};
use kosha_id::node_id_from_seed;
use kosha_rpc::{LatencyModel, Network, NodeAddr, SimNetwork};
use std::sync::Arc;
use std::time::Duration;

const NODES: usize = 8;

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    let net = SimNetwork::new(LatencyModel::default());
    let mut nodes: Vec<Arc<KoshaNode>> = Vec::new();
    for i in 0..NODES {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let mut cfg = KoshaConfig::for_tests();
        cfg.distribution_level = 1;
        cfg.replicas = 2;
        cfg.read_from_replicas = true;
        cfg.replication_mode = ReplicationMode::WriteBehind {
            queue_ops: 256,
            flush_interval: Duration::from_millis(5),
        };
        let (node, mux) = KoshaNode::build(cfg, id, NodeAddr(i as u64 + 1), net.clone() as _);
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(1)) })
            .expect("join");
        nodes.push(node);
    }

    let mount =
        KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(1), NodeAddr(1)).expect("mount");

    // Mixed workload: several distributed directories, one hot file read
    // in a tight loop, a warm file, and a cold tail — then periodic
    // pump/sample ticks so the recorders see the workload evolve.
    for d in 0..4 {
        mount.mkdir_p(&format!("/kosha/dir{d}")).expect("mkdir");
    }
    for d in 0..4 {
        for f in 0..4 {
            mount
                .write_file(&format!("/kosha/dir{d}/file{f}"), &[d as u8; 512])
                .expect("write");
        }
    }
    net.run_pumps();
    for round in 0..6 {
        for _ in 0..8 {
            mount.read_file("/kosha/dir0/file0").expect("hot read");
        }
        for _ in 0..2 {
            mount.read_file("/kosha/dir1/file1").expect("warm read");
        }
        mount
            .read_file(&format!("/kosha/dir{}/file2", round % 4))
            .expect("tail read");
        mount
            .write_file(
                &format!("/kosha/dir2/file{}", round % 4),
                &[round as u8; 256],
            )
            .expect("rewrite");
        net.run_pumps();
    }
    mount.commit("/kosha/dir2/file0").expect("commit");
    net.run_pumps();

    let refs: Vec<&KoshaNode> = nodes.iter().map(|n| n.as_ref()).collect();
    let now = net.clock().now().0;
    let mut report = cluster_flight(Some(&net.obs()), &refs, now, &FlightOptions::default());

    // Consistency-observatory pass: fan an AuditScan out to every node
    // and attach the joined divergence report to the dashboard.
    let peers: Vec<NodeAddr> = nodes.iter().map(|n| n.addr()).collect();
    let mut audit = audit_cluster(
        net.as_ref(),
        NodeAddr(1),
        &peers,
        now,
        &AuditOptions {
            replicas: 2,
            ..AuditOptions::default()
        },
    );
    audit.enrich_from_journals(&refs, now);
    audit.publish(&net.obs());
    report.attach_audit(audit);
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
}
