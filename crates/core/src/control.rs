//! The koshad-to-koshad control protocol.
//!
//! Mutations must execute at the *primary replica* so it can fan them out
//! to the K replica nodes (§4.2: "The primary replica is responsible for
//! maintaining K replicas"), so the client-side koshad ships them here by
//! virtual path. Reads and lookups bypass this service and use direct NFS
//! against the primary's store. The protocol also carries promotion
//! queries (fault handling, §4.4) and anchor migration (§4.3).

use kosha_nfs::messages::{WireAttr, WireSetAttr};
use kosha_nfs::Fh;
use kosha_rpc::{Reader, WireError, WireRead, WireWrite, Writer};
use kosha_vfs::{ExportItem, ExportKind};

/// One object pushed during anchor migration or replica repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrateItem {
    /// Path relative to the anchor root ("" = the anchor directory).
    pub rel_path: String,
    /// Object payload.
    pub kind: MigrateKind,
    /// Permission bits.
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
}

/// Payload variants for [`MigrateItem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateKind {
    /// Directory.
    Dir,
    /// Regular file with contents.
    Bytes(Vec<u8>),
    /// Sparse (size-only) file.
    Sparse(u64),
    /// Symlink (user or special).
    Symlink {
        /// Link target.
        target: String,
    },
}

impl From<ExportItem> for MigrateItem {
    fn from(e: ExportItem) -> Self {
        MigrateItem {
            rel_path: e.rel_path,
            kind: match e.kind {
                ExportKind::Dir => MigrateKind::Dir,
                ExportKind::Bytes(b) => MigrateKind::Bytes(b),
                ExportKind::Sparse(n) => MigrateKind::Sparse(n),
                ExportKind::Symlink { target } => MigrateKind::Symlink { target },
            },
            mode: e.mode,
            uid: e.uid,
            gid: e.gid,
        }
    }
}

impl WireWrite for MigrateItem {
    fn write(&self, w: &mut Writer) {
        w.string(&self.rel_path);
        match &self.kind {
            MigrateKind::Dir => w.u8(0),
            MigrateKind::Bytes(b) => {
                w.u8(1);
                w.bytes(b);
            }
            MigrateKind::Sparse(n) => {
                w.u8(2);
                w.u64(*n);
            }
            MigrateKind::Symlink { target } => {
                w.u8(3);
                w.string(target);
            }
        }
        w.u32(self.mode);
        w.u32(self.uid);
        w.u32(self.gid);
    }
}
impl WireRead for MigrateItem {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let rel_path = r.string()?;
        let kind = match r.u8()? {
            0 => MigrateKind::Dir,
            1 => MigrateKind::Bytes(r.bytes()?),
            2 => MigrateKind::Sparse(r.u64()?),
            3 => MigrateKind::Symlink {
                target: r.string()?,
            },
            t => return Err(WireError::BadTag(t)),
        };
        Ok(MigrateItem {
            rel_path,
            kind,
            mode: r.u32()?,
            uid: r.u32()?,
            gid: r.u32()?,
        })
    }
}

/// One store or replica slot's consistency digest, as reported by
/// [`KoshaRequest::AuditScan`]. The digest is a SHA-1 over the slot
/// subtree's canonical serialization with Kosha-internal bookkeeping
/// files (`.kosha_anchor`, `.kosha_lag`, `MIGRATION_NOT_COMPLETE`)
/// excluded, so a primary copy and an up-to-date replica copy hash
/// identically (see `kosha::audit::tree_digest`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Slot directory name (`@` + 16 hex of the anchor-path SHA-1).
    pub slot: String,
    /// Anchor virtual path, when the reporting node knows it (primaries
    /// do; replica holders report `""` and the auditor joins on `slot`).
    pub path: String,
    /// False for a `/kosha_store` (primary) copy, true for a
    /// `/kosha_replica` copy.
    pub replica: bool,
    /// Lower-case 40-hex SHA-1 of the canonical subtree serialization.
    pub digest: String,
    /// Payload bytes in the slot (file contents + symlink targets),
    /// internal files excluded.
    pub bytes: u64,
    /// Objects in the slot (files, dirs, symlinks below the slot root),
    /// internal files excluded.
    pub files: u64,
    /// A `.kosha_lag` marker is present: the copy is known to be behind
    /// an unflushed write-behind window.
    pub lag_marker: bool,
    /// A `MIGRATION_NOT_COMPLETE` flag is present: the copy is mid-push
    /// and expected to diverge until the bracket closes.
    pub migrating: bool,
    /// A `.kosha_hot` lease marker is present: the slot holds read-only
    /// heat-driven cached copies, not a durable K replica. Hot slots
    /// carry only the leased objects, so their digests are expected to
    /// differ from the primary's; the auditor counts them separately
    /// instead of reporting divergence/over-replication (DESIGN.md §16).
    pub hot: bool,
}

impl WireWrite for AuditEntry {
    fn write(&self, w: &mut Writer) {
        w.string(&self.slot);
        w.string(&self.path);
        w.boolean(self.replica);
        w.string(&self.digest);
        w.u64(self.bytes);
        w.u64(self.files);
        w.boolean(self.lag_marker);
        w.boolean(self.migrating);
        w.boolean(self.hot);
    }
}
impl WireRead for AuditEntry {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AuditEntry {
            slot: r.string()?,
            path: r.string()?,
            replica: r.boolean()?,
            digest: r.string()?,
            bytes: r.u64()?,
            files: r.u64()?,
            lag_marker: r.boolean()?,
            migrating: r.boolean()?,
            hot: r.boolean()?,
        })
    }
}

/// Requests handled by a node's Kosha control service. Every path is a
/// full virtual path (relative to `/kosha`, normalized).
#[derive(Debug, Clone, PartialEq)]
pub enum KoshaRequest {
    /// Create a regular file (primary of the parent directory). `size`
    /// creates a quota-charged sparse file (simulation inserts).
    CreateFile {
        /// Virtual path of the new file.
        path: String,
        /// Permission bits.
        mode: u32,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
        /// Sparse size, if any.
        size: Option<u64>,
    },
    /// Create a non-distributed directory (depth > level) on the node
    /// holding its parent.
    MkdirLocal {
        /// Virtual path of the new directory.
        path: String,
        /// Permission bits.
        mode: u32,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
    },
    /// Materialize a distributed directory on this node: create the empty
    /// ancestor hierarchy, the directory itself, and the anchor metadata.
    MkdirAnchor {
        /// Virtual path of the new anchor directory.
        path: String,
        /// The (possibly salted) name this anchor is routed by.
        routing_name: String,
        /// Permission bits.
        mode: u32,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
    },
    /// Place a special link in a parent directory hosted on this node
    /// (§3.1, §3.3). `path` is the link's own virtual path.
    PlaceLink {
        /// Virtual path of the link (parent's listing entry).
        path: String,
        /// Routing name the link points at (`name` or `name#salt`).
        target: String,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
    },
    /// Create a user-level symlink (lives with its parent directory).
    SymlinkFile {
        /// Virtual path of the symlink.
        path: String,
        /// Target string (opaque to Kosha).
        target: String,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
    },
    /// Write data to a file.
    Write {
        /// Virtual path of the file.
        path: String,
        /// Byte offset.
        offset: u64,
        /// Data.
        data: Vec<u8>,
    },
    /// Update attributes of a file or directory hosted on this node.
    SetAttr {
        /// Virtual path.
        path: String,
        /// Attribute changes.
        sattr: WireSetAttr,
    },
    /// Remove a file or user symlink.
    Remove {
        /// Virtual path.
        path: String,
    },
    /// Remove an empty non-distributed directory.
    Rmdir {
        /// Virtual path.
        path: String,
    },
    /// Tear down a distributed directory hosted on this node: verify
    /// empty, remove it, prune the now-empty ancestor hierarchy (§4.1.5).
    RmdirAnchor {
        /// Virtual path of the anchor directory.
        path: String,
    },
    /// Remove the special link entry for a deleted/migrated distributed
    /// directory from its parent's listing on this node.
    RemoveLink {
        /// Virtual path of the link.
        path: String,
    },
    /// Rename an entry where both source and destination live on this
    /// node (same-parent renames and local moves). Renames a special link
    /// without touching its target, per §4.1.4.
    RenameLocal {
        /// Source virtual path.
        from: String,
        /// Destination virtual path.
        to: String,
    },
    /// Rename the materialized directory of an anchor hosted on this node
    /// (the "rename on B" half of §4.1.4's two-node link rename).
    RenameAnchorDir {
        /// Current anchor virtual path.
        from: String,
        /// New anchor virtual path.
        to: String,
    },
    /// Resolution/fault handling: make sure this node serves the anchor
    /// at `path`. If the anchor is in the store, a no-op; if it is only in
    /// the replica area, promote it (§4.4); if it is the root anchor and
    /// absent everywhere, create it empty. Replies `DoneBool(promoted)`;
    /// fails with `NoEnt` if the anchor cannot be served.
    EnsureAnchor {
        /// Anchor virtual path.
        path: String,
        /// Routing name the caller used to reach this node.
        routing: String,
    },
    /// Query `(capacity, used, free)` of this node's contributed space —
    /// the fullness test behind redirection (§3.3).
    StoreStats,
    /// Migration: begin receiving an anchor subtree into the store.
    BeginTransfer {
        /// Anchor virtual path.
        path: String,
    },
    /// Migration: one object of the subtree.
    TransferPut {
        /// Anchor virtual path.
        path: String,
        /// The object.
        item: MigrateItem,
    },
    /// Migration: subtree complete; adopt the anchor (record routing name,
    /// clear flags, start replicating it).
    CommitTransfer {
        /// Anchor virtual path.
        path: String,
        /// Routing name of the anchor.
        routing_name: String,
    },
    /// Introspection: list `(anchor_path, routing_name)` pairs hosted
    /// here (tests and experiment harnesses).
    ListAnchors,
    /// Ask the primary for the current replica holders of the anchor
    /// covering `path` (read-from-replica optimization, §4.2).
    ReplicaTargets {
        /// Virtual path whose covering anchor's replicas are wanted.
        path: String,
    },
    /// Replica maintenance (served on `ServiceId::KoshaReplica`): replace
    /// the receiver's replica copy of `path` with the batched subtree in
    /// one round trip, bracketed by the `MIGRATION_NOT_COMPLETE` flag.
    MigrateBatch {
        /// Anchor virtual path.
        path: String,
        /// The full subtree, in parent-before-child order.
        items: Vec<MigrateItem>,
    },
    /// Replica maintenance (served on `ServiceId::KoshaReplica`): apply
    /// one mutation to the receiver's replica area. The primary fans the
    /// same op out to all K replica holders concurrently. Handlers touch
    /// only local state — no nested RPCs — so concurrent fan-outs
    /// between primaries cannot form call cycles.
    ReplicaApply {
        /// The mutation, mirroring the primary's own store change.
        op: ReplicaOp,
    },
    /// Replica maintenance (served on `ServiceId::KoshaReplica`): apply a
    /// coalesced batch of mutations in order, in one round trip — the
    /// write-behind pump's flush unit. Like `ReplicaApply`, handlers
    /// touch only local state, so the service stays cycle-free.
    ReplicaApplyBatch {
        /// The mutations, in primary apply order (post-coalescing).
        ops: Vec<ReplicaOp>,
    },
    /// Flush barrier: drain this primary's write-behind queues
    /// synchronously before replying. Sent by koshad on NFS COMMIT; a
    /// no-op under synchronous replication.
    Flush {
        /// Virtual path the barrier was issued against (journaled).
        path: String,
    },
    /// Anti-entropy audit: digest every store and replica slot held by
    /// the receiver and reply with one [`AuditEntry`] per slot. The
    /// handler reads only local state (no nested RPCs), so the audit
    /// pass can fan out to every node concurrently without risking call
    /// cycles.
    AuditScan,
    /// Replica-slot garbage-collection probe: like `ReplicaTargets`, but
    /// keyed by the replica-area slot name — holders know their slots,
    /// not necessarily the anchor's virtual path. The owner replies with
    /// the anchor's current replica holders, or `NoEnt` when it hosts no
    /// anchor for `slot` (the holder then keeps its copy, conservatively).
    ReplicaTargetsBySlot {
        /// Slot directory name (`@` + 16 hex digits of the routing key).
        slot: String,
        /// Transport address of the probing holder. When the answer does
        /// not list this node the holder will drop its copy, so the owner
        /// voids its full-push memo for the anchor — the next maintenance
        /// pass re-pushes even if the holder later rejoins the target set
        /// with the primary content unchanged.
        holder: u64,
    },
    /// Heat-driven read scaling (served on `ServiceId::KoshaReplica`):
    /// place or refresh one read-only cached copy of a hot object in the
    /// receiver's replica area, leased until `expires_nanos` and stamped
    /// with the primary's mutation sequence. The request carries the full
    /// object payload, so the handler touches only local state (no nested
    /// RPCs) like every other replica-service handler (DESIGN.md §16).
    HotReplicaPush {
        /// Covering anchor virtual path of the hot object.
        anchor: String,
        /// The anchor's routing name (recorded in the slot's
        /// `.kosha_anchor` so replica-slot GC can find the owner).
        routing: String,
        /// Virtual path of the hot object.
        path: String,
        /// Primary mutation sequence the pushed payload reflects.
        seq: u64,
        /// Lease expiry in virtual nanoseconds.
        expires_nanos: u64,
        /// The object itself (`rel_path` relative to the anchor root,
        /// parent directories implied).
        item: MigrateItem,
    },
    /// Heat-driven read scaling (served on `ServiceId::KoshaReplica`):
    /// revoke the receiver's hot copy of `path` — heat decayed, the
    /// object was mutated without a refresh, or it was removed. A no-op
    /// when the receiver's slot carries no `.kosha_hot` lease for the
    /// path (e.g. the slot became a durable replica in the meantime).
    HotReplicaDrop {
        /// Covering anchor virtual path.
        anchor: String,
        /// Virtual path of the object whose lease is revoked.
        path: String,
    },
}

impl KoshaRequest {
    /// Short stable name of the request kind, used to label trace spans
    /// (`kosha:{name}` on the control service, `replica:{name}` on the
    /// replica service) and journal details.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            KoshaRequest::CreateFile { .. } => "create_file",
            KoshaRequest::MkdirLocal { .. } => "mkdir_local",
            KoshaRequest::MkdirAnchor { .. } => "mkdir_anchor",
            KoshaRequest::PlaceLink { .. } => "place_link",
            KoshaRequest::SymlinkFile { .. } => "symlink_file",
            KoshaRequest::Write { .. } => "write",
            KoshaRequest::SetAttr { .. } => "setattr",
            KoshaRequest::Remove { .. } => "remove",
            KoshaRequest::Rmdir { .. } => "rmdir",
            KoshaRequest::RmdirAnchor { .. } => "rmdir_anchor",
            KoshaRequest::RemoveLink { .. } => "remove_link",
            KoshaRequest::RenameLocal { .. } => "rename_local",
            KoshaRequest::RenameAnchorDir { .. } => "rename_anchor_dir",
            KoshaRequest::EnsureAnchor { .. } => "ensure_anchor",
            KoshaRequest::StoreStats => "store_stats",
            KoshaRequest::BeginTransfer { .. } => "begin_transfer",
            KoshaRequest::TransferPut { .. } => "transfer_put",
            KoshaRequest::CommitTransfer { .. } => "commit_transfer",
            KoshaRequest::ListAnchors => "list_anchors",
            KoshaRequest::ReplicaTargets { .. } => "replica_targets",
            KoshaRequest::MigrateBatch { .. } => "migrate_batch",
            KoshaRequest::ReplicaApply { .. } => "replica_apply",
            KoshaRequest::ReplicaApplyBatch { .. } => "replica_apply_batch",
            KoshaRequest::Flush { .. } => "flush",
            KoshaRequest::AuditScan => "audit_scan",
            KoshaRequest::ReplicaTargetsBySlot { .. } => "replica_targets_by_slot",
            KoshaRequest::HotReplicaPush { .. } => "hot_replica_push",
            KoshaRequest::HotReplicaDrop { .. } => "hot_replica_drop",
        }
    }
}

/// One replicated mutation, shipped by the primary to each replica
/// holder after it has applied the change to its own store (§4.2).
/// Paths are full virtual paths; the receiver derives the covering
/// anchor (and thus the replica-area slot) itself, and treats already-
/// done outcomes (`Exist` on creates, `NoEnt` on removes) as success so
/// replays are idempotent.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicaOp {
    /// Ensure the replica directory for `path` (a directory) exists.
    Mkdir {
        /// Virtual path of the directory.
        path: String,
    },
    /// Create a regular (or sparse, when `size` is set) file.
    Create {
        /// Virtual path of the file.
        path: String,
        /// Permission bits.
        mode: u32,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
        /// Sparse size, if any.
        size: Option<u64>,
    },
    /// Create a symlink (special or user-level; `mode` distinguishes).
    Symlink {
        /// Virtual path of the link.
        path: String,
        /// Link target.
        target: String,
        /// Permission bits (sticky bit marks special links).
        mode: u32,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
    },
    /// Write data (creating the file if the replica lacks it).
    Write {
        /// Virtual path of the file.
        path: String,
        /// Byte offset.
        offset: u64,
        /// Data.
        data: Vec<u8>,
    },
    /// Update attributes.
    SetAttr {
        /// Virtual path.
        path: String,
        /// Attribute changes.
        sattr: WireSetAttr,
    },
    /// Remove a file or symlink.
    Remove {
        /// Virtual path.
        path: String,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Virtual path.
        path: String,
    },
    /// Drop the whole replica copy of an anchor (anchor teardown).
    RemoveSlot {
        /// Anchor virtual path.
        anchor: String,
    },
    /// Rename an entry (both paths under anchors this replica mirrors).
    Rename {
        /// Source virtual path.
        from: String,
        /// Destination virtual path.
        to: String,
    },
    /// Rename an anchor's replica slot (anchor directory rename).
    RenameSlot {
        /// Current anchor virtual path.
        from: String,
        /// New anchor virtual path.
        to: String,
    },
    /// Write-behind lag marker. With `bytes > 0`, stamps the replica
    /// slot as *behind* the primary by at least that many queued payload
    /// bytes; with `bytes == 0`, clears the stamp (the flush carrying it
    /// brought the slot current). A node promoting a slot that still
    /// carries a stamp knows data was lost and journals `replica_lag`
    /// instead of silently serving stale bytes.
    LagMark {
        /// Anchor virtual path of the stamped slot.
        anchor: String,
        /// Lower bound of queued payload bytes (0 = clear).
        bytes: u64,
    },
}

impl WireWrite for ReplicaOp {
    fn write(&self, w: &mut Writer) {
        match self {
            ReplicaOp::Mkdir { path } => {
                w.u8(0);
                w.string(path);
            }
            ReplicaOp::Create {
                path,
                mode,
                uid,
                gid,
                size,
            } => {
                w.u8(1);
                w.string(path);
                w.u32(*mode);
                w.u32(*uid);
                w.u32(*gid);
                w.option(size);
            }
            ReplicaOp::Symlink {
                path,
                target,
                mode,
                uid,
                gid,
            } => {
                w.u8(2);
                w.string(path);
                w.string(target);
                w.u32(*mode);
                w.u32(*uid);
                w.u32(*gid);
            }
            ReplicaOp::Write { path, offset, data } => {
                w.u8(3);
                w.string(path);
                w.u64(*offset);
                w.bytes(data);
            }
            ReplicaOp::SetAttr { path, sattr } => {
                w.u8(4);
                w.string(path);
                w.value(sattr);
            }
            ReplicaOp::Remove { path } => {
                w.u8(5);
                w.string(path);
            }
            ReplicaOp::Rmdir { path } => {
                w.u8(6);
                w.string(path);
            }
            ReplicaOp::RemoveSlot { anchor } => {
                w.u8(7);
                w.string(anchor);
            }
            ReplicaOp::Rename { from, to } => {
                w.u8(8);
                w.string(from);
                w.string(to);
            }
            ReplicaOp::RenameSlot { from, to } => {
                w.u8(9);
                w.string(from);
                w.string(to);
            }
            ReplicaOp::LagMark { anchor, bytes } => {
                w.u8(10);
                w.string(anchor);
                w.u64(*bytes);
            }
        }
    }
}
impl WireRead for ReplicaOp {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => ReplicaOp::Mkdir { path: r.string()? },
            1 => ReplicaOp::Create {
                path: r.string()?,
                mode: r.u32()?,
                uid: r.u32()?,
                gid: r.u32()?,
                size: r.option()?,
            },
            2 => ReplicaOp::Symlink {
                path: r.string()?,
                target: r.string()?,
                mode: r.u32()?,
                uid: r.u32()?,
                gid: r.u32()?,
            },
            3 => ReplicaOp::Write {
                path: r.string()?,
                offset: r.u64()?,
                data: r.bytes()?,
            },
            4 => ReplicaOp::SetAttr {
                path: r.string()?,
                sattr: r.value()?,
            },
            5 => ReplicaOp::Remove { path: r.string()? },
            6 => ReplicaOp::Rmdir { path: r.string()? },
            7 => ReplicaOp::RemoveSlot {
                anchor: r.string()?,
            },
            8 => ReplicaOp::Rename {
                from: r.string()?,
                to: r.string()?,
            },
            9 => ReplicaOp::RenameSlot {
                from: r.string()?,
                to: r.string()?,
            },
            10 => ReplicaOp::LagMark {
                anchor: r.string()?,
                bytes: r.u64()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl WireWrite for KoshaRequest {
    fn write(&self, w: &mut Writer) {
        match self {
            KoshaRequest::CreateFile {
                path,
                mode,
                uid,
                gid,
                size,
            } => {
                w.u8(0);
                w.string(path);
                w.u32(*mode);
                w.u32(*uid);
                w.u32(*gid);
                w.option(size);
            }
            KoshaRequest::MkdirLocal {
                path,
                mode,
                uid,
                gid,
            } => {
                w.u8(1);
                w.string(path);
                w.u32(*mode);
                w.u32(*uid);
                w.u32(*gid);
            }
            KoshaRequest::MkdirAnchor {
                path,
                routing_name,
                mode,
                uid,
                gid,
            } => {
                w.u8(2);
                w.string(path);
                w.string(routing_name);
                w.u32(*mode);
                w.u32(*uid);
                w.u32(*gid);
            }
            KoshaRequest::PlaceLink {
                path,
                target,
                uid,
                gid,
            } => {
                w.u8(3);
                w.string(path);
                w.string(target);
                w.u32(*uid);
                w.u32(*gid);
            }
            KoshaRequest::SymlinkFile {
                path,
                target,
                uid,
                gid,
            } => {
                w.u8(4);
                w.string(path);
                w.string(target);
                w.u32(*uid);
                w.u32(*gid);
            }
            KoshaRequest::Write { path, offset, data } => {
                w.u8(5);
                w.string(path);
                w.u64(*offset);
                w.bytes(data);
            }
            KoshaRequest::SetAttr { path, sattr } => {
                w.u8(6);
                w.string(path);
                w.value(sattr);
            }
            KoshaRequest::Remove { path } => {
                w.u8(7);
                w.string(path);
            }
            KoshaRequest::Rmdir { path } => {
                w.u8(8);
                w.string(path);
            }
            KoshaRequest::RmdirAnchor { path } => {
                w.u8(9);
                w.string(path);
            }
            KoshaRequest::RemoveLink { path } => {
                w.u8(10);
                w.string(path);
            }
            KoshaRequest::RenameLocal { from, to } => {
                w.u8(11);
                w.string(from);
                w.string(to);
            }
            KoshaRequest::RenameAnchorDir { from, to } => {
                w.u8(12);
                w.string(from);
                w.string(to);
            }
            KoshaRequest::EnsureAnchor { path, routing } => {
                w.u8(13);
                w.string(path);
                w.string(routing);
            }
            KoshaRequest::StoreStats => w.u8(14),
            KoshaRequest::BeginTransfer { path } => {
                w.u8(15);
                w.string(path);
            }
            KoshaRequest::TransferPut { path, item } => {
                w.u8(16);
                w.string(path);
                w.value(item);
            }
            KoshaRequest::CommitTransfer { path, routing_name } => {
                w.u8(17);
                w.string(path);
                w.string(routing_name);
            }
            KoshaRequest::ListAnchors => w.u8(18),
            KoshaRequest::ReplicaTargets { path } => {
                w.u8(19);
                w.string(path);
            }
            KoshaRequest::MigrateBatch { path, items } => {
                w.u8(20);
                w.string(path);
                w.seq(items);
            }
            KoshaRequest::ReplicaApply { op } => {
                w.u8(21);
                w.value(op);
            }
            KoshaRequest::ReplicaApplyBatch { ops } => {
                w.u8(22);
                w.seq(ops);
            }
            KoshaRequest::Flush { path } => {
                w.u8(23);
                w.string(path);
            }
            KoshaRequest::AuditScan => w.u8(24),
            KoshaRequest::ReplicaTargetsBySlot { slot, holder } => {
                w.u8(25);
                w.string(slot);
                w.u64(*holder);
            }
            KoshaRequest::HotReplicaPush {
                anchor,
                routing,
                path,
                seq,
                expires_nanos,
                item,
            } => {
                w.u8(26);
                w.string(anchor);
                w.string(routing);
                w.string(path);
                w.u64(*seq);
                w.u64(*expires_nanos);
                w.value(item);
            }
            KoshaRequest::HotReplicaDrop { anchor, path } => {
                w.u8(27);
                w.string(anchor);
                w.string(path);
            }
        }
    }
}

impl WireRead for KoshaRequest {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => KoshaRequest::CreateFile {
                path: r.string()?,
                mode: r.u32()?,
                uid: r.u32()?,
                gid: r.u32()?,
                size: r.option()?,
            },
            1 => KoshaRequest::MkdirLocal {
                path: r.string()?,
                mode: r.u32()?,
                uid: r.u32()?,
                gid: r.u32()?,
            },
            2 => KoshaRequest::MkdirAnchor {
                path: r.string()?,
                routing_name: r.string()?,
                mode: r.u32()?,
                uid: r.u32()?,
                gid: r.u32()?,
            },
            3 => KoshaRequest::PlaceLink {
                path: r.string()?,
                target: r.string()?,
                uid: r.u32()?,
                gid: r.u32()?,
            },
            4 => KoshaRequest::SymlinkFile {
                path: r.string()?,
                target: r.string()?,
                uid: r.u32()?,
                gid: r.u32()?,
            },
            5 => KoshaRequest::Write {
                path: r.string()?,
                offset: r.u64()?,
                data: r.bytes()?,
            },
            6 => KoshaRequest::SetAttr {
                path: r.string()?,
                sattr: r.value()?,
            },
            7 => KoshaRequest::Remove { path: r.string()? },
            8 => KoshaRequest::Rmdir { path: r.string()? },
            9 => KoshaRequest::RmdirAnchor { path: r.string()? },
            10 => KoshaRequest::RemoveLink { path: r.string()? },
            11 => KoshaRequest::RenameLocal {
                from: r.string()?,
                to: r.string()?,
            },
            12 => KoshaRequest::RenameAnchorDir {
                from: r.string()?,
                to: r.string()?,
            },
            13 => KoshaRequest::EnsureAnchor {
                path: r.string()?,
                routing: r.string()?,
            },
            14 => KoshaRequest::StoreStats,
            15 => KoshaRequest::BeginTransfer { path: r.string()? },
            16 => KoshaRequest::TransferPut {
                path: r.string()?,
                item: r.value()?,
            },
            17 => KoshaRequest::CommitTransfer {
                path: r.string()?,
                routing_name: r.string()?,
            },
            18 => KoshaRequest::ListAnchors,
            19 => KoshaRequest::ReplicaTargets { path: r.string()? },
            20 => KoshaRequest::MigrateBatch {
                path: r.string()?,
                items: r.seq()?,
            },
            21 => KoshaRequest::ReplicaApply { op: r.value()? },
            22 => KoshaRequest::ReplicaApplyBatch { ops: r.seq()? },
            23 => KoshaRequest::Flush { path: r.string()? },
            24 => KoshaRequest::AuditScan,
            25 => KoshaRequest::ReplicaTargetsBySlot {
                slot: r.string()?,
                holder: r.u64()?,
            },
            26 => KoshaRequest::HotReplicaPush {
                anchor: r.string()?,
                routing: r.string()?,
                path: r.string()?,
                seq: r.u64()?,
                expires_nanos: r.u64()?,
                item: r.value()?,
            },
            27 => KoshaRequest::HotReplicaDrop {
                anchor: r.string()?,
                path: r.string()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// Successful control replies; the wire frame is
/// `Result<KoshaReply, NfsStatus>` like the NFS reply frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KoshaReply {
    /// Acknowledged.
    Done,
    /// A created object's real handle and attributes (CreateFile,
    /// MkdirLocal) — saves the caller a LOOKUP round trip, like NFS
    /// CREATE's post-op handle.
    Handle {
        /// Real handle on the replying node.
        fh: Fh,
        /// Attributes at creation.
        attr: WireAttr,
    },
    /// Boolean outcome (promotion happened or not).
    DoneBool(bool),
    /// Store statistics.
    Stats {
        /// Total contributed bytes.
        capacity: u64,
        /// Bytes used.
        used: u64,
        /// Bytes free.
        free: u64,
    },
    /// Hosted anchors: `(virtual path, routing name)`.
    Anchors(Vec<(String, String)>),
    /// Node addresses (replica holders).
    Nodes(Vec<kosha_rpc::NodeAddr>),
    /// Per-slot consistency digests (`AuditScan`), slot order.
    Audit(Vec<AuditEntry>),
}

impl WireWrite for KoshaReply {
    fn write(&self, w: &mut Writer) {
        match self {
            KoshaReply::Done => w.u8(0),
            KoshaReply::Handle { fh, attr } => {
                w.u8(4);
                w.value(fh);
                w.value(attr);
            }
            KoshaReply::DoneBool(b) => {
                w.u8(1);
                w.boolean(*b);
            }
            KoshaReply::Stats {
                capacity,
                used,
                free,
            } => {
                w.u8(2);
                w.u64(*capacity);
                w.u64(*used);
                w.u64(*free);
            }
            KoshaReply::Anchors(v) => {
                w.u8(3);
                w.u32(v.len() as u32);
                for (p, r) in v {
                    w.string(p);
                    w.string(r);
                }
            }
            KoshaReply::Nodes(v) => {
                w.u8(5);
                w.seq(v);
            }
            KoshaReply::Audit(v) => {
                w.u8(6);
                w.seq(v);
            }
        }
    }
}
impl WireRead for KoshaReply {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => KoshaReply::Done,
            4 => KoshaReply::Handle {
                fh: r.value()?,
                attr: r.value()?,
            },
            1 => KoshaReply::DoneBool(r.boolean()?),
            2 => KoshaReply::Stats {
                capacity: r.u64()?,
                used: r.u64()?,
                free: r.u64()?,
            },
            3 => {
                let n = r.u32()? as usize;
                let mut v = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    v.push((r.string()?, r.string()?));
                }
                KoshaReply::Anchors(v)
            }
            5 => KoshaReply::Nodes(r.seq()?),
            6 => KoshaReply::Audit(r.seq()?),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// Wire frame for control replies.
#[derive(Debug, Clone, PartialEq)]
pub struct KoshaReplyFrame(pub Result<KoshaReply, kosha_nfs::NfsStatus>);

impl WireWrite for KoshaReplyFrame {
    fn write(&self, w: &mut Writer) {
        match &self.0 {
            Ok(rep) => {
                w.u8(0);
                w.value(rep);
            }
            Err(status) => {
                // Reuse the NFS frame encoding for the status byte.
                let frame = kosha_nfs::messages::NfsReplyFrame(Err(*status));
                let enc = frame.encode();
                w.u8(enc[0]);
            }
        }
    }
}
impl WireRead for KoshaReplyFrame {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        // Peek the status byte via the NFS frame decoder's convention.
        let tag = r.u8()?;
        if tag == 0 {
            Ok(KoshaReplyFrame(Ok(r.value()?)))
        } else {
            let frame = kosha_nfs::messages::NfsReplyFrame::decode(&[tag])?;
            match frame.0 {
                Err(s) => Ok(KoshaReplyFrame(Err(s))),
                Ok(_) => Err(WireError::BadTag(tag)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kosha_nfs::NfsStatus;
    use kosha_vfs::SetAttr;

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            KoshaRequest::CreateFile {
                path: "/a/f".into(),
                mode: 0o644,
                uid: 1,
                gid: 2,
                size: Some(100),
            },
            KoshaRequest::MkdirLocal {
                path: "/a/b/c".into(),
                mode: 0o755,
                uid: 0,
                gid: 0,
            },
            KoshaRequest::MkdirAnchor {
                path: "/a".into(),
                routing_name: "a#77".into(),
                mode: 0o755,
                uid: 0,
                gid: 0,
            },
            KoshaRequest::PlaceLink {
                path: "/a".into(),
                target: "a#77".into(),
                uid: 0,
                gid: 0,
            },
            KoshaRequest::SymlinkFile {
                path: "/a/l".into(),
                target: "whatever".into(),
                uid: 0,
                gid: 0,
            },
            KoshaRequest::Write {
                path: "/a/f".into(),
                offset: 9,
                data: vec![1, 2],
            },
            KoshaRequest::SetAttr {
                path: "/a/f".into(),
                sattr: WireSetAttr(SetAttr {
                    size: Some(3),
                    ..Default::default()
                }),
            },
            KoshaRequest::Remove {
                path: "/a/f".into(),
            },
            KoshaRequest::Rmdir {
                path: "/a/d".into(),
            },
            KoshaRequest::RmdirAnchor { path: "/a".into() },
            KoshaRequest::RemoveLink { path: "/a".into() },
            KoshaRequest::RenameLocal {
                from: "/a/x".into(),
                to: "/a/y".into(),
            },
            KoshaRequest::RenameAnchorDir {
                from: "/a".into(),
                to: "/b".into(),
            },
            KoshaRequest::EnsureAnchor {
                path: "/a".into(),
                routing: "a#3".into(),
            },
            KoshaRequest::StoreStats,
            KoshaRequest::BeginTransfer { path: "/a".into() },
            KoshaRequest::TransferPut {
                path: "/a".into(),
                item: MigrateItem {
                    rel_path: "x/f".into(),
                    kind: MigrateKind::Bytes(vec![7; 9]),
                    mode: 0o644,
                    uid: 3,
                    gid: 4,
                },
            },
            KoshaRequest::CommitTransfer {
                path: "/a".into(),
                routing_name: "a".into(),
            },
            KoshaRequest::ListAnchors,
            KoshaRequest::ReplicaTargets { path: "/a".into() },
            KoshaRequest::ReplicaTargetsBySlot {
                slot: "@00c0ffee00c0ffee".into(),
                holder: 7,
            },
            KoshaRequest::MigrateBatch {
                path: "/a".into(),
                items: vec![
                    MigrateItem {
                        rel_path: "d".into(),
                        kind: MigrateKind::Dir,
                        mode: 0o755,
                        uid: 1,
                        gid: 2,
                    },
                    MigrateItem {
                        rel_path: "d/f".into(),
                        kind: MigrateKind::Bytes(vec![5; 3]),
                        mode: 0o644,
                        uid: 1,
                        gid: 2,
                    },
                ],
            },
            KoshaRequest::ReplicaApply {
                op: ReplicaOp::Write {
                    path: "/a/f".into(),
                    offset: 4,
                    data: vec![9, 8],
                },
            },
            KoshaRequest::ReplicaApplyBatch {
                ops: vec![
                    ReplicaOp::Create {
                        path: "/a/f".into(),
                        mode: 0o644,
                        uid: 1,
                        gid: 2,
                        size: None,
                    },
                    ReplicaOp::Write {
                        path: "/a/f".into(),
                        offset: 0,
                        data: vec![3, 4],
                    },
                    ReplicaOp::LagMark {
                        anchor: "/a".into(),
                        bytes: 0,
                    },
                ],
            },
            KoshaRequest::Flush {
                path: "/a/f".into(),
            },
            KoshaRequest::AuditScan,
            KoshaRequest::HotReplicaPush {
                anchor: "/a".into(),
                routing: "a#2".into(),
                path: "/a/hot".into(),
                seq: 17,
                expires_nanos: 9_000_000_000,
                item: MigrateItem {
                    rel_path: "hot".into(),
                    kind: MigrateKind::Bytes(vec![6; 5]),
                    mode: 0o644,
                    uid: 1,
                    gid: 2,
                },
            },
            KoshaRequest::HotReplicaDrop {
                anchor: "/a".into(),
                path: "/a/hot".into(),
            },
        ];
        for req in reqs {
            let b = req.encode();
            assert_eq!(KoshaRequest::decode(&b).unwrap(), req);
        }
    }

    #[test]
    fn replies_round_trip() {
        for frame in [
            KoshaReplyFrame(Ok(KoshaReply::Done)),
            KoshaReplyFrame(Ok(KoshaReply::DoneBool(true))),
            KoshaReplyFrame(Ok(KoshaReply::Stats {
                capacity: 10,
                used: 3,
                free: 7,
            })),
            KoshaReplyFrame(Ok(KoshaReply::Anchors(vec![("/a".into(), "a#1".into())]))),
            KoshaReplyFrame(Ok(KoshaReply::Nodes(vec![
                kosha_rpc::NodeAddr(3),
                kosha_rpc::NodeAddr(9),
            ]))),
            KoshaReplyFrame(Ok(KoshaReply::Audit(vec![
                AuditEntry {
                    slot: "@00d4c05e3b0b08e1".into(),
                    path: "/a".into(),
                    replica: false,
                    digest: "da39a3ee5e6b4b0d3255bfef95601890afd80709".into(),
                    bytes: 4096,
                    files: 12,
                    lag_marker: false,
                    migrating: false,
                    hot: false,
                },
                AuditEntry {
                    slot: "@00d4c05e3b0b08e1".into(),
                    path: String::new(),
                    replica: true,
                    digest: "b6589fc6ab0dc82cf12099d1c2d40ab994e8410c".into(),
                    bytes: 4000,
                    files: 11,
                    lag_marker: true,
                    migrating: true,
                    hot: true,
                },
            ]))),
            KoshaReplyFrame(Err(NfsStatus::NoSpc)),
            KoshaReplyFrame(Err(NfsStatus::NotEmpty)),
        ] {
            let b = frame.encode();
            assert_eq!(KoshaReplyFrame::decode(&b).unwrap(), frame);
        }
    }

    #[test]
    fn replica_ops_round_trip() {
        let ops = vec![
            ReplicaOp::Mkdir {
                path: "/a/d".into(),
            },
            ReplicaOp::Create {
                path: "/a/f".into(),
                mode: 0o644,
                uid: 1,
                gid: 2,
                size: Some(64),
            },
            ReplicaOp::Symlink {
                path: "/a/l".into(),
                target: "t#1".into(),
                mode: 0o1777,
                uid: 0,
                gid: 0,
            },
            ReplicaOp::Write {
                path: "/a/f".into(),
                offset: 0,
                data: vec![1],
            },
            ReplicaOp::SetAttr {
                path: "/a/f".into(),
                sattr: WireSetAttr(SetAttr {
                    size: Some(2),
                    ..Default::default()
                }),
            },
            ReplicaOp::Remove {
                path: "/a/f".into(),
            },
            ReplicaOp::Rmdir {
                path: "/a/d".into(),
            },
            ReplicaOp::RemoveSlot {
                anchor: "/a".into(),
            },
            ReplicaOp::Rename {
                from: "/a/x".into(),
                to: "/a/y".into(),
            },
            ReplicaOp::RenameSlot {
                from: "/a".into(),
                to: "/b".into(),
            },
            ReplicaOp::LagMark {
                anchor: "/a".into(),
                bytes: 4096,
            },
        ];
        for op in ops {
            let b = op.encode();
            assert_eq!(ReplicaOp::decode(&b).unwrap(), op);
        }
    }

    #[test]
    fn migrate_items_round_trip() {
        for kind in [
            MigrateKind::Dir,
            MigrateKind::Bytes(vec![1, 2, 3]),
            MigrateKind::Sparse(1 << 40),
            MigrateKind::Symlink {
                target: "t#1".into(),
            },
        ] {
            let item = MigrateItem {
                rel_path: "a/b".into(),
                kind,
                mode: 0o755,
                uid: 1,
                gid: 2,
            };
            let b = item.encode();
            assert_eq!(MigrateItem::decode(&b).unwrap(), item);
        }
    }
}
