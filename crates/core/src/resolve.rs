//! Client-side resolution: mapping virtual paths to `(node, real handle)`
//! locations, following special links, and failing over to replicas.
//!
//! Resolution walks the path component-by-component starting from the
//! virtual root's owner, exactly as koshad issues "a sequence of lookup
//! RPCs" (§4.1.3). A *special link* entry marks a distributed child
//! directory (§3.1/§3.3): the link target — the possibly-salted routing
//! name — is hashed and routed, and the walk continues inside that
//! anchor's materialized subtree ("slot") on the owning node. Results are
//! cached; any RPC failure invalidates the caches touching the dead node
//! and the walk retries — the re-route lands on a leaf-set neighbor that
//! holds a replica, which the `EnsureAnchor` control call promotes to
//! primary (§4.4).

use crate::control::{KoshaReply, KoshaReplyFrame, KoshaRequest};
use crate::handles::Location;
use crate::node::KoshaNode;
use crate::paths::{anchor_dir_of, anchor_slot, is_distributed_dir, Area, ROOT_ANCHOR};
use kosha_id::dir_key;
use kosha_nfs::{Fh, NfsError, NfsResult, NfsStatus};
use kosha_pastry::{NodeInfo, OverlayError};
use kosha_rpc::{NodeAddr, RpcError, RpcRequest, ServiceId};
use kosha_vfs::path::parent_and_name;
use kosha_vfs::FileType;

/// True if a symlink's mode marks it as a Kosha special link (sticky
/// bit set by [`crate::primary`] when placing links).
#[must_use]
pub fn is_special_link_mode(mode: u32) -> bool {
    mode & 0o1000 != 0
}

pub(crate) fn overlay_to_nfs(e: OverlayError) -> NfsError {
    match e {
        OverlayError::Rpc(r) => NfsError::Rpc(r),
        OverlayError::NoRoute => NfsError::Rpc(RpcError::Remote("no overlay route".into())),
    }
}

impl KoshaNode {
    /// Routes a routing name to its current owner.
    pub(crate) fn owner_of(&self, routing_name: &str) -> NfsResult<NodeInfo> {
        self.pastry
            .route_owner(dir_key(routing_name))
            .map_err(overlay_to_nfs)
    }

    /// Sends a control request to another koshad (or ourselves, over the
    /// loopback).
    pub(crate) fn control(&self, to: NodeAddr, req: &KoshaRequest) -> NfsResult<KoshaReply> {
        let resp = self
            .net
            .call(self.info.addr, to, RpcRequest::new(ServiceId::Kosha, req))
            .map_err(NfsError::Rpc)?;
        let frame: KoshaReplyFrame = resp.decode().map_err(NfsError::Rpc)?;
        frame.0.map_err(NfsError::Status)
    }

    /// Reacts to an observed node failure: informs the overlay and drops
    /// every cached mapping through the dead node (§4.4: "Kosha detects
    /// an RPC error and removes the mapping for the virtual handle").
    pub(crate) fn fail_over(&self, addr: NodeAddr) {
        self.stats.failovers.inc();
        self.journal(
            "failover",
            format!("{addr} unreachable; rebinding cached locations"),
        );
        self.pastry.note_failed(addr);
        let mut c = self.client.lock();
        c.root_cache.remove(&addr);
        c.dir_cache.retain(|_, l| l.addr != addr);
        c.handles.clear_locations_at(addr);
    }

    /// Drops all resolution caches: the internal reaction to a
    /// stale-handle surprise (e.g. a purged and reincarnated store), and
    /// an admin knob for benchmarks that need a cold resolver. Virtual
    /// handles stay valid — their paths re-resolve on next use.
    pub fn flush_caches(&self) {
        let mut c = self.client.lock();
        c.root_cache.clear();
        c.dir_cache.clear();
        c.handles.clear_locations_everywhere();
    }

    /// Retry wrapper implementing transparent fault handling: on an
    /// unreachable node, fail over and re-run; on a stale handle, flush
    /// caches and re-run.
    pub(crate) fn with_retry<T>(&self, mut f: impl FnMut(&Self) -> NfsResult<T>) -> NfsResult<T> {
        let mut attempts = self.cfg.failover_retries;
        loop {
            match f(self) {
                Err(NfsError::Rpc(RpcError::Unreachable(a))) if attempts > 0 => {
                    attempts -= 1;
                    self.fail_over(a);
                }
                Err(NfsError::Status(NfsStatus::Stale)) if attempts > 0 => {
                    attempts -= 1;
                    self.flush_caches();
                }
                r => return r,
            }
        }
    }

    /// Path-scoped retry wrapper: like [`Self::with_retry`], plus a
    /// single scoped retry on `NoEnt`. A cached directory location may
    /// point at a node that *demoted* the covering anchor (migration to
    /// a newcomer, or an interim owner that served during an outage);
    /// that node answers `NoEnt` for paths it no longer authoritatively
    /// hosts. Invalidating just this path's chain and re-resolving finds
    /// the current primary. Genuinely missing paths still report
    /// `NoEnt`, after one extra resolution of this path only — all other
    /// cached state is untouched.
    pub(crate) fn with_path_retry<T>(
        &self,
        vpath: &str,
        mut f: impl FnMut(&Self) -> NfsResult<T>,
    ) -> NfsResult<T> {
        match self.with_retry(&mut f) {
            Err(NfsError::Status(NfsStatus::NoEnt)) => {
                self.invalidate_chain(vpath);
                self.with_retry(f)
            }
            r => r,
        }
    }

    /// Invalidates cached locations for `vpath`, its ancestors, and its
    /// descendants (the resolution chain a migrated anchor poisons).
    /// Handles on unrelated branches keep their cached locations.
    pub(crate) fn invalidate_chain(&self, vpath: &str) {
        let prefix = format!("{vpath}/");
        let mut c = self.client.lock();
        c.dir_cache.retain(|p, _| {
            let is_ancestor = p == "/" || vpath.starts_with(&format!("{p}/"));
            let is_self = p == vpath;
            let is_descendant = p.starts_with(&prefix);
            !(is_ancestor || is_self || is_descendant)
        });
        c.handles.clear_locations_chain(vpath);
    }

    /// The handle of a node's `/kosha_store` export root, cached.
    pub(crate) fn store_root(&self, addr: NodeAddr) -> NfsResult<Fh> {
        if let Some(&fh) = self.client.lock().root_cache.get(&addr) {
            return Ok(fh);
        }
        let root = self.nfs.mount(addr)?;
        let (fh, _) = self.nfs.lookup(addr, root, Area::Store.dir_name())?;
        self.client.lock().root_cache.insert(addr, fh);
        Ok(fh)
    }

    /// Locates the slot root of `anchor_path` on `owner`, asking the
    /// owner to promote (or, for the virtual root, create) it if its
    /// store lacks it.
    pub(crate) fn locate_anchor(
        &self,
        owner: NodeAddr,
        anchor_path: &str,
        routing: &str,
    ) -> NfsResult<Fh> {
        let slot = anchor_slot(anchor_path);
        let root = self.store_root(owner)?;
        match self.nfs.lookup(owner, root, &slot) {
            Ok((fh, attr)) if attr.ftype == FileType::Directory => return Ok(fh),
            Ok(_) => return Err(NfsError::Status(NfsStatus::NotDir)),
            Err(NfsError::Status(NfsStatus::NoEnt)) => {}
            Err(e) => return Err(e),
        }
        // Absent: ask the owner to promote from its replica area (§4.4)
        // or, for the root anchor, to create it empty.
        self.control(
            owner,
            &KoshaRequest::EnsureAnchor {
                path: anchor_path.to_string(),
                routing: routing.to_string(),
            },
        )?;
        let (fh, _) = self.nfs.lookup(owner, root, &slot)?;
        Ok(fh)
    }

    /// Resolves the authoritative listing of directory `vpath` to a
    /// location, walking from the root owner and following special links.
    pub(crate) fn resolve_dir(&self, vpath: &str) -> NfsResult<Location> {
        let mut budget = self.cfg.failover_retries;
        self.resolve_dir_budget(vpath, &mut budget)
    }

    pub(crate) fn resolve_dir_budget(
        &self,
        vpath: &str,
        budget: &mut usize,
    ) -> NfsResult<Location> {
        loop {
            match self.resolve_dir_once(vpath, budget) {
                Err(NfsError::Rpc(RpcError::Unreachable(a))) if *budget > 0 => {
                    *budget -= 1;
                    self.fail_over(a);
                }
                Err(NfsError::Status(NfsStatus::Stale)) if *budget > 0 => {
                    *budget -= 1;
                    self.flush_caches();
                }
                r => return r,
            }
        }
    }

    fn resolve_dir_once(&self, vpath: &str, budget: &mut usize) -> NfsResult<Location> {
        if self.cfg.compound_lookup {
            self.resolve_dir_compound(vpath, budget)
        } else {
            self.resolve_dir_per_component(vpath, budget)
        }
    }

    /// Resolves the virtual root's listing location.
    fn resolve_root(&self) -> NfsResult<Location> {
        let owner = self.owner_of(ROOT_ANCHOR)?;
        let fh = self.locate_anchor(owner.addr, "/", ROOT_ANCHOR)?;
        let loc = Location {
            addr: owner.addr,
            fh,
        };
        self.client.lock().dir_cache.insert("/".to_string(), loc);
        Ok(loc)
    }

    /// The original NFSv3-style walk: recurse to the parent, LOOKUP one
    /// component, follow a special link if it marks a distributed child.
    /// Kept as the [`crate::config::KoshaConfig::compound_lookup`] `=
    /// false` baseline.
    fn resolve_dir_per_component(&self, vpath: &str, budget: &mut usize) -> NfsResult<Location> {
        if let Some(l) = self.client.lock().dir_cache.get(vpath) {
            return Ok(*l);
        }
        if vpath == "/" {
            return self.resolve_root();
        }
        let (ppath, name) = parent_and_name(vpath).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let name = name.to_string();
        let parent = self.resolve_dir_budget(ppath, budget)?;
        let (efh, attr) = self.nfs.lookup(parent.addr, parent.fh, &name)?;
        let loc = match attr.ftype {
            FileType::Directory => Location {
                addr: parent.addr,
                fh: efh,
            },
            FileType::Symlink
                if is_special_link_mode(attr.mode)
                    && is_distributed_dir(vpath, self.cfg.distribution_level) =>
            {
                let target = self.nfs.readlink(parent.addr, efh)?;
                let owner = self.owner_of(&target)?;
                let fh = self.locate_anchor(owner.addr, vpath, &target)?;
                Location {
                    addr: owner.addr,
                    fh,
                }
            }
            _ => return Err(NfsError::Status(NfsStatus::NotDir)),
        };
        self.client.lock().dir_cache.insert(vpath.to_string(), loc);
        Ok(loc)
    }

    /// Compound walk: one LOOKUPPATH RPC per *server* along the path
    /// instead of one LOOKUP per component. Each server resolves as many
    /// components as its store holds; the walk hops to the next server
    /// when it ends on a special link (whose target the server piggybacks
    /// in the reply), and every resolved directory is cached exactly as
    /// the per-component walk would have cached it.
    fn resolve_dir_compound(&self, vpath: &str, budget: &mut usize) -> NfsResult<Location> {
        if let Some(l) = self.client.lock().dir_cache.get(vpath) {
            return Ok(*l);
        }
        if vpath == "/" {
            return self.resolve_root();
        }
        // Start from the deepest cached ancestor (the root at worst).
        let mut done = "/";
        let mut start = None;
        {
            let c = self.client.lock();
            let mut p = vpath;
            while let Some((pp, _)) = parent_and_name(p) {
                if let Some(l) = c.dir_cache.get(pp) {
                    done = pp;
                    start = Some(*l);
                    break;
                }
                p = pp;
            }
        }
        let mut done = done.to_string();
        let mut cur = match start {
            Some(l) => l,
            None => self.resolve_dir_budget("/", budget)?,
        };
        loop {
            let remaining = if done == "/" {
                &vpath[1..]
            } else {
                &vpath[done.len() + 1..]
            };
            let nodes = self.nfs.lookup_path_nodes(cur.addr, cur.fh, remaining)?;
            let comps: Vec<&str> = remaining.split('/').collect();
            let mut hopped = false;
            for (node, name) in nodes.iter().zip(&comps) {
                let child = if done == "/" {
                    format!("/{name}")
                } else {
                    format!("{done}/{name}")
                };
                match node.attr.0.ftype {
                    FileType::Directory => {
                        let loc = Location {
                            addr: cur.addr,
                            fh: node.fh,
                        };
                        self.client.lock().dir_cache.insert(child.clone(), loc);
                        cur = loc;
                        done = child;
                    }
                    FileType::Symlink
                        if is_special_link_mode(node.attr.0.mode)
                            && is_distributed_dir(&child, self.cfg.distribution_level) =>
                    {
                        let target = match &node.link_target {
                            Some(t) => t.clone(),
                            None => self.nfs.readlink(cur.addr, node.fh)?,
                        };
                        let owner = self.owner_of(&target)?;
                        let fh = self.locate_anchor(owner.addr, &child, &target)?;
                        let loc = Location {
                            addr: owner.addr,
                            fh,
                        };
                        self.client.lock().dir_cache.insert(child.clone(), loc);
                        cur = loc;
                        done = child;
                        hopped = true;
                        break; // resume the walk on the anchor's owner
                    }
                    _ => return Err(NfsError::Status(NfsStatus::NotDir)),
                }
            }
            if done == vpath {
                return Ok(cur);
            }
            if !hopped {
                // The server's walk ended below the requested depth on a
                // directory whose child it does not hold: missing entry.
                return Err(NfsError::Status(NfsStatus::NoEnt));
            }
        }
    }

    /// Resolves an arbitrary object (file, user symlink, or directory) to
    /// its location and attributes. Directories resolve to their
    /// authoritative listing (following special links).
    pub(crate) fn resolve_object(&self, vpath: &str) -> NfsResult<(Location, kosha_vfs::Attr)> {
        if vpath == "/" {
            let loc = self.resolve_dir("/")?;
            let attr = self.nfs.getattr(loc.addr, loc.fh)?;
            return Ok((loc, attr));
        }
        let (ppath, name) = parent_and_name(vpath).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let name = name.to_string();
        let parent = self.resolve_dir(ppath)?;
        let (efh, attr) = self.nfs.lookup(parent.addr, parent.fh, &name)?;
        if attr.ftype == FileType::Directory
            || (attr.ftype == FileType::Symlink
                && is_special_link_mode(attr.mode)
                && is_distributed_dir(vpath, self.cfg.distribution_level))
        {
            let loc = self.resolve_dir(vpath)?;
            let attr = self.nfs.getattr(loc.addr, loc.fh)?;
            return Ok((loc, attr));
        }
        Ok((
            Location {
                addr: parent.addr,
                fh: efh,
            },
            attr,
        ))
    }

    /// Invalidates cached directory locations for `vpath` and everything
    /// beneath it (after renames and removals).
    pub(crate) fn invalidate_dir_subtree(&self, vpath: &str) {
        let prefix = format!("{vpath}/");
        let mut c = self.client.lock();
        c.dir_cache
            .retain(|p, _| p != vpath && !p.starts_with(&prefix));
    }

    /// The covering anchor of a path: the anchor whose slot holds its
    /// listing/entry.
    pub(crate) fn covering_anchor(&self, vpath: &str) -> String {
        anchor_dir_of(vpath, self.cfg.distribution_level).unwrap_or_else(|_| "/".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KoshaConfig;
    use kosha_id::node_id_from_seed;
    use kosha_rpc::{Network, SimNetwork};
    use std::sync::Arc;

    fn solo_node() -> Arc<KoshaNode> {
        let net = SimNetwork::new_zero_latency();
        let (node, mux) = KoshaNode::build(
            KoshaConfig::for_tests(),
            node_id_from_seed("resolve-tests"),
            NodeAddr(0),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(None).unwrap();
        node
    }

    fn fake_loc(n: u64) -> Location {
        Location {
            addr: NodeAddr(n),
            fh: Fh { ino: n, gen: 1 },
        }
    }

    #[test]
    fn invalidate_dir_subtree_is_prefix_exact() {
        let node = solo_node();
        {
            let mut c = node.client.lock();
            for p in ["/a", "/a/x", "/ab", "/ab/y", "/b"] {
                c.dir_cache.insert(p.to_string(), fake_loc(7));
            }
        }
        node.invalidate_dir_subtree("/a");
        let c = node.client.lock();
        assert!(!c.dir_cache.contains_key("/a"));
        assert!(!c.dir_cache.contains_key("/a/x"));
        assert!(
            c.dir_cache.contains_key("/ab"),
            "/ab wrongly swept up with /a"
        );
        assert!(c.dir_cache.contains_key("/ab/y"));
        assert!(c.dir_cache.contains_key("/b"));
    }

    #[test]
    fn invalidate_chain_spares_unrelated_handles() {
        let node = solo_node();
        let (on_chain, off_chain, prefix_trap);
        {
            let mut c = node.client.lock();
            for p in ["/", "/a", "/a/b", "/ab"] {
                c.dir_cache.insert(p.to_string(), fake_loc(7));
            }
            on_chain = c.handles.mint("/a/b/f", FileType::Regular);
            off_chain = c.handles.mint("/other/g", FileType::Regular);
            prefix_trap = c.handles.mint("/a/bc", FileType::Regular);
            for fh in [on_chain, off_chain, prefix_trap] {
                c.handles.set_location(fh, fake_loc(9));
            }
        }
        node.invalidate_chain("/a/b");
        let c = node.client.lock();
        // Directory cache: the chain is dropped, the /ab sibling stays.
        assert!(!c.dir_cache.contains_key("/"));
        assert!(!c.dir_cache.contains_key("/a"));
        assert!(!c.dir_cache.contains_key("/a/b"));
        assert!(c.dir_cache.contains_key("/ab"));
        // Handles: only locations on the invalidated chain are dropped.
        assert_eq!(c.handles.get(on_chain).unwrap().loc, None);
        assert_eq!(c.handles.get(off_chain).unwrap().loc, Some(fake_loc(9)));
        assert_eq!(c.handles.get(prefix_trap).unwrap().loc, Some(fake_loc(9)));
    }
}
