//! Client-side resolution: mapping virtual paths to `(node, real handle)`
//! locations, following special links, and failing over to replicas.
//!
//! Resolution walks the path component-by-component starting from the
//! virtual root's owner, exactly as koshad issues "a sequence of lookup
//! RPCs" (§4.1.3). A *special link* entry marks a distributed child
//! directory (§3.1/§3.3): the link target — the possibly-salted routing
//! name — is hashed and routed, and the walk continues inside that
//! anchor's materialized subtree ("slot") on the owning node. Results are
//! cached; any RPC failure invalidates the caches touching the dead node
//! and the walk retries — the re-route lands on a leaf-set neighbor that
//! holds a replica, which the `EnsureAnchor` control call promotes to
//! primary (§4.4).

use crate::control::{KoshaReply, KoshaReplyFrame, KoshaRequest};
use crate::handles::Location;
use crate::node::KoshaNode;
use crate::paths::{anchor_dir_of, anchor_slot, is_distributed_dir, Area, ROOT_ANCHOR};
use kosha_id::dir_key;
use kosha_nfs::{Fh, NfsError, NfsResult, NfsStatus};
use kosha_pastry::{NodeInfo, OverlayError};
use kosha_rpc::{NodeAddr, RpcError, RpcRequest, ServiceId};
use kosha_vfs::path::parent_and_name;
use kosha_vfs::FileType;

/// True if a symlink's mode marks it as a Kosha special link (sticky
/// bit set by [`crate::primary`] when placing links).
#[must_use]
pub fn is_special_link_mode(mode: u32) -> bool {
    mode & 0o1000 != 0
}

pub(crate) fn overlay_to_nfs(e: OverlayError) -> NfsError {
    match e {
        OverlayError::Rpc(r) => NfsError::Rpc(r),
        OverlayError::NoRoute => NfsError::Rpc(RpcError::Remote("no overlay route".into())),
    }
}

impl KoshaNode {
    /// Routes a routing name to its current owner.
    pub(crate) fn owner_of(&self, routing_name: &str) -> NfsResult<NodeInfo> {
        self.pastry
            .route_owner(dir_key(routing_name))
            .map_err(overlay_to_nfs)
    }

    /// Sends a control request to another koshad (or ourselves, over the
    /// loopback).
    pub(crate) fn control(&self, to: NodeAddr, req: &KoshaRequest) -> NfsResult<KoshaReply> {
        let resp = self
            .net
            .call(self.info.addr, to, RpcRequest::new(ServiceId::Kosha, req))
            .map_err(NfsError::Rpc)?;
        let frame: KoshaReplyFrame = resp.decode().map_err(NfsError::Rpc)?;
        frame.0.map_err(NfsError::Status)
    }

    /// Reacts to an observed node failure: informs the overlay and drops
    /// every cached mapping through the dead node (§4.4: "Kosha detects
    /// an RPC error and removes the mapping for the virtual handle").
    pub(crate) fn fail_over(&self, addr: NodeAddr) {
        self.stats.failovers.inc();
        self.journal(
            "failover",
            format!("{addr} unreachable; rebinding cached locations"),
        );
        self.pastry.note_failed(addr);
        let mut c = self.client.lock();
        c.root_cache.remove(&addr);
        c.dir_cache.retain(|_, l| l.addr != addr);
        c.handles.clear_locations_at(addr);
    }

    /// Drops all resolution caches (after a stale-handle surprise, e.g. a
    /// purged and reincarnated store).
    pub(crate) fn flush_caches(&self) {
        let mut c = self.client.lock();
        c.root_cache.clear();
        c.dir_cache.clear();
        c.handles.clear_locations_everywhere();
    }

    /// Retry wrapper implementing transparent fault handling: on an
    /// unreachable node, fail over and re-run; on a stale handle, flush
    /// caches and re-run.
    pub(crate) fn with_retry<T>(&self, mut f: impl FnMut(&Self) -> NfsResult<T>) -> NfsResult<T> {
        let mut attempts = self.cfg.failover_retries;
        loop {
            match f(self) {
                Err(NfsError::Rpc(RpcError::Unreachable(a))) if attempts > 0 => {
                    attempts -= 1;
                    self.fail_over(a);
                }
                Err(NfsError::Status(NfsStatus::Stale)) if attempts > 0 => {
                    attempts -= 1;
                    self.flush_caches();
                }
                r => return r,
            }
        }
    }

    /// Path-scoped retry wrapper: like [`Self::with_retry`], plus a
    /// single scoped retry on `NoEnt`. A cached directory location may
    /// point at a node that *demoted* the covering anchor (migration to
    /// a newcomer, or an interim owner that served during an outage);
    /// that node answers `NoEnt` for paths it no longer authoritatively
    /// hosts. Invalidating just this path's chain and re-resolving finds
    /// the current primary. Genuinely missing paths still report
    /// `NoEnt`, after one extra resolution of this path only — all other
    /// cached state is untouched.
    pub(crate) fn with_path_retry<T>(
        &self,
        vpath: &str,
        mut f: impl FnMut(&Self) -> NfsResult<T>,
    ) -> NfsResult<T> {
        match self.with_retry(&mut f) {
            Err(NfsError::Status(NfsStatus::NoEnt)) => {
                self.invalidate_chain(vpath);
                self.with_retry(f)
            }
            r => r,
        }
    }

    /// Invalidates cached locations for `vpath`, its ancestors, and its
    /// descendants (the resolution chain a migrated anchor poisons).
    pub(crate) fn invalidate_chain(&self, vpath: &str) {
        let prefix = format!("{vpath}/");
        let mut c = self.client.lock();
        c.dir_cache.retain(|p, _| {
            let is_ancestor = p == "/" || vpath.starts_with(&format!("{p}/"));
            let is_self = p == vpath;
            let is_descendant = p.starts_with(&prefix);
            !(is_ancestor || is_self || is_descendant)
        });
        c.handles.clear_locations_everywhere();
    }

    /// The handle of a node's `/kosha_store` export root, cached.
    pub(crate) fn store_root(&self, addr: NodeAddr) -> NfsResult<Fh> {
        if let Some(&fh) = self.client.lock().root_cache.get(&addr) {
            return Ok(fh);
        }
        let root = self.nfs.mount(addr)?;
        let (fh, _) = self.nfs.lookup(addr, root, Area::Store.dir_name())?;
        self.client.lock().root_cache.insert(addr, fh);
        Ok(fh)
    }

    /// Locates the slot root of `anchor_path` on `owner`, asking the
    /// owner to promote (or, for the virtual root, create) it if its
    /// store lacks it.
    pub(crate) fn locate_anchor(
        &self,
        owner: NodeAddr,
        anchor_path: &str,
        routing: &str,
    ) -> NfsResult<Fh> {
        let slot = anchor_slot(anchor_path);
        let root = self.store_root(owner)?;
        match self.nfs.lookup(owner, root, &slot) {
            Ok((fh, attr)) if attr.ftype == FileType::Directory => return Ok(fh),
            Ok(_) => return Err(NfsError::Status(NfsStatus::NotDir)),
            Err(NfsError::Status(NfsStatus::NoEnt)) => {}
            Err(e) => return Err(e),
        }
        // Absent: ask the owner to promote from its replica area (§4.4)
        // or, for the root anchor, to create it empty.
        self.control(
            owner,
            &KoshaRequest::EnsureAnchor {
                path: anchor_path.to_string(),
                routing: routing.to_string(),
            },
        )?;
        let (fh, _) = self.nfs.lookup(owner, root, &slot)?;
        Ok(fh)
    }

    /// Resolves the authoritative listing of directory `vpath` to a
    /// location, walking from the root owner and following special links.
    pub(crate) fn resolve_dir(&self, vpath: &str) -> NfsResult<Location> {
        let mut budget = self.cfg.failover_retries;
        self.resolve_dir_budget(vpath, &mut budget)
    }

    pub(crate) fn resolve_dir_budget(
        &self,
        vpath: &str,
        budget: &mut usize,
    ) -> NfsResult<Location> {
        loop {
            match self.resolve_dir_once(vpath, budget) {
                Err(NfsError::Rpc(RpcError::Unreachable(a))) if *budget > 0 => {
                    *budget -= 1;
                    self.fail_over(a);
                }
                Err(NfsError::Status(NfsStatus::Stale)) if *budget > 0 => {
                    *budget -= 1;
                    self.flush_caches();
                }
                r => return r,
            }
        }
    }

    fn resolve_dir_once(&self, vpath: &str, budget: &mut usize) -> NfsResult<Location> {
        if let Some(l) = self.client.lock().dir_cache.get(vpath) {
            return Ok(*l);
        }
        let loc = if vpath == "/" {
            let owner = self.owner_of(ROOT_ANCHOR)?;
            let fh = self.locate_anchor(owner.addr, "/", ROOT_ANCHOR)?;
            Location {
                addr: owner.addr,
                fh,
            }
        } else {
            let (ppath, name) = parent_and_name(vpath).ok_or(NfsError::Status(NfsStatus::Inval))?;
            let name = name.to_string();
            let parent = self.resolve_dir_budget(ppath, budget)?;
            let (efh, attr) = self.nfs.lookup(parent.addr, parent.fh, &name)?;
            match attr.ftype {
                FileType::Directory => Location {
                    addr: parent.addr,
                    fh: efh,
                },
                FileType::Symlink
                    if is_special_link_mode(attr.mode)
                        && is_distributed_dir(vpath, self.cfg.distribution_level) =>
                {
                    let target = self.nfs.readlink(parent.addr, efh)?;
                    let owner = self.owner_of(&target)?;
                    let fh = self.locate_anchor(owner.addr, vpath, &target)?;
                    Location {
                        addr: owner.addr,
                        fh,
                    }
                }
                _ => return Err(NfsError::Status(NfsStatus::NotDir)),
            }
        };
        self.client.lock().dir_cache.insert(vpath.to_string(), loc);
        Ok(loc)
    }

    /// Resolves an arbitrary object (file, user symlink, or directory) to
    /// its location and attributes. Directories resolve to their
    /// authoritative listing (following special links).
    pub(crate) fn resolve_object(&self, vpath: &str) -> NfsResult<(Location, kosha_vfs::Attr)> {
        if vpath == "/" {
            let loc = self.resolve_dir("/")?;
            let attr = self.nfs.getattr(loc.addr, loc.fh)?;
            return Ok((loc, attr));
        }
        let (ppath, name) = parent_and_name(vpath).ok_or(NfsError::Status(NfsStatus::Inval))?;
        let name = name.to_string();
        let parent = self.resolve_dir(ppath)?;
        let (efh, attr) = self.nfs.lookup(parent.addr, parent.fh, &name)?;
        if attr.ftype == FileType::Directory
            || (attr.ftype == FileType::Symlink
                && is_special_link_mode(attr.mode)
                && is_distributed_dir(vpath, self.cfg.distribution_level))
        {
            let loc = self.resolve_dir(vpath)?;
            let attr = self.nfs.getattr(loc.addr, loc.fh)?;
            return Ok((loc, attr));
        }
        Ok((
            Location {
                addr: parent.addr,
                fh: efh,
            },
            attr,
        ))
    }

    /// Invalidates cached directory locations for `vpath` and everything
    /// beneath it (after renames and removals).
    pub(crate) fn invalidate_dir_subtree(&self, vpath: &str) {
        let prefix = format!("{vpath}/");
        let mut c = self.client.lock();
        c.dir_cache
            .retain(|p, _| p != vpath && !p.starts_with(&prefix));
    }

    /// The covering anchor of a path: the anchor whose slot holds its
    /// listing/entry.
    pub(crate) fn covering_anchor(&self, vpath: &str) -> String {
        anchor_dir_of(vpath, self.cfg.distribution_level).unwrap_or_else(|_| "/".to_string())
    }
}
