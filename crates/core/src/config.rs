//! Kosha deployment parameters.

use std::time::Duration;

/// How a primary propagates mutations to its K replicas (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Mirror every mutation to all replicas before replying — the
    /// prototype's behavior. The client's reply waits for the slowest
    /// replica round trip.
    Sync,
    /// Write-behind: mutations are queued per replica target, coalesced,
    /// and flushed in batches off the client's critical path. NFS
    /// `COMMIT`, queue overflow (backpressure), and leaf-set changes
    /// force synchronous flush barriers; a replica that may be behind
    /// carries a lag marker so promotion never silently serves stale
    /// data (DESIGN.md §11).
    WriteBehind {
        /// Per-target queue capacity in ops. An enqueue that fills a
        /// queue blocks on a synchronous flush of that target
        /// (backpressure low-water is an empty queue).
        queue_ops: usize,
        /// Interval at which a background pump drains the queues.
        /// [`kosha_rpc::ThreadedNetwork`] drives this with a real
        /// thread; [`kosha_rpc::SimNetwork`] leaves pumping to explicit
        /// `run_pumps()` calls / flush barriers for determinism.
        flush_interval: Duration,
    },
}

/// System-wide parameters of a Kosha deployment. All nodes must agree on
/// `distribution_level` (the paper calls it "a system-wide parameter",
/// §3.2); the rest are per-node operational knobs.
#[derive(Debug, Clone)]
pub struct KoshaConfig {
    /// How many levels of subdirectories below `/kosha` are distributed
    /// to nodes by hashing their names (§3.2). Level 1 distributes only
    /// the top-level directories.
    pub distribution_level: usize,
    /// Number of additional replicas `K` the primary maintains on its
    /// leaf-set neighbors (§4.2). 0 disables replication.
    pub replicas: usize,
    /// Maximum redirection attempts when the mapped node is full (§3.3:
    /// "the redirection process repeats till a node with enough disk
    /// space is found, or a pre-specified number of retries is
    /// exhausted").
    pub redirect_attempts: usize,
    /// Utilization above which a node refuses to host *new* directories,
    /// triggering redirection ("redirection is done for all newly created
    /// directories when the local disk space has exceeded the
    /// pre-specified utilization", §3.3).
    pub redirect_utilization: f64,
    /// Nodes per leaf-set side in the Pastry overlay (`l/2`).
    pub leaf_half: usize,
    /// Bytes of local disk contributed by this node.
    pub contributed_bytes: u64,
    /// Retries a client-side operation makes across failovers before
    /// giving up.
    pub failover_retries: usize,
    /// READ/WRITE transfer chunk used by whole-file helpers (NFSv3
    /// implementations commonly use 32 KiB).
    pub io_chunk: u32,
    /// Disk model handed to the node's NFS server.
    pub disk_bandwidth_bps: u64,
    /// Metadata-operation disk cost.
    pub disk_meta_op: Duration,
    /// Serve READs from any of the K replicas instead of always from the
    /// primary — the optimization §4.2 leaves as future work ("We
    /// currently are exploring optimization techniques that allow at
    /// least read operations to be served from any one of the K
    /// replicas"). Selection is round-robin over primary + replicas with
    /// transparent fallback to the primary.
    pub read_from_replicas: bool,
    /// Resolve paths with the compound LOOKUPPATH extension: one RPC per
    /// *server* along the walk instead of one per component. Disabling it
    /// restores the per-component NFSv3 walk of Section 4.1.3 (the
    /// benchmark baseline).
    pub compound_lookup: bool,
    /// Per-operation cost of the koshad user-level loopback server — the
    /// "constant overhead introduced by the interposition code" (`I` in
    /// the Section 6.1.2 model). The prototype's SFS-toolkit loopback
    /// server crossed the user/kernel boundary several times per RPC;
    /// this models that fixed cost.
    pub koshad_op_cost: Duration,
    /// Server-side trace sampling: when a request arrives at the koshad
    /// loopback server with no caller-provided trace context, start a
    /// root trace for every `trace_sampling`-th such request. `0`
    /// disables sampling (the default); `1` traces everything. Requests
    /// that already carry a trace header are always recorded regardless
    /// of this knob.
    pub trace_sampling: u64,
    /// How mutations reach the K replicas: synchronously on the write
    /// path (the default, matching the prototype) or write-behind
    /// through per-target coalescing queues (DESIGN.md §11).
    pub replication_mode: ReplicationMode,
    /// Flight-recorder sampling interval: how often the node's sampler
    /// hook snapshots every recorder source into its time-series. Under
    /// `SimNetwork` the interval is nominal (each `run_pumps()` call
    /// ticks every hook once); under `ThreadedNetwork` the pump thread
    /// honors it in wall time.
    pub sample_interval: Duration,
    /// Maximum extra read-only cached copies a primary may push for one
    /// hot object, beyond the K durable replicas (DESIGN.md §16). `0`
    /// disables heat-driven read scaling entirely: no hot-path heat
    /// tracking at the primary, no lease state, no extra copies.
    pub hot_replicas: usize,
    /// Read heat (milli-units, 1000 = one undecayed read) at which the
    /// primary spawns hot copies for an object. Copies shed once decayed
    /// heat falls below half this value (hysteresis, so an object
    /// oscillating at the threshold does not thrash push/drop RPCs).
    pub hot_threshold_milli: u64,
    /// Hot-copy lease duration in virtual nanoseconds. A hot copy is
    /// advertised to readers only while its lease is valid; the primary
    /// renews leases when it refreshes copies at flush barriers and
    /// maintenance ticks, and a write invalidates them immediately.
    pub hot_lease_nanos: u64,
}

impl Default for KoshaConfig {
    fn default() -> Self {
        KoshaConfig {
            distribution_level: 1,
            replicas: 0,
            redirect_attempts: 4,
            redirect_utilization: 0.95,
            leaf_half: 8,
            contributed_bytes: 35 * 1_000_000_000, // paper: 35 GB per node
            failover_retries: 4,
            io_chunk: 32 * 1024,
            disk_bandwidth_bps: 40_000_000,
            disk_meta_op: Duration::from_micros(120),
            read_from_replicas: false,
            compound_lookup: true,
            koshad_op_cost: Duration::from_micros(350),
            trace_sampling: 0,
            replication_mode: ReplicationMode::Sync,
            sample_interval: Duration::from_millis(50),
            hot_replicas: 0,
            hot_threshold_milli: 8_000,
            hot_lease_nanos: 2_000_000_000,
        }
    }
}

impl KoshaConfig {
    /// Config used by most unit tests: small, fast, deterministic.
    #[must_use]
    pub fn for_tests() -> Self {
        KoshaConfig {
            distribution_level: 2,
            replicas: 1,
            redirect_attempts: 4,
            redirect_utilization: 0.95,
            leaf_half: 8,
            contributed_bytes: 1 << 22, // 4 MiB
            failover_retries: 4,
            io_chunk: 4096,
            disk_bandwidth_bps: u64::MAX,
            disk_meta_op: Duration::ZERO,
            read_from_replicas: false,
            compound_lookup: true,
            koshad_op_cost: Duration::ZERO,
            trace_sampling: 0,
            replication_mode: ReplicationMode::Sync,
            sample_interval: Duration::from_millis(50),
            hot_replicas: 0,
            hot_threshold_milli: 8_000,
            hot_lease_nanos: 2_000_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = KoshaConfig::default();
        assert_eq!(c.distribution_level, 1);
        assert_eq!(c.redirect_attempts, 4);
        assert_eq!(c.contributed_bytes, 35 * 1_000_000_000);
        assert!(c.redirect_utilization > 0.5 && c.redirect_utilization <= 1.0);
        // Synchronous replication is the default; write-behind is opt-in.
        assert_eq!(c.replication_mode, ReplicationMode::Sync);
        let t = KoshaConfig::for_tests();
        assert_eq!(t.replication_mode, ReplicationMode::Sync);
        // Heat-driven read scaling is opt-in everywhere.
        assert_eq!(c.hot_replicas, 0);
        assert_eq!(t.hot_replicas, 0);
    }
}
