//! The virtual file handle table (§4.1.2).
//!
//! NFS handles are opaque, so koshad hands its clients *virtual* handles
//! and keeps the mapping `virtual handle → (full path, real location)`.
//! The indirection is what buys location transparency: when a primary
//! fails, the table entry's cached location is dropped and the next use
//! re-resolves the stored path — which now routes to a replica (§4.4).
//! The table also stores the full path of every object because NFSv3
//! lookups only carry `(parent handle, name)` (§4.1.3).

use kosha_nfs::Fh;
use kosha_rpc::NodeAddr;
use kosha_vfs::FileType;
use std::collections::HashMap;

/// Where an object currently lives: the node and the real NFS handle on
/// that node's store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// The node holding the primary copy.
    pub addr: NodeAddr,
    /// Real file handle within that node's store export.
    pub fh: Fh,
}

/// One virtual-handle table entry.
#[derive(Debug, Clone)]
pub struct VhEntry {
    /// Full virtual path (relative to `/kosha`).
    pub path: String,
    /// Object type at mint time.
    pub ftype: FileType,
    /// Cached real location; `None` after a failure until re-resolved.
    pub loc: Option<Location>,
}

/// The virtual-handle table. Handles are never reused within a session;
/// looking up the same path returns the same handle (NFS clients rely on
/// handle equality for cache identity).
#[derive(Debug, Default)]
pub struct HandleTable {
    next: u64,
    entries: HashMap<u64, VhEntry>,
    by_path: HashMap<String, u64>,
    /// Cached *replica-area* file handles per virtual path: which
    /// replica holders have been read from and the real handle each
    /// handed out. Lets repeated replica reads skip the mount +
    /// compound-lookup RPCs; invalidated on the same chain-, node-, and
    /// subtree-scoped events as primary locations.
    replica_locs: HashMap<String, Vec<(NodeAddr, Fh)>>,
}

/// Generation stamped into virtual handles (they outlive store purges; a
/// virtual handle only dies with the koshad process, §4.4: "virtual
/// handles need not be persistent").
pub const VIRTUAL_GEN: u32 = 0xA0A0;

impl HandleTable {
    /// Empty table. Handle 1 is pre-minted for the virtual root `/`.
    #[must_use]
    pub fn new() -> Self {
        let mut t = HandleTable {
            next: 1,
            entries: HashMap::new(),
            by_path: HashMap::new(),
            replica_locs: HashMap::new(),
        };
        t.mint("/", FileType::Directory);
        t
    }

    /// The virtual root handle.
    #[must_use]
    pub fn root(&self) -> Fh {
        Fh {
            ino: 1,
            gen: VIRTUAL_GEN,
        }
    }

    /// Returns the existing handle for `path` or mints a new one.
    pub fn mint(&mut self, path: &str, ftype: FileType) -> Fh {
        if let Some(&vh) = self.by_path.get(path) {
            if let Some(e) = self.entries.get_mut(&vh) {
                e.ftype = ftype;
            }
            return Fh {
                ino: vh,
                gen: VIRTUAL_GEN,
            };
        }
        let vh = self.next;
        self.next += 1;
        self.entries.insert(
            vh,
            VhEntry {
                path: path.to_string(),
                ftype,
                loc: None,
            },
        );
        self.by_path.insert(path.to_string(), vh);
        Fh {
            ino: vh,
            gen: VIRTUAL_GEN,
        }
    }

    /// Looks up an entry; `None` for unknown or non-virtual handles.
    #[must_use]
    pub fn get(&self, fh: Fh) -> Option<&VhEntry> {
        if fh.gen != VIRTUAL_GEN {
            return None;
        }
        self.entries.get(&fh.ino)
    }

    /// Caches the real location for a handle's object.
    pub fn set_location(&mut self, fh: Fh, loc: Location) {
        if let Some(e) = self.entries.get_mut(&fh.ino) {
            e.loc = Some(loc);
        }
    }

    /// Drops the cached location of one handle (the §4.4 failure step:
    /// "Kosha detects an RPC error and removes the mapping for the
    /// virtual handle").
    pub fn clear_location(&mut self, fh: Fh) {
        if let Some(e) = self.entries.get_mut(&fh.ino) {
            e.loc = None;
        }
    }

    /// Drops every cached location in the table (full cache flush).
    pub fn clear_locations_everywhere(&mut self) {
        // lint: allow(L002) independent per-entry mutation; no order leaks out
        for e in self.entries.values_mut() {
            e.loc = None;
        }
        self.replica_locs.clear();
    }

    /// Cached replica file handle on `addr` for `path`, if any.
    #[must_use]
    pub fn replica_location(&self, addr: NodeAddr, path: &str) -> Option<Fh> {
        self.replica_locs
            .get(path)?
            .iter()
            .find(|(a, _)| *a == addr)
            .map(|&(_, fh)| fh)
    }

    /// Caches the replica file handle `addr` handed out for `path`.
    pub fn set_replica_location(&mut self, addr: NodeAddr, path: &str, fh: Fh) {
        let v = self.replica_locs.entry(path.to_string()).or_default();
        match v.iter_mut().find(|(a, _)| *a == addr) {
            Some(slot) => slot.1 = fh,
            None => v.push((addr, fh)),
        }
    }

    /// Drops one cached replica handle (after a failed replica read).
    pub fn clear_replica_location(&mut self, addr: NodeAddr, path: &str) {
        if let Some(v) = self.replica_locs.get_mut(path) {
            v.retain(|(a, _)| *a != addr);
            if v.is_empty() {
                self.replica_locs.remove(path);
            }
        }
    }

    /// Drops cached locations along one path's resolution chain: `path`
    /// itself, its ancestors, and its descendants. Entries on unrelated
    /// branches keep their locations, so one poisoned chain does not
    /// force the whole table to re-resolve (contrast
    /// [`HandleTable::clear_locations_everywhere`]).
    pub fn clear_locations_chain(&mut self, path: &str) {
        if path == "/" {
            self.clear_locations_everywhere();
            return;
        }
        let descendant_prefix = format!("{path}/");
        let on_chain = |p: &str| {
            let is_ancestor = p == "/" || path.starts_with(&format!("{p}/"));
            is_ancestor || p == path || p.starts_with(&descendant_prefix)
        };
        // lint: allow(L002) independent per-entry mutation; no order leaks out
        for e in self.entries.values_mut() {
            if on_chain(e.path.as_str()) {
                e.loc = None;
            }
        }
        self.replica_locs.retain(|p, _| !on_chain(p.as_str()));
    }

    /// Drops every cached location pointing at a failed node.
    pub fn clear_locations_at(&mut self, addr: NodeAddr) {
        // lint: allow(L002) independent per-entry mutation; no order leaks out
        for e in self.entries.values_mut() {
            if e.loc.map(|l| l.addr) == Some(addr) {
                e.loc = None;
            }
        }
        // lint: allow(L002) independent per-entry mutation; no order leaks out
        for v in self.replica_locs.values_mut() {
            v.retain(|(a, _)| *a != addr);
        }
        self.replica_locs.retain(|_, v| !v.is_empty());
    }

    /// Rewrites paths after a rename: `old` itself and everything under
    /// it move beneath `new`. Cached locations of rewritten entries are
    /// dropped (handles on the destination must re-resolve).
    pub fn rename_subtree(&mut self, old: &str, new: &str) {
        let prefix = format!("{old}/");
        let affected: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.path == old || e.path.starts_with(&prefix))
            .map(|(&vh, _)| vh)
            .collect();
        for vh in affected {
            let e = self.entries.get_mut(&vh).expect("present");
            let old_path = e.path.clone();
            let new_path = if old_path == old {
                new.to_string()
            } else {
                format!("{new}{}", &old_path[old.len()..])
            };
            e.path = new_path.clone();
            e.loc = None;
            self.by_path.remove(&old_path);
            self.by_path.insert(new_path, vh);
        }
        self.replica_locs
            .retain(|p, _| p != old && !p.starts_with(&prefix) && p != new);
    }

    /// Forgets `path` and its whole subtree (after remove/rmdir). The
    /// handles stay allocated but become dangling, matching NFS stale
    /// handle semantics for deleted objects.
    pub fn forget_subtree(&mut self, path: &str) {
        let prefix = format!("{path}/");
        let affected: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.path == path || e.path.starts_with(&prefix))
            .map(|(&vh, _)| vh)
            .collect();
        for vh in affected {
            if let Some(e) = self.entries.remove(&vh) {
                self.by_path.remove(&e.path);
            }
        }
        self.replica_locs
            .retain(|p, _| p != path && !p.starts_with(&prefix));
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if only the root entry exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_stable_per_path() {
        let mut t = HandleTable::new();
        let a = t.mint("/x", FileType::Regular);
        let b = t.mint("/x", FileType::Regular);
        assert_eq!(a, b);
        let c = t.mint("/y", FileType::Directory);
        assert_ne!(a, c);
        assert_eq!(t.get(a).unwrap().path, "/x");
    }

    #[test]
    fn root_premade() {
        let t = HandleTable::new();
        assert_eq!(t.get(t.root()).unwrap().path, "/");
    }

    #[test]
    fn non_virtual_gen_rejected() {
        let t = HandleTable::new();
        let bogus = Fh { ino: 1, gen: 1 };
        assert!(t.get(bogus).is_none());
    }

    #[test]
    fn location_lifecycle() {
        let mut t = HandleTable::new();
        let fh = t.mint("/f", FileType::Regular);
        let loc = Location {
            addr: NodeAddr(3),
            fh: Fh { ino: 9, gen: 1 },
        };
        t.set_location(fh, loc);
        assert_eq!(t.get(fh).unwrap().loc, Some(loc));
        t.clear_locations_at(NodeAddr(3));
        assert_eq!(t.get(fh).unwrap().loc, None);
    }

    #[test]
    fn clear_locations_chain_spares_unrelated_branches() {
        let mut t = HandleTable::new();
        let loc = Location {
            addr: NodeAddr(3),
            fh: Fh { ino: 9, gen: 1 },
        };
        let root = t.root();
        let ancestor = t.mint("/a", FileType::Directory);
        let target = t.mint("/a/b", FileType::Directory);
        let child = t.mint("/a/b/f", FileType::Regular);
        let sibling = t.mint("/a/c", FileType::Regular);
        let prefix_trap = t.mint("/a/bc", FileType::Regular);
        for fh in [root, ancestor, target, child, sibling, prefix_trap] {
            t.set_location(fh, loc);
        }
        t.clear_locations_chain("/a/b");
        // The chain (root, ancestor, self, descendant) is dropped...
        for fh in [root, ancestor, target, child] {
            assert_eq!(t.get(fh).unwrap().loc, None);
        }
        // ...while the sibling and the /a/bc prefix trap survive.
        for fh in [sibling, prefix_trap] {
            assert_eq!(t.get(fh).unwrap().loc, Some(loc));
        }
    }

    #[test]
    fn rename_subtree_rewrites_paths() {
        let mut t = HandleTable::new();
        let d = t.mint("/a", FileType::Directory);
        let f = t.mint("/a/f", FileType::Regular);
        let other = t.mint("/ab", FileType::Regular); // prefix trap
        t.rename_subtree("/a", "/z");
        assert_eq!(t.get(d).unwrap().path, "/z");
        assert_eq!(t.get(f).unwrap().path, "/z/f");
        assert_eq!(t.get(other).unwrap().path, "/ab");
        // Re-minting the new path returns the moved handle.
        assert_eq!(t.mint("/z/f", FileType::Regular), f);
    }

    #[test]
    fn replica_locations_follow_invalidation() {
        let mut t = HandleTable::new();
        let fh = Fh { ino: 9, gen: 1 };
        t.set_replica_location(NodeAddr(1), "/a/b/f", fh);
        t.set_replica_location(NodeAddr(2), "/a/b/f", fh);
        t.set_replica_location(NodeAddr(1), "/other", fh);
        assert_eq!(t.replica_location(NodeAddr(1), "/a/b/f"), Some(fh));
        // Node-scoped invalidation drops only that node's handles.
        t.clear_locations_at(NodeAddr(1));
        assert_eq!(t.replica_location(NodeAddr(1), "/a/b/f"), None);
        assert_eq!(t.replica_location(NodeAddr(2), "/a/b/f"), Some(fh));
        // Chain-scoped invalidation spares unrelated branches.
        t.set_replica_location(NodeAddr(1), "/other", fh);
        t.clear_locations_chain("/a/b");
        assert_eq!(t.replica_location(NodeAddr(2), "/a/b/f"), None);
        assert_eq!(t.replica_location(NodeAddr(1), "/other"), Some(fh));
        // Targeted clear after a failed replica read.
        t.clear_replica_location(NodeAddr(1), "/other");
        assert_eq!(t.replica_location(NodeAddr(1), "/other"), None);
        // Subtree forget sweeps replica handles too.
        t.set_replica_location(NodeAddr(3), "/gone/f", fh);
        t.forget_subtree("/gone");
        assert_eq!(t.replica_location(NodeAddr(3), "/gone/f"), None);
    }

    #[test]
    fn forget_subtree_removes_entries() {
        let mut t = HandleTable::new();
        let d = t.mint("/a", FileType::Directory);
        let f = t.mint("/a/f", FileType::Regular);
        let keep = t.mint("/ab", FileType::Regular);
        t.forget_subtree("/a");
        assert!(t.get(d).is_none());
        assert!(t.get(f).is_none());
        assert!(t.get(keep).is_some());
    }
}
