//! Primary-replica duties: executing mutations on the local store,
//! fanning them out to the K replicas (§4.2), promoting replicas after
//! failures (§4.4), and migrating anchors when the key space shifts
//! (§4.3).

use crate::control::{
    KoshaReply, KoshaReplyFrame, KoshaRequest, MigrateItem, MigrateKind, ReplicaOp,
};
use crate::node::{ControlService, KoshaNode, ReplicaService};
use crate::paths::{
    anchor_slot, is_internal_name, slot_local_path, Area, ANCHOR_META, LAG_MARK, MIGRATION_FLAG,
};
use kosha_nfs::{Fh, NfsReply, NfsRequest, NfsResult, NfsStatus};
use kosha_pastry::NodeInfo;
use kosha_rpc::{NodeAddr, RpcError, RpcHandler, RpcRequest, RpcResponse, ServiceId, WireRead};
use kosha_vfs::path::parent_and_name;
use kosha_vfs::SetAttr;
use std::collections::HashMap;

/// Mode bits used for special links (sticky bit marks them).
pub const SPECIAL_LINK_MODE: u32 = 0o1777;
/// Mode bits for user symlinks.
pub const USER_LINK_MODE: u32 = 0o777;

impl KoshaNode {
    // ---- local store addressing ----------------------------------------

    fn hosted(&self, anchor: &str) -> bool {
        self.anchors.lock().contains_key(anchor)
    }

    fn routing_of(&self, anchor: &str) -> Option<String> {
        self.anchors.lock().get(anchor).cloned()
    }

    /// Store path of the parent directory of `vpath`, plus the entry
    /// name. Fails `NoEnt` if this node does not host the covering
    /// anchor (the caller misrouted or we lost ownership).
    fn local_entry(&self, area: Area, vpath: &str) -> Result<(String, String), NfsStatus> {
        let (pp, name) = parent_and_name(vpath).ok_or(NfsStatus::Inval)?;
        let anchor = self.covering_anchor(pp);
        if !self.hosted(&anchor) {
            return Err(NfsStatus::NoEnt);
        }
        Ok((slot_local_path(area, &anchor, pp), name.to_string()))
    }

    /// Store path of an arbitrary object: the slot root for a hosted
    /// anchor directory, otherwise an entry within its parent's slot.
    pub(crate) fn local_object(&self, area: Area, vpath: &str) -> Result<String, NfsStatus> {
        if vpath == "/" || self.hosted(vpath) {
            let anchor = if vpath == "/" { "/" } else { vpath };
            if !self.hosted(anchor) {
                return Err(NfsStatus::NoEnt);
            }
            return Ok(slot_local_path(area, anchor, vpath));
        }
        let (pdir, name) = self.local_entry(area, vpath)?;
        Ok(format!("{pdir}/{name}"))
    }

    pub(crate) fn fh_of(&self, store_path: &str) -> Result<Fh, NfsStatus> {
        self.store
            .with_store(|v| v.resolve(store_path))
            .map(|(id, _)| Fh::from_file_id(id))
            .map_err(Into::into)
    }

    pub(crate) fn apply(&self, req: NfsRequest) -> Result<NfsReply, NfsStatus> {
        self.store.apply(req)
    }

    // ---- anchor metadata ------------------------------------------------

    fn write_anchor_meta(&self, anchor: &str, routing: &str) -> Result<(), NfsStatus> {
        let slot_path = slot_local_path(Area::Store, anchor, anchor);
        let dir = self.fh_of(&slot_path)?;
        let fh = match self.apply(NfsRequest::Create {
            dir,
            name: ANCHOR_META.into(),
            mode: 0o600,
            uid: 0,
            gid: 0,
        }) {
            Ok(NfsReply::Handle { fh, .. }) => fh,
            Err(NfsStatus::Exist) => {
                let (id, _) = self
                    .store
                    .with_store(|v| v.resolve(&format!("{slot_path}/{ANCHOR_META}")))
                    .map_err(NfsStatus::from)?;
                Fh::from_file_id(id)
            }
            Err(e) => return Err(e),
            Ok(_) => return Err(NfsStatus::Io),
        };
        self.apply(NfsRequest::Setattr {
            fh,
            sattr: kosha_nfs::messages::WireSetAttr(SetAttr {
                size: Some(0),
                ..Default::default()
            }),
        })?;
        self.apply(NfsRequest::Write {
            fh,
            offset: 0,
            data: routing.as_bytes().to_vec(),
        })?;
        Ok(())
    }

    fn read_anchor_meta(&self, anchor: &str) -> Option<String> {
        let p = format!(
            "{}/{ANCHOR_META}",
            slot_local_path(Area::Store, anchor, anchor)
        );
        self.store.with_store(|v| {
            let (id, attr) = v.resolve(&p).ok()?;
            let (data, _) = v.read(id, 0, attr.size as u32).ok()?;
            String::from_utf8(data).ok()
        })
    }

    // ---- replication ------------------------------------------------------

    pub(crate) fn replica_addrs(&self) -> Vec<NodeAddr> {
        self.pastry
            .replica_targets(self.cfg.replicas)
            .into_iter()
            .map(|n| n.addr)
            .collect()
    }

    /// Fans one replicated mutation out to every replica target
    /// concurrently (§4.2) as a single `ReplicaApply` control RPC per
    /// target on the dedicated replica service. Every failed target is
    /// counted and journaled with its node id (and, via the journal's
    /// ambient-trace stamping, linked to the active trace) so degraded
    /// replication is fully attributable; the next full push
    /// ([`Self::ensure_replicas`]) heals the copy.
    fn mirror_op(&self, op: ReplicaOp) {
        let targets = self.replica_addrs();
        if targets.is_empty() {
            return;
        }
        if let Some(queue_ops) = self.write_behind_queue_ops() {
            // Write-behind (DESIGN.md §11): queue instead of fanning out
            // on the client's critical path. Flush barriers and the
            // transport pump drain the queues.
            self.enqueue_replica_op(op, &targets, queue_ops);
            return;
        }
        let clock = self.net.clock();
        self.obs.tracer.child(
            || "kosha:mirror".to_string(),
            self.info.addr.0,
            || clock.now().0,
            || {
                let req =
                    RpcRequest::new(ServiceId::KoshaReplica, &KoshaRequest::ReplicaApply { op });
                let batch = targets.iter().map(|a| (*a, req.clone())).collect();
                let results = self.net.call_many(self.info.addr, batch);
                for (addr, result) in targets.into_iter().zip(results) {
                    self.note_mirror_result(addr, mirror_succeeded(result));
                }
            },
        );
    }

    /// Records one replica target's mirror outcome: every failure bumps
    /// `replica_mirror_failures` and journals the missed target's node
    /// id, so a batch that loses several replicas reports all of them,
    /// not just the first.
    pub(crate) fn note_mirror_result(&self, addr: NodeAddr, ok: bool) {
        if ok {
            return;
        }
        // A missed mutation (or dropped flush batch) leaves some replica
        // behind the primary while the primary's own content digest may
        // not change again — void the full-push memo so the next
        // maintenance pass re-pushes and heals the divergence.
        self.replica_push_memo.lock().clear();
        self.stats.replica_mirror_failures.inc();
        self.journal(
            "mirror_failure",
            format!("replica on node {} missed a mirrored mutation", addr.0),
        );
    }

    /// Pushes a full, fresh copy of `anchor` to every replica target in
    /// parallel, each as one batched `MigrateBatch` RPC bracketed by the
    /// `MIGRATION_NOT_COMPLETE` flag on the receiving side (§4.4).
    ///
    /// The push is skipped when the anchor's content digest and target
    /// set both match the last fully-acknowledged push (the memo on
    /// [`KoshaNode::replica_push_memo`]): a no-op bracket replace would
    /// still destroy and recreate every holder-side file, invalidating
    /// readers' cached replica handles and putting a full-tree transfer
    /// on the wire each maintenance tick. The memo is voided by any
    /// mirror/push failure and by a holder leaving the target set, so
    /// every divergence source still converges through this path.
    pub(crate) fn ensure_replicas(&self, anchor: &str) {
        if self.cfg.replicas == 0 {
            return;
        }
        if self.routing_of(anchor).is_none() {
            return;
        }
        let targets = self.replica_addrs();
        if targets.is_empty() {
            return;
        }
        let slot_path = slot_local_path(Area::Store, anchor, anchor);
        let Ok(exported) = self.store.with_store(|v| v.export_tree(&slot_path)) else {
            return;
        };
        let digest = crate::audit::tree_digest(&exported);
        if self
            .replica_push_memo
            .lock()
            .get(anchor)
            .is_some_and(|(d, t)| *d == digest && *t == targets)
        {
            self.stats.replica_push_skips.inc();
            return;
        }
        let items: Vec<MigrateItem> = exported.into_iter().map(MigrateItem::from).collect();
        let req = RpcRequest::new(
            ServiceId::KoshaReplica,
            &KoshaRequest::MigrateBatch {
                path: anchor.to_string(),
                items,
            },
        );
        let clock = self.net.clock();
        let mut all_ok = true;
        self.obs.tracer.child(
            || "kosha:replica_push".to_string(),
            self.info.addr.0,
            || clock.now().0,
            || {
                let batch = targets.iter().map(|a| (*a, req.clone())).collect();
                let results = self.net.call_many(self.info.addr, batch);
                for (addr, result) in targets.iter().zip(results) {
                    let ok = mirror_succeeded(result);
                    if ok {
                        self.stats.replica_pushes.inc();
                    } else {
                        all_ok = false;
                    }
                    self.note_mirror_result(*addr, ok);
                }
            },
        );
        if all_ok {
            self.replica_push_memo
                .lock()
                .insert(anchor.to_string(), (digest, targets));
        }
    }

    // ---- the replica service (receiving side) -----------------------------

    /// Local replica-area directory for `vdir` (creating the chain), the
    /// receiving-side counterpart of the primary's old per-RPC
    /// `mkdir_path` walk.
    pub(crate) fn replica_dir_local(&self, anchor: &str, vdir: &str) -> Result<Fh, NfsStatus> {
        let p = slot_local_path(Area::Replica, anchor, vdir);
        self.store
            .with_store(|v| v.mkdir_p(&p, 0o700))
            .map(Fh::from_file_id)
            .map_err(Into::into)
    }

    /// Serves the replica-maintenance service: only replica-area
    /// requests (mirrored ops, full pushes, and hot-copy push/drop) are
    /// valid here, and all of them touch purely local state (no nested
    /// RPCs), preserving the transports' deadlock discipline.
    pub(crate) fn handle_replica(&self, req: KoshaRequest) -> Result<KoshaReply, NfsStatus> {
        match req {
            KoshaRequest::ReplicaApply { op } => {
                self.apply_replica_op(op)?;
                Ok(KoshaReply::Done)
            }
            KoshaRequest::ReplicaApplyBatch { ops } => {
                // Apply in order and stop at the first failure: a partly
                // applied batch must leave the slot's lag marker set (the
                // clears ride at the batch tail), so a later promotion of
                // this copy still reports the divergence.
                for op in ops {
                    self.apply_replica_op(op)?;
                }
                Ok(KoshaReply::Done)
            }
            KoshaRequest::MigrateBatch { path, items } => {
                self.receive_migrate_batch(&path, &items)?;
                Ok(KoshaReply::Done)
            }
            KoshaRequest::HotReplicaPush {
                anchor,
                routing,
                path,
                seq,
                expires_nanos,
                item,
            } => {
                self.receive_hot_push(&anchor, &routing, &path, seq, expires_nanos, &item)?;
                Ok(KoshaReply::Done)
            }
            KoshaRequest::HotReplicaDrop { anchor, path } => {
                self.receive_hot_drop(&anchor, &path)?;
                Ok(KoshaReply::Done)
            }
            _ => Err(NfsStatus::NotSupp),
        }
    }

    /// Applies one mirrored mutation to the local replica area.
    /// Already-done outcomes (`Exist` on creates, `NoEnt` on removes and
    /// renames) count as success so replays and re-pushes are idempotent.
    pub(crate) fn apply_replica_op(&self, op: ReplicaOp) -> Result<(), NfsStatus> {
        match op {
            ReplicaOp::Mkdir { path } => {
                let anchor = self.covering_anchor(&path);
                self.replica_dir_local(&anchor, &path).map(|_| ())
            }
            ReplicaOp::Create {
                path,
                mode,
                uid,
                gid,
                size,
            } => {
                let (pp, name) = parent_and_name(&path).ok_or(NfsStatus::Inval)?;
                let anchor = self.covering_anchor(pp);
                let dir = self.replica_dir_local(&anchor, pp)?;
                let name = name.to_string();
                let r = match size {
                    None => self.apply(NfsRequest::Create {
                        dir,
                        name,
                        mode,
                        uid,
                        gid,
                    }),
                    Some(sz) => self.apply(NfsRequest::CreateSized {
                        dir,
                        name,
                        size: sz,
                        mode,
                        uid,
                        gid,
                    }),
                };
                absorb(r, NfsStatus::Exist)
            }
            ReplicaOp::Symlink {
                path,
                target,
                mode,
                uid,
                gid,
            } => {
                let (pp, name) = parent_and_name(&path).ok_or(NfsStatus::Inval)?;
                let anchor = self.covering_anchor(pp);
                let dir = self.replica_dir_local(&anchor, pp)?;
                absorb(
                    self.apply(NfsRequest::Symlink {
                        dir,
                        name: name.to_string(),
                        target,
                        mode,
                        uid,
                        gid,
                    }),
                    NfsStatus::Exist,
                )
            }
            ReplicaOp::Write { path, offset, data } => {
                let (pp, name) = parent_and_name(&path).ok_or(NfsStatus::Inval)?;
                let anchor = self.covering_anchor(pp);
                let dir = self.replica_dir_local(&anchor, pp)?;
                let fh = match self.apply(NfsRequest::Lookup {
                    dir,
                    name: name.to_string(),
                }) {
                    Ok(NfsReply::Handle { fh, .. }) => fh,
                    Err(NfsStatus::NoEnt) => match self.apply(NfsRequest::Create {
                        dir,
                        name: name.to_string(),
                        mode: 0o644,
                        uid: 0,
                        gid: 0,
                    })? {
                        NfsReply::Handle { fh, .. } => fh,
                        _ => return Err(NfsStatus::Io),
                    },
                    Err(e) => return Err(e),
                    Ok(_) => return Err(NfsStatus::Io),
                };
                self.apply(NfsRequest::Write { fh, offset, data })
                    .map(|_| ())
            }
            ReplicaOp::SetAttr { path, sattr } => {
                let (pp, name) = parent_and_name(&path).ok_or(NfsStatus::Inval)?;
                let anchor = self.covering_anchor(pp);
                let dir = self.replica_dir_local(&anchor, pp)?;
                let fh = match self.apply(NfsRequest::Lookup {
                    dir,
                    name: name.to_string(),
                })? {
                    NfsReply::Handle { fh, .. } => fh,
                    _ => return Err(NfsStatus::Io),
                };
                self.apply(NfsRequest::Setattr { fh, sattr }).map(|_| ())
            }
            ReplicaOp::Remove { path } => {
                let (pp, name) = parent_and_name(&path).ok_or(NfsStatus::Inval)?;
                let anchor = self.covering_anchor(pp);
                let dir = self.replica_dir_local(&anchor, pp)?;
                absorb(
                    self.apply(NfsRequest::Remove {
                        dir,
                        name: name.to_string(),
                    }),
                    NfsStatus::NoEnt,
                )
            }
            ReplicaOp::Rmdir { path } => {
                let (pp, name) = parent_and_name(&path).ok_or(NfsStatus::Inval)?;
                let anchor = self.covering_anchor(pp);
                let dir = self.replica_dir_local(&anchor, pp)?;
                absorb(
                    self.apply(NfsRequest::Rmdir {
                        dir,
                        name: name.to_string(),
                    }),
                    NfsStatus::NoEnt,
                )
            }
            ReplicaOp::RemoveSlot { anchor } => {
                let rarea = self.fh_of(&format!("/{}", Area::Replica.dir_name()))?;
                absorb(
                    self.apply(NfsRequest::RemoveTree {
                        dir: rarea,
                        name: anchor_slot(&anchor),
                    }),
                    NfsStatus::NoEnt,
                )
            }
            ReplicaOp::Rename { from, to } => {
                let (fp, fname) = parent_and_name(&from).ok_or(NfsStatus::Inval)?;
                let (tp, tname) = parent_and_name(&to).ok_or(NfsStatus::Inval)?;
                let fanchor = self.covering_anchor(fp);
                let tanchor = self.covering_anchor(tp);
                let sdir = self.replica_dir_local(&fanchor, fp)?;
                let ddir = self.replica_dir_local(&tanchor, tp)?;
                absorb(
                    self.apply(NfsRequest::Rename {
                        sdir,
                        sname: fname.to_string(),
                        ddir,
                        dname: tname.to_string(),
                    }),
                    NfsStatus::NoEnt,
                )
            }
            ReplicaOp::LagMark { anchor, bytes } => {
                let dir = self.replica_dir_local(&anchor, &anchor)?;
                if bytes == 0 {
                    // Clear: the flush batch carrying this op brought the
                    // slot up to date.
                    return absorb(
                        self.apply(NfsRequest::Remove {
                            dir,
                            name: LAG_MARK.into(),
                        }),
                        NfsStatus::NoEnt,
                    );
                }
                let fh = match self.apply(NfsRequest::Lookup {
                    dir,
                    name: LAG_MARK.into(),
                }) {
                    Ok(NfsReply::Handle { fh, .. }) => fh,
                    Err(NfsStatus::NoEnt) => match self.apply(NfsRequest::Create {
                        dir,
                        name: LAG_MARK.into(),
                        mode: 0o600,
                        uid: 0,
                        gid: 0,
                    })? {
                        NfsReply::Handle { fh, .. } => fh,
                        _ => return Err(NfsStatus::Io),
                    },
                    Err(e) => return Err(e),
                    Ok(_) => return Err(NfsStatus::Io),
                };
                // Truncate before writing the decimal count so a shorter
                // stamp never leaves stale trailing digits.
                self.apply(NfsRequest::Setattr {
                    fh,
                    sattr: kosha_nfs::messages::WireSetAttr(SetAttr {
                        size: Some(0),
                        ..Default::default()
                    }),
                })?;
                self.apply(NfsRequest::Write {
                    fh,
                    offset: 0,
                    data: bytes.to_string().into_bytes(),
                })
                .map(|_| ())
            }
            ReplicaOp::RenameSlot { from, to } => {
                let rarea = self.fh_of(&format!("/{}", Area::Replica.dir_name()))?;
                absorb(
                    self.apply(NfsRequest::Rename {
                        sdir: rarea,
                        sname: anchor_slot(&from),
                        ddir: rarea,
                        dname: anchor_slot(&to),
                    }),
                    NfsStatus::NoEnt,
                )
            }
        }
    }

    /// Installs a complete anchor copy shipped in one RPC: drop any stale
    /// replica, materialize the subtree under the migration flag, then
    /// clear the flag (§4.4's consistency bracket).
    fn receive_migrate_batch(&self, anchor: &str, items: &[MigrateItem]) -> Result<(), NfsStatus> {
        let rarea = self.fh_of(&format!("/{}", Area::Replica.dir_name()))?;
        let slot = anchor_slot(anchor);
        let _ = self.apply(NfsRequest::RemoveTree {
            dir: rarea,
            name: slot.clone(),
        });
        let aroot = match self.apply(NfsRequest::Mkdir {
            dir: rarea,
            name: slot,
            mode: 0o700,
            uid: 0,
            gid: 0,
        })? {
            NfsReply::Handle { fh, .. } => fh,
            _ => return Err(NfsStatus::Io),
        };
        self.apply(NfsRequest::Create {
            dir: aroot,
            name: MIGRATION_FLAG.into(),
            mode: 0o600,
            uid: 0,
            gid: 0,
        })?;
        let mut dirs: HashMap<String, Fh> = HashMap::new();
        dirs.insert(String::new(), aroot);
        for item in items {
            if item.rel_path.is_empty() {
                continue;
            }
            let (prel, name) = match item.rel_path.rsplit_once('/') {
                Some((p, n)) => (p.to_string(), n),
                None => (String::new(), item.rel_path.as_str()),
            };
            let Some(&pfh) = dirs.get(&prel) else {
                continue;
            };
            match &item.kind {
                MigrateKind::Dir => {
                    if let NfsReply::Handle { fh, .. } = self.apply(NfsRequest::Mkdir {
                        dir: pfh,
                        name: name.to_string(),
                        mode: item.mode,
                        uid: item.uid,
                        gid: item.gid,
                    })? {
                        dirs.insert(item.rel_path.clone(), fh);
                    }
                }
                MigrateKind::Bytes(data) => {
                    if let NfsReply::Handle { fh, .. } = self.apply(NfsRequest::Create {
                        dir: pfh,
                        name: name.to_string(),
                        mode: item.mode,
                        uid: item.uid,
                        gid: item.gid,
                    })? {
                        self.apply(NfsRequest::Write {
                            fh,
                            offset: 0,
                            data: data.clone(),
                        })?;
                    }
                }
                MigrateKind::Sparse(n) => {
                    self.apply(NfsRequest::CreateSized {
                        dir: pfh,
                        name: name.to_string(),
                        size: *n,
                        mode: item.mode,
                        uid: item.uid,
                        gid: item.gid,
                    })?;
                }
                MigrateKind::Symlink { target } => {
                    self.apply(NfsRequest::Symlink {
                        dir: pfh,
                        name: name.to_string(),
                        target: target.clone(),
                        mode: item.mode,
                        uid: item.uid,
                        gid: item.gid,
                    })?;
                }
            }
        }
        self.apply(NfsRequest::Remove {
            dir: aroot,
            name: MIGRATION_FLAG.into(),
        })?;
        Ok(())
    }

    // ---- promotion & migration -------------------------------------------

    /// Checks a freshly promoted (or pulled) store copy of `anchor` for
    /// a write-behind lag marker left behind by the failed primary. A
    /// present marker means this copy is missing ops the primary had
    /// queued but never flushed: the divergence is journaled as
    /// `replica_lag` with the stamped payload-byte lower bound — failover
    /// never *silently* serves stale data — and the marker is removed
    /// from the now-authoritative copy.
    fn consume_lag_marker(&self, anchor: &str) {
        let slot_path = slot_local_path(Area::Store, anchor, anchor);
        let marker = format!("{slot_path}/{LAG_MARK}");
        let bytes = self.store.with_store(|v| {
            let (id, attr) = v.resolve(&marker).ok()?;
            let (data, _) = v.read(id, 0, attr.size as u32).ok()?;
            Some(
                String::from_utf8_lossy(&data)
                    .trim()
                    .parse::<u64>()
                    .unwrap_or(0),
            )
        });
        let Some(bytes) = bytes else { return };
        if let Ok(dir) = self.fh_of(&slot_path) {
            let _ = self.apply(NfsRequest::Remove {
                dir,
                name: LAG_MARK.into(),
            });
        }
        self.stats.replica_lag_events.inc();
        self.journal(
            "replica_lag",
            format!(
                "promoted copy of {anchor:?} is missing at least {bytes} payload \
                 bytes the failed primary never flushed"
            ),
        );
    }

    /// Moves `anchor` from the replica area into the store and starts
    /// serving it as primary (§4.4's transparent failover end-state).
    fn promote_anchor(&self, anchor: &str) -> Result<(), NfsStatus> {
        let slot = anchor_slot(anchor);
        self.store
            .with_store(|v| {
                let (rparent, _) = v.resolve(&format!("/{}", Area::Replica.dir_name()))?;
                let (sparent, _) = v.resolve(&format!("/{}", Area::Store.dir_name()))?;
                let _ = v.remove_tree(sparent, &slot); // drop any stale store copy
                v.rename(rparent, &slot, sparent, &slot)
            })
            .map_err(NfsStatus::from)?;
        // If the old primary died mid-push, the flag file is present; the
        // content is our best (and only reachable) copy — serve it and
        // refresh the other replicas from it.
        let slot_path = slot_local_path(Area::Store, anchor, anchor);
        if let Ok(dir) = self.fh_of(&slot_path) {
            let _ = self.apply(NfsRequest::Remove {
                dir,
                name: MIGRATION_FLAG.into(),
            });
        }
        self.consume_lag_marker(anchor);
        let routing = self
            .read_anchor_meta(anchor)
            .unwrap_or_else(|| default_routing(anchor));
        self.anchors.lock().insert(anchor.to_string(), routing);
        self.stats.promotions.inc();
        self.journal(
            "promotion",
            format!("replica of {anchor:?} promoted to primary"),
        );
        self.ensure_replicas(anchor);
        Ok(())
    }

    /// Searches the leaf set for a node holding a replica of `anchor`
    /// and copies it into the local store over NFS. Returns true on
    /// success. This covers the corner the paper's §4.4 glosses over:
    /// with few replicas, the node that becomes numerically closest after
    /// a failure is not always one of the replica holders.
    fn pull_anchor_from_neighbors(&self, anchor: &str, routing: &str) -> bool {
        let slot = anchor_slot(anchor);
        for m in self.pastry.leaf_members() {
            let Ok(root) = self.nfs.mount(m.addr) else {
                continue;
            };
            let Ok((rarea, _)) = self.nfs.lookup(m.addr, root, Area::Replica.dir_name()) else {
                continue;
            };
            let Ok((src, _)) = self.nfs.lookup(m.addr, rarea, &slot) else {
                continue;
            };
            // Found a replica holder: materialize into our store.
            let dst = {
                let sarea = match self.fh_of(&format!("/{}", Area::Store.dir_name())) {
                    Ok(fh) => fh,
                    Err(_) => continue,
                };
                let _ = self.apply(NfsRequest::RemoveTree {
                    dir: sarea,
                    name: slot.clone(),
                });
                match self.apply(NfsRequest::Mkdir {
                    dir: sarea,
                    name: slot.clone(),
                    mode: 0o755,
                    uid: 0,
                    gid: 0,
                }) {
                    Ok(NfsReply::Handle { fh, .. }) => fh,
                    _ => continue,
                }
            };
            if self.pull_tree(m.addr, src, dst).is_err() {
                continue;
            }
            // Drop a stale migration flag if the holder's copy had one.
            let _ = self.apply(NfsRequest::Remove {
                dir: dst,
                name: MIGRATION_FLAG.into(),
            });
            self.consume_lag_marker(anchor);
            let routing = self
                .read_anchor_meta(anchor)
                .unwrap_or_else(|| routing.to_string());
            self.anchors.lock().insert(anchor.to_string(), routing);
            self.stats.replica_pulls.inc();
            self.journal(
                "replica_pull",
                format!("pulled {anchor:?} from a neighbor replica"),
            );
            self.ensure_replicas(anchor);
            return true;
        }
        false
    }

    /// Recursively copies a remote directory (by NFS reads) into a local
    /// store directory.
    fn pull_tree(&self, src_addr: NodeAddr, src: Fh, dst: Fh) -> NfsResult<()> {
        for e in self.nfs.readdir(src_addr, src)? {
            let attr = self.nfs.getattr(src_addr, e.fh)?;
            match e.ftype {
                kosha_vfs::FileType::Directory => {
                    let child = match self.apply(NfsRequest::Mkdir {
                        dir: dst,
                        name: e.name.clone(),
                        mode: attr.mode,
                        uid: attr.uid,
                        gid: attr.gid,
                    }) {
                        Ok(NfsReply::Handle { fh, .. }) => fh,
                        Ok(_) => continue,
                        Err(err) => return Err(kosha_nfs::NfsError::Status(err)),
                    };
                    self.pull_tree(src_addr, e.fh, child)?;
                }
                kosha_vfs::FileType::Regular => {
                    let local = match self.apply(NfsRequest::Create {
                        dir: dst,
                        name: e.name.clone(),
                        mode: attr.mode,
                        uid: attr.uid,
                        gid: attr.gid,
                    }) {
                        Ok(NfsReply::Handle { fh, .. }) => fh,
                        Ok(_) => continue,
                        Err(err) => return Err(kosha_nfs::NfsError::Status(err)),
                    };
                    let mut off = 0u64;
                    loop {
                        let (data, eof) = self.nfs.read(src_addr, e.fh, off, self.cfg.io_chunk)?;
                        if !data.is_empty() {
                            self.apply(NfsRequest::Write {
                                fh: local,
                                offset: off,
                                data: data.clone(),
                            })
                            .map_err(kosha_nfs::NfsError::Status)?;
                            off += data.len() as u64;
                        }
                        if eof {
                            break;
                        }
                    }
                }
                kosha_vfs::FileType::Symlink => {
                    let target = self.nfs.readlink(src_addr, e.fh)?;
                    let _ = self.apply(NfsRequest::Symlink {
                        dir: dst,
                        name: e.name.clone(),
                        target,
                        mode: attr.mode,
                        uid: attr.uid,
                        gid: attr.gid,
                    });
                }
            }
        }
        Ok(())
    }

    /// Sends the anchor's subtree to `owner` (the node the key space now
    /// assigns it to) and demotes the local copy to a replica (§4.3.1:
    /// "the files are copied to the new node, and their copy on N becomes
    /// one of the replicas").
    pub(crate) fn transfer_anchor(
        &self,
        anchor: &str,
        routing: &str,
        owner: NodeInfo,
    ) -> NfsResult<()> {
        let slot_path = slot_local_path(Area::Store, anchor, anchor);
        let items: Vec<MigrateItem> = self
            .store
            .with_store(|v| v.export_tree(&slot_path))
            .map_err(|e| kosha_nfs::NfsError::Status(e.into()))?
            .into_iter()
            .map(MigrateItem::from)
            .collect();
        self.control(
            owner.addr,
            &KoshaRequest::BeginTransfer {
                path: anchor.to_string(),
            },
        )?;
        for item in items {
            self.control(
                owner.addr,
                &KoshaRequest::TransferPut {
                    path: anchor.to_string(),
                    item,
                },
            )?;
        }
        self.control(
            owner.addr,
            &KoshaRequest::CommitTransfer {
                path: anchor.to_string(),
                routing_name: routing.to_string(),
            },
        )?;
        self.demote_anchor(anchor);
        self.stats.migrations_out.inc();
        self.journal(
            "migration_out",
            format!("anchor {anchor:?} handed to new owner"),
        );
        Ok(())
    }

    /// Demotes a hosted anchor to a replica copy (after migrating it).
    fn demote_anchor(&self, anchor: &str) {
        // Hot-copy leases die with the primaryship: the new owner tracks
        // its own heat and spawns its own copies if demand persists.
        self.hot_forget_anchor(anchor);
        self.replica_push_memo.lock().remove(anchor);
        self.anchors.lock().remove(anchor);
        let slot = anchor_slot(anchor);
        let _ = self.store.with_store(|v| {
            let (sparent, _) = v.resolve(&format!("/{}", Area::Store.dir_name()))?;
            let (rparent, _) = v.resolve(&format!("/{}", Area::Replica.dir_name()))?;
            let _ = v.remove_tree(rparent, &slot);
            v.rename(sparent, &slot, rparent, &slot)
        });
        self.invalidate_dir_subtree(anchor);
        let mut c = self.client.lock();
        c.dir_cache.remove(anchor);
        drop(c);
    }

    /// Reacts to leaf-set changes: migrate anchors whose keys now map to
    /// another node, refresh replicas for the rest (§4.3).
    pub(crate) fn on_leaf_change(&self, _joined: Option<NodeInfo>) {
        // Flush barrier: migration and replica refresh below must never
        // run against replicas that are behind the write-behind queues.
        self.flush_replication();
        for (path, routing) in self.hosted_anchors() {
            match self.owner_of(&routing) {
                Ok(owner) if owner.id != self.info.id => {
                    let _ = self.transfer_anchor(&path, &routing, owner);
                }
                Ok(_) => self.ensure_replicas(&path),
                Err(_) => {}
            }
        }
    }

    /// Garbage-collects stale replica slots: for every slot in the
    /// replica area, asks the anchor's current owner whether this node
    /// is still one of its replica targets, and drops the copy only on a
    /// positive "no". Leaf-set churn silently shrinks an anchor's target
    /// set, and [`Self::ensure_replicas`] only refreshes *current*
    /// targets — an ex-holder's copy would otherwise diverge forever and
    /// show up as over-replication in every audit. Conservative on every
    /// uncertain answer (owner unreachable, `NoEnt`, missing anchor
    /// meta): a stale copy is an audit nuisance, a wrongly dropped one
    /// is data loss. Returns the number of slots dropped. Called from
    /// [`KoshaNode::maintain`], never from the leaf-change hook, so its
    /// per-slot owner round-trips stay off the failover critical path.
    pub fn gc_replica_slots(&self) -> u64 {
        let root = format!("/{}", Area::Replica.dir_name());
        let slots: Vec<String> = self.store.with_store(|v| {
            let Ok((dir, _)) = v.resolve(&root) else {
                return Vec::new();
            };
            v.readdir(dir)
                .map(|entries| {
                    entries
                        .into_iter()
                        .filter(|e| e.name.starts_with('@'))
                        .map(|e| e.name)
                        .collect()
                })
                .unwrap_or_default()
        });
        let mut dropped = 0u64;
        for slot in slots {
            // The anchor meta inside the slot carries the ROUTING name
            // (what the DHT keys on), which is exactly what we need to
            // find the owner. No meta → keep; the copy may still be
            // mid-migration.
            let meta = format!("{root}/{slot}/{ANCHOR_META}");
            let Some(routing) = self.store.with_store(|v| {
                let (id, attr) = v.resolve(&meta).ok()?;
                let (data, _) = v.read(id, 0, attr.size as u32).ok()?;
                String::from_utf8(data).ok()
            }) else {
                continue;
            };
            let Ok(owner) = self.owner_of(&routing) else {
                continue;
            };
            if owner.id == self.info.id {
                // We own the anchor ourselves; promotion/demotion paths
                // manage the slot, not GC.
                continue;
            }
            let Ok(KoshaReply::Nodes(targets)) = self.control(
                owner.addr,
                &KoshaRequest::ReplicaTargetsBySlot {
                    slot: slot.clone(),
                    holder: self.info.addr.0,
                },
            ) else {
                continue;
            };
            if targets.contains(&self.info.addr) {
                continue;
            }
            let removed = self
                .store
                .with_store(|v| {
                    let (rparent, _) = v.resolve(&root)?;
                    v.remove_tree(rparent, &slot)
                })
                .is_ok();
            if removed {
                dropped += 1;
                self.stats.replica_gc.inc();
                self.journal(
                    "replica_gc",
                    format!("dropped stale replica slot {slot} (no longer a target)"),
                );
            }
        }
        dropped
    }

    // ---- the control handler ----------------------------------------------

    pub(crate) fn handle_control(&self, req: KoshaRequest) -> Result<KoshaReply, NfsStatus> {
        match req {
            KoshaRequest::CreateFile {
                path,
                mode,
                uid,
                gid,
                size,
            } => {
                let (pdir, name) = self.local_entry(Area::Store, &path)?;
                let dir = self.fh_of(&pdir)?;
                let reply = match size {
                    None => self.apply(NfsRequest::Create {
                        dir,
                        name: name.clone(),
                        mode,
                        uid,
                        gid,
                    })?,
                    Some(sz) => self.apply(NfsRequest::CreateSized {
                        dir,
                        name: name.clone(),
                        size: sz,
                        mode,
                        uid,
                        gid,
                    })?,
                };
                // lint: allow(L007) fresh create: Remove/Rmdir void leases when a path dies, so a new name has no hot copy
                self.mirror_op(ReplicaOp::Create {
                    path,
                    mode,
                    uid,
                    gid,
                    size,
                });
                match reply {
                    NfsReply::Handle { fh, attr } => Ok(KoshaReply::Handle { fh, attr }),
                    _ => Ok(KoshaReply::Done),
                }
            }
            KoshaRequest::MkdirLocal {
                path,
                mode,
                uid,
                gid,
            } => {
                let (pdir, name) = self.local_entry(Area::Store, &path)?;
                let dir = self.fh_of(&pdir)?;
                let reply = self.apply(NfsRequest::Mkdir {
                    dir,
                    name,
                    mode,
                    uid,
                    gid,
                })?;
                // lint: allow(L007) fresh mkdir: a newly created directory name has no hot copy to void
                self.mirror_op(ReplicaOp::Mkdir { path });
                match reply {
                    NfsReply::Handle { fh, attr } => Ok(KoshaReply::Handle { fh, attr }),
                    _ => Ok(KoshaReply::Done),
                }
            }
            KoshaRequest::MkdirAnchor {
                path,
                routing_name,
                mode,
                uid,
                gid,
            } => {
                let slot = anchor_slot(&path);
                let sarea = format!("/{}", Area::Store.dir_name());
                let exists = self
                    .store
                    .with_store(|v| v.resolve(&format!("{sarea}/{slot}")).is_ok());
                if exists {
                    return Err(NfsStatus::Exist);
                }
                let dir = self.fh_of(&sarea)?;
                self.apply(NfsRequest::Mkdir {
                    dir,
                    name: slot,
                    mode,
                    uid,
                    gid,
                })?;
                self.write_anchor_meta(&path, &routing_name)?;
                self.anchors.lock().insert(path.clone(), routing_name);
                self.ensure_replicas(&path);
                Ok(KoshaReply::Done)
            }
            KoshaRequest::PlaceLink {
                path,
                target,
                uid,
                gid,
            } => {
                let (pdir, name) = self.local_entry(Area::Store, &path)?;
                let dir = self.fh_of(&pdir)?;
                self.apply(NfsRequest::Symlink {
                    dir,
                    name: name.clone(),
                    target: target.clone(),
                    mode: SPECIAL_LINK_MODE,
                    uid,
                    gid,
                })?;
                // lint: allow(L007) fresh symlink: a newly created link name has no hot copy to void
                self.mirror_op(ReplicaOp::Symlink {
                    path,
                    target,
                    mode: SPECIAL_LINK_MODE,
                    uid,
                    gid,
                });
                Ok(KoshaReply::Done)
            }
            KoshaRequest::SymlinkFile {
                path,
                target,
                uid,
                gid,
            } => {
                let (pdir, name) = self.local_entry(Area::Store, &path)?;
                let dir = self.fh_of(&pdir)?;
                self.apply(NfsRequest::Symlink {
                    dir,
                    name,
                    target: target.clone(),
                    mode: USER_LINK_MODE,
                    uid,
                    gid,
                })?;
                // lint: allow(L007) fresh symlink: a newly created link name has no hot copy to void
                self.mirror_op(ReplicaOp::Symlink {
                    path,
                    target,
                    mode: USER_LINK_MODE,
                    uid,
                    gid,
                });
                Ok(KoshaReply::Done)
            }
            KoshaRequest::Write { path, offset, data } => {
                let obj = self.local_object(Area::Store, &path)?;
                let fh = self.fh_of(&obj)?;
                self.apply(NfsRequest::Write {
                    fh,
                    offset,
                    data: data.clone(),
                })?;
                // Void any hot-copy leases before acknowledging: a
                // reader fetching targets after this reply must never be
                // steered to a copy holding pre-write data.
                self.hot_invalidate(&path);
                self.mirror_op(ReplicaOp::Write { path, offset, data });
                Ok(KoshaReply::Done)
            }
            KoshaRequest::SetAttr { path, sattr } => {
                let obj = self.local_object(Area::Store, &path)?;
                let fh = self.fh_of(&obj)?;
                self.apply(NfsRequest::Setattr {
                    fh,
                    sattr: sattr.clone(),
                })?;
                self.hot_invalidate(&path);
                self.mirror_op(ReplicaOp::SetAttr { path, sattr });
                Ok(KoshaReply::Done)
            }
            KoshaRequest::Remove { path } | KoshaRequest::RemoveLink { path } => {
                let (pdir, name) = self.local_entry(Area::Store, &path)?;
                let dir = self.fh_of(&pdir)?;
                self.apply(NfsRequest::Remove {
                    dir,
                    name: name.clone(),
                })?;
                // The object is gone: drop its heat slot and revoke any
                // hot copies instead of leaving them to decay.
                self.hot_forget_object(&path);
                self.mirror_op(ReplicaOp::Remove { path });
                Ok(KoshaReply::Done)
            }
            KoshaRequest::Rmdir { path } => {
                let (pdir, name) = self.local_entry(Area::Store, &path)?;
                let dir = self.fh_of(&pdir)?;
                self.apply(NfsRequest::Rmdir {
                    dir,
                    name: name.clone(),
                })?;
                // lint: allow(L007) rmdir of an empty dir: hot leases cover file bodies and anchor slots, neither exists here
                self.mirror_op(ReplicaOp::Rmdir { path });
                Ok(KoshaReply::Done)
            }
            KoshaRequest::RmdirAnchor { path } => {
                if !self.hosted(&path) {
                    return Err(NfsStatus::NoEnt);
                }
                let slot_path = slot_local_path(Area::Store, &path, &path);
                // Empty check, ignoring Kosha-internal metadata.
                let non_internal = self
                    .store
                    .with_store(|v| {
                        let (id, _) = v.resolve(&slot_path)?;
                        Ok::<_, kosha_vfs::VfsError>(
                            v.readdir(id)?
                                .into_iter()
                                .filter(|e| !is_internal_name(&e.name))
                                .count(),
                        )
                    })
                    .map_err(NfsStatus::from)?;
                if non_internal > 0 {
                    return Err(NfsStatus::NotEmpty);
                }
                let slot = anchor_slot(&path);
                let sdir = self.fh_of(&format!("/{}", Area::Store.dir_name()))?;
                self.apply(NfsRequest::RemoveTree {
                    dir: sdir,
                    name: slot.clone(),
                })?;
                self.anchors.lock().remove(&path);
                self.hot_forget_anchor(&path);
                self.mirror_op(ReplicaOp::RemoveSlot { anchor: path });
                Ok(KoshaReply::Done)
            }
            KoshaRequest::RenameLocal { from, to } => {
                let (fpdir, fname) = self.local_entry(Area::Store, &from)?;
                let (tpdir, tname) = self.local_entry(Area::Store, &to)?;
                let sdir = self.fh_of(&fpdir)?;
                let ddir = self.fh_of(&tpdir)?;
                self.apply(NfsRequest::Rename {
                    sdir,
                    sname: fname.clone(),
                    ddir,
                    dname: tname.clone(),
                })?;
                // Hot copies are keyed by path: both the vacated source
                // and the overwritten destination lose theirs.
                self.hot_forget_object(&from);
                self.hot_forget_object(&to);
                self.mirror_op(ReplicaOp::Rename { from, to });
                Ok(KoshaReply::Done)
            }
            KoshaRequest::RenameAnchorDir { from, to } => {
                let Some(routing) = self.routing_of(&from) else {
                    return Err(NfsStatus::NoEnt);
                };
                let fslot = anchor_slot(&from);
                let tslot = anchor_slot(&to);
                let sarea = self.fh_of(&format!("/{}", Area::Store.dir_name()))?;
                self.apply(NfsRequest::Rename {
                    sdir: sarea,
                    sname: fslot.clone(),
                    ddir: sarea,
                    dname: tslot.clone(),
                })?;
                {
                    let mut a = self.anchors.lock();
                    a.remove(&from);
                    a.insert(to.clone(), routing);
                }
                // Void hot copies keyed by the old anchor name before the
                // mirror fan-out acks: a hot holder that kept serving
                // `from` would hand out reads of a directory that no
                // longer exists under that path.
                self.hot_forget_anchor(&from);
                self.mirror_op(ReplicaOp::RenameSlot { from, to });
                Ok(KoshaReply::Done)
            }
            KoshaRequest::EnsureAnchor { path, routing } => {
                let slot_path = slot_local_path(Area::Store, &path, &path);
                let in_store = self.store.with_store(|v| v.resolve(&slot_path).is_ok());
                if in_store {
                    if !self.hosted(&path) {
                        let r = self
                            .read_anchor_meta(&path)
                            .unwrap_or_else(|| routing.clone());
                        self.anchors.lock().insert(path, r);
                    }
                    return Ok(KoshaReply::DoneBool(false));
                }
                let rslot_path = slot_local_path(Area::Replica, &path, &path);
                let in_replica = self.store.with_store(|v| v.resolve(&rslot_path).is_ok());
                if in_replica {
                    self.promote_anchor(&path)?;
                    return Ok(KoshaReply::DoneBool(true));
                }
                // We own the key but hold no copy (e.g. K=1 and the sole
                // replica sits on the *other* neighbor of the failed
                // primary). Pull the anchor from whichever leaf-set
                // member still holds a replica, then serve it.
                if self.pull_anchor_from_neighbors(&path, &routing) {
                    return Ok(KoshaReply::DoneBool(true));
                }
                if path == "/" {
                    // Brand-new deployment (or new root owner with no data
                    // yet): create the root anchor empty.
                    let dir = self.fh_of(&format!("/{}", Area::Store.dir_name()))?;
                    self.apply(NfsRequest::Mkdir {
                        dir,
                        name: anchor_slot("/"),
                        mode: 0o755,
                        uid: 0,
                        gid: 0,
                    })?;
                    self.anchors.lock().insert("/".into(), routing.clone());
                    self.write_anchor_meta("/", &routing)?;
                    self.ensure_replicas("/");
                    return Ok(KoshaReply::DoneBool(false));
                }
                Err(NfsStatus::NoEnt)
            }
            KoshaRequest::StoreStats => {
                let (capacity, used, free) = self.store.with_store(|v| v.fsstat());
                Ok(KoshaReply::Stats {
                    capacity,
                    used,
                    free,
                })
            }
            KoshaRequest::BeginTransfer { path } => {
                // Merge semantics: do NOT wipe an existing copy. A
                // recovered node may receive its own anchor back from a
                // node that served (a possibly empty or partial) interim
                // copy during an outage; wiping would lose every entry
                // the interim copy never saw. Transferred items overwrite
                // same-named entries; everything else survives.
                let slot = anchor_slot(&path);
                self.store
                    .with_store(|v| {
                        let sarea = format!("/{}", Area::Store.dir_name());
                        let (sparent, _) = v.resolve(&sarea)?;
                        match v.mkdir(sparent, &slot, 0o755, 0, 0) {
                            Ok(_) | Err(kosha_vfs::VfsError::Exist) => Ok(()),
                            Err(e) => Err(e),
                        }
                    })
                    .map_err(NfsStatus::from)?;
                Ok(KoshaReply::Done)
            }
            KoshaRequest::TransferPut { path, item } => {
                if item.rel_path.is_empty() {
                    return Ok(KoshaReply::Done);
                }
                let base = slot_local_path(Area::Store, &path, &path);
                let full = format!("{base}/{}", item.rel_path);
                let (pp, name) = parent_and_name(&full).ok_or(NfsStatus::Inval)?;
                let name = name.to_string();
                let dir = self.fh_of(pp)?;
                match item.kind {
                    MigrateKind::Dir => {
                        match self.apply(NfsRequest::Mkdir {
                            dir,
                            name,
                            mode: item.mode,
                            uid: item.uid,
                            gid: item.gid,
                        }) {
                            Ok(_) | Err(NfsStatus::Exist) => {} // merge
                            Err(e) => return Err(e),
                        }
                    }
                    MigrateKind::Bytes(data) => {
                        let _ = self.apply(NfsRequest::RemoveTree {
                            dir,
                            name: name.clone(),
                        });
                        let _ = self.apply(NfsRequest::Remove {
                            dir,
                            name: name.clone(),
                        });
                        let reply = self.apply(NfsRequest::Create {
                            dir,
                            name,
                            mode: item.mode,
                            uid: item.uid,
                            gid: item.gid,
                        })?;
                        if let NfsReply::Handle { fh, .. } = reply {
                            self.apply(NfsRequest::Write {
                                fh,
                                offset: 0,
                                data,
                            })?;
                        }
                    }
                    MigrateKind::Sparse(n) => {
                        let _ = self.apply(NfsRequest::Remove {
                            dir,
                            name: name.clone(),
                        });
                        self.apply(NfsRequest::CreateSized {
                            dir,
                            name,
                            size: n,
                            mode: item.mode,
                            uid: item.uid,
                            gid: item.gid,
                        })?;
                    }
                    MigrateKind::Symlink { target } => {
                        let _ = self.apply(NfsRequest::Remove {
                            dir,
                            name: name.clone(),
                        });
                        self.apply(NfsRequest::Symlink {
                            dir,
                            name,
                            target,
                            mode: item.mode,
                            uid: item.uid,
                            gid: item.gid,
                        })?;
                    }
                }
                Ok(KoshaReply::Done)
            }
            KoshaRequest::CommitTransfer { path, routing_name } => {
                self.write_anchor_meta(&path, &routing_name)?;
                self.anchors.lock().insert(path.clone(), routing_name);
                self.stats.migrations_in.inc();
                self.journal(
                    "migration_in",
                    format!("anchor {path:?} received from previous owner"),
                );
                self.ensure_replicas(&path);
                Ok(KoshaReply::Done)
            }
            KoshaRequest::ListAnchors => Ok(KoshaReply::Anchors(self.hosted_anchors())),
            KoshaRequest::AuditScan => {
                // Anti-entropy scan: digest every local slot. Local
                // state only — the auditor fans this out cluster-wide,
                // and a handler that issued nested RPCs could deadlock
                // two nodes auditing each other.
                Ok(KoshaReply::Audit(self.audit_scan()))
            }
            KoshaRequest::Flush { path } => {
                // NFS COMMIT barrier: the client fsynced, so every queued
                // write-behind op must reach the replicas before we ack.
                // A no-op under `Sync` replication (nothing is queued).
                self.journal("flush_barrier", format!("COMMIT barrier for {path:?}"));
                self.flush_replication();
                Ok(KoshaReply::Done)
            }
            // Replica maintenance is served on its own leaf service
            // (`ServiceId::KoshaReplica`), not the control service.
            KoshaRequest::MigrateBatch { .. }
            | KoshaRequest::ReplicaApply { .. }
            | KoshaRequest::ReplicaApplyBatch { .. }
            | KoshaRequest::HotReplicaPush { .. }
            | KoshaRequest::HotReplicaDrop { .. } => Err(NfsStatus::NotSupp),
            KoshaRequest::ReplicaTargets { path } => {
                let anchor = self.covering_anchor(&path);
                if !self.hosted(&anchor) {
                    return Err(NfsStatus::NoEnt);
                }
                // Every replica-assisted read lands here, so this is
                // where the primary measures per-object demand — and,
                // past the heat threshold, where it spawns extra cached
                // copies and advertises their (valid-lease) holders
                // alongside the K durable targets (DESIGN.md §16).
                let mut targets = self.replica_addrs();
                for a in self.hot_read_extras(&path, &anchor) {
                    if !targets.contains(&a) {
                        targets.push(a);
                    }
                }
                Ok(KoshaReply::Nodes(targets))
            }
            KoshaRequest::ReplicaTargetsBySlot { slot, holder } => {
                // GC probe: a replica holder only knows the slot name, so
                // map it back through our hosted-anchor table. `NoEnt`
                // (we don't host it) tells the holder to keep its copy —
                // never to drop anything.
                let anchor = self
                    .anchors
                    .lock()
                    .keys()
                    .find(|p| anchor_slot(p) == slot)
                    .cloned();
                let Some(anchor) = anchor else {
                    return Err(NfsStatus::NoEnt);
                };
                // Vouch for hot-copy holders too: their slots carry our
                // anchor meta, and GC must not collect a copy we still
                // track (orphans — dead or demoted primary — get no such
                // vouching and age out).
                let mut targets = self.replica_addrs();
                for a in self.hot_holders_for_slot(&slot) {
                    if !targets.contains(&a) {
                        targets.push(a);
                    }
                }
                if !targets.contains(&NodeAddr(holder)) {
                    // The probing holder is about to drop its copy: void
                    // the push memo so a later return to the target set
                    // gets a fresh full push even with content unchanged.
                    self.replica_push_memo.lock().remove(&anchor);
                }
                Ok(KoshaReply::Nodes(targets))
            }
        }
    }
}

/// Whether a mirror RPC's outcome means the replica applied the change.
pub(crate) fn mirror_succeeded(result: Result<RpcResponse, RpcError>) -> bool {
    matches!(
        result.and_then(|r| r.decode::<KoshaReplyFrame>()),
        Ok(KoshaReplyFrame(Ok(_)))
    )
}

/// Treats `benign` as success (idempotent replica mutations).
fn absorb(r: Result<NfsReply, NfsStatus>, benign: NfsStatus) -> Result<(), NfsStatus> {
    match r {
        Ok(_) => Ok(()),
        Err(e) if e == benign => Ok(()),
        Err(e) => Err(e),
    }
}

fn default_routing(anchor: &str) -> String {
    if anchor == "/" {
        "/".to_string()
    } else {
        parent_and_name(anchor)
            .map(|(_, n)| n.to_string())
            .unwrap_or_else(|| "/".to_string())
    }
}

impl RpcHandler for ControlService {
    // lint: allow(L005) designed one-level nesting: the control plane fans out to leaf replica/lease services only, and those handlers are verified RPC-free by this same rule
    fn handle(&self, _from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
        let req = KoshaRequest::decode(body)?;
        let k = &self.0;
        let name = req.name();
        let clock = k.net.clock();
        let result = k.obs.tracer.child(
            || format!("kosha:{name}"),
            k.info.addr.0,
            || clock.now().0,
            || k.handle_control(req),
        );
        Ok(RpcResponse::new(&KoshaReplyFrame(result)))
    }
}

impl RpcHandler for ReplicaService {
    fn handle(&self, _from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
        let req = KoshaRequest::decode(body)?;
        let k = &self.0;
        let name = req.name();
        let clock = k.net.clock();
        let result = k.obs.tracer.child(
            || format!("replica:{name}"),
            k.info.addr.0,
            || clock.now().0,
            || k.handle_replica(req),
        );
        Ok(RpcResponse::new(&KoshaReplyFrame(result)))
    }
}
