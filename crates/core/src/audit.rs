//! Consistency observatory: online anti-entropy auditing (DESIGN.md §15).
//!
//! The paper argues Kosha provides "transparent replication" (§4.2) but
//! evaluates it only by availability simulation; nothing in the
//! prototype could *measure* how far replicas actually drift from their
//! primaries under churn. This module adds that measurement:
//!
//! * [`slot_summary`] / [`tree_digest`] — a canonical SHA-1 digest over
//!   a slot subtree (internal bookkeeping files excluded), computed
//!   identically for `/kosha_store` and `/kosha_replica` copies, so an
//!   up-to-date replica hashes byte-for-byte equal to its primary;
//! * `KoshaRequest::AuditScan` — each node digests every slot it holds
//!   locally (no nested RPCs, preserving the replica-service deadlock
//!   discipline) and reports one [`AuditEntry`] per copy;
//! * [`audit_cluster`] — the audit pass: fan the scan out to every
//!   node, join replica entries to primary entries by slot, and report
//!   divergence (objects/bytes), under-/over-replication versus the
//!   configured K, orphaned replica slots, outstanding `.kosha_lag`
//!   markers, and in-flight migrations;
//! * [`AuditReport::publish`] — feeds the results into a registry +
//!   flight-recorder domain as `kosha_audit_*` gauges and series, so
//!   divergence-over-time is observable like any other metric.
//!
//! The audit is *advisory*: it never mutates state. Repair remains the
//! job of the existing maintenance paths (`maintain` → `ensure_replicas`
//! full pushes, plus the replica-slot GC that drops copies whose owner
//! no longer counts the holder as a target), whose effect the next
//! audit pass verifies.

use crate::control::{AuditEntry, KoshaReply, KoshaReplyFrame, KoshaRequest};
use crate::node::KoshaNode;
use crate::paths::{anchor_slot, is_internal_name, Area, HOT_MARK, LAG_MARK, MIGRATION_FLAG};
use kosha_id::Sha1;
use kosha_obs::Obs;
use kosha_rpc::{Network, NodeAddr, RpcRequest, ServiceId};
use kosha_vfs::{ExportItem, ExportKind};
use std::collections::BTreeMap;

/// Canonical content summary of one slot subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSummary {
    /// SHA-1 over the canonical serialization (see [`tree_digest`]).
    pub digest: [u8; 20],
    /// Payload bytes (file contents, sparse sizes, symlink targets).
    pub bytes: u64,
    /// Objects below the slot root, internal files excluded.
    pub files: u64,
    /// A `.kosha_lag` marker sits at the slot root.
    pub lag_marker: bool,
    /// A `MIGRATION_NOT_COMPLETE` flag sits at the slot root.
    pub migrating: bool,
    /// A `.kosha_hot` lease marker sits at the slot root: the slot holds
    /// heat-driven cached copies (DESIGN.md §16), not a durable replica.
    pub hot: bool,
}

/// Whether an exported item is Kosha-internal bookkeeping (`.kosha_anchor`,
/// `.kosha_lag`, `MIGRATION_NOT_COMPLETE`). Internal files are leaves, so
/// checking the final path component suffices.
fn is_internal_item(item: &ExportItem) -> bool {
    item.rel_path
        .rsplit('/')
        .next()
        .is_some_and(is_internal_name)
}

/// SHA-1 digest of a slot subtree's canonical serialization.
///
/// Canonical means: items sorted by relative path (independent of export
/// traversal order), internal bookkeeping files excluded, each item
/// hashed as `rel_path NUL kind-tag payload [mode uid gid] 0xFF`.
/// Directory permission bits are deliberately *excluded*: replica-side
/// directories are materialized with fixed modes by `ReplicaOp::Mkdir`,
/// so including them would report permanent false divergence. File and
/// symlink attributes are mirrored faithfully and are covered.
///
/// Two properties the observatory depends on:
/// * digest(primary slot) == digest(fresh replica slot) after a full
///   push or a drained write-behind window, and
/// * digest is invariant under write-behind coalescing — applying a
///   queued op sequence or its [`crate::writeback::coalesce`]d form
///   yields the same digest (property-tested in `writeback`).
#[must_use]
pub fn tree_digest(items: &[ExportItem]) -> [u8; 20] {
    slot_summary(items).digest
}

/// Computes the full [`SlotSummary`] for an exported slot subtree.
#[must_use]
pub fn slot_summary(items: &[ExportItem]) -> SlotSummary {
    let mut kept: Vec<&ExportItem> = items.iter().filter(|i| !is_internal_item(i)).collect();
    kept.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    let mut h = Sha1::new();
    let mut bytes = 0u64;
    let mut files = 0u64;
    for item in &kept {
        h.update(item.rel_path.as_bytes());
        h.update(&[0]);
        match &item.kind {
            ExportKind::Dir => h.update(b"D"),
            ExportKind::Bytes(data) => {
                h.update(b"F");
                h.update(&(data.len() as u64).to_be_bytes());
                h.update(data);
                bytes += data.len() as u64;
            }
            ExportKind::Sparse(n) => {
                h.update(b"S");
                h.update(&n.to_be_bytes());
                bytes += *n;
            }
            ExportKind::Symlink { target } => {
                h.update(b"L");
                h.update(target.as_bytes());
                bytes += target.len() as u64;
            }
        }
        if !matches!(item.kind, ExportKind::Dir) {
            h.update(&item.mode.to_be_bytes());
            h.update(&item.uid.to_be_bytes());
            h.update(&item.gid.to_be_bytes());
        }
        h.update(&[0xff]);
        if !item.rel_path.is_empty() {
            files += 1;
        }
    }
    SlotSummary {
        digest: h.finalize(),
        bytes,
        files,
        lag_marker: items.iter().any(|i| i.rel_path == LAG_MARK),
        migrating: items.iter().any(|i| i.rel_path == MIGRATION_FLAG),
        hot: items.iter().any(|i| i.rel_path == HOT_MARK),
    }
}

impl KoshaNode {
    /// Digests every store and replica slot held locally — the
    /// `AuditScan` handler body. Local state only: no RPCs, so the
    /// control service stays cycle-free when an auditor fans the scan
    /// out to every node at once. Slots are reported in area order
    /// (store first), then slot-name order, deterministically.
    pub(crate) fn audit_scan(&self) -> Vec<AuditEntry> {
        let slot_paths: BTreeMap<String, String> = self
            .anchors
            .lock()
            .keys()
            .map(|p| (anchor_slot(p), p.clone()))
            .collect();
        let mut out = Vec::new();
        for (area, replica) in [(Area::Store, false), (Area::Replica, true)] {
            let root = format!("/{}", area.dir_name());
            let slots: Vec<String> = self.with_store(|v| {
                let Ok((dir, _)) = v.resolve(&root) else {
                    return Vec::new();
                };
                v.readdir(dir)
                    .map(|entries| {
                        entries
                            .into_iter()
                            .filter(|e| e.name.starts_with('@'))
                            .map(|e| e.name)
                            .collect()
                    })
                    .unwrap_or_default()
            });
            for slot in slots {
                let slot_path = format!("{root}/{slot}");
                let Some(summary) = self.with_store(|v| {
                    v.export_tree(&slot_path)
                        .ok()
                        .map(|items| slot_summary(&items))
                }) else {
                    continue;
                };
                out.push(AuditEntry {
                    path: if replica {
                        String::new()
                    } else {
                        slot_paths.get(&slot).cloned().unwrap_or_default()
                    },
                    slot,
                    replica,
                    digest: Sha1::hex(&summary.digest),
                    bytes: summary.bytes,
                    files: summary.files,
                    lag_marker: summary.lag_marker,
                    migrating: summary.migrating,
                    hot: summary.hot,
                });
            }
        }
        // A scan is also the freshest possible lag-marker census; keep
        // the gauge in step with what we just observed.
        let lag = out.iter().filter(|e| e.replica && e.lag_marker).count();
        self.obs
            .registry
            .gauge("kosha_replica_lag_markers")
            .set(lag as i64);
        out
    }

    /// Refreshes the `kosha_replica_lag_markers` gauge: counts the
    /// `.kosha_lag` markers currently stamped on this node's replica
    /// slots. Called from the node's flight-recorder sampler tick so the
    /// gauge (and its recorder series) tracks outstanding write-behind
    /// windows without waiting for an audit pass.
    pub fn refresh_lag_marker_gauge(&self) -> u64 {
        let root = format!("/{}", Area::Replica.dir_name());
        let count = self.with_store(|v| {
            let Ok((dir, _)) = v.resolve(&root) else {
                return 0u64;
            };
            let Ok(entries) = v.readdir(dir) else {
                return 0u64;
            };
            entries
                .iter()
                .filter(|e| {
                    e.name.starts_with('@')
                        && v.resolve(&format!("{root}/{}/{LAG_MARK}", e.name)).is_ok()
                })
                .count() as u64
        });
        self.obs
            .registry
            .gauge("kosha_replica_lag_markers")
            .set(count as i64);
        count
    }
}

/// Tuning for [`audit_cluster`].
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// The deployment's replica count K ([`crate::KoshaConfig::replicas`]):
    /// the baseline under-/over-replication is judged against.
    pub replicas: usize,
    /// How many divergent/orphaned slot names to retain as examples.
    pub max_examples: usize,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            replicas: 1,
            max_examples: 8,
        }
    }
}

/// One copy of a slot as seen by the audit join.
struct AuditCopy {
    addr: u64,
    path: String,
    digest: String,
    bytes: u64,
    lag_marker: bool,
    migrating: bool,
}

/// The outcome of one anti-entropy audit pass over a cluster.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuditReport {
    /// Transport-clock time the pass ran at.
    pub now_nanos: u64,
    /// Nodes that answered the scan.
    pub nodes_scanned: u64,
    /// Nodes that failed or timed out (crashed/partitioned).
    pub nodes_unreachable: u64,
    /// Distinct objects: slots with at least one primary copy.
    pub objects: u64,
    /// Replica copies joined to a primary.
    pub replica_copies: u64,
    /// Objects with at least one replica copy whose digest differs from
    /// the primary's (migrations in flight excluded).
    pub objects_divergent: u64,
    /// Divergent replica copies (an object with two stale replicas
    /// counts twice here, once in [`AuditReport::objects_divergent`]).
    pub replica_copies_divergent: u64,
    /// Payload bytes at risk: for each divergent pair, the larger of the
    /// two copies' payload sizes (an upper bound on stale data).
    pub bytes_divergent: u64,
    /// Objects with fewer replica holders than expected
    /// (min(K, scanned nodes − 1)).
    pub under_replicated: u64,
    /// Objects with more than K replica holders (stale copies the
    /// leaf-set churn left behind).
    pub over_replicated: u64,
    /// Replica slots with no primary anywhere — orphaned handles whose
    /// owner vanished or moved without cleanup.
    pub orphaned_replicas: u64,
    /// Extra primary copies beyond one per slot (split-brain residue).
    pub duplicate_primaries: u64,
    /// Replica copies mid-push (`MIGRATION_NOT_COMPLETE` present);
    /// expected to diverge, so excluded from the divergence counts.
    pub migrations_in_flight: u64,
    /// Lease-stamped hot-copy slots (`.kosha_hot` present, DESIGN.md
    /// §16). Hot copies are read caches beyond K, hold only the leased
    /// objects (their digests are *expected* to differ from the full
    /// primary slot), and are governed by their lease — so they are
    /// counted here and excluded from replication, divergence, and
    /// orphan accounting entirely.
    pub hot_copies: u64,
    /// Outstanding `.kosha_lag` markers across all replica slots.
    pub lag_markers: u64,
    /// `replica_lag` journal events across the nodes' journals, and the
    /// age of the oldest retained one. Zero unless
    /// [`AuditReport::enrich_from_journals`] ran (journals are not
    /// reachable over the audit RPC).
    pub lag_events: u64,
    /// Age in nanoseconds of the oldest retained lag event (0 if none).
    pub lag_max_age_nanos: u64,
    /// Up to `max_examples` divergent/orphaned slot names (anchor path
    /// when known, else the slot hash), sorted.
    pub examples: Vec<String>,
}

/// Runs one anti-entropy audit pass: issues `AuditScan` to every peer
/// concurrently (from `from`'s transport address), joins replica copies
/// to primary copies by slot, and scores the divergence. Nodes that fail
/// the RPC (crashed, partitioned) are counted unreachable and their
/// copies simply do not participate — exactly the information a live
/// operator would have.
#[must_use]
pub fn audit_cluster(
    net: &dyn Network,
    from: NodeAddr,
    peers: &[NodeAddr],
    now_nanos: u64,
    opts: &AuditOptions,
) -> AuditReport {
    let req = RpcRequest::new(ServiceId::Kosha, &KoshaRequest::AuditScan);
    let batch: Vec<(NodeAddr, RpcRequest)> = peers.iter().map(|&a| (a, req.clone())).collect();
    let results = net.call_many(from, batch);

    let mut report = AuditReport {
        now_nanos,
        ..AuditReport::default()
    };
    let mut primaries: BTreeMap<String, Vec<AuditCopy>> = BTreeMap::new();
    let mut replicas: BTreeMap<String, Vec<AuditCopy>> = BTreeMap::new();
    for (&addr, result) in peers.iter().zip(results) {
        let entries = match result.and_then(|r| r.decode::<KoshaReplyFrame>()) {
            Ok(KoshaReplyFrame(Ok(KoshaReply::Audit(entries)))) => entries,
            _ => {
                report.nodes_unreachable += 1;
                continue;
            }
        };
        report.nodes_scanned += 1;
        for e in entries {
            if e.replica && e.hot {
                // A leased hot copy is not a replica holder: it must not
                // count toward K (over-replication), must not be judged
                // against the primary's digest (it holds only the leased
                // objects), and is not an orphan (its lease, not a
                // primary join, governs its lifetime — expired ones are
                // collected by replica-slot GC).
                report.hot_copies += 1;
                continue;
            }
            let copy = AuditCopy {
                addr: addr.0,
                path: e.path,
                digest: e.digest,
                bytes: e.bytes,
                lag_marker: e.lag_marker,
                migrating: e.migrating,
            };
            if e.replica {
                replicas.entry(e.slot).or_default().push(copy);
            } else {
                primaries.entry(e.slot).or_default().push(copy);
            }
        }
    }

    let mut examples: Vec<String> = Vec::new();
    let expected = opts
        .replicas
        .min((report.nodes_scanned as usize).saturating_sub(1));
    for (slot, mut prims) in primaries {
        report.objects += 1;
        prims.sort_by_key(|c| c.addr);
        if prims.len() > 1 {
            report.duplicate_primaries += prims.len() as u64 - 1;
        }
        let primary = &prims[0];
        let name = if primary.path.is_empty() {
            slot.clone()
        } else {
            primary.path.clone()
        };
        let mut holders = 0usize;
        let mut divergent_here = false;
        for copy in replicas.remove(&slot).unwrap_or_default() {
            holders += 1;
            report.replica_copies += 1;
            if copy.lag_marker {
                report.lag_markers += 1;
            }
            if copy.migrating {
                report.migrations_in_flight += 1;
                continue;
            }
            if copy.digest != primary.digest {
                report.replica_copies_divergent += 1;
                report.bytes_divergent += primary.bytes.max(copy.bytes);
                divergent_here = true;
            }
        }
        if divergent_here {
            report.objects_divergent += 1;
            examples.push(name.clone());
        }
        if holders < expected {
            report.under_replicated += 1;
        }
        if holders > opts.replicas {
            report.over_replicated += 1;
        }
    }
    // What is left in `replicas` never joined a primary: orphans.
    for (slot, copies) in replicas {
        for copy in &copies {
            report.orphaned_replicas += 1;
            if copy.lag_marker {
                report.lag_markers += 1;
            }
        }
        examples.push(format!("{slot} (orphan)"));
    }
    examples.sort();
    examples.dedup();
    examples.truncate(opts.max_examples);
    report.examples = examples;
    report
}

impl AuditReport {
    /// Folds in what the audit RPC cannot see: `replica_lag` journal
    /// events retained on co-located nodes, mirroring the flight
    /// report's lag panel. Callers that hold the node handles (kosha-top,
    /// the churn driver, tests) use this; a purely remote auditor simply
    /// reports zero journal lag.
    pub fn enrich_from_journals(&mut self, nodes: &[&KoshaNode], now_nanos: u64) {
        for node in nodes {
            for ev in node.obs().journal.of_kind("replica_lag") {
                self.lag_events += 1;
                self.lag_max_age_nanos = self
                    .lag_max_age_nanos
                    .max(now_nanos.saturating_sub(ev.t_nanos));
            }
        }
    }

    /// Publishes the pass into an observability domain: `kosha_audit_*`
    /// gauges in the registry plus flight-recorder points stamped at the
    /// pass time, building the divergence-over-time series the churn
    /// bench and dashboard read.
    pub fn publish(&self, obs: &Obs) {
        let g = |name: &str, v: u64| obs.registry.gauge(name).set(v as i64);
        g("kosha_audit_objects", self.objects);
        g("kosha_audit_objects_divergent", self.objects_divergent);
        g("kosha_audit_bytes_divergent", self.bytes_divergent);
        g("kosha_audit_under_replicated", self.under_replicated);
        g("kosha_audit_over_replicated", self.over_replicated);
        g("kosha_audit_orphaned_replicas", self.orphaned_replicas);
        g("kosha_audit_hot_copies", self.hot_copies);
        g("kosha_audit_lag_markers", self.lag_markers);
        g("kosha_audit_nodes_unreachable", self.nodes_unreachable);
        for (series, v) in [
            ("kosha_audit_objects_divergent", self.objects_divergent),
            ("kosha_audit_bytes_divergent", self.bytes_divergent),
            ("kosha_audit_under_replicated", self.under_replicated),
            ("kosha_audit_lag_markers", self.lag_markers),
        ] {
            obs.recorder.record(series, self.now_nanos, v);
        }
    }

    /// The `kosha-top` audit panel (deterministic, integer math only).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "AUDIT  t={}ns  scanned={}  unreachable={}\n",
            self.now_nanos, self.nodes_scanned, self.nodes_unreachable
        ));
        out.push_str(&format!(
            "objects: {}  divergent: {} ({} copies, {}B at risk)  \
             under-rep: {}  over-rep: {}\n",
            self.objects,
            self.objects_divergent,
            self.replica_copies_divergent,
            self.bytes_divergent,
            self.under_replicated,
            self.over_replicated,
        ));
        out.push_str(&format!(
            "replicas: {} copies, {} orphaned, {} dup primaries, \
             {} migrating, {} lag marker(s), {} hot cop(ies)\n",
            self.replica_copies,
            self.orphaned_replicas,
            self.duplicate_primaries,
            self.migrations_in_flight,
            self.lag_markers,
            self.hot_copies,
        ));
        out.push_str(&format!(
            "lag journal: {} event(s), max age {}ns\n",
            self.lag_events, self.lag_max_age_nanos
        ));
        if !self.examples.is_empty() {
            out.push_str(&format!("attention: {}\n", self.examples.join(", ")));
        }
        out
    }

    /// The pass as one hand-formatted JSON object (no trailing newline),
    /// embedded by the flight report's JSON and `BENCH_churn.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_nanos\": {}, \"nodes_scanned\": {}, \"nodes_unreachable\": {}, \
             \"objects\": {}, \"objects_divergent\": {}, \
             \"replica_copies\": {}, \"replica_copies_divergent\": {}, \
             \"bytes_divergent\": {}, \"under_replicated\": {}, \
             \"over_replicated\": {}, \"orphaned_replicas\": {}, \
             \"duplicate_primaries\": {}, \"migrations_in_flight\": {}, \
             \"hot_copies\": {}, \
             \"lag_markers\": {}, \"lag_events\": {}, \"lag_max_age_nanos\": {}}}",
            self.now_nanos,
            self.nodes_scanned,
            self.nodes_unreachable,
            self.objects,
            self.objects_divergent,
            self.replica_copies,
            self.replica_copies_divergent,
            self.bytes_divergent,
            self.under_replicated,
            self.over_replicated,
            self.orphaned_replicas,
            self.duplicate_primaries,
            self.migrations_in_flight,
            self.hot_copies,
            self.lag_markers,
            self.lag_events,
            self.lag_max_age_nanos,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KoshaConfig, ReplicationMode};
    use crate::control::MigrateItem;
    use crate::mount::KoshaMount;
    use crate::paths::slot_local_path;
    use kosha_id::node_id_from_seed;
    use kosha_rpc::SimNetwork;
    use std::sync::Arc;
    use std::time::Duration;

    fn item(rel: &str, kind: ExportKind, mode: u32) -> ExportItem {
        ExportItem {
            rel_path: rel.into(),
            kind,
            mode,
            uid: 1,
            gid: 1,
        }
    }

    #[test]
    fn digest_ignores_internal_files_and_order() {
        let base = vec![
            item("", ExportKind::Dir, 0o755),
            item("d", ExportKind::Dir, 0o755),
            item("d/f", ExportKind::Bytes(b"hello".to_vec()), 0o644),
        ];
        let mut with_internal = base.clone();
        with_internal.push(item(LAG_MARK, ExportKind::Bytes(b"42".to_vec()), 0o600));
        with_internal.push(item(
            ".kosha_anchor",
            ExportKind::Bytes(b"a".to_vec()),
            0o600,
        ));
        let reordered: Vec<ExportItem> = base.iter().rev().cloned().collect();
        assert_eq!(tree_digest(&base), tree_digest(&with_internal));
        assert_eq!(tree_digest(&base), tree_digest(&reordered));
        let s = slot_summary(&with_internal);
        assert!(s.lag_marker && !s.migrating);
        assert_eq!(s.bytes, 5, "internal payload must not count");
        assert_eq!(s.files, 2);
    }

    #[test]
    fn digest_covers_content_and_file_attrs_not_dir_modes() {
        let base = vec![
            item("", ExportKind::Dir, 0o755),
            item("f", ExportKind::Bytes(b"x".to_vec()), 0o644),
        ];
        let mut dir_mode = base.clone();
        dir_mode[0].mode = 0o700; // replica dirs get fixed modes
        assert_eq!(tree_digest(&base), tree_digest(&dir_mode));
        let mut content = base.clone();
        content[1].kind = ExportKind::Bytes(b"y".to_vec());
        assert_ne!(tree_digest(&base), tree_digest(&content));
        let mut fmode = base.clone();
        fmode[1].mode = 0o600;
        assert_ne!(tree_digest(&base), tree_digest(&fmode));
    }

    fn build_cluster(n: usize, mode: ReplicationMode) -> (Arc<SimNetwork>, Vec<Arc<KoshaNode>>) {
        let net = SimNetwork::new_zero_latency();
        let mut nodes = Vec::new();
        for i in 0..n {
            let addr = NodeAddr(i as u64 + 1);
            let id = node_id_from_seed(&format!("audit-host-{i}"));
            let mut cfg = KoshaConfig::for_tests();
            cfg.distribution_level = 1;
            cfg.replicas = 1;
            cfg.replication_mode = mode;
            let (node, mux) = KoshaNode::build(cfg, id, addr, net.clone() as _);
            net.attach(addr, mux);
            node.join(if i == 0 { None } else { Some(NodeAddr(1)) })
                .expect("join");
            nodes.push(node);
        }
        (net, nodes)
    }

    fn addrs(nodes: &[Arc<KoshaNode>]) -> Vec<NodeAddr> {
        nodes.iter().map(|n| n.addr()).collect()
    }

    fn run_audit(net: &SimNetwork, nodes: &[Arc<KoshaNode>]) -> AuditReport {
        audit_cluster(
            net,
            NodeAddr(1),
            &addrs(nodes),
            net.clock().now().0,
            &AuditOptions {
                replicas: 1,
                max_examples: 8,
            },
        )
    }

    #[test]
    fn settled_cluster_audits_clean() {
        let (net, nodes) = build_cluster(4, ReplicationMode::Sync);
        let mount = KoshaMount::new(net.clone() as _, NodeAddr(1), NodeAddr(1)).expect("mount");
        mount.mkdir_p("/proj").expect("mkdir");
        for i in 0..4 {
            mount
                .write_file(&format!("/proj/f{i}"), &[i as u8; 128])
                .expect("write");
        }
        net.run_pumps();
        let report = run_audit(&net, &nodes);
        assert!(report.objects >= 1, "{report:?}");
        assert_eq!(report.nodes_scanned, 4);
        assert_eq!(report.objects_divergent, 0, "{report:?}");
        assert_eq!(report.bytes_divergent, 0);
        assert_eq!(report.orphaned_replicas, 0, "{report:?}");
        assert_eq!(report.lag_markers, 0);
        // Determinism: a second pass over unchanged state is identical
        // modulo the timestamp.
        let mut again = run_audit(&net, &nodes);
        again.now_nanos = report.now_nanos;
        assert_eq!(again, report);
    }

    #[test]
    fn write_behind_barrier_leaves_no_false_positives() {
        let (net, nodes) = build_cluster(
            4,
            ReplicationMode::WriteBehind {
                queue_ops: 256,
                flush_interval: Duration::from_millis(5),
            },
        );
        let mount = KoshaMount::new(net.clone() as _, NodeAddr(1), NodeAddr(1)).expect("mount");
        mount.mkdir_p("/wb").expect("mkdir");
        for i in 0..6 {
            mount
                .write_file(&format!("/wb/f{i}"), &[i as u8; 64])
                .expect("write");
        }
        // Full flush barrier on every primary, then audit: coalescing
        // must not change the replicated outcome.
        for n in &nodes {
            n.flush_replication();
        }
        net.run_pumps();
        let report = run_audit(&net, &nodes);
        assert_eq!(report.objects_divergent, 0, "{report:?}");
        assert_eq!(report.lag_markers, 0, "{report:?}");
    }

    /// The acceptance fault-injection scenario: dropping one
    /// replica-apply batch makes the audit report exactly that object as
    /// divergent; repair plus a flush returns the count to zero.
    #[test]
    fn dropped_batch_is_reported_then_repair_clears_it() {
        let (net, nodes) = build_cluster(
            4,
            ReplicationMode::WriteBehind {
                queue_ops: 256,
                flush_interval: Duration::from_millis(5),
            },
        );
        let mount = KoshaMount::new(net.clone() as _, NodeAddr(1), NodeAddr(1)).expect("mount");
        mount.mkdir_p("/crash").expect("mkdir");
        mount.write_file("/crash/f", &[1u8; 64]).expect("write");
        for n in &nodes {
            n.flush_replication();
        }
        net.run_pumps();
        assert_eq!(run_audit(&net, &nodes).objects_divergent, 0);

        // Queue a second mutation, then crash the replica target so the
        // flush batch is dropped on the floor.
        mount.write_file("/crash/f", &[2u8; 64]).expect("write");
        let primary = nodes
            .iter()
            .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/crash"))
            .expect("a node hosts /crash");
        let victim = *primary.replica_addrs().first().expect("replica target");
        net.fail_node(victim);
        primary.flush_replication(); // fails: queue dropped, lag journaled
        net.recover_node(victim);

        let report = run_audit(&net, &nodes);
        assert_eq!(
            report.objects_divergent, 1,
            "exactly the dropped object: {report:?}"
        );
        assert_eq!(report.examples, vec!["/crash".to_string()], "{report:?}");
        assert!(report.lag_markers >= 1, "{report:?}");
        assert!(report.bytes_divergent >= 64, "{report:?}");

        // Repair: a full replica push refreshes the stale copy (and
        // clears its marker), after which the audit must be clean again.
        primary.ensure_replicas("/crash");
        for n in &nodes {
            n.flush_replication();
        }
        net.run_pumps();
        let healed = run_audit(&net, &nodes);
        assert_eq!(healed.objects_divergent, 0, "{healed:?}");
        assert_eq!(healed.lag_markers, 0, "{healed:?}");
    }

    /// Leaf-set churn can leave an ex-target holding a replica copy the
    /// owner will never refresh again; it surfaces in the audit as
    /// over-replication (and, once the primary mutates, divergence).
    /// The maintenance GC must drop exactly that copy while every
    /// still-valid copy survives its own GC pass untouched.
    #[test]
    fn stale_replica_copy_is_garbage_collected() {
        let (net, nodes) = build_cluster(4, ReplicationMode::Sync);
        let mount = KoshaMount::new(net.clone() as _, NodeAddr(1), NodeAddr(1)).expect("mount");
        mount.mkdir_p("/gc").expect("mkdir");
        mount.write_file("/gc/f", &[9u8; 96]).expect("write");
        net.run_pumps();
        assert_eq!(run_audit(&net, &nodes).over_replicated, 0);

        let primary = nodes
            .iter()
            .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/gc"))
            .expect("a node hosts /gc");
        let targets = primary.replica_addrs();
        let stray = nodes
            .iter()
            .find(|n| n.addr() != primary.addr() && !targets.contains(&n.addr()))
            .expect("a node that is neither primary nor target");

        // Manufacture the ex-holder state: plant a full copy on the
        // stray node via the same MigrateBatch RPC ensure_replicas uses.
        let slot_path = slot_local_path(Area::Store, "/gc", "/gc");
        let items: Vec<MigrateItem> = primary
            .with_store(|v| v.export_tree(&slot_path))
            .expect("export")
            .into_iter()
            .map(MigrateItem::from)
            .collect();
        let req = RpcRequest::new(
            ServiceId::KoshaReplica,
            &KoshaRequest::MigrateBatch {
                path: "/gc".into(),
                items,
            },
        );
        net.call(primary.addr(), stray.addr(), req).expect("plant");

        let planted = run_audit(&net, &nodes);
        assert!(planted.over_replicated >= 1, "{planted:?}");

        // The valid target keeps its copy; only the stray drops one.
        let holder = nodes
            .iter()
            .find(|n| n.addr() == targets[0])
            .expect("holder");
        assert_eq!(holder.gc_replica_slots(), 0, "valid copy must survive");
        assert_eq!(stray.gc_replica_slots(), 1, "stale copy must be dropped");
        assert_eq!(stray.stats().replica_gc, 1);

        let healed = run_audit(&net, &nodes);
        assert_eq!(healed.over_replicated, 0, "{healed:?}");
        assert_eq!(healed.objects_divergent, 0, "{healed:?}");
    }

    #[test]
    fn crashed_nodes_count_unreachable_and_lag_gauge_tracks_markers() {
        let (net, nodes) = build_cluster(
            4,
            ReplicationMode::WriteBehind {
                queue_ops: 256,
                flush_interval: Duration::from_millis(5),
            },
        );
        let mount = KoshaMount::new(net.clone() as _, NodeAddr(1), NodeAddr(1)).expect("mount");
        mount.mkdir_p("/gauge").expect("mkdir");
        mount.write_file("/gauge/f", b"v1").expect("write");
        // An open write-behind window stamps markers on the targets.
        let primary = nodes
            .iter()
            .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/gauge"))
            .expect("a node hosts /gauge");
        let victim = *primary.replica_addrs().first().expect("replica target");
        let holder = nodes.iter().find(|n| n.addr() == victim).expect("holder");
        assert!(
            holder.refresh_lag_marker_gauge() >= 1,
            "open window must stamp a marker"
        );
        assert!(
            holder
                .obs()
                .registry
                .gauge("kosha_replica_lag_markers")
                .get()
                >= 1
        );
        for n in &nodes {
            n.flush_replication();
        }
        assert_eq!(holder.refresh_lag_marker_gauge(), 0, "flush clears markers");

        net.fail_node(victim);
        let report = run_audit(&net, &nodes);
        assert_eq!(report.nodes_unreachable, 1, "{report:?}");
        assert_eq!(report.nodes_scanned, 3);
        net.recover_node(victim);
    }

    #[test]
    fn report_publish_and_render_are_consistent() {
        let report = AuditReport {
            now_nanos: 42,
            nodes_scanned: 3,
            nodes_unreachable: 1,
            objects: 5,
            objects_divergent: 2,
            replica_copies: 6,
            replica_copies_divergent: 3,
            bytes_divergent: 1024,
            under_replicated: 1,
            over_replicated: 0,
            orphaned_replicas: 1,
            duplicate_primaries: 0,
            migrations_in_flight: 1,
            hot_copies: 2,
            lag_markers: 2,
            lag_events: 0,
            lag_max_age_nanos: 0,
            examples: vec!["/a".into(), "@beef (orphan)".into()],
        };
        let obs = Obs::default();
        report.publish(&obs);
        assert_eq!(obs.registry.gauge("kosha_audit_objects_divergent").get(), 2);
        assert_eq!(obs.registry.gauge("kosha_audit_lag_markers").get(), 2);
        assert_eq!(obs.registry.gauge("kosha_audit_hot_copies").get(), 2);
        assert_eq!(
            obs.recorder.last("kosha_audit_objects_divergent"),
            Some((42, 2))
        );
        let text = report.render();
        assert!(
            text.contains("divergent: 2 (3 copies, 1024B at risk)"),
            "{text}"
        );
        assert!(text.contains("attention: /a, @beef (orphan)"), "{text}");
        assert!(text.contains("2 hot cop(ies)"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"objects_divergent\": 2"), "{json}");
        assert!(json.contains("\"hot_copies\": 2"), "{json}");
        assert!(json.ends_with('}') && json.starts_with('{'));
    }
}
