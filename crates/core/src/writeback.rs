//! Write-behind replication: per-target outbound queues with op
//! coalescing, bounded backpressure, and flush barriers.
//!
//! Under [`crate::config::ReplicationMode::Sync`] the primary mirrors
//! every mutation to all K replica holders before acknowledging (§4.2),
//! putting a full replica fan-out on every WRITE's critical path. This
//! module implements the alternative: the primary acknowledges as soon
//! as its own store is updated and *enqueues* the mirrored op on one
//! bounded queue per replica target. A pump later drains each queue as
//! a single `ReplicaApplyBatch` RPC, after **coalescing** the queued
//! ops (overlapping writes merged, repeated setattrs collapsed, ops
//! against later-removed paths dropped).
//!
//! Three events force a synchronous flush so the consistency window
//! stays bounded:
//!
//! * an NFS **COMMIT** against the virtual mount (clients fsync),
//! * a queue reaching `queue_ops` entries (**backpressure** — the
//!   enqueue that hits the bound flushes that target before returning),
//! * a **leaf-set change** (failover/migration maintenance must not run
//!   against replicas that are behind the primary).
//!
//! While a queue window is open the primary stamps each affected
//! anchor's replica slot with a lag marker (`.kosha_lag`, carrying a
//! lower bound of the queued payload bytes); the flush batch clears it.
//! A node that later *promotes* a still-stamped slot knows the old
//! primary died with unflushed ops and journals `replica_lag` instead
//! of silently serving stale data.

use crate::config::ReplicationMode;
use crate::control::{KoshaRequest, ReplicaOp};
use crate::node::KoshaNode;
use kosha_nfs::messages::WireSetAttr;
use kosha_obs::{Gauge, Histogram, Obs};
use kosha_rpc::{NodeAddr, PumpHook, RpcRequest, ServiceId};
use kosha_vfs::path::parent_and_name;
use kosha_vfs::SetAttr;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One replica target's outbound queue.
#[derive(Default)]
struct TargetQueue {
    /// Queued ops, in primary apply order.
    ops: Vec<ReplicaOp>,
    /// Payload bytes queued (WRITE data only) — the lag lower bound.
    bytes: u64,
    /// Anchors whose replica slot carries a lag marker for this window.
    // lint: allow(L008) bounded by the flush cycle: the whole TargetQueue (marked included) is consumed on flush
    marked: HashSet<String>,
}

/// Per-node write-behind state: the per-target queues plus the metric
/// handles the flush path records into.
pub(crate) struct WritebackState {
    queues: Mutex<HashMap<NodeAddr, TargetQueue>>,
    /// `kosha_writeback_queue_depth`: ops queued across all targets.
    depth: Arc<Gauge>,
    /// `kosha_writeback_flush_batch_size`: ops per flushed target batch.
    flush_batch: Arc<Histogram>,
    /// `kosha_writeback_flush_latency_nanos`: one flush fan-out round.
    flush_latency: Arc<Histogram>,
}

impl WritebackState {
    pub(crate) fn new(obs: &Obs) -> Self {
        let s = WritebackState {
            queues: Mutex::new(HashMap::new()),
            depth: obs.registry.gauge("kosha_writeback_queue_depth"),
            flush_batch: obs.registry.histogram("kosha_writeback_flush_batch_size"),
            flush_latency: obs
                .registry
                .histogram("kosha_writeback_flush_latency_nanos"),
        };
        // Flight-recorder series: queue depth over time is the signal
        // the churn-soak analysis watches for writeback falling behind.
        obs.recorder
            .watch_gauge("kosha_writeback_queue_depth", &s.depth);
        obs.recorder.watch_histogram_pct(
            "kosha_writeback_flush_latency_nanos:p99",
            &s.flush_latency,
            99,
        );
        s
    }
}

/// The virtual path an op mutates, if it is a plain per-object op.
/// Barrier ops (renames, slot removal, lag markers) return `None` and
/// partition the coalescing windows.
fn op_path(op: &ReplicaOp) -> Option<&str> {
    match op {
        ReplicaOp::Mkdir { path }
        | ReplicaOp::Create { path, .. }
        | ReplicaOp::Symlink { path, .. }
        | ReplicaOp::Write { path, .. }
        | ReplicaOp::SetAttr { path, .. }
        | ReplicaOp::Remove { path }
        | ReplicaOp::Rmdir { path } => Some(path),
        ReplicaOp::RemoveSlot { .. }
        | ReplicaOp::Rename { .. }
        | ReplicaOp::RenameSlot { .. }
        | ReplicaOp::LagMark { .. } => None,
    }
}

/// Payload bytes an op would ship (the lag-marker lower bound).
fn payload_bytes(op: &ReplicaOp) -> u64 {
    match op {
        ReplicaOp::Write { data, .. } => data.len() as u64,
        _ => 0,
    }
}

/// Merges two write ranges when they overlap or touch. The later write
/// wins on overlap; `None` means the ranges are disjoint with a gap and
/// must stay separate ops.
fn merge_ranges(a_off: u64, a: &[u8], b_off: u64, b: &[u8]) -> Option<(u64, Vec<u8>)> {
    let a_end = a_off + a.len() as u64;
    let b_end = b_off + b.len() as u64;
    if b_off > a_end || a_off > b_end {
        return None;
    }
    let start = a_off.min(b_off);
    let end = a_end.max(b_end);
    let mut buf = vec![0u8; (end - start) as usize];
    buf[(a_off - start) as usize..(a_end - start) as usize].copy_from_slice(a);
    buf[(b_off - start) as usize..(b_end - start) as usize].copy_from_slice(b);
    Some((start, buf))
}

/// Whether two size-setting setattrs may collapse into the later one.
/// Truncate-then-*extend* must stay two ops: `size=a` then `size=b > a`
/// zeroes bytes `a..b`, while a single `size=b` would preserve whatever
/// the file held there. Shrinking (or touching size only once) is safe.
fn sattr_merge_safe(old: &SetAttr, new: &SetAttr) -> bool {
    match (old.size, new.size) {
        (Some(a), Some(b)) => b <= a,
        _ => true,
    }
}

/// Later-set fields override earlier ones; unset fields pass through.
fn merge_sattr(old: &SetAttr, new: &SetAttr) -> SetAttr {
    SetAttr {
        mode: new.mode.or(old.mode),
        uid: new.uid.or(old.uid),
        gid: new.gid.or(old.gid),
        size: new.size.or(old.size),
        atime: new.atime.or(old.atime),
        mtime: new.mtime.or(old.mtime),
    }
}

/// Index of the last queued op touching `path` in the current window.
fn last_on(out: &[ReplicaOp], window: usize, path: &str) -> Option<usize> {
    (window..out.len())
        .rev()
        .find(|&i| op_path(&out[i]) == Some(path))
}

/// Coalesces a queued op sequence without changing its effect on a
/// replica store. Barrier ops (renames, slot removal, lag markers) split
/// the sequence into windows; within a window:
///
/// * a `Remove`/`Rmdir` on a path drops every earlier op on that path
///   (the object's creation and mutations are dead — replicas absorb
///   `NoEnt` on the surviving remove),
/// * consecutive (per-path) `Write`s with overlapping or adjacent
///   ranges merge into one, later data winning,
/// * consecutive (per-path) `SetAttr`s collapse into one with later
///   fields overriding,
/// * an op identical to one already queued (re-created dirs, replayed
///   creates) is dropped — replica application is idempotent.
///
/// Merged ops move to the window's tail, which is safe exactly because
/// no later op on the same path intervenes (the merge conditions above
/// require it) and ops on distinct paths are independent within a
/// barrier-free window.
#[must_use]
pub fn coalesce(ops: Vec<ReplicaOp>) -> Vec<ReplicaOp> {
    let mut out: Vec<ReplicaOp> = Vec::with_capacity(ops.len());
    let mut window = 0usize;
    for op in ops {
        if op_path(&op).is_none() {
            out.push(op);
            window = out.len();
            continue;
        }
        match op {
            rm @ (ReplicaOp::Remove { .. } | ReplicaOp::Rmdir { .. }) => {
                let path = op_path(&rm).expect("remove ops carry a path").to_string();
                let mut i = window;
                while i < out.len() {
                    if op_path(&out[i]) == Some(path.as_str()) {
                        out.remove(i);
                    } else {
                        i += 1;
                    }
                }
                out.push(rm);
            }
            ReplicaOp::Write { path, offset, data } => {
                let merged = last_on(&out, window, &path).and_then(|i| {
                    if let ReplicaOp::Write {
                        offset: o0,
                        data: d0,
                        ..
                    } = &out[i]
                    {
                        merge_ranges(*o0, d0, offset, &data).map(|m| (i, m))
                    } else {
                        None
                    }
                });
                match merged {
                    Some((i, (off, buf))) => {
                        out.remove(i);
                        out.push(ReplicaOp::Write {
                            path,
                            offset: off,
                            data: buf,
                        });
                    }
                    None => out.push(ReplicaOp::Write { path, offset, data }),
                }
            }
            ReplicaOp::SetAttr { path, sattr } => {
                let merged = last_on(&out, window, &path).and_then(|i| {
                    if let ReplicaOp::SetAttr { sattr: s0, .. } = &out[i] {
                        if sattr_merge_safe(&s0.0, &sattr.0) {
                            Some((i, merge_sattr(&s0.0, &sattr.0)))
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                });
                match merged {
                    Some((i, s)) => {
                        out.remove(i);
                        out.push(ReplicaOp::SetAttr {
                            path,
                            sattr: WireSetAttr(s),
                        });
                    }
                    None => out.push(ReplicaOp::SetAttr { path, sattr }),
                }
            }
            other => {
                // Mkdir / Create / Symlink: drop exact duplicates (their
                // replica application absorbs `Exist` anyway).
                if !out[window..].contains(&other) {
                    out.push(other);
                }
            }
        }
    }
    out
}

impl KoshaNode {
    /// The anchor whose replica slot an op lands in — the slot the lag
    /// marker must stamp. Mirrors the derivation in `apply_replica_op`.
    fn op_anchor(&self, op: &ReplicaOp) -> String {
        match op {
            ReplicaOp::Mkdir { path } => self.covering_anchor(path),
            ReplicaOp::Create { path, .. }
            | ReplicaOp::Symlink { path, .. }
            | ReplicaOp::Write { path, .. }
            | ReplicaOp::SetAttr { path, .. }
            | ReplicaOp::Remove { path }
            | ReplicaOp::Rmdir { path } => match parent_and_name(path) {
                Some((pp, _)) => self.covering_anchor(pp),
                None => "/".to_string(),
            },
            ReplicaOp::Rename { from, .. } => match parent_and_name(from) {
                Some((pp, _)) => self.covering_anchor(pp),
                None => "/".to_string(),
            },
            ReplicaOp::RemoveSlot { anchor } | ReplicaOp::LagMark { anchor, .. } => anchor.clone(),
            ReplicaOp::RenameSlot { from, .. } => from.clone(),
        }
    }

    /// Write-behind enqueue: records `op` on every target's queue and
    /// returns without waiting for any replica RPC. Opening a new
    /// `(target, anchor)` window additionally sends one synchronous lag
    /// marker so a mid-window primary death is detectable; a queue
    /// reaching `queue_ops` flushes its target before returning
    /// (backpressure — the queue is bounded, not the lag).
    pub(crate) fn enqueue_replica_op(&self, op: ReplicaOp, targets: &[NodeAddr], queue_ops: usize) {
        let anchor = self.op_anchor(&op);
        let bytes = payload_bytes(&op);
        let mut to_mark = Vec::new();
        let mut overflowed = Vec::new();
        {
            let mut qs = self.writeback.queues.lock();
            for &t in targets {
                let tq = qs.entry(t).or_default();
                if tq.marked.insert(anchor.clone()) {
                    to_mark.push(t);
                }
                tq.bytes += bytes;
                tq.ops.push(op.clone());
                if tq.ops.len() >= queue_ops.max(1) {
                    overflowed.push(t);
                }
            }
            self.writeback
                .depth
                .set(qs.values().map(|q| q.ops.len() as i64).sum());
        }
        self.stats.writeback_enqueued.add(targets.len() as u64);
        if !to_mark.is_empty() {
            // Marker bytes are a lower bound and must be nonzero (zero
            // is the clear encoding) even for metadata-only windows.
            self.send_lag_marks(&to_mark, &anchor, bytes.max(1));
        }
        if !overflowed.is_empty() {
            self.journal(
                "writeback_overflow",
                format!(
                    "queue reached {queue_ops} ops; flushing {} target(s)",
                    overflowed.len()
                ),
            );
            self.flush_writeback_targets(overflowed);
        }
    }

    /// Stamps `anchor`'s replica slot on each target with a lag marker,
    /// synchronously — the one RPC a window's first op still pays.
    fn send_lag_marks(&self, targets: &[NodeAddr], anchor: &str, bytes: u64) {
        let req = RpcRequest::new(
            ServiceId::KoshaReplica,
            &KoshaRequest::ReplicaApply {
                op: ReplicaOp::LagMark {
                    anchor: anchor.to_string(),
                    bytes,
                },
            },
        );
        let clock = self.net.clock();
        self.obs.tracer.child(
            || "kosha:lagmark".to_string(),
            self.info.addr.0,
            || clock.now().0,
            || {
                let batch = targets.iter().map(|a| (*a, req.clone())).collect();
                let results = self.net.call_many(self.info.addr, batch);
                for (addr, result) in targets.iter().zip(results) {
                    self.note_mirror_result(*addr, crate::primary::mirror_succeeded(result));
                }
            },
        );
    }

    /// Flush barrier: drains every write-behind queue synchronously.
    /// Called on NFS COMMIT, on leaf-set changes (promotion/migration
    /// must never run against lagging replicas), by the transport's
    /// pump, and by tests/benches that need a settled cluster. A no-op
    /// when nothing is queued (and under `Sync` replication, always).
    pub fn flush_replication(&self) {
        let mut targets: Vec<NodeAddr> = self.writeback.queues.lock().keys().copied().collect();
        // Flush in address order: queue-map iteration order must not
        // leak into the batch order `call_many` charges and traces.
        targets.sort();
        if !targets.is_empty() {
            self.flush_writeback_targets(targets);
        }
        // The barrier also settles hot-copy leases (DESIGN.md §16):
        // copies voided by a mutation are re-pushed with fresh payload
        // (or shed, if the object cooled) once the replicas are caught
        // up, so close-to-open semantics hold for hot reads too. A no-op
        // while no hot copies are tracked.
        self.hot_sweep(false);
    }

    /// Drains the given targets' queues: coalesce each, append the lag
    /// clears, ship one `ReplicaApplyBatch` per target concurrently. A
    /// target that fails the batch has its queue contents dropped — the
    /// divergence is journaled as `replica_lag` with the dropped byte
    /// count (and the slot keeps its marker, so a later promotion of
    /// that stale copy also reports the lag).
    pub(crate) fn flush_writeback_targets(&self, targets: Vec<NodeAddr>) {
        let mut batches: Vec<(NodeAddr, Vec<ReplicaOp>, u64)> = Vec::new();
        {
            let mut qs = self.writeback.queues.lock();
            for t in targets {
                let Some(tq) = qs.remove(&t) else { continue };
                if tq.ops.is_empty() && tq.marked.is_empty() {
                    continue;
                }
                let in_len = tq.ops.len();
                let mut ops = coalesce(tq.ops);
                self.stats
                    .writeback_coalesced_ops
                    .add((in_len - ops.len()) as u64);
                let mut marked: Vec<String> = tq.marked.into_iter().collect();
                marked.sort();
                for anchor in marked {
                    ops.push(ReplicaOp::LagMark { anchor, bytes: 0 });
                }
                batches.push((t, ops, tq.bytes));
            }
            self.writeback
                .depth
                .set(qs.values().map(|q| q.ops.len() as i64).sum());
        }
        if batches.is_empty() {
            return;
        }
        let mut shipped = 0u64;
        for (_, ops, _) in &batches {
            self.writeback.flush_batch.record(ops.len() as u64);
            shipped += ops.len() as u64;
        }
        self.stats.writeback_flushed_ops.add(shipped);
        self.stats.writeback_flushes.inc();
        let clock = self.net.clock();
        self.obs.tracer.child(
            || "kosha:flush".to_string(),
            self.info.addr.0,
            || clock.now().0,
            || {
                let reqs = batches
                    .iter()
                    .map(|(t, ops, _)| {
                        (
                            *t,
                            RpcRequest::new(
                                ServiceId::KoshaReplica,
                                &KoshaRequest::ReplicaApplyBatch { ops: ops.clone() },
                            ),
                        )
                    })
                    .collect();
                let t0 = clock.now();
                let results = self.net.call_many(self.info.addr, reqs);
                self.writeback
                    .flush_latency
                    .record(clock.now().since_nanos(t0));
                for ((t, _, bytes), result) in batches.iter().zip(results) {
                    if !crate::primary::mirror_succeeded(result) {
                        self.stats.replica_lag_events.inc();
                        self.journal(
                            "replica_lag",
                            format!(
                                "flush to node {} failed; {bytes} queued payload bytes dropped",
                                t.0
                            ),
                        );
                        self.note_mirror_result(*t, false);
                    }
                }
            },
        );
        self.journal(
            "writeback_flush",
            format!("flushed {shipped} op(s) to {} target(s)", batches.len()),
        );
    }

    /// Whether this node replicates in write-behind mode.
    pub(crate) fn write_behind_queue_ops(&self) -> Option<usize> {
        match self.cfg.replication_mode {
            ReplicationMode::Sync => None,
            ReplicationMode::WriteBehind { queue_ops, .. } => Some(queue_ops),
        }
    }
}

impl PumpHook for KoshaNode {
    // lint: allow(L005) timer-driven flush: runs on the pump thread outside any handler mailbox; mirror/lease fan-out here is the write-behind design
    fn pump(&self) {
        self.flush_replication();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(path: &str, offset: u64, data: &[u8]) -> ReplicaOp {
        ReplicaOp::Write {
            path: path.into(),
            offset,
            data: data.to_vec(),
        }
    }

    fn sa(path: &str, sattr: SetAttr) -> ReplicaOp {
        ReplicaOp::SetAttr {
            path: path.into(),
            sattr: WireSetAttr(sattr),
        }
    }

    #[test]
    fn sequential_writes_merge_into_one() {
        let ops = vec![
            w("/a/f", 0, b"aa"),
            w("/a/f", 2, b"bb"),
            w("/a/f", 4, b"cc"),
        ];
        let out = coalesce(ops);
        assert_eq!(out, vec![w("/a/f", 0, b"aabbcc")]);
    }

    #[test]
    fn overlapping_write_later_data_wins() {
        let out = coalesce(vec![w("/a/f", 0, b"xxxx"), w("/a/f", 2, b"YY")]);
        assert_eq!(out, vec![w("/a/f", 0, b"xxYY")]);
    }

    #[test]
    fn gapped_writes_stay_separate() {
        let ops = vec![w("/a/f", 0, b"aa"), w("/a/f", 10, b"bb")];
        assert_eq!(coalesce(ops.clone()), ops);
    }

    #[test]
    fn writes_to_distinct_files_do_not_merge() {
        let ops = vec![w("/a/f", 0, b"aa"), w("/a/g", 2, b"bb")];
        assert_eq!(coalesce(ops.clone()), ops);
    }

    #[test]
    fn setattrs_collapse_to_last_writer_per_field() {
        let out = coalesce(vec![
            sa(
                "/a/f",
                SetAttr {
                    mode: Some(0o600),
                    size: Some(4),
                    ..Default::default()
                },
            ),
            sa(
                "/a/f",
                SetAttr {
                    mode: Some(0o644),
                    ..Default::default()
                },
            ),
        ]);
        assert_eq!(
            out,
            vec![sa(
                "/a/f",
                SetAttr {
                    mode: Some(0o644),
                    size: Some(4),
                    ..Default::default()
                }
            )]
        );
    }

    #[test]
    fn truncate_then_extend_does_not_merge() {
        // size=2 then size=5 zeroes bytes 2..5; one size=5 would keep
        // stale data there. Shrinks may collapse, extends may not.
        let shrink = |n| {
            sa(
                "/a/f",
                SetAttr {
                    size: Some(n),
                    ..Default::default()
                },
            )
        };
        let ops = vec![shrink(2), shrink(5)];
        assert_eq!(coalesce(ops.clone()), ops);
        assert_eq!(coalesce(vec![shrink(5), shrink(2)]), vec![shrink(2)]);
    }

    #[test]
    fn setattr_does_not_merge_across_a_write() {
        // SetAttr{size} then Write then SetAttr: the truncate must stay
        // before the write, so no merge happens.
        let ops = vec![
            sa(
                "/a/f",
                SetAttr {
                    size: Some(0),
                    ..Default::default()
                },
            ),
            w("/a/f", 0, b"zz"),
            sa(
                "/a/f",
                SetAttr {
                    mode: Some(0o600),
                    ..Default::default()
                },
            ),
        ];
        assert_eq!(coalesce(ops.clone()), ops);
    }

    #[test]
    fn remove_drops_the_dead_objects_history() {
        let out = coalesce(vec![
            ReplicaOp::Create {
                path: "/a/f".into(),
                mode: 0o644,
                uid: 0,
                gid: 0,
                size: None,
            },
            w("/a/f", 0, b"doomed"),
            w("/a/g", 0, b"kept"),
            ReplicaOp::Remove {
                path: "/a/f".into(),
            },
        ]);
        assert_eq!(
            out,
            vec![
                w("/a/g", 0, b"kept"),
                ReplicaOp::Remove {
                    path: "/a/f".into()
                }
            ]
        );
    }

    #[test]
    fn rmdir_keeps_its_kind() {
        let mk = ReplicaOp::Mkdir {
            path: "/a/d".into(),
        };
        let rm = ReplicaOp::Rmdir {
            path: "/a/d".into(),
        };
        assert_eq!(coalesce(vec![mk, rm.clone()]), vec![rm]);
    }

    #[test]
    fn barriers_partition_windows() {
        // A rename between two writes to the same path prevents merging.
        let ops = vec![
            w("/a/f", 0, b"aa"),
            ReplicaOp::Rename {
                from: "/a/f".into(),
                to: "/a/f2".into(),
            },
            w("/a/f", 0, b"bb"),
        ];
        assert_eq!(coalesce(ops.clone()), ops);
    }

    #[test]
    fn duplicate_creates_dedup() {
        let mk = ReplicaOp::Mkdir {
            path: "/a/d".into(),
        };
        let out = coalesce(vec![mk.clone(), w("/a/f", 0, b"x"), mk.clone()]);
        assert_eq!(out, vec![mk, w("/a/f", 0, b"x")]);
    }

    #[test]
    fn create_plus_writes_fold_to_create_plus_one_write() {
        let c = ReplicaOp::Create {
            path: "/a/f".into(),
            mode: 0o644,
            uid: 1,
            gid: 1,
            size: None,
        };
        let out = coalesce(vec![c.clone(), w("/a/f", 0, b"ab"), w("/a/f", 2, b"cd")]);
        assert_eq!(out, vec![c, w("/a/f", 0, b"abcd")]);
    }
}
