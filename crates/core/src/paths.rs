//! Path semantics of the virtual `/kosha` namespace: anchors, store
//! mapping, and internal (metadata) names.
//!
//! A virtual path like `/alice/src/main.rs` is interpreted relative to the
//! `/kosha` mount point. Its **anchor** is the deepest distributed
//! ancestor directory: with distribution level `L`, a directory at depth
//! `d ≤ L` anchors itself, anything deeper (and every file) anchors at its
//! depth-`L` ancestor — or, for top-level files, at the virtual root,
//! which behaves as an anchor with the fixed routing name `"/"`.

use kosha_id::Sha1;
use kosha_vfs::path::{depth, split_path};
use kosha_vfs::VfsError;

/// Area of a node's local store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Area {
    /// Primary data: `/kosha_store/...`.
    Store,
    /// Replica shadow area: `/kosha_replica/...` (inaccessible to users,
    /// §4.2: "The replicas are inaccessible to the local users").
    Replica,
}

impl Area {
    /// The top-level directory name for this area.
    #[must_use]
    pub fn dir_name(self) -> &'static str {
        match self {
            Area::Store => "kosha_store",
            Area::Replica => "kosha_replica",
        }
    }

    /// Maps a virtual path to this node-local area path.
    #[must_use]
    pub fn local_path(self, vpath: &str) -> String {
        if vpath == "/" {
            format!("/{}", self.dir_name())
        } else {
            format!("/{}{}", self.dir_name(), vpath)
        }
    }
}

/// Name of the per-anchor metadata file storing the anchor's routing name
/// (written at the anchor's root; lets a promoted replica recover the
/// salted key it must answer for).
pub const ANCHOR_META: &str = ".kosha_anchor";

/// Name of the migration-in-progress flag file (§4.4).
pub const MIGRATION_FLAG: &str = "MIGRATION_NOT_COMPLETE";

/// Name of the replica-lag marker a write-behind primary drops at a
/// replica slot's root while queued mutations have not yet been flushed
/// to that replica. The file holds the decimal count of payload bytes
/// queued when the marker was written (a lower bound on the lag); a
/// flushed batch clears it, and a promotion that finds one journals a
/// `replica_lag` event instead of silently serving stale data
/// (DESIGN.md §11).
pub const LAG_MARK: &str = ".kosha_lag";

/// Name of the hot-copy lease marker a primary stamps at a replica
/// slot's root when it pushes heat-driven cached copies there. The file
/// holds one line per leased virtual path, sorted: the path, the
/// primary's mutation sequence the copy reflects, and the lease expiry
/// in virtual nanoseconds (DESIGN.md §16). Its presence distinguishes a
/// leased hot copy from a stale over-replicated slot in audits and GC.
pub const HOT_MARK: &str = ".kosha_hot";

/// True for names Kosha manages internally and hides from directory
/// listings.
#[must_use]
pub fn is_internal_name(name: &str) -> bool {
    name == ANCHOR_META || name == MIGRATION_FLAG || name == LAG_MARK || name == HOT_MARK
}

/// The routing name of the virtual root anchor.
pub const ROOT_ANCHOR: &str = "/";

/// The store directory name ("slot") under which an anchor's subtree is
/// materialized on its home node: `@` + 16 hex digits of
/// `SHA1(anchor virtual path)`.
///
/// **Deviation from the paper**: Figure 3 materializes anchors under
/// their full plain path (`/kosha_store/…/sdir2/sdirm`). That scheme is
/// ambiguous when one node both *hosts the listing* of a directory (which
/// must contain a special link for a distributed child) and *stores the
/// hierarchy* of a deeper anchor (which needs a real directory of the
/// same name). Keying each anchor's materialization by a hash of its
/// virtual path removes the collision while preserving every observable
/// behavior (placement, links, redirection, migration); DESIGN.md
/// records this substitution.
#[must_use]
pub fn anchor_slot(anchor_path: &str) -> String {
    let digest = Sha1::digest(anchor_path.as_bytes());
    let hex = Sha1::hex(&digest);
    format!("@{}", &hex[..16])
}

/// The node-local path of an anchor-relative object: `area/slot` for the
/// anchor root, `area/slot/rel` below it. `vpath` must be the anchor path
/// itself or a descendant.
#[must_use]
pub fn slot_local_path(area: Area, anchor_path: &str, vpath: &str) -> String {
    let slot = anchor_slot(anchor_path);
    let rel = if anchor_path == "/" {
        vpath.strip_prefix('/').unwrap_or("")
    } else {
        vpath
            .strip_prefix(anchor_path)
            .map(|r| r.strip_prefix('/').unwrap_or(r))
            .unwrap_or("")
    };
    if rel.is_empty() {
        format!("/{}/{}", area.dir_name(), slot)
    } else {
        format!("/{}/{}/{}", area.dir_name(), slot, rel)
    }
}

/// The anchor (directory whose name is hashed for placement) responsible
/// for the *listing* of directory `path`: `path` itself if it is the root
/// or lies within the distribution levels, otherwise its depth-`level`
/// ancestor.
pub fn anchor_dir_of(path: &str, level: usize) -> Result<String, VfsError> {
    if path == "/" {
        return Ok("/".to_string());
    }
    let comps = split_path(path)?;
    let d = comps.len();
    if d <= level {
        return Ok(path.to_string());
    }
    let mut s = String::new();
    for c in comps.iter().take(level) {
        s.push('/');
        s.push_str(c);
    }
    if s.is_empty() {
        s.push('/');
    }
    Ok(s)
}

/// True if a directory at `path` is itself distributed (hashed to its own
/// node): depth within the distribution level.
#[must_use]
pub fn is_distributed_dir(path: &str, level: usize) -> bool {
    path != "/" && depth(path) <= level
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_paths() {
        assert_eq!(Area::Store.local_path("/"), "/kosha_store");
        assert_eq!(Area::Store.local_path("/a/b"), "/kosha_store/a/b");
        assert_eq!(Area::Replica.local_path("/a"), "/kosha_replica/a");
    }

    #[test]
    fn anchors_by_level() {
        assert_eq!(anchor_dir_of("/", 1).unwrap(), "/");
        assert_eq!(anchor_dir_of("/a", 1).unwrap(), "/a");
        assert_eq!(anchor_dir_of("/a/b", 1).unwrap(), "/a");
        assert_eq!(anchor_dir_of("/a/b/c", 1).unwrap(), "/a");
        assert_eq!(anchor_dir_of("/a/b", 2).unwrap(), "/a/b");
        assert_eq!(anchor_dir_of("/a/b/c", 2).unwrap(), "/a/b");
        assert_eq!(anchor_dir_of("/a", 4).unwrap(), "/a");
    }

    #[test]
    fn distributed_dir_test() {
        assert!(!is_distributed_dir("/", 1));
        assert!(is_distributed_dir("/a", 1));
        assert!(!is_distributed_dir("/a/b", 1));
        assert!(is_distributed_dir("/a/b", 2));
    }

    #[test]
    fn slots_are_stable_and_distinct() {
        assert_eq!(anchor_slot("/a"), anchor_slot("/a"));
        assert_ne!(anchor_slot("/a"), anchor_slot("/b"));
        assert_ne!(anchor_slot("/u1/src"), anchor_slot("/u2/src")); // same name, different path
        assert!(anchor_slot("/").starts_with('@'));
        assert_eq!(anchor_slot("/x").len(), 17);
    }

    #[test]
    fn slot_local_paths() {
        let slot = anchor_slot("/a");
        assert_eq!(
            slot_local_path(Area::Store, "/a", "/a"),
            format!("/kosha_store/{slot}")
        );
        assert_eq!(
            slot_local_path(Area::Store, "/a", "/a/b/c"),
            format!("/kosha_store/{slot}/b/c")
        );
        let root_slot = anchor_slot("/");
        assert_eq!(
            slot_local_path(Area::Replica, "/", "/"),
            format!("/kosha_replica/{root_slot}")
        );
        assert_eq!(
            slot_local_path(Area::Replica, "/", "/f.txt"),
            format!("/kosha_replica/{root_slot}/f.txt")
        );
    }

    #[test]
    fn internal_names_recognized() {
        assert!(is_internal_name(".kosha_anchor"));
        assert!(is_internal_name("MIGRATION_NOT_COMPLETE"));
        assert!(is_internal_name(".kosha_lag"));
        assert!(is_internal_name(".kosha_hot"));
        assert!(!is_internal_name("data.txt"));
    }
}
