//! End-to-end tests of the full Kosha stack on a simulated cluster:
//! overlay + NFS stores + koshad interposition + replication + failover.

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_nfs::{NfsError, NfsStatus};
use kosha_rpc::{Clock, LatencyModel, Network, NodeAddr, SimNetwork};
use kosha_vfs::FileType;
use std::sync::Arc;

struct Cluster {
    net: Arc<SimNetwork>,
    nodes: Vec<Arc<KoshaNode>>,
}

fn build_cluster(n: usize, cfg: KoshaConfig) -> Cluster {
    build_cluster_on(SimNetwork::new_zero_latency(), n, cfg)
}

fn build_cluster_on(net: Arc<SimNetwork>, n: usize, cfg: KoshaConfig) -> Cluster {
    let mut nodes = Vec::new();
    for i in 0..n {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i as u64),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .expect("join");
        nodes.push(node);
    }
    Cluster { net, nodes }
}

fn mount(c: &Cluster, node: usize) -> KoshaMount {
    KoshaMount::new(
        c.net.clone() as Arc<dyn Network>,
        c.nodes[node].addr(),
        c.nodes[node].addr(),
    )
    .expect("mount")
}

#[test]
fn single_node_basic_io() {
    let c = build_cluster(1, KoshaConfig::for_tests());
    let m = mount(&c, 0);
    m.mkdir_p("/alice/docs").unwrap();
    m.write_file("/alice/docs/hello.txt", b"hello kosha")
        .unwrap();
    assert_eq!(
        m.read_file("/alice/docs/hello.txt").unwrap(),
        b"hello kosha"
    );
    let names: Vec<String> = m
        .readdir("/alice/docs")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["hello.txt"]);
}

#[test]
fn files_visible_from_every_node() {
    // Location transparency: any node's mount sees the same namespace.
    let c = build_cluster(6, KoshaConfig::for_tests());
    let m0 = mount(&c, 0);
    m0.mkdir_p("/proj/src").unwrap();
    m0.write_file("/proj/src/main.rs", b"fn main() {}").unwrap();
    for i in 1..6 {
        let m = mount(&c, i);
        assert_eq!(
            m.read_file("/proj/src/main.rs").unwrap(),
            b"fn main() {}",
            "node {i} sees different content"
        );
    }
    // Writes from another node are visible everywhere (same instance:
    // "every user sees the same instance of a file", §4.1.1).
    let m3 = mount(&c, 3);
    m3.write_file("/proj/src/main.rs", b"fn main() { /*v2*/ }")
        .unwrap();
    assert_eq!(
        m0.read_file("/proj/src/main.rs").unwrap(),
        b"fn main() { /*v2*/ }"
    );
}

#[test]
fn directories_distribute_across_nodes() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    let c = build_cluster(8, cfg);
    let m = mount(&c, 0);
    // Many top-level directories: they must not all land on one node.
    for i in 0..24 {
        m.mkdir_p(&format!("/user{i}")).unwrap();
        m.write_file(&format!("/user{i}/f.dat"), &[i as u8; 64])
            .unwrap();
    }
    let mut hosts = 0;
    for node in &c.nodes {
        let anchors = node.hosted_anchors();
        // Ignore the root anchor.
        if anchors.iter().any(|(p, _)| p != "/") {
            hosts += 1;
        }
    }
    assert!(
        hosts >= 4,
        "24 directories landed on only {hosts} of 8 nodes"
    );
    // All contents still resolve.
    for i in 0..24 {
        assert_eq!(
            m.read_file(&format!("/user{i}/f.dat")).unwrap(),
            vec![i as u8; 64]
        );
    }
}

#[test]
fn distribution_level_controls_granularity() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 2;
    cfg.replicas = 0;
    let c = build_cluster(8, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/home").unwrap();
    for u in 0..12 {
        m.mkdir_p(&format!("/home/user{u}/inner")).unwrap();
        m.write_file(&format!("/home/user{u}/inner/file"), b"x")
            .unwrap();
    }
    // Level-2 dirs (/home/userN) are anchors spread across nodes; the
    // level-3 dirs (inner) live with their parents.
    let mut anchor_count = 0;
    for node in &c.nodes {
        for (p, _) in node.hosted_anchors() {
            if p.starts_with("/home/user") {
                anchor_count += 1;
                assert_eq!(p.matches('/').count(), 2, "anchor {p} at wrong depth");
            }
        }
    }
    assert_eq!(anchor_count, 12);
}

#[test]
fn same_directory_keeps_files_together() {
    // §3.1: "files in the same directory are by default stored in the
    // same node as that directory."
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    let c = build_cluster(6, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/data").unwrap();
    for i in 0..10 {
        m.write_file(&format!("/data/f{i}"), &[1u8; 128]).unwrap();
    }
    // Exactly one node hosts the /data anchor and all ten files.
    let hosts: Vec<_> = c
        .nodes
        .iter()
        .filter(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/data"))
        .collect();
    assert_eq!(hosts.len(), 1);
    let host = hosts[0];
    let mut file_count = 0;
    host.with_store(|v| {
        v.walk(|p, attr| {
            if p.starts_with("/kosha_store") && attr.ftype == FileType::Regular && p.contains("/f")
            {
                file_count += 1;
            }
        })
    });
    assert!(file_count >= 10, "host stores only {file_count} files");
}

#[test]
fn special_links_mark_remote_directories() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    let c = build_cluster(4, cfg);
    let m = mount(&c, 0);
    for i in 0..8 {
        m.mkdir_p(&format!("/dir{i}")).unwrap();
    }
    // Root listing shows all eight as directories (links are invisible
    // to users).
    let entries = m.readdir("/").unwrap();
    assert_eq!(entries.len(), 8);
    for e in &entries {
        assert_eq!(e.ftype, FileType::Directory, "{} not a dir", e.name);
    }
    // On the root owner's store, remote children are special links.
    let root_host = c
        .nodes
        .iter()
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/"))
        .expect("root hosted somewhere");
    let mut links = 0;
    root_host.with_store(|v| {
        v.walk(|p, attr| {
            if p.starts_with("/kosha_store") && attr.ftype == FileType::Symlink {
                links += 1;
            }
        })
    });
    assert!(links > 0, "no special links in the root listing");
}

#[test]
fn capacity_redirection_spills_to_other_nodes() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    cfg.redirect_attempts = 8;
    cfg.redirect_utilization = 0.5;
    cfg.contributed_bytes = 8192; // tiny stores force redirection
    let c = build_cluster(6, cfg);
    let m = mount(&c, 0);
    // Fill nodes with directories until redirection must kick in: create
    // many dirs with a file each; with 8 KiB stores and 3 KiB files,
    // nodes fill after ~1 directory.
    let mut created = 0;
    for i in 0..12 {
        let dir = format!("/d{i}");
        if m.mkdir_p(&dir).is_err() {
            continue;
        }
        if m.write_file(&format!("{dir}/blob"), &[9u8; 3000]).is_ok() {
            created += 1;
        }
    }
    assert!(created >= 6, "only {created} directories fit");
    // At least one special link must carry a salt (a '#' in its target).
    let mut salted = 0;
    for node in &c.nodes {
        node.with_store(|v| {
            v.walk(|p, attr| {
                if attr.ftype == FileType::Symlink && p.starts_with("/kosha_store") {
                    if let Ok((id, _)) = v.resolve(p) {
                        if let Ok(t) = v.readlink(id) {
                            if t.contains('#') {
                                salted += 1;
                            }
                        }
                    }
                }
            })
        });
    }
    assert!(salted > 0, "no salted redirection links found");
}

#[test]
fn rename_within_directory() {
    let c = build_cluster(4, KoshaConfig::for_tests());
    let m = mount(&c, 0);
    m.mkdir_p("/work").unwrap();
    m.write_file("/work/draft.txt", b"v1").unwrap();
    m.rename("/work/draft.txt", "/work/final.txt").unwrap();
    assert!(!m.exists("/work/draft.txt"));
    assert_eq!(m.read_file("/work/final.txt").unwrap(), b"v1");
}

#[test]
fn rename_distributed_directory_keeps_contents() {
    // §4.1.4: renaming a redirected directory renames the link and the
    // stored directory, leaving the link target (routing name) alone.
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    let c = build_cluster(5, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/olddir").unwrap();
    m.write_file("/olddir/keep.txt", b"payload").unwrap();
    m.rename("/olddir", "/newdir").unwrap();
    assert!(!m.exists("/olddir"));
    assert_eq!(m.read_file("/newdir/keep.txt").unwrap(), b"payload");
    // Another node's fresh mount agrees.
    let m2 = mount(&c, 2);
    assert_eq!(m2.read_file("/newdir/keep.txt").unwrap(), b"payload");
}

#[test]
fn cross_node_file_rename_copies() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    let c = build_cluster(6, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/srcdir").unwrap();
    m.mkdir_p("/dstdir").unwrap();
    m.write_file("/srcdir/f.bin", &[7u8; 10_000]).unwrap();
    m.rename("/srcdir/f.bin", "/dstdir/g.bin").unwrap();
    assert!(!m.exists("/srcdir/f.bin"));
    assert_eq!(m.read_file("/dstdir/g.bin").unwrap(), vec![7u8; 10_000]);
}

#[test]
fn rmdir_distributed_directory() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    let c = build_cluster(4, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/temp").unwrap();
    m.write_file("/temp/x", b"1").unwrap();
    // Non-empty: refused.
    assert!(matches!(
        m.rmdir("/temp"),
        Err(NfsError::Status(NfsStatus::NotEmpty))
    ));
    m.remove("/temp/x").unwrap();
    m.rmdir("/temp").unwrap();
    assert!(!m.exists("/temp"));
    // The anchor record is gone everywhere.
    for node in &c.nodes {
        assert!(
            !node.hosted_anchors().iter().any(|(p, _)| p == "/temp"),
            "stale anchor on {}",
            node.addr()
        );
    }
    // Recreating the name works.
    m.mkdir_p("/temp").unwrap();
    assert!(m.exists("/temp"));
}

#[test]
fn replication_places_copies_on_neighbors() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 2;
    let c = build_cluster(6, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/rep").unwrap();
    m.write_file("/rep/data.bin", &[5u8; 4096]).unwrap();
    // Count nodes holding the bytes in their replica area.
    let mut replica_holders = 0;
    for node in &c.nodes {
        let mut found = false;
        node.with_store(|v| {
            v.walk(|p, attr| {
                if p.starts_with("/kosha_replica") && p.ends_with("data.bin") && attr.size == 4096 {
                    found = true;
                }
            })
        });
        if found {
            replica_holders += 1;
        }
    }
    assert!(
        replica_holders >= 2,
        "only {replica_holders} replica holders for K=2"
    );
}

#[test]
fn failover_to_replica_is_transparent() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 2;
    let c = build_cluster(6, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/ha").unwrap();
    m.write_file("/ha/precious.txt", b"do not lose me").unwrap();

    // Find and kill the primary (but never our own gateway node 0).
    let primary = c
        .nodes
        .iter()
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/ha"))
        .expect("anchor hosted");
    let victim = primary.addr();
    if victim == c.nodes[0].addr() {
        // Re-target: use a mount on another node so the gateway survives.
        let m2 = mount(&c, 1);
        c.net.fail_node(victim);
        assert_eq!(
            m2.read_file("/ha/precious.txt").unwrap(),
            b"do not lose me",
            "failover read failed"
        );
        return;
    }
    c.net.fail_node(victim);
    // The read must transparently land on a promoted replica (§4.4).
    assert_eq!(
        m.read_file("/ha/precious.txt").unwrap(),
        b"do not lose me",
        "failover read failed"
    );
    // Writes keep working after failover.
    m.write_file("/ha/precious.txt", b"updated after failure")
        .unwrap();
    assert_eq!(
        m.read_file("/ha/precious.txt").unwrap(),
        b"updated after failure"
    );
}

#[test]
fn migration_follows_key_space_on_join() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 1;
    let c = build_cluster(3, cfg.clone());
    let m = mount(&c, 0);
    for i in 0..9 {
        m.mkdir_p(&format!("/mig{i}")).unwrap();
        m.write_file(&format!("/mig{i}/payload"), &[i as u8; 256])
            .unwrap();
    }
    // Add five more nodes: anchors whose keys now map to the newcomers
    // must move (§4.3.1: "a new node always has the files for which it
    // is the primary node").
    let mut new_nodes = Vec::new();
    for i in 3..8 {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i as u64),
            c.net.clone() as Arc<dyn Network>,
        );
        c.net.attach(node.addr(), mux);
        node.join(Some(NodeAddr(0))).unwrap();
        new_nodes.push(node);
    }
    // Every anchor is hosted by the node its key routes to.
    let all: Vec<&Arc<KoshaNode>> = c.nodes.iter().chain(new_nodes.iter()).collect();
    for node in &all {
        for (path, routing) in node.hosted_anchors() {
            let owner = node
                .pastry()
                .route_owner(kosha_id::dir_key(&routing))
                .unwrap();
            assert_eq!(
                owner.id,
                node.id(),
                "{path} hosted on {} but owned by {}",
                node.addr(),
                owner.addr
            );
        }
    }
    // Data intact from any mount.
    let m_new = KoshaMount::new(
        c.net.clone() as Arc<dyn Network>,
        new_nodes[0].addr(),
        new_nodes[0].addr(),
    )
    .unwrap();
    for i in 0..9 {
        assert_eq!(
            m_new.read_file(&format!("/mig{i}/payload")).unwrap(),
            vec![i as u8; 256]
        );
    }
}

#[test]
fn setattr_truncate_and_mode() {
    let c = build_cluster(3, KoshaConfig::for_tests());
    let m = mount(&c, 0);
    m.mkdir_p("/attr").unwrap();
    m.write_file("/attr/f", &[1u8; 100]).unwrap();
    let a = m
        .setattr(
            "/attr/f",
            kosha_vfs::SetAttr {
                size: Some(10),
                mode: Some(0o600),
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(a.size, 10);
    assert_eq!(a.mode, 0o600);
    assert_eq!(m.read_file("/attr/f").unwrap().len(), 10);
}

#[test]
fn user_symlinks_survive() {
    let c = build_cluster(3, KoshaConfig::for_tests());
    let m = mount(&c, 0);
    m.mkdir_p("/links").unwrap();
    m.write_file("/links/real.txt", b"real").unwrap();
    m.symlink("/links/alias", "real.txt").unwrap();
    assert_eq!(m.readlink("/links/alias").unwrap(), "real.txt");
    let entries = m.readdir("/links").unwrap();
    let link = entries.iter().find(|e| e.name == "alias").unwrap();
    assert_eq!(link.ftype, FileType::Symlink);
}

#[test]
fn deep_trees_below_distribution_level() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    let c = build_cluster(4, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/deep/a/b/c/d/e").unwrap();
    m.write_file("/deep/a/b/c/d/e/leaf.txt", b"deep payload")
        .unwrap();
    assert_eq!(
        m.read_file("/deep/a/b/c/d/e/leaf.txt").unwrap(),
        b"deep payload"
    );
    // The whole subtree lives with the /deep anchor on one node.
    let hosts: Vec<_> = c
        .nodes
        .iter()
        .filter(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/deep"))
        .collect();
    assert_eq!(hosts.len(), 1);
}

#[test]
fn remove_tree_cleans_distributed_subtrees() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 2;
    cfg.replicas = 1;
    let c = build_cluster(5, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/prj/sub1/x").unwrap();
    m.mkdir_p("/prj/sub2").unwrap();
    m.write_file("/prj/sub1/x/f1", b"1").unwrap();
    m.write_file("/prj/sub2/f2", b"2").unwrap();
    m.remove_tree("/prj").unwrap();
    assert!(!m.exists("/prj"));
    for node in &c.nodes {
        for (p, _) in node.hosted_anchors() {
            assert!(!p.starts_with("/prj"), "stale anchor {p}");
        }
    }
}

#[test]
fn duplicate_names_rejected() {
    let c = build_cluster(3, KoshaConfig::for_tests());
    let m = mount(&c, 0);
    m.mkdir_p("/dup").unwrap();
    assert!(matches!(
        m.mkdir("/dup"),
        Err(NfsError::Status(NfsStatus::Exist))
    ));
    m.write_file("/dup/f", b"x").unwrap();
    assert!(matches!(
        m.create("/dup/f"),
        Err(NfsError::Status(NfsStatus::Exist))
    ));
}

#[test]
fn stats_record_failover_promotion_and_migration() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 2;
    let c = build_cluster(6, cfg.clone());
    let m = mount(&c, 0);
    m.mkdir_p("/obs").unwrap();
    m.write_file("/obs/f", b"watch me").unwrap();

    // Baseline: fs ops counted on the gateway.
    assert!(c.nodes[0].stats().fs_ops > 0);
    // Replication pushed copies somewhere.
    let pushes: u64 = c.nodes.iter().map(|n| n.stats().replica_pushes).sum();
    assert!(pushes > 0, "no replica pushes recorded");

    // Crash the primary (if it isn't the gateway) and read: the gateway
    // records a failover and some survivor records a promotion or pull.
    let primary = c
        .nodes
        .iter()
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/obs"))
        .unwrap();
    if primary.addr() == c.nodes[0].addr() {
        return;
    }
    c.net.fail_node(primary.addr());
    assert_eq!(m.read_file("/obs/f").unwrap(), b"watch me");
    assert!(c.nodes[0].stats().failovers > 0, "failover not counted");
    let recovered: u64 = c
        .nodes
        .iter()
        .filter(|n| n.addr() != primary.addr())
        .map(|n| n.stats().promotions + n.stats().replica_pulls)
        .sum();
    assert!(recovered > 0, "no promotion/pull recorded");
}

#[test]
fn stats_record_replica_reads() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 2;
    cfg.read_from_replicas = true;
    let c = build_cluster(6, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/rr").unwrap();
    m.write_file("/rr/f", b"spread me").unwrap();
    for _ in 0..12 {
        m.read_file("/rr/f").unwrap();
    }
    assert!(
        c.nodes[0].stats().replica_reads > 0,
        "round-robin never hit a replica"
    );
}

#[test]
fn access_checks_travel_with_the_file() {
    // §4.1.6: "files in Kosha maintain their permissions" — an ACCESS
    // probe against /kosha answers from wherever the file ended up.
    use kosha_vfs::{ACCESS_READ, ACCESS_WRITE};
    let c = build_cluster(4, KoshaConfig::for_tests());
    let mut m = mount(&c, 0);
    m.set_identity(42, 42);
    m.mkdir_p("/perm").unwrap();
    m.write_file("/perm/private.txt", b"owner only").unwrap();
    m.setattr(
        "/perm/private.txt",
        kosha_vfs::SetAttr {
            mode: Some(0o600),
            ..Default::default()
        },
    )
    .unwrap();
    // Owner holds read+write.
    assert_eq!(
        m.access("/perm/private.txt", ACCESS_READ | ACCESS_WRITE)
            .unwrap(),
        ACCESS_READ | ACCESS_WRITE
    );
    // Another user holds nothing.
    let mut other = mount(&c, 2);
    other.set_identity(7, 7);
    assert_eq!(
        other
            .access("/perm/private.txt", ACCESS_READ | ACCESS_WRITE)
            .unwrap(),
        0
    );
}

#[test]
fn read_from_replicas_returns_correct_data() {
    // §4.2's future-work optimization: reads round-robin across primary
    // and replicas, transparently falling back on any problem.
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 2;
    cfg.read_from_replicas = true;
    let c = build_cluster(6, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/rfr").unwrap();
    m.write_file("/rfr/doc.bin", &[0x5Au8; 10_000]).unwrap();
    // Many reads: every round-robin position (primary, replica 1,
    // replica 2) is exercised and all return identical bytes.
    for _ in 0..9 {
        assert_eq!(m.read_file("/rfr/doc.bin").unwrap(), vec![0x5Au8; 10_000]);
    }
    // Update, then re-read: replicas were refreshed by the write fan-out.
    m.write_file("/rfr/doc.bin", b"fresh content").unwrap();
    for _ in 0..9 {
        assert_eq!(m.read_file("/rfr/doc.bin").unwrap(), b"fresh content");
    }
}

#[test]
fn replica_reads_fall_back_when_replicas_fail() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 2;
    cfg.read_from_replicas = true;
    let c = build_cluster(6, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/fb").unwrap();
    m.write_file("/fb/x", b"fallback works").unwrap();
    // Kill every node that holds only a replica (keep primary + gateway).
    let primary = c
        .nodes
        .iter()
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/fb"))
        .unwrap()
        .addr();
    for node in &c.nodes {
        let mut replica_only = false;
        node.with_store(|v| {
            v.walk(|p, _| {
                if p.starts_with("/kosha_replica") && p.ends_with("/x") {
                    replica_only = true;
                }
            })
        });
        if replica_only && node.addr() != primary && node.addr() != c.nodes[0].addr() {
            c.net.fail_node(node.addr());
        }
    }
    for _ in 0..9 {
        assert_eq!(m.read_file("/fb/x").unwrap(), b"fallback works");
    }
}

#[test]
fn same_name_directories_colocate_without_conflict() {
    // §3.1: "key collisions due to two or more subdirectories sharing
    // the same name only implies that the colliding directories will be
    // stored on the same node."
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 2;
    cfg.replicas = 0;
    let c = build_cluster(6, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/u1/src").unwrap();
    m.mkdir_p("/u2/src").unwrap();
    m.write_file("/u1/src/a.rs", b"u1 file").unwrap();
    m.write_file("/u2/src/a.rs", b"u2 file").unwrap();
    assert_eq!(m.read_file("/u1/src/a.rs").unwrap(), b"u1 file");
    assert_eq!(m.read_file("/u2/src/a.rs").unwrap(), b"u2 file");
    // Both /u1/src and /u2/src anchors are on the same node (same hash).
    let host_of = |p: &str| {
        c.nodes
            .iter()
            .position(|n| n.hosted_anchors().iter().any(|(a, _)| a == p))
    };
    let h1 = host_of("/u1/src");
    let h2 = host_of("/u2/src");
    assert!(h1.is_some() && h2.is_some());
    assert_eq!(h1, h2, "same-named dirs should share a node");
}

#[test]
fn stats_record_capacity_redirections() {
    // `kosha_redirections_total` only bumps on placement attempt > 0
    // (crates/core/src/ops.rs, place_with_redirection), so it stays at
    // zero under roomy defaults; this scenario forces the full-node path.
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    cfg.redirect_attempts = 8;
    cfg.redirect_utilization = 0.5;
    cfg.contributed_bytes = 8192; // tiny stores force redirection
    let c = build_cluster(6, cfg);
    let m = mount(&c, 0);
    for i in 0..12 {
        let dir = format!("/d{i}");
        if m.mkdir_p(&dir).is_err() {
            continue;
        }
        let _ = m.write_file(&format!("{dir}/blob"), &[9u8; 3000]);
    }
    let redirections: u64 = c.nodes.iter().map(|n| n.stats().redirections).sum();
    assert!(redirections > 0, "full nodes never counted a redirection");
    // The same mechanism journals a "redirection" event on the placing
    // node.
    let journaled: usize = c
        .nodes
        .iter()
        .map(|n| n.obs().journal.of_kind("redirection").len())
        .sum();
    assert!(journaled > 0, "no redirection events journaled");
}

#[test]
fn failover_populates_rpc_histograms_and_journal() {
    // Observability acceptance: after a kill/failover scenario, the
    // transport's RPC latency histograms hold samples and the gateway's
    // journal holds the failover event. A real latency model makes the
    // recorded latencies non-zero (and deterministic, under SimTime).
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 2;
    let net = SimNetwork::new(LatencyModel::default());
    let c = build_cluster_on(net, 6, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/obs2").unwrap();
    m.write_file("/obs2/f", b"instrumented").unwrap();

    let primary = c
        .nodes
        .iter()
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/obs2"))
        .unwrap();
    if primary.addr() == c.nodes[0].addr() {
        // Deterministic placement makes this branch stable; under the
        // seeded ids the anchor lands off-gateway, so failing here means
        // the seeds changed — pick a different anchor name in that case.
        panic!("/obs2 landed on the gateway; choose another anchor name");
    }
    c.net.fail_node(primary.addr());
    assert_eq!(m.read_file("/obs2/f").unwrap(), b"instrumented");

    // Transport-level RPC metrics: every service that carried traffic
    // has latency samples with non-zero totals.
    let tobs = c.net.obs();
    let reg = &tobs.registry;
    for svc in ["kosha", "nfs", "pastry"] {
        let h = reg.histogram(&format!("rpc_latency_nanos{{service=\"{svc}\"}}"));
        assert!(h.count() > 0, "no rpc latency samples for {svc}");
        assert!(h.sum() > 0, "zero total latency for {svc}");
    }
    assert!(
        reg.counter("rpc_failed_calls_total{service=\"kosha\"}")
            .get()
            + reg.counter("rpc_failed_calls_total{service=\"nfs\"}").get()
            > 0,
        "killing the primary should have failed at least one RPC"
    );

    // Node-level journal: the gateway recorded the failover, and the
    // rendered exposition carries the same counter.
    let gobs = c.nodes[0].obs();
    let failovers = gobs.journal.of_kind("failover");
    assert!(!failovers.is_empty(), "no failover event journaled");
    assert!(
        failovers[0].detail.contains("unreachable"),
        "unexpected detail: {}",
        failovers[0].detail
    );
    let text = gobs.registry.render();
    assert!(
        text.contains("kosha_failovers_total"),
        "exposition missing failover counter:\n{text}"
    );
}

// ---- heat-driven read scaling (DESIGN.md §16) -----------------------------

fn hot_cfg() -> KoshaConfig {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 1;
    cfg.read_from_replicas = true;
    cfg.hot_replicas = 2;
    // Three reads of the same object cross the threshold in these tests.
    cfg.hot_threshold_milli = 3000;
    cfg
}

fn hot_copies_total(c: &Cluster) -> i64 {
    c.nodes
        .iter()
        .map(|n| n.obs().registry.gauge("kosha_hot_copies").get())
        .sum()
}

fn hot_mark_holders(c: &Cluster) -> usize {
    let mut holders = 0;
    for node in &c.nodes {
        let mut has_mark = false;
        node.with_store(|v| {
            v.walk(|p, _| {
                if p.starts_with("/kosha_replica") && p.ends_with(".kosha_hot") {
                    has_mark = true;
                }
            })
        });
        if has_mark {
            holders += 1;
        }
    }
    holders
}

#[test]
fn hot_object_gains_then_sheds_cached_copies() {
    let c = build_cluster(6, hot_cfg());
    let m = mount(&c, 0);
    m.mkdir_p("/zipf").unwrap();
    m.write_file("/zipf/hot.bin", &[9u8; 2048]).unwrap();

    // A Zipf-style hot spot: the same object read over and over. Past
    // the heat threshold the primary pushes leased cached copies onto
    // leaf-set neighbors beyond the K replica targets.
    for _ in 0..24 {
        assert_eq!(m.read_file("/zipf/hot.bin").unwrap(), vec![9u8; 2048]);
    }
    let pushes: u64 = c.nodes.iter().map(|n| n.stats().hot_pushes).sum();
    assert!(pushes > 0, "hot spot never spawned a cached copy");
    assert!(hot_copies_total(&c) > 0, "hot-copy gauge stayed zero");
    assert!(
        hot_mark_holders(&c) > 0,
        "no holder carries a .kosha_hot lease marker"
    );

    // Leave the object alone far past the heat half-life: maintenance
    // sheds the cooled copies and the cluster returns to exactly K.
    c.net
        .virtual_clock()
        .advance(std::time::Duration::from_secs(600));
    for node in &c.nodes {
        node.maintain();
    }
    assert_eq!(hot_copies_total(&c), 0, "copies must shed after cooling");
    assert_eq!(hot_mark_holders(&c), 0, "lease marker survived shedding");
    let drops: u64 = c.nodes.iter().map(|n| n.stats().hot_drops).sum();
    assert!(drops > 0, "shedding must be an explicit revocation");
    // Re-reads still work (and may heat the object right back up).
    assert_eq!(m.read_file("/zipf/hot.bin").unwrap(), vec![9u8; 2048]);
}

#[test]
fn write_invalidates_hot_leases_and_reads_are_never_stale() {
    let c = build_cluster(6, hot_cfg());
    let m = mount(&c, 0);
    m.mkdir_p("/inv").unwrap();
    m.write_file("/inv/doc", b"version one").unwrap();
    for _ in 0..24 {
        assert_eq!(m.read_file("/inv/doc").unwrap(), b"version one");
    }
    let pushes: u64 = c.nodes.iter().map(|n| n.stats().hot_pushes).sum();
    assert!(
        pushes > 0,
        "test needs hot copies in place before the write"
    );

    // The write voids the copy leases before it is acknowledged...
    m.write_file("/inv/doc", b"version two").unwrap();
    let invals: u64 = c
        .nodes
        .iter()
        .map(|n| n.stats().hot_lease_invalidations)
        .sum();
    assert!(invals > 0, "write did not void the hot-copy leases");

    // ...so in the window before any refresh, every rotor position must
    // already serve the new bytes (stale holders are not advertised).
    for _ in 0..24 {
        assert_eq!(m.read_file("/inv/doc").unwrap(), b"version two");
    }

    // After the flush barrier re-pushes fresh payload under a new
    // lease, reads keep returning the new bytes from every position.
    c.net.run_pumps();
    for _ in 0..24 {
        assert_eq!(m.read_file("/inv/doc").unwrap(), b"version two");
    }
}

#[test]
fn audit_counts_hot_copies_without_flagging_them() {
    use kosha::{audit_cluster, AuditOptions};
    let c = build_cluster(6, hot_cfg());
    let m = mount(&c, 0);
    m.mkdir_p("/aud").unwrap();
    m.write_file("/aud/popular", b"everyone reads this")
        .unwrap();
    for _ in 0..24 {
        assert_eq!(m.read_file("/aud/popular").unwrap(), b"everyone reads this");
    }
    assert!(hot_copies_total(&c) > 0, "no hot copies to audit");

    let peers: Vec<NodeAddr> = c.nodes.iter().map(|n| n.addr()).collect();
    let report = audit_cluster(
        c.net.as_ref(),
        c.nodes[0].addr(),
        &peers,
        c.net.clock().now().0,
        &AuditOptions::default(),
    );
    assert!(report.hot_copies > 0, "audit failed to see the hot slots");
    assert_eq!(
        report.over_replicated, 0,
        "leased hot copies must not read as over-replication"
    );
    assert_eq!(
        report.orphaned_replicas, 0,
        "leased hot copies must not read as orphans"
    );
    assert_eq!(report.objects_divergent, 0, "hot slots must not diverge");
}
