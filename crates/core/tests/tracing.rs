//! End-to-end trace acceptance tests: a replicated write on a simulated
//! cluster must produce a single span tree whose critical-path breakdown
//! accounts for the full end-to-end virtual latency, with the replica
//! fan-out visible as parallel sibling spans.

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_obs::trace::{build_traces, TraceTree};
use kosha_obs::SpanRecord;
use kosha_rpc::{LatencyModel, Network, NodeAddr, SimNetwork};
use std::sync::Arc;

struct Cluster {
    net: Arc<SimNetwork>,
    nodes: Vec<Arc<KoshaNode>>,
}

fn build_cluster(n: usize, cfg: KoshaConfig) -> Cluster {
    // Real latencies: spans need nonzero extents for overlap to mean
    // anything (the virtual clock keeps the run deterministic).
    let net = SimNetwork::new(LatencyModel::default());
    let mut nodes = Vec::new();
    for i in 0..n {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i as u64),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .expect("join");
        nodes.push(node);
    }
    Cluster { net, nodes }
}

/// Drains every span buffer in the cluster (transport + all nodes).
fn collect_spans(c: &Cluster) -> Vec<SpanRecord> {
    let mut spans = c.net.obs().tracer.take();
    for n in &c.nodes {
        spans.extend(n.obs().tracer.take());
    }
    spans
}

/// Child span indices of the first span named `name`, anywhere in the
/// tree.
fn children_of<'t>(t: &'t TraceTree, name: &str) -> Vec<&'t SpanRecord> {
    let Some((idx, _)) = t.spans().iter().enumerate().find(|(_, s)| s.name == name) else {
        return Vec::new();
    };
    let parent_id = t.spans()[idx].span_id;
    t.spans()
        .iter()
        .filter(|s| s.parent_id == parent_id)
        .collect()
}

#[test]
fn replicated_write_yields_one_accounted_trace() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 3;
    let c = build_cluster(8, cfg);
    let m = KoshaMount::new(
        c.net.clone() as Arc<dyn Network>,
        c.nodes[0].addr(),
        c.nodes[0].addr(),
    )
    .expect("mount");
    m.mkdir_p("/traced/data").expect("mkdir");

    // Discard setup noise; trace exactly one replicated write.
    collect_spans(&c);
    let clock = c.net.clock();
    let t0 = clock.now();
    c.net.obs().tracer.root(
        "client:write",
        999,
        || clock.now().0,
        || {
            m.write_file("/traced/data/file.bin", &[7u8; 4096])
                .expect("write")
        },
    );
    let end_to_end = clock.now().since_nanos(t0);
    assert!(end_to_end > 0, "virtual clock did not advance");

    let traces = build_traces(collect_spans(&c));
    // One operation, one trace: every layer's spans joined the client's
    // trace via the wire header.
    assert_eq!(traces.len(), 1, "expected a single trace");
    let t = &traces[0];
    assert_eq!(t.root_span().name, "client:write");
    assert!(
        t.spans().len() > 5,
        "expected spans from several layers, got {:?}",
        t.spans().iter().map(|s| &s.name).collect::<Vec<_>>()
    );

    // The critical-path breakdown accounts for the whole operation
    // (acceptance bound: within 1% of end-to-end virtual latency).
    let breakdown = t.critical_path();
    let accounted: u64 = breakdown.iter().map(|(_, n)| n).sum();
    let root = t.total_nanos();
    assert_eq!(
        accounted, root,
        "critical path must sum exactly to the root span"
    );
    let diff = end_to_end.abs_diff(accounted);
    assert!(
        diff * 100 <= end_to_end,
        "critical path ({accounted} ns) deviates from end-to-end \
         ({end_to_end} ns) by more than 1%"
    );

    // The K=3 mirror fan-out appears as parallel siblings: all three
    // replica RPCs start at the same virtual instant under call_many.
    let kids = children_of(t, "kosha:mirror");
    assert_eq!(kids.len(), 3, "expected one child span per replica");
    assert!(
        kids.iter().all(|s| s.name == "rpc:replica"),
        "mirror children should be replica RPCs: {kids:?}"
    );
    let starts: Vec<u64> = kids.iter().map(|s| s.start_nanos).collect();
    assert!(
        starts.iter().all(|&s| s == starts[0]),
        "replica RPCs should start together (parallel fan-out): {starts:?}"
    );
    // And the layers all contributed to the breakdown.
    for layer in ["rpc:koshafs", "koshafs:write", "kosha:mirror"] {
        assert!(
            t.spans().iter().any(|s| s.name == layer),
            "missing {layer} span in trace"
        );
    }
}

#[test]
fn sampling_knob_roots_traces_server_side() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    cfg.trace_sampling = 2; // every other untraced koshad request
    let c = build_cluster(4, cfg);
    let m = KoshaMount::new(
        c.net.clone() as Arc<dyn Network>,
        c.nodes[0].addr(),
        c.nodes[0].addr(),
    )
    .expect("mount");
    m.mkdir_p("/s").expect("mkdir");
    collect_spans(&c);

    m.write_file("/s/a", b"x").expect("write");
    m.read_file("/s/a").expect("read");

    let spans = collect_spans(&c);
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent_id == 0).collect();
    assert!(
        !roots.is_empty(),
        "sampling=2 should have rooted at least one server-side trace"
    );
    assert!(
        roots.iter().all(|s| s.name.starts_with("koshafs:")),
        "sampled roots start at the koshad loopback server: {roots:?}"
    );
    // Sampling every 2nd request traces roughly half the loopback ops —
    // strictly fewer roots than total koshad requests.
    let fs_ops: u64 = c.nodes[0]
        .obs()
        .registry
        .counter("kosha_fs_ops_total")
        .get();
    assert!(
        (roots.len() as u64) < fs_ops,
        "expected a strict subset of {fs_ops} ops to be sampled, got {}",
        roots.len()
    );
}

#[test]
fn untraced_clusters_record_no_spans() {
    // With sampling off and no client roots, tracing must stay silent:
    // nothing allocates span records on the hot path.
    let c = build_cluster(3, KoshaConfig::for_tests());
    let m = KoshaMount::new(
        c.net.clone() as Arc<dyn Network>,
        c.nodes[0].addr(),
        c.nodes[0].addr(),
    )
    .expect("mount");
    m.mkdir_p("/quiet/dir").expect("mkdir");
    m.write_file("/quiet/dir/f", b"data").expect("write");
    assert!(collect_spans(&c).is_empty());
}
