//! Write-behind replication end-to-end: queue/flush convergence, the
//! COMMIT and backpressure barriers, failover lag reporting (no silent
//! stale reads), and the coalescing equivalence property.

use kosha::control::{KoshaReplyFrame, KoshaRequest, MigrateItem, ReplicaOp};
use kosha::paths::{anchor_slot, slot_local_path, Area};
use kosha::{tree_digest, KoshaConfig, KoshaMount, KoshaNode, ReplicationMode};
use kosha_id::node_id_from_seed;
use kosha_nfs::messages::WireSetAttr;
use kosha_rpc::{Network, NodeAddr, RpcRequest, ServiceId, SimNetwork};
use kosha_vfs::SetAttr;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

struct Cluster {
    net: Arc<SimNetwork>,
    nodes: Vec<Arc<KoshaNode>>,
}

fn build_cluster(n: usize, cfg: KoshaConfig) -> Cluster {
    let net = SimNetwork::new_zero_latency();
    let mut nodes = Vec::new();
    for i in 0..n {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i as u64),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .expect("join");
        nodes.push(node);
    }
    Cluster { net, nodes }
}

fn mount(c: &Cluster, node: usize) -> KoshaMount {
    KoshaMount::new(
        c.net.clone() as Arc<dyn Network>,
        c.nodes[node].addr(),
        c.nodes[node].addr(),
    )
    .expect("mount")
}

fn wb_cfg(queue_ops: usize) -> KoshaConfig {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 2;
    cfg.replication_mode = ReplicationMode::WriteBehind {
        queue_ops,
        flush_interval: Duration::from_millis(5),
    };
    cfg
}

fn primary_of<'a>(c: &'a Cluster, anchor: &str) -> &'a Arc<KoshaNode> {
    c.nodes
        .iter()
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == anchor))
        .expect("anchor hosted somewhere")
}

/// Bytes of `vpath` in `node`'s *replica* area, if present.
fn replica_bytes(node: &Arc<KoshaNode>, anchor: &str, vpath: &str) -> Option<Vec<u8>> {
    let rpath = slot_local_path(Area::Replica, anchor, vpath);
    node.with_store(|v| {
        let (id, attr) = v.resolve(&rpath).ok()?;
        v.read(id, 0, attr.size as u32).ok().map(|(data, _)| data)
    })
}

#[test]
fn queued_writes_converge_on_flush_with_coalescing() {
    let c = build_cluster(6, wb_cfg(256));
    let m = mount(&c, 0);
    m.mkdir_p("/wb").unwrap();
    // Sequential appends to one file: adjacent WRITE ranges are classic
    // coalescing fodder (they merge into one replica write per flush).
    m.write_file("/wb/f.dat", b"").unwrap();
    let mut expected = Vec::new();
    for i in 0..16u8 {
        let chunk = [i; 32];
        m.write_at("/wb/f.dat", expected.len() as u64, &chunk)
            .unwrap();
        expected.extend_from_slice(&chunk);
        m.read_file("/wb/f.dat").unwrap(); // interleave reads (no effect)
    }
    let primary = primary_of(&c, "/wb");
    let before = primary.stats();
    assert!(
        before.writeback_enqueued > 0,
        "mutations were not queued: {before:?}"
    );
    // Nothing forced a barrier yet with a 64-op queue; replicas converge
    // once the pump (driven explicitly on the sim transport) runs.
    c.net.run_pumps();
    let after = primary.stats();
    assert!(after.writeback_flushes > 0, "pump did not flush");
    assert!(
        after.writeback_coalesced_ops > 0,
        "sequential writes did not coalesce: {after:?}"
    );
    assert!(
        after.writeback_flushed_ops < after.writeback_enqueued,
        "coalescing shipped as many ops as were enqueued"
    );
    let holders = c
        .nodes
        .iter()
        .filter(|n| replica_bytes(n, "/wb", "/wb/f.dat").as_deref() == Some(&expected[..]))
        .count();
    assert!(
        holders >= 2,
        "only {holders} replicas hold the flushed bytes"
    );
}

#[test]
fn commit_is_a_flush_barrier() {
    let c = build_cluster(6, wb_cfg(1024));
    let m = mount(&c, 0);
    m.mkdir_p("/sync").unwrap();
    m.write_file("/sync/f.dat", &[9u8; 2048]).unwrap();
    let primary = primary_of(&c, "/sync");
    assert_eq!(primary.stats().writeback_flushes, 0);
    m.commit("/sync/f.dat").unwrap();
    let s = primary.stats();
    assert!(s.writeback_flushes > 0, "COMMIT did not flush: {s:?}");
    assert_eq!(
        primary
            .obs()
            .registry
            .gauge("kosha_writeback_queue_depth")
            .get(),
        0,
        "queue not drained after COMMIT"
    );
    assert!(
        !primary.obs().journal.of_kind("flush_barrier").is_empty(),
        "COMMIT barrier not journaled"
    );
    let holders = c
        .nodes
        .iter()
        .filter(|n| replica_bytes(n, "/sync", "/sync/f.dat").as_deref() == Some(&[9u8; 2048][..]))
        .count();
    assert!(holders >= 2, "replicas behind after COMMIT");
}

#[test]
fn full_queue_applies_backpressure() {
    // A 4-op queue overflows quickly; the enqueue that fills it must
    // flush synchronously and journal the event.
    let c = build_cluster(6, wb_cfg(4));
    let m = mount(&c, 0);
    m.mkdir_p("/bp").unwrap();
    for i in 0..12u8 {
        m.write_file(&format!("/bp/f{i}"), &[i; 100]).unwrap();
    }
    let primary = primary_of(&c, "/bp");
    let s = primary.stats();
    assert!(
        s.writeback_flushes > 0,
        "queue overflow never forced a flush: {s:?}"
    );
    assert!(
        !primary
            .obs()
            .journal
            .of_kind("writeback_overflow")
            .is_empty(),
        "overflow not journaled"
    );
}

#[test]
fn failover_after_commit_serves_flushed_data() {
    // The existing failover guarantees must hold under write-behind as
    // long as the client observed a COMMIT barrier.
    let c = build_cluster(6, wb_cfg(1024));
    let m = mount(&c, 0);
    m.mkdir_p("/ha").unwrap();
    m.write_file("/ha/precious.txt", b"do not lose me").unwrap();
    m.commit("/ha/precious.txt").unwrap();
    let victim = primary_of(&c, "/ha").addr();
    let gateway = if victim == c.nodes[0].addr() { 1 } else { 0 };
    let m2 = mount(&c, gateway);
    c.net.fail_node(victim);
    assert_eq!(
        m2.read_file("/ha/precious.txt").unwrap(),
        b"do not lose me",
        "flushed data lost across failover"
    );
    // Writes keep working after failover.
    m2.write_file("/ha/precious.txt", b"updated after failure")
        .unwrap();
    assert_eq!(
        m2.read_file("/ha/precious.txt").unwrap(),
        b"updated after failure"
    );
}

#[test]
fn killing_a_primary_with_queued_writes_reports_replica_lag() {
    let c = build_cluster(6, wb_cfg(1024));
    let m = mount(&c, 0);
    m.mkdir_p("/lag").unwrap();
    m.write_file("/lag/f.dat", b"flushed base").unwrap();
    m.commit("/lag/f.dat").unwrap();
    // A second write window opens (stamping lag markers on the replica
    // slots) and is never flushed.
    m.write_file("/lag/f.dat", b"never flushed update!")
        .unwrap();
    let victim = primary_of(&c, "/lag").addr();
    assert!(
        c.nodes
            .iter()
            .find(|n| n.addr() == victim)
            .unwrap()
            .obs()
            .registry
            .gauge("kosha_writeback_queue_depth")
            .get()
            > 0,
        "update should still be queued on the primary"
    );
    let gateway = if victim == c.nodes[0].addr() { 1 } else { 0 };
    let m2 = mount(&c, gateway);
    c.net.fail_node(victim);
    // The read triggers failover + promotion of a lagging replica.
    let got = m2.read_file("/lag/f.dat").unwrap();
    if got != b"never flushed update!" {
        // Served stale (pre-window) data — allowed only if the lag was
        // reported. The promotion must have consumed a lag marker.
        let lag_events: usize = c
            .nodes
            .iter()
            .filter(|n| n.addr() != victim)
            .map(|n| n.obs().journal.of_kind("replica_lag").len())
            .sum();
        assert!(
            lag_events > 0,
            "stale read served with no replica_lag event journaled"
        );
        let lag_count: u64 = c
            .nodes
            .iter()
            .filter(|n| n.addr() != victim)
            .map(|n| n.stats().replica_lag_events)
            .sum();
        assert!(lag_count > 0, "kosha_replica_lag_total not bumped");
    }
}

#[test]
fn sync_mode_never_queues() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 2;
    let c = build_cluster(6, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/s").unwrap();
    m.write_file("/s/f", &[1u8; 512]).unwrap();
    m.commit("/s/f").unwrap(); // COMMIT is valid (and a no-op) under Sync
    for n in &c.nodes {
        let s = n.stats();
        assert_eq!(s.writeback_enqueued, 0, "sync mode queued a mutation");
        assert_eq!(s.writeback_flushed_ops, 0);
    }
}

// ---- coalescing equivalence property -----------------------------------

/// Applies one replica-service request to `node` and asserts success.
fn apply_replica(net: &Arc<SimNetwork>, node: &Arc<KoshaNode>, req: &KoshaRequest) {
    let resp = net
        .call(
            node.addr(),
            node.addr(),
            RpcRequest::new(ServiceId::KoshaReplica, req),
        )
        .expect("replica rpc");
    let frame = resp.decode::<KoshaReplyFrame>().expect("decode");
    assert!(frame.0.is_ok(), "replica op failed: {:?}", frame.0);
}

/// Turns a random script into a valid replica-op sequence (SetAttr and
/// Remove only target files known to exist, so per-op application never
/// fails and batches never stop early for reasons unrelated to
/// coalescing).
fn ops_from_script(script: &[(u8, u8, u8, u8, u8)]) -> Vec<ReplicaOp> {
    const FILES: [&str; 3] = ["/d/a", "/d/b", "/d/c"];
    let mut live = [false; 3];
    let mut out = Vec::new();
    for &(sel, pi, off, len, val) in script {
        let pi = (pi % 3) as usize;
        let path = FILES[pi].to_string();
        match sel % 6 {
            0 => {
                out.push(ReplicaOp::Create {
                    path,
                    mode: 0o644,
                    uid: 0,
                    gid: 0,
                    size: None,
                });
                live[pi] = true;
            }
            1 | 2 => {
                out.push(ReplicaOp::Write {
                    path,
                    offset: u64::from(off % 48),
                    data: vec![val; usize::from(len % 24) + 1],
                });
                live[pi] = true;
            }
            3 if live[pi] => out.push(ReplicaOp::SetAttr {
                path,
                sattr: WireSetAttr(SetAttr {
                    size: Some(u64::from(off % 40)),
                    ..Default::default()
                }),
            }),
            4 if live[pi] => out.push(ReplicaOp::SetAttr {
                path,
                sattr: WireSetAttr(SetAttr {
                    mode: Some(0o600 + u32::from(val % 8)),
                    ..Default::default()
                }),
            }),
            5 if live[pi] => {
                out.push(ReplicaOp::Remove { path });
                live[pi] = false;
            }
            _ => {}
        }
    }
    out
}

fn replica_tree(node: &Arc<KoshaNode>) -> Vec<MigrateItem> {
    node.with_store(|v| v.export_tree("/kosha_replica"))
        .expect("export")
        .into_iter()
        .map(MigrateItem::from)
        .collect()
}

fn solo_node(seed: &str) -> (Arc<SimNetwork>, Arc<KoshaNode>) {
    let net = SimNetwork::new_zero_latency();
    let (node, mux) = KoshaNode::build(
        KoshaConfig::for_tests(),
        node_id_from_seed(seed),
        NodeAddr(0),
        net.clone() as Arc<dyn Network>,
    );
    net.attach(node.addr(), mux);
    node.join(None).unwrap();
    (net, node)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any split of an op sequence into coalesced `ReplicaApplyBatch`es
    /// leaves a replica store byte-identical to applying the original
    /// ops one by one in order.
    #[test]
    fn coalesced_batches_equal_sequential_application(
        script in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..40,
        ),
        chunks in proptest::collection::vec(1usize..8, 1..12),
    ) {
        let ops = ops_from_script(&script);
        prop_assume!(!ops.is_empty());

        // Reference: one ReplicaApply per op, in order.
        let (net_a, node_a) = solo_node("wb-prop-seq");
        for op in &ops {
            apply_replica(&net_a, &node_a, &KoshaRequest::ReplicaApply { op: op.clone() });
        }

        // Candidate: the same sequence cut at arbitrary points, each
        // chunk coalesced and shipped as one batch.
        let (net_b, node_b) = solo_node("wb-prop-seq"); // same id: same layout
        let mut rest = &ops[..];
        let mut ci = 0;
        while !rest.is_empty() {
            let take = chunks[ci % chunks.len()].min(rest.len());
            ci += 1;
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            let batch = kosha::writeback::coalesce(chunk.to_vec());
            apply_replica(&net_b, &node_b, &KoshaRequest::ReplicaApplyBatch { ops: batch });
        }

        prop_assert_eq!(replica_tree(&node_a), replica_tree(&node_b));
        // The audit digest (DESIGN.md §15) sees them as identical too:
        // digest(seq-apply) == digest(coalesced-apply).
        let digest_a = node_a
            .with_store(|v| v.export_tree("/kosha_replica"))
            .map(|items| tree_digest(&items))
            .expect("export a");
        let digest_b = node_b
            .with_store(|v| v.export_tree("/kosha_replica"))
            .map(|items| tree_digest(&items))
            .expect("export b");
        prop_assert_eq!(digest_a, digest_b);
    }
}

// ---- audit digest after a flush barrier --------------------------------

/// Audit digest of `anchor`'s slot in `area` on `node`, if the slot
/// exists there.
fn slot_digest(node: &Arc<KoshaNode>, area: Area, anchor: &str) -> Option<[u8; 20]> {
    let root = format!("/{}/{}", area.dir_name(), anchor_slot(anchor));
    node.with_store(|v| v.export_tree(&root).ok().map(|items| tree_digest(&items)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end version of the same property, through the real
    /// write-behind queue: whatever random mutation mix was enqueued
    /// (and however it coalesced), after a COMMIT flush barrier every
    /// replica slot's audit digest equals the primary's.
    #[test]
    fn flush_barrier_makes_replica_digests_equal_primary(
        script in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>()),
            1..20,
        ),
    ) {
        let c = build_cluster(4, wb_cfg(256));
        let m = mount(&c, 0);
        m.mkdir_p("/prop").unwrap();
        let mut touched = std::collections::BTreeSet::new();
        for &(f, off, val) in &script {
            let path = format!("/prop/f{}", f % 3);
            if touched.insert(path.clone()) {
                m.write_file(&path, &[val; 16]).unwrap();
            } else {
                m.write_at(&path, u64::from(off % 64), &[val; 8]).unwrap();
            }
        }
        let any_file = touched.iter().next().expect("wrote something").clone();
        m.commit(&any_file).unwrap(); // barrier drains the whole queue
        c.net.run_pumps();

        let primary = primary_of(&c, "/prop");
        let pd = slot_digest(primary, Area::Store, "/prop").expect("primary slot");
        let mut matching = 0;
        for n in &c.nodes {
            if let Some(rd) = slot_digest(n, Area::Replica, "/prop") {
                prop_assert_eq!(rd, pd, "replica digest diverges after barrier");
                matching += 1;
            }
        }
        prop_assert!(matching >= 2, "only {} replica slots found", matching);
    }
}
