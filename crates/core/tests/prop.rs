//! Property tests for the Kosha control protocol and the end-to-end
//! placement invariants of small clusters.

use kosha::control::{KoshaReply, KoshaReplyFrame, KoshaRequest, MigrateItem, MigrateKind};
use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_nfs::messages::WireSetAttr;
use kosha_rpc::{Network, NodeAddr, SimNetwork, WireRead, WireWrite};
use kosha_vfs::SetAttr;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_path() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,10}", 1..5)
        .prop_map(|comps| format!("/{}", comps.join("/")))
}

fn arb_item() -> impl Strategy<Value = MigrateItem> {
    (
        "[a-z/]{0,16}",
        prop_oneof![
            Just(MigrateKind::Dir),
            proptest::collection::vec(any::<u8>(), 0..128).prop_map(MigrateKind::Bytes),
            any::<u64>().prop_map(MigrateKind::Sparse),
            "[a-z#0-9]{1,16}".prop_map(|target| MigrateKind::Symlink { target }),
        ],
        0u32..0o10000,
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(rel_path, kind, mode, uid, gid)| MigrateItem {
            rel_path,
            kind,
            mode,
            uid,
            gid,
        })
}

fn arb_request() -> impl Strategy<Value = KoshaRequest> {
    prop_oneof![
        (
            arb_path(),
            0u32..0o10000,
            any::<u32>(),
            any::<u32>(),
            proptest::option::of(any::<u64>())
        )
            .prop_map(|(path, mode, uid, gid, size)| KoshaRequest::CreateFile {
                path,
                mode,
                uid,
                gid,
                size
            }),
        (arb_path(), 0u32..0o10000, any::<u32>(), any::<u32>()).prop_map(
            |(path, mode, uid, gid)| KoshaRequest::MkdirLocal {
                path,
                mode,
                uid,
                gid
            }
        ),
        (
            arb_path(),
            "[a-z#0-9]{1,16}",
            0u32..0o10000,
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(
                |(path, routing_name, mode, uid, gid)| KoshaRequest::MkdirAnchor {
                    path,
                    routing_name,
                    mode,
                    uid,
                    gid
                }
            ),
        (arb_path(), "[a-z#0-9]{1,16}", any::<u32>(), any::<u32>()).prop_map(
            |(path, target, uid, gid)| KoshaRequest::PlaceLink {
                path,
                target,
                uid,
                gid
            }
        ),
        (
            arb_path(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(path, offset, data)| KoshaRequest::Write { path, offset, data }),
        (arb_path(), proptest::option::of(any::<u64>())).prop_map(|(path, size)| {
            KoshaRequest::SetAttr {
                path,
                sattr: WireSetAttr(SetAttr {
                    size,
                    ..Default::default()
                }),
            }
        }),
        arb_path().prop_map(|path| KoshaRequest::Remove { path }),
        arb_path().prop_map(|path| KoshaRequest::Rmdir { path }),
        arb_path().prop_map(|path| KoshaRequest::RmdirAnchor { path }),
        arb_path().prop_map(|path| KoshaRequest::RemoveLink { path }),
        (arb_path(), arb_path()).prop_map(|(from, to)| KoshaRequest::RenameLocal { from, to }),
        (arb_path(), arb_path()).prop_map(|(from, to)| KoshaRequest::RenameAnchorDir { from, to }),
        (arb_path(), "[a-z#0-9]{1,16}")
            .prop_map(|(path, routing)| KoshaRequest::EnsureAnchor { path, routing }),
        Just(KoshaRequest::StoreStats),
        Just(KoshaRequest::ListAnchors),
        arb_path().prop_map(|path| KoshaRequest::BeginTransfer { path }),
        (arb_path(), arb_item()).prop_map(|(path, item)| KoshaRequest::TransferPut { path, item }),
        (arb_path(), "[a-z#0-9]{1,16}").prop_map(|(path, routing_name)| {
            KoshaRequest::CommitTransfer { path, routing_name }
        }),
        arb_path().prop_map(|path| KoshaRequest::ReplicaTargets { path }),
    ]
}

proptest! {
    #[test]
    fn control_requests_round_trip(req in arb_request()) {
        let bytes = req.encode();
        prop_assert_eq!(KoshaRequest::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn control_replies_round_trip(reply in prop_oneof![
        Just(KoshaReply::Done),
        any::<bool>().prop_map(KoshaReply::DoneBool),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(capacity, used, free)| KoshaReply::Stats { capacity, used, free }),
        proptest::collection::vec(("[a-z/]{1,12}", "[a-z#0-9]{1,12}"), 0..8)
            .prop_map(|v| KoshaReply::Anchors(v.into_iter().collect())),
        proptest::collection::vec(any::<u64>(), 0..8)
            .prop_map(|v| KoshaReply::Nodes(v.into_iter().map(NodeAddr).collect())),
    ]) {
        let frame = KoshaReplyFrame(Ok(reply));
        let bytes = frame.encode();
        prop_assert_eq!(KoshaReplyFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn control_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = KoshaRequest::decode(&bytes);
        let _ = KoshaReplyFrame::decode(&bytes);
    }
}

// End-to-end placement invariant: whatever tree of directories and
// files we create, every hosted anchor is recorded on exactly the node
// its routing name maps to, and every file remains readable with the
// bytes written.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn placement_invariants_hold(
        names in proptest::collection::vec("[a-z]{1,8}", 1..10),
        level in 1usize..3,
        nodes in 2usize..7,
    ) {
        let net = SimNetwork::new_zero_latency();
        let mut cfg = KoshaConfig::for_tests();
        cfg.distribution_level = level;
        cfg.replicas = 1;
        let mut cluster = Vec::new();
        for i in 0..nodes {
            let id = node_id_from_seed(&format!("prop-host-{i}"));
            let (node, mux) = KoshaNode::build(
                cfg.clone(),
                id,
                NodeAddr(i as u64),
                net.clone() as Arc<dyn Network>,
            );
            net.attach(node.addr(), mux);
            node.join(if i == 0 { None } else { Some(NodeAddr(0)) }).unwrap();
            cluster.push(node);
        }
        let m = KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr(0), NodeAddr(0)).unwrap();
        let mut expected: Vec<(String, Vec<u8>)> = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let dir = format!("/{name}{i}/sub");
            m.mkdir_p(&dir).unwrap();
            let path = format!("{dir}/f{i}");
            let data = vec![i as u8; 64 + i];
            m.write_file(&path, &data).unwrap();
            expected.push((path, data));
        }
        // Every file readable with correct content, from any gateway.
        let m2 = KoshaMount::new(net.clone() as Arc<dyn Network>, NodeAddr((nodes - 1) as u64), NodeAddr((nodes - 1) as u64)).unwrap();
        for (path, data) in &expected {
            prop_assert_eq!(&m2.read_file(path).unwrap(), data);
        }
        // Anchor/owner agreement.
        for node in &cluster {
            for (path, routing) in node.hosted_anchors() {
                let owner = node.pastry().route_owner(kosha_id::dir_key(&routing)).unwrap();
                prop_assert_eq!(owner.id, node.id(), "anchor {} misplaced", path);
            }
        }
    }
}
