//! Resolver cache behavior: directory-cache hits avoid RPCs, the
//! compound LOOKUPPATH walk cuts resolution round trips against the
//! per-component baseline, and an exhausted failover retry budget
//! surfaces the underlying transport error instead of masking it.

use kosha::{KoshaConfig, KoshaMount, KoshaNode};
use kosha_id::node_id_from_seed;
use kosha_nfs::{NfsError, NfsStatus};
use kosha_rpc::{Network, NodeAddr, SimNetwork};
use std::sync::Arc;

struct Cluster {
    net: Arc<SimNetwork>,
    nodes: Vec<Arc<KoshaNode>>,
}

fn build_cluster(n: usize, cfg: KoshaConfig) -> Cluster {
    let net = SimNetwork::new_zero_latency();
    let mut nodes = Vec::new();
    for i in 0..n {
        let id = node_id_from_seed(&format!("kosha-host-{i}"));
        let (node, mux) = KoshaNode::build(
            cfg.clone(),
            id,
            NodeAddr(i as u64),
            net.clone() as Arc<dyn Network>,
        );
        net.attach(node.addr(), mux);
        node.join(if i == 0 { None } else { Some(NodeAddr(0)) })
            .expect("join");
        nodes.push(node);
    }
    Cluster { net, nodes }
}

fn mount(c: &Cluster, node: usize) -> KoshaMount {
    KoshaMount::new(
        c.net.clone() as Arc<dyn Network>,
        c.nodes[node].addr(),
        c.nodes[node].addr(),
    )
    .expect("mount")
}

fn nfs_calls(c: &Cluster) -> u64 {
    c.net
        .obs()
        .registry
        .counter("rpc_calls_total{service=\"nfs\"}")
        .get()
}

#[test]
fn dir_cache_hit_avoids_resolution_rpcs() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    let c = build_cluster(4, cfg);
    // Create from node 1 so the gateway's resolution cache stays cold.
    let m1 = mount(&c, 1);
    m1.mkdir_p("/cache/sub/deep").unwrap();
    m1.write_file("/cache/sub/deep/f", b"x").unwrap();

    let m0 = mount(&c, 0);
    let before_first = nfs_calls(&c);
    m0.readdir("/cache/sub/deep").unwrap();
    let first = nfs_calls(&c) - before_first;
    let before_second = nfs_calls(&c);
    m0.readdir("/cache/sub/deep").unwrap();
    let second = nfs_calls(&c) - before_second;
    assert!(
        second < first,
        "cache hit did not reduce RPCs: cold={first} warm={second}"
    );
    assert!(
        second <= 1,
        "cached readdir should cost at most one NFS RPC, took {second}"
    );
}

#[test]
fn compound_lookup_reduces_resolution_rpcs() {
    // Measures the §4.4 re-resolution path: after a cache flush the
    // gateway still holds virtual handles with full paths but no
    // locations, so the next operation must resolve a deep path in one
    // go — one LOOKUPPATH per server (compound) vs one LOOKUP per
    // component (baseline).
    let resolve_cost = |compound: bool| -> u64 {
        let mut cfg = KoshaConfig::for_tests();
        cfg.distribution_level = 1;
        cfg.replicas = 0;
        cfg.compound_lookup = compound;
        let c = build_cluster(4, cfg);
        let m = mount(&c, 0);
        m.mkdir_p("/deep/a/b/c").unwrap();
        m.write_file("/deep/a/b/c/f", b"z").unwrap();
        assert_eq!(m.read_file("/deep/a/b/c/f").unwrap(), b"z");
        c.nodes[0].flush_caches();
        let before = nfs_calls(&c);
        assert_eq!(m.read_file("/deep/a/b/c/f").unwrap(), b"z");
        nfs_calls(&c) - before
    };
    let compound = resolve_cost(true);
    let per_component = resolve_cost(false);
    assert!(
        compound < per_component,
        "compound walk took {compound} NFS RPCs, per-component {per_component}"
    );
}

#[test]
fn per_component_baseline_still_resolves() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.compound_lookup = false;
    let c = build_cluster(4, cfg);
    let m = mount(&c, 0);
    m.mkdir_p("/base/sub").unwrap();
    m.write_file("/base/sub/f", b"old walk").unwrap();
    assert_eq!(m.read_file("/base/sub/f").unwrap(), b"old walk");
    let m2 = mount(&c, 2);
    assert_eq!(m2.read_file("/base/sub/f").unwrap(), b"old walk");
}

#[test]
fn exhausted_retry_budget_returns_underlying_error() {
    let mut cfg = KoshaConfig::for_tests();
    cfg.distribution_level = 1;
    cfg.replicas = 0;
    cfg.failover_retries = 0;
    let c = build_cluster(4, cfg);
    mount(&c, 0).mkdir_p("/retrybox").unwrap();
    mount(&c, 0).write_file("/retrybox/f", b"y").unwrap();
    let primary = c
        .nodes
        .iter()
        .find(|n| n.hosted_anchors().iter().any(|(p, _)| p == "/retrybox"))
        .expect("anchor hosted")
        .addr();
    // Read through a gateway that is not the primary, so the failure is
    // remote; warm its cache first so the read targets the dead node.
    let gateway = (0..c.nodes.len())
        .find(|&i| c.nodes[i].addr() != primary)
        .unwrap();
    let m = mount(&c, gateway);
    assert_eq!(m.read_file("/retrybox/f").unwrap(), b"y");
    c.net.fail_node(primary);
    // With no retry budget the transport failure propagates instead of
    // being retried away: the loopback boundary reports it as IO (the
    // NFS rendering of an unreachable server), and the gateway performed
    // no failover.
    match m.read_file("/retrybox/f") {
        Err(NfsError::Status(NfsStatus::Io)) => {}
        other => panic!("expected the underlying IO error, got {other:?}"),
    }
    assert_eq!(
        c.nodes[gateway].stats().failovers,
        0,
        "a zero budget must not trigger failover retries"
    );
}
