//! Property tests: arbitrary operation sequences preserve the store's
//! accounting and structural invariants.

use kosha_vfs::{FileType, SetAttr, Vfs, VfsError};
use proptest::prelude::*;

/// A random filesystem operation over a small namespace.
#[derive(Debug, Clone)]
enum Op {
    Create {
        dir: u8,
        name: u8,
    },
    Mkdir {
        dir: u8,
        name: u8,
    },
    Write {
        dir: u8,
        name: u8,
        offset: u16,
        len: u16,
    },
    Truncate {
        dir: u8,
        name: u8,
        size: u16,
    },
    Remove {
        dir: u8,
        name: u8,
    },
    Rmdir {
        dir: u8,
        name: u8,
    },
    Rename {
        sdir: u8,
        sname: u8,
        ddir: u8,
        dname: u8,
    },
    Symlink {
        dir: u8,
        name: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(dir, name)| Op::Create { dir, name }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, name)| Op::Mkdir { dir, name }),
        (any::<u8>(), any::<u8>(), any::<u16>(), 0u16..2048).prop_map(
            |(dir, name, offset, len)| Op::Write {
                dir,
                name,
                offset,
                len
            }
        ),
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(dir, name, size)| Op::Truncate {
            dir,
            name,
            size
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, name)| Op::Remove { dir, name }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, name)| Op::Rmdir { dir, name }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
            |(sdir, sname, ddir, dname)| Op::Rename {
                sdir,
                sname,
                ddir,
                dname
            }
        ),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, name)| Op::Symlink { dir, name }),
    ]
}

/// Resolve one of four candidate directories (root plus up to three
/// well-known subdirectories), falling back to root.
fn pick_dir(v: &Vfs, sel: u8) -> kosha_vfs::FileId {
    let paths = ["/", "/d0", "/d1", "/d0/d2"];
    let p = paths[(sel % 4) as usize];
    v.resolve(p).map(|(id, _)| id).unwrap_or_else(|_| v.root())
}

fn name_for(sel: u8) -> String {
    format!("n{}", sel % 6)
}

/// Recomputes used bytes by walking the tree.
fn recount(v: &Vfs) -> u64 {
    let mut total = 0;
    v.walk(|_, attr| {
        if attr.ftype == FileType::Regular {
            total += attr.size;
        }
    });
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accounting_matches_tree_after_any_ops(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut v = Vfs::new(64 * 1024);
        // Seed well-known directories so ops have targets.
        let _ = v.mkdir_p("/d0/d2", 0o755);
        let _ = v.mkdir_p("/d1", 0o755);

        for op in &ops {
            // Every op may fail with a legal error; none may corrupt state.
            let r: Result<(), VfsError> = match *op {
                Op::Create { dir, name } => {
                    let d = pick_dir(&v, dir);
                    v.create(d, &name_for(name), 0o644, 0, 0).map(|_| ())
                }
                Op::Mkdir { dir, name } => {
                    let d = pick_dir(&v, dir);
                    v.mkdir(d, &name_for(name), 0o755, 0, 0).map(|_| ())
                }
                Op::Write { dir, name, offset, len } => {
                    let d = pick_dir(&v, dir);
                    match v.lookup(d, &name_for(name)) {
                        Ok((f, _)) => {
                            let data = vec![0xAB; len as usize];
                            v.write(f, u64::from(offset % 4096), &data).map(|_| ())
                        }
                        Err(e) => Err(e),
                    }
                }
                Op::Truncate { dir, name, size } => {
                    let d = pick_dir(&v, dir);
                    match v.lookup(d, &name_for(name)) {
                        Ok((f, _)) => v
                            .setattr(f, &SetAttr { size: Some(u64::from(size)), ..Default::default() })
                            .map(|_| ()),
                        Err(e) => Err(e),
                    }
                }
                Op::Remove { dir, name } => {
                    let d = pick_dir(&v, dir);
                    v.remove(d, &name_for(name))
                }
                Op::Rmdir { dir, name } => {
                    let d = pick_dir(&v, dir);
                    v.rmdir(d, &name_for(name))
                }
                Op::Rename { sdir, sname, ddir, dname } => {
                    let s = pick_dir(&v, sdir);
                    let d = pick_dir(&v, ddir);
                    v.rename(s, &name_for(sname), d, &name_for(dname))
                }
                Op::Symlink { dir, name } => {
                    let d = pick_dir(&v, dir);
                    v.symlink(d, &name_for(name), "target#1", 0o777, 0, 0).map(|_| ())
                }
            };
            let _ = r; // failure is fine; corruption is not

            // INVARIANTS after every operation:
            prop_assert_eq!(v.used_bytes(), recount(&v), "quota accounting drifted");
            prop_assert!(v.used_bytes() <= v.capacity(), "quota exceeded");
        }

        // Every reachable object's path resolves back to itself.
        let mut paths = Vec::new();
        v.walk(|p, _| paths.push(p.to_string()));
        for p in paths {
            let (id, _) = v.resolve(&p).unwrap();
            prop_assert_eq!(v.path_of(id).unwrap(), p);
        }
    }

    #[test]
    fn write_read_round_trip(chunks in proptest::collection::vec((0u16..8192, proptest::collection::vec(any::<u8>(), 1..512)), 1..20)) {
        let mut v = Vfs::new(1 << 22);
        let root = v.root();
        let (f, _) = v.create(root, "blob", 0o644, 0, 0).unwrap();
        let mut model = Vec::new();
        for (offset, data) in &chunks {
            let off = *offset as usize;
            if model.len() < off + data.len() {
                model.resize(off + data.len(), 0);
            }
            model[off..off + data.len()].copy_from_slice(data);
            v.write(f, off as u64, data).unwrap();
        }
        let (got, eof) = v.read(f, 0, model.len() as u32 + 10).unwrap();
        prop_assert!(eof);
        prop_assert_eq!(got, model);
    }
}
