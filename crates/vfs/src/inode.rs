//! Inode model: identifiers, types, and attributes.

/// Inode number, unique within one node's store for its lifetime (never
/// reused, so handles cannot alias a recycled object).
pub type Ino = u64;

/// A store-local file identity: inode number plus the store generation in
/// force when the handle was minted. Purging the store (node reincarnation,
/// Section 4.3) bumps the generation, making every outstanding `FileId`
/// stale — exactly NFS's stale-handle semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId {
    /// Inode number.
    pub ino: Ino,
    /// Store generation at mint time.
    pub gen: u32,
}

/// Object type, as in NFSv3 `ftype3` (subset Kosha needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link (also used for Kosha's special links).
    Symlink,
}

/// Object attributes, modeled on NFSv3 `fattr3`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// Object type.
    pub ftype: FileType,
    /// Permission bits (e.g. `0o644`). Kosha preserves NFS permissions
    /// unchanged (Section 4.1.6: "Security in Kosha is identical to NFS
    /// since files in Kosha maintain their permissions").
    pub mode: u32,
    /// Owning user.
    pub uid: u32,
    /// Owning group.
    pub gid: u32,
    /// Size in bytes (directories report an entry-count-based size).
    pub size: u64,
    /// Link count (directories: 2 + subdirectories, as in ufs).
    pub nlink: u32,
    /// Last access, nanoseconds since simulation epoch.
    pub atime: u64,
    /// Last content modification.
    pub mtime: u64,
    /// Last attribute change.
    pub ctime: u64,
}

impl Attr {
    /// Fresh attributes for a new object of `ftype` at time `now`.
    #[must_use]
    pub fn new(ftype: FileType, mode: u32, uid: u32, gid: u32, now: u64) -> Self {
        Attr {
            ftype,
            mode,
            uid,
            gid,
            size: 0,
            nlink: if ftype == FileType::Directory { 2 } else { 1 },
            atime: now,
            mtime: now,
            ctime: now,
        }
    }
}
