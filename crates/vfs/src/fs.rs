//! The filesystem proper: an inode table with directory tree, quota
//! accounting, and handle-generation management.

use crate::error::VfsError;
use crate::inode::{Attr, FileId, FileType, Ino};
use crate::path::{join_path, parent_and_name, split_path, validate_name};
use std::collections::{BTreeMap, HashMap};

/// File payload: real bytes, or a sparse size-only record used by
/// trace-driven simulations (charges quota, stores no data).
#[derive(Debug, Clone)]
enum Payload {
    Bytes(Vec<u8>),
    Sparse(u64),
}

impl Payload {
    fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Sparse(n) => *n,
        }
    }
}

#[derive(Debug, Clone)]
enum Kind {
    File(Payload),
    Dir(BTreeMap<String, Ino>),
    Symlink(String),
}

#[derive(Debug, Clone)]
struct Inode {
    attr: Attr,
    kind: Kind,
    parent: Ino,
}

/// Payload of one exported object (see [`Vfs::export_tree`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportKind {
    /// A directory (children follow as separate items).
    Dir,
    /// A regular file with real contents.
    Bytes(Vec<u8>),
    /// A sparse (size-only) file.
    Sparse(u64),
    /// A symbolic link.
    Symlink {
        /// Link target.
        target: String,
    },
}

/// One object in a tree export, used for migration and replica pushes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportItem {
    /// Path relative to the exported root; empty for the root itself.
    pub rel_path: String,
    /// Object payload.
    pub kind: ExportKind,
    /// Permission bits.
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
}

/// ACCESS bit: read the object / list the directory.
pub const ACCESS_READ: u32 = 0x1;
/// ACCESS bit: modify the object / add or remove directory entries.
pub const ACCESS_WRITE: u32 = 0x2;
/// ACCESS bit: execute the file / traverse the directory (LOOKUP).
pub const ACCESS_EXEC: u32 = 0x4;

/// One directory entry as returned by [`Vfs::readdir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name.
    pub name: String,
    /// Identity of the object.
    pub id: FileId,
    /// Object type (saves a getattr round trip, like READDIRPLUS).
    pub ftype: FileType,
}

/// Attribute updates for `setattr`, modeled on NFSv3 `sattr3` (each field
/// optional).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetAttr {
    /// New permission bits.
    pub mode: Option<u32>,
    /// New owner.
    pub uid: Option<u32>,
    /// New group.
    pub gid: Option<u32>,
    /// Truncate/extend to this size (regular files only).
    pub size: Option<u64>,
    /// Set access time.
    pub atime: Option<u64>,
    /// Set modification time.
    pub mtime: Option<u64>,
}

impl SetAttr {
    /// True if no field is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mode.is_none()
            && self.uid.is_none()
            && self.gid.is_none()
            && self.size.is_none()
            && self.atime.is_none()
            && self.mtime.is_none()
    }
}

/// A node's contributed storage partition. Not internally synchronized:
/// the owning server wraps it in a lock.
///
/// ```
/// use kosha_vfs::Vfs;
/// let mut v = Vfs::new(1 << 20); // 1 MiB contributed
/// let dir = v.mkdir_p("/home/alice", 0o755).unwrap();
/// let (f, _) = v.create(dir, "notes.txt", 0o644, 1000, 1000).unwrap();
/// v.write(f, 0, b"hello").unwrap();
/// assert_eq!(v.read(f, 0, 64).unwrap().0, b"hello");
/// assert_eq!(v.used_bytes(), 5);
/// ```
#[derive(Debug)]
pub struct Vfs {
    inodes: HashMap<Ino, Inode>,
    root: Ino,
    next_ino: Ino,
    generation: u32,
    capacity: u64,
    used: u64,
    now: u64,
}

impl Vfs {
    /// Creates an empty store with a capacity quota in bytes.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        let mut inodes = HashMap::new();
        let root: Ino = 1;
        inodes.insert(
            root,
            Inode {
                attr: Attr::new(FileType::Directory, 0o755, 0, 0, 0),
                kind: Kind::Dir(BTreeMap::new()),
                parent: root,
            },
        );
        Vfs {
            inodes,
            root,
            next_ino: 2,
            generation: 1,
            capacity,
            used: 0,
            now: 0,
        }
    }

    /// Sets the current time used to stamp subsequent operations.
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// Root directory handle.
    #[must_use]
    pub fn root(&self) -> FileId {
        FileId {
            ino: self.root,
            gen: self.generation,
        }
    }

    /// `(capacity, used, free)` in bytes.
    #[must_use]
    pub fn fsstat(&self) -> (u64, u64, u64) {
        (
            self.capacity,
            self.used,
            self.capacity.saturating_sub(self.used),
        )
    }

    /// Bytes currently charged against the quota.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// The capacity quota.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Adjusts the quota (administrator resizing the contributed partition).
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity;
    }

    /// Fraction of capacity in use, `0.0..=1.0` (0 if capacity is 0).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// Discards all contents and invalidates every outstanding handle, as
    /// when a reincarnated node purges stale replicas (Section 4.3).
    pub fn purge(&mut self) {
        self.inodes.clear();
        self.generation += 1;
        self.used = 0;
        self.inodes.insert(
            self.root,
            Inode {
                attr: Attr::new(FileType::Directory, 0o755, 0, 0, self.now),
                kind: Kind::Dir(BTreeMap::new()),
                parent: self.root,
            },
        );
    }

    // ---- internal helpers -------------------------------------------------

    fn get(&self, id: FileId) -> Result<&Inode, VfsError> {
        if id.gen != self.generation {
            return Err(VfsError::Stale);
        }
        self.inodes.get(&id.ino).ok_or(VfsError::Stale)
    }

    fn get_mut(&mut self, id: FileId) -> Result<&mut Inode, VfsError> {
        if id.gen != self.generation {
            return Err(VfsError::Stale);
        }
        self.inodes.get_mut(&id.ino).ok_or(VfsError::Stale)
    }

    fn dir_entries(&self, id: FileId) -> Result<&BTreeMap<String, Ino>, VfsError> {
        match &self.get(id)?.kind {
            Kind::Dir(m) => Ok(m),
            _ => Err(VfsError::NotDir),
        }
    }

    fn id_of(&self, ino: Ino) -> FileId {
        FileId {
            ino,
            gen: self.generation,
        }
    }

    fn alloc_ino(&mut self) -> Ino {
        let ino = self.next_ino;
        self.next_ino += 1;
        ino
    }

    fn charge(&mut self, delta: u64) -> Result<(), VfsError> {
        if self.used.saturating_add(delta) > self.capacity {
            return Err(VfsError::NoSpc);
        }
        self.used += delta;
        Ok(())
    }

    fn release(&mut self, delta: u64) {
        self.used = self.used.saturating_sub(delta);
    }

    /// True if `anc` is `ino` or an ancestor of `ino`.
    fn is_ancestor(&self, anc: Ino, mut ino: Ino) -> bool {
        loop {
            if ino == anc {
                return true;
            }
            if ino == self.root {
                return false;
            }
            match self.inodes.get(&ino) {
                Some(n) => ino = n.parent,
                None => return false,
            }
        }
    }

    // ---- lookups ----------------------------------------------------------

    /// Looks up `name` in directory `dir`.
    pub fn lookup(&self, dir: FileId, name: &str) -> Result<(FileId, Attr), VfsError> {
        validate_name(name)?;
        let entries = self.dir_entries(dir)?;
        let ino = *entries.get(name).ok_or(VfsError::NoEnt)?;
        let inode = self.inodes.get(&ino).ok_or(VfsError::Stale)?;
        Ok((self.id_of(ino), inode.attr.clone()))
    }

    /// Resolves an absolute path of directories (no symlink following —
    /// special links are interpreted by the Kosha layer, not here).
    pub fn resolve(&self, path: &str) -> Result<(FileId, Attr), VfsError> {
        let comps = split_path(path)?;
        let mut cur = self.root();
        for c in comps {
            let (next, _) = self.lookup(cur, c)?;
            cur = next;
        }
        let attr = self.get(cur)?.attr.clone();
        Ok((cur, attr))
    }

    /// Object attributes.
    pub fn getattr(&self, id: FileId) -> Result<Attr, VfsError> {
        Ok(self.get(id)?.attr.clone())
    }

    /// POSIX-style access check (the NFSv3 ACCESS primitive): which of
    /// the requested permission bits (`ACCESS_READ`/`WRITE`/`EXEC`) the
    /// given identity holds on the object. Root (uid 0) is granted
    /// everything, as in classic NFS servers without root squashing.
    pub fn access(&self, id: FileId, uid: u32, gid: u32, want: u32) -> Result<u32, VfsError> {
        let attr = &self.get(id)?.attr;
        if uid == 0 {
            return Ok(want);
        }
        let class_shift = if uid == attr.uid {
            6
        } else if gid == attr.gid {
            3
        } else {
            0
        };
        let bits = (attr.mode >> class_shift) & 0o7;
        let mut granted = 0;
        if want & ACCESS_READ != 0 && bits & 0o4 != 0 {
            granted |= ACCESS_READ;
        }
        if want & ACCESS_WRITE != 0 && bits & 0o2 != 0 {
            granted |= ACCESS_WRITE;
        }
        if want & ACCESS_EXEC != 0 && bits & 0o1 != 0 {
            granted |= ACCESS_EXEC;
        }
        Ok(granted)
    }

    /// Applies attribute updates; size changes re-charge the quota.
    pub fn setattr(&mut self, id: FileId, set: &SetAttr) -> Result<Attr, VfsError> {
        let now = self.now;
        // Size change first (it can fail on quota).
        if let Some(new_size) = set.size {
            let old_size = {
                let inode = self.get(id)?;
                match &inode.kind {
                    Kind::File(p) => p.len(),
                    Kind::Dir(_) => return Err(VfsError::IsDir),
                    Kind::Symlink(_) => return Err(VfsError::NotFile),
                }
            };
            if new_size > old_size {
                self.charge(new_size - old_size)?;
            } else {
                self.release(old_size - new_size);
            }
            let inode = self.get_mut(id)?;
            if let Kind::File(p) = &mut inode.kind {
                match p {
                    Payload::Bytes(b) => b.resize(new_size as usize, 0),
                    Payload::Sparse(n) => *n = new_size,
                }
            }
            inode.attr.size = new_size;
            inode.attr.mtime = now;
        }
        let inode = self.get_mut(id)?;
        if let Some(m) = set.mode {
            inode.attr.mode = m & 0o7777;
        }
        if let Some(u) = set.uid {
            inode.attr.uid = u;
        }
        if let Some(g) = set.gid {
            inode.attr.gid = g;
        }
        if let Some(a) = set.atime {
            inode.attr.atime = a;
        }
        if let Some(m) = set.mtime {
            inode.attr.mtime = m;
        }
        inode.attr.ctime = now;
        Ok(inode.attr.clone())
    }

    // ---- creation ---------------------------------------------------------

    #[allow(clippy::too_many_arguments)] // one site, all fields needed
    fn insert_child(
        &mut self,
        dir: FileId,
        name: &str,
        kind: Kind,
        mode: u32,
        uid: u32,
        gid: u32,
        size_charge: u64,
    ) -> Result<(FileId, Attr), VfsError> {
        validate_name(name)?;
        let is_dir = matches!(kind, Kind::Dir(_));
        // Verify parent is a dir and name free, before allocating.
        {
            let entries = self.dir_entries(dir)?;
            if entries.contains_key(name) {
                return Err(VfsError::Exist);
            }
        }
        self.charge(size_charge)?;
        let ino = self.alloc_ino();
        let ftype = match &kind {
            Kind::File(_) => FileType::Regular,
            Kind::Dir(_) => FileType::Directory,
            Kind::Symlink(_) => FileType::Symlink,
        };
        let mut attr = Attr::new(ftype, mode, uid, gid, self.now);
        attr.size = size_charge;
        if let Kind::Symlink(t) = &kind {
            attr.size = t.len() as u64;
        }
        self.inodes.insert(
            ino,
            Inode {
                attr: attr.clone(),
                kind,
                parent: dir.ino,
            },
        );
        let now = self.now;
        let parent = self.inodes.get_mut(&dir.ino).expect("parent exists");
        if let Kind::Dir(entries) = &mut parent.kind {
            entries.insert(name.to_string(), ino);
            parent.attr.mtime = now;
            parent.attr.ctime = now;
            if is_dir {
                parent.attr.nlink += 1;
            }
        }
        Ok((self.id_of(ino), attr))
    }

    /// Creates an empty regular file.
    pub fn create(
        &mut self,
        dir: FileId,
        name: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> Result<(FileId, Attr), VfsError> {
        self.insert_child(
            dir,
            name,
            Kind::File(Payload::Bytes(Vec::new())),
            mode,
            uid,
            gid,
            0,
        )
    }

    /// Creates a sparse file of `size` bytes: charges quota, stores no
    /// payload. Used by the trace-driven load-balance and redirection
    /// simulations (Figures 5 and 6).
    pub fn create_sized(
        &mut self,
        dir: FileId,
        name: &str,
        size: u64,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> Result<(FileId, Attr), VfsError> {
        self.insert_child(
            dir,
            name,
            Kind::File(Payload::Sparse(size)),
            mode,
            uid,
            gid,
            size,
        )
    }

    /// Creates a directory.
    pub fn mkdir(
        &mut self,
        dir: FileId,
        name: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> Result<(FileId, Attr), VfsError> {
        self.insert_child(dir, name, Kind::Dir(BTreeMap::new()), mode, uid, gid, 0)
    }

    /// Creates every missing component of `path` as a directory and
    /// returns the final directory (like `mkdir -p`).
    pub fn mkdir_p(&mut self, path: &str, mode: u32) -> Result<FileId, VfsError> {
        let comps = split_path(path)?;
        let mut cur = self.root();
        for c in comps {
            cur = match self.lookup(cur, c) {
                Ok((id, attr)) => {
                    if attr.ftype != FileType::Directory {
                        return Err(VfsError::NotDir);
                    }
                    id
                }
                Err(VfsError::NoEnt) => self.mkdir(cur, c, mode, 0, 0)?.0,
                Err(e) => return Err(e),
            };
        }
        Ok(cur)
    }

    /// Creates a symbolic link whose target is `target`. Kosha special
    /// links store `"{name}#{salt}"` here and set the sticky bit
    /// (`0o1777`) in `mode` to distinguish themselves from user symlinks
    /// (`0o777`).
    pub fn symlink(
        &mut self,
        dir: FileId,
        name: &str,
        target: &str,
        mode: u32,
        uid: u32,
        gid: u32,
    ) -> Result<(FileId, Attr), VfsError> {
        self.insert_child(
            dir,
            name,
            Kind::Symlink(target.to_string()),
            mode,
            uid,
            gid,
            0,
        )
    }

    /// Reads a symlink's target.
    pub fn readlink(&self, id: FileId) -> Result<String, VfsError> {
        match &self.get(id)?.kind {
            Kind::Symlink(t) => Ok(t.clone()),
            _ => Err(VfsError::NotSupp),
        }
    }

    // ---- data -------------------------------------------------------------

    /// Reads up to `count` bytes at `offset`; returns the data and an EOF
    /// flag. Sparse files read as zeros.
    pub fn read(
        &mut self,
        id: FileId,
        offset: u64,
        count: u32,
    ) -> Result<(Vec<u8>, bool), VfsError> {
        let now = self.now;
        let inode = self.get_mut(id)?;
        let payload = match &inode.kind {
            Kind::File(p) => p,
            Kind::Dir(_) => return Err(VfsError::IsDir),
            Kind::Symlink(_) => return Err(VfsError::NotFile),
        };
        let size = payload.len();
        let start = offset.min(size);
        let end = offset.saturating_add(u64::from(count)).min(size);
        let data = match payload {
            Payload::Bytes(b) => b[start as usize..end as usize].to_vec(),
            Payload::Sparse(_) => vec![0u8; (end - start) as usize],
        };
        inode.attr.atime = now;
        Ok((data, end >= size))
    }

    /// Writes `data` at `offset`, extending the file if needed. Growth is
    /// charged against the quota; on `NoSpc` nothing is modified.
    pub fn write(&mut self, id: FileId, offset: u64, data: &[u8]) -> Result<u32, VfsError> {
        let old_size = {
            let inode = self.get(id)?;
            match &inode.kind {
                Kind::File(p) => p.len(),
                Kind::Dir(_) => return Err(VfsError::IsDir),
                Kind::Symlink(_) => return Err(VfsError::NotFile),
            }
        };
        let end = offset.saturating_add(data.len() as u64);
        if end > old_size {
            self.charge(end - old_size)?;
        }
        let now = self.now;
        let inode = self.get_mut(id)?;
        if let Kind::File(p) = &mut inode.kind {
            match p {
                Payload::Bytes(b) => {
                    if end > b.len() as u64 {
                        b.resize(end as usize, 0);
                    }
                    b[offset as usize..end as usize].copy_from_slice(data);
                }
                Payload::Sparse(n) => {
                    // Writing to a sparse file keeps it sparse: only the
                    // size is tracked (simulation mode).
                    *n = (*n).max(end);
                }
            }
            inode.attr.size = inode.attr.size.max(end);
            inode.attr.mtime = now;
            inode.attr.ctime = now;
        }
        Ok(data.len() as u32)
    }

    // ---- removal ----------------------------------------------------------

    /// Removes a file or symlink (NFS `REMOVE`).
    pub fn remove(&mut self, dir: FileId, name: &str) -> Result<(), VfsError> {
        validate_name(name)?;
        let ino = {
            let entries = self.dir_entries(dir)?;
            *entries.get(name).ok_or(VfsError::NoEnt)?
        };
        let size = {
            let inode = self.inodes.get(&ino).ok_or(VfsError::Stale)?;
            match &inode.kind {
                Kind::Dir(_) => return Err(VfsError::IsDir),
                Kind::File(p) => p.len(),
                Kind::Symlink(_) => 0,
            }
        };
        let now = self.now;
        if let Some(parent) = self.inodes.get_mut(&dir.ino) {
            if let Kind::Dir(entries) = &mut parent.kind {
                entries.remove(name);
                parent.attr.mtime = now;
                parent.attr.ctime = now;
            }
        }
        self.inodes.remove(&ino);
        self.release(size);
        Ok(())
    }

    /// Removes an empty directory (NFS `RMDIR`).
    pub fn rmdir(&mut self, dir: FileId, name: &str) -> Result<(), VfsError> {
        validate_name(name)?;
        let ino = {
            let entries = self.dir_entries(dir)?;
            *entries.get(name).ok_or(VfsError::NoEnt)?
        };
        {
            let inode = self.inodes.get(&ino).ok_or(VfsError::Stale)?;
            match &inode.kind {
                Kind::Dir(entries) => {
                    if !entries.is_empty() {
                        return Err(VfsError::NotEmpty);
                    }
                }
                _ => return Err(VfsError::NotDir),
            }
        }
        let now = self.now;
        if let Some(parent) = self.inodes.get_mut(&dir.ino) {
            if let Kind::Dir(entries) = &mut parent.kind {
                entries.remove(name);
                parent.attr.nlink -= 1;
                parent.attr.mtime = now;
                parent.attr.ctime = now;
            }
        }
        self.inodes.remove(&ino);
        Ok(())
    }

    /// Recursively removes a directory tree (used when Kosha deletes a
    /// distributed directory's replicated hierarchy). Returns bytes freed.
    pub fn remove_tree(&mut self, dir: FileId, name: &str) -> Result<u64, VfsError> {
        validate_name(name)?;
        let ino = {
            let entries = self.dir_entries(dir)?;
            *entries.get(name).ok_or(VfsError::NoEnt)?
        };
        let before = self.used;
        self.remove_tree_ino(ino);
        let now = self.now;
        let was_dir = true;
        if let Some(parent) = self.inodes.get_mut(&dir.ino) {
            if let Kind::Dir(entries) = &mut parent.kind {
                entries.remove(name);
                if was_dir {
                    parent.attr.nlink = parent.attr.nlink.saturating_sub(1);
                }
                parent.attr.mtime = now;
                parent.attr.ctime = now;
            }
        }
        Ok(before - self.used)
    }

    fn remove_tree_ino(&mut self, ino: Ino) {
        let children: Vec<Ino> = match self.inodes.get(&ino) {
            Some(Inode {
                kind: Kind::Dir(entries),
                ..
            }) => entries.values().copied().collect(),
            _ => Vec::new(),
        };
        for c in children {
            self.remove_tree_ino(c);
        }
        if let Some(inode) = self.inodes.remove(&ino) {
            if let Kind::File(p) = &inode.kind {
                self.release(p.len());
            }
        }
    }

    // ---- rename -----------------------------------------------------------

    /// Renames `sname` in `sdir` to `dname` in `ddir` (NFS `RENAME`).
    ///
    /// POSIX overwrite semantics: an existing regular-file target is
    /// replaced; an existing empty-directory target is replaced by a
    /// directory source; type mismatches and non-empty targets fail. Moving
    /// a directory into its own subtree fails with `Inval`.
    pub fn rename(
        &mut self,
        sdir: FileId,
        sname: &str,
        ddir: FileId,
        dname: &str,
    ) -> Result<(), VfsError> {
        validate_name(sname)?;
        validate_name(dname)?;
        let src_ino = {
            let entries = self.dir_entries(sdir)?;
            *entries.get(sname).ok_or(VfsError::NoEnt)?
        };
        // Destination must be a directory; capture existing target.
        let dst_existing = { self.dir_entries(ddir)?.get(dname).copied() };
        let src_is_dir = matches!(
            self.inodes.get(&src_ino).map(|i| &i.kind),
            Some(Kind::Dir(_))
        );
        // No-op: renaming onto itself.
        if sdir.ino == ddir.ino && sname == dname {
            return Ok(());
        }
        // A directory must not move under itself.
        if src_is_dir && self.is_ancestor(src_ino, ddir.ino) {
            return Err(VfsError::Inval);
        }
        // Handle an existing destination.
        if let Some(dst_ino) = dst_existing {
            if dst_ino == src_ino {
                return Ok(());
            }
            let dst_is_dir = matches!(
                self.inodes.get(&dst_ino).map(|i| &i.kind),
                Some(Kind::Dir(_))
            );
            match (src_is_dir, dst_is_dir) {
                (true, false) => return Err(VfsError::NotDir),
                (false, true) => return Err(VfsError::IsDir),
                (true, true) => {
                    if let Some(Inode {
                        kind: Kind::Dir(entries),
                        ..
                    }) = self.inodes.get(&dst_ino)
                    {
                        if !entries.is_empty() {
                            return Err(VfsError::NotEmpty);
                        }
                    }
                    self.rmdir(ddir, dname)?;
                }
                (false, false) => {
                    self.remove(ddir, dname)?;
                }
            }
        }
        let now = self.now;
        // Unlink from source directory.
        if let Some(parent) = self.inodes.get_mut(&sdir.ino) {
            if let Kind::Dir(entries) = &mut parent.kind {
                entries.remove(sname);
                if src_is_dir {
                    parent.attr.nlink -= 1;
                }
                parent.attr.mtime = now;
                parent.attr.ctime = now;
            }
        }
        // Link into destination directory.
        if let Some(parent) = self.inodes.get_mut(&ddir.ino) {
            if let Kind::Dir(entries) = &mut parent.kind {
                entries.insert(dname.to_string(), src_ino);
                if src_is_dir {
                    parent.attr.nlink += 1;
                }
                parent.attr.mtime = now;
                parent.attr.ctime = now;
            }
        }
        if let Some(node) = self.inodes.get_mut(&src_ino) {
            node.parent = ddir.ino;
            node.attr.ctime = now;
        }
        Ok(())
    }

    // ---- enumeration ------------------------------------------------------

    /// Lists a directory (NFS `READDIRPLUS`-style: names + ids + types).
    pub fn readdir(&self, dir: FileId) -> Result<Vec<DirEntry>, VfsError> {
        let entries = self.dir_entries(dir)?;
        let mut out = Vec::with_capacity(entries.len());
        for (name, &ino) in entries {
            let inode = self.inodes.get(&ino).ok_or(VfsError::Stale)?;
            out.push(DirEntry {
                name: name.clone(),
                id: self.id_of(ino),
                ftype: inode.attr.ftype,
            });
        }
        Ok(out)
    }

    /// Total objects in the store (including the root directory).
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.inodes.len()
    }

    /// Walks the whole tree, invoking `f(path, attr)` for every object
    /// below the root (used by migration and the experiment harnesses).
    pub fn walk<F: FnMut(&str, &Attr)>(&self, mut f: F) {
        self.walk_ino(self.root, "/", &mut f);
    }

    fn walk_ino<F: FnMut(&str, &Attr)>(&self, ino: Ino, path: &str, f: &mut F) {
        let Some(inode) = self.inodes.get(&ino) else {
            return;
        };
        if let Kind::Dir(entries) = &inode.kind {
            for (name, &child) in entries {
                let child_path = join_path(path, name);
                if let Some(ci) = self.inodes.get(&child) {
                    f(&child_path, &ci.attr);
                    if matches!(ci.kind, Kind::Dir(_)) {
                        self.walk_ino(child, &child_path, f);
                    }
                }
            }
        }
    }

    /// Walks only the subtree rooted at `root_path`, invoking
    /// `f(rel_path, attr)` for every object strictly below it.
    pub fn walk_from<F: FnMut(&str, &Attr)>(
        &self,
        root_path: &str,
        mut f: F,
    ) -> Result<(), VfsError> {
        let (id, attr) = self.resolve(root_path)?;
        if attr.ftype != FileType::Directory {
            return Err(VfsError::NotDir);
        }
        self.walk_ino(id.ino, "", &mut f);
        Ok(())
    }

    /// Exports the subtree rooted at `root_path` in pre-order, for
    /// migration and replica pushes. The root itself is included with an
    /// empty relative path. Sparse files export their size only; real
    /// files export their bytes.
    pub fn export_tree(&self, root_path: &str) -> Result<Vec<ExportItem>, VfsError> {
        let (id, _) = self.resolve(root_path)?;
        let mut out = Vec::new();
        self.export_ino(id.ino, String::new(), &mut out)?;
        Ok(out)
    }

    fn export_ino(&self, ino: Ino, rel: String, out: &mut Vec<ExportItem>) -> Result<(), VfsError> {
        let inode = self.inodes.get(&ino).ok_or(VfsError::Stale)?;
        let kind = match &inode.kind {
            Kind::Dir(_) => ExportKind::Dir,
            Kind::File(Payload::Bytes(b)) => ExportKind::Bytes(b.clone()),
            Kind::File(Payload::Sparse(n)) => ExportKind::Sparse(*n),
            Kind::Symlink(t) => ExportKind::Symlink { target: t.clone() },
        };
        out.push(ExportItem {
            rel_path: rel.clone(),
            kind,
            mode: inode.attr.mode,
            uid: inode.attr.uid,
            gid: inode.attr.gid,
        });
        if let Kind::Dir(entries) = &inode.kind {
            for (name, &child) in entries {
                let crel = if rel.is_empty() {
                    name.clone()
                } else {
                    format!("{rel}/{name}")
                };
                self.export_ino(child, crel, out)?;
            }
        }
        Ok(())
    }

    /// Full path of an object, reconstructed from parent pointers (O(depth);
    /// diagnostic helper for tests).
    pub fn path_of(&self, id: FileId) -> Result<String, VfsError> {
        let _ = self.get(id)?;
        let mut parts = Vec::new();
        let mut ino = id.ino;
        while ino != self.root {
            let inode = self.inodes.get(&ino).ok_or(VfsError::Stale)?;
            let parent = self.inodes.get(&inode.parent).ok_or(VfsError::Stale)?;
            if let Kind::Dir(entries) = &parent.kind {
                let name = entries
                    .iter()
                    .find(|(_, &i)| i == ino)
                    .map(|(n, _)| n.clone())
                    .ok_or(VfsError::Stale)?;
                parts.push(name);
            }
            ino = inode.parent;
        }
        parts.reverse();
        let mut s = String::new();
        for p in &parts {
            s.push('/');
            s.push_str(p);
        }
        if s.is_empty() {
            s.push('/');
        }
        Ok(s)
    }

    /// Convenience for tests: resolves `(parent, name)` of a path.
    pub fn resolve_parent(&self, path: &str) -> Result<(FileId, String), VfsError> {
        let norm = crate::path::normalize(path)?;
        let (parent, name) = parent_and_name(&norm).ok_or(VfsError::Inval)?;
        let (pid, pattr) = self.resolve(parent)?;
        if pattr.ftype != FileType::Directory {
            return Err(VfsError::NotDir);
        }
        Ok((pid, name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Vfs {
        Vfs::new(1 << 20) // 1 MiB quota
    }

    #[test]
    fn create_lookup_read_write() {
        let mut v = fs();
        let root = v.root();
        let (f, attr) = v.create(root, "hello.txt", 0o644, 10, 20).unwrap();
        assert_eq!(attr.ftype, FileType::Regular);
        assert_eq!(attr.uid, 10);
        assert_eq!(v.write(f, 0, b"hello world").unwrap(), 11);
        let (data, eof) = v.read(f, 0, 100).unwrap();
        assert_eq!(data, b"hello world");
        assert!(eof);
        let (data, eof) = v.read(f, 6, 5).unwrap();
        assert_eq!(data, b"world");
        assert!(eof);
        let (id2, a2) = v.lookup(root, "hello.txt").unwrap();
        assert_eq!(id2, f);
        assert_eq!(a2.size, 11);
        assert_eq!(v.used_bytes(), 11);
    }

    #[test]
    fn sparse_write_extends_offset() {
        let mut v = fs();
        let root = v.root();
        let (f, _) = v.create(root, "sparse", 0o644, 0, 0).unwrap();
        v.write(f, 100, b"xy").unwrap();
        assert_eq!(v.getattr(f).unwrap().size, 102);
        let (data, _) = v.read(f, 0, 4).unwrap();
        assert_eq!(data, vec![0, 0, 0, 0]);
        assert_eq!(v.used_bytes(), 102);
    }

    #[test]
    fn quota_enforced_and_released() {
        let mut v = Vfs::new(100);
        let root = v.root();
        let (f, _) = v.create(root, "a", 0o644, 0, 0).unwrap();
        assert_eq!(v.write(f, 0, &[7u8; 100]).unwrap(), 100);
        assert_eq!(v.write(f, 100, &[7u8; 1]), Err(VfsError::NoSpc));
        // Nothing was modified by the failed write.
        assert_eq!(v.getattr(f).unwrap().size, 100);
        // Truncation releases space.
        v.setattr(
            f,
            &SetAttr {
                size: Some(40),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(v.used_bytes(), 40);
        assert_eq!(v.write(f, 40, &[1u8; 60]).unwrap(), 60);
        // Remove releases everything.
        v.remove(root, "a").unwrap();
        assert_eq!(v.used_bytes(), 0);
    }

    #[test]
    fn sized_files_charge_quota_without_payload() {
        let mut v = Vfs::new(1000);
        let root = v.root();
        v.create_sized(root, "big", 900, 0o644, 0, 0).unwrap();
        assert_eq!(v.used_bytes(), 900);
        assert_eq!(
            v.create_sized(root, "big2", 200, 0o644, 0, 0),
            Err(VfsError::NoSpc)
        );
        let (f, _) = v.lookup(root, "big").unwrap();
        let (data, eof) = v.read(f, 890, 100).unwrap();
        assert_eq!(data, vec![0u8; 10]);
        assert!(eof);
    }

    #[test]
    fn mkdir_rmdir_nlink() {
        let mut v = fs();
        let root = v.root();
        assert_eq!(v.getattr(root).unwrap().nlink, 2);
        let (d, _) = v.mkdir(root, "d", 0o755, 0, 0).unwrap();
        assert_eq!(v.getattr(root).unwrap().nlink, 3);
        v.create(d, "f", 0o644, 0, 0).unwrap();
        assert_eq!(v.rmdir(root, "d"), Err(VfsError::NotEmpty));
        v.remove(d, "f").unwrap();
        v.rmdir(root, "d").unwrap();
        assert_eq!(v.getattr(root).unwrap().nlink, 2);
        assert_eq!(v.lookup(root, "d"), Err(VfsError::NoEnt));
    }

    #[test]
    fn mkdir_p_idempotent() {
        let mut v = fs();
        let a = v.mkdir_p("/x/y/z", 0o755).unwrap();
        let b = v.mkdir_p("/x/y/z", 0o755).unwrap();
        assert_eq!(a, b);
        let (id, attr) = v.resolve("/x/y/z").unwrap();
        assert_eq!(id, a);
        assert_eq!(attr.ftype, FileType::Directory);
    }

    #[test]
    fn symlink_round_trip() {
        let mut v = fs();
        let root = v.root();
        let (l, attr) = v
            .symlink(root, "sdirm", "sdirm#1774", 0o1777, 0, 0)
            .unwrap();
        assert_eq!(attr.ftype, FileType::Symlink);
        assert_eq!(v.readlink(l).unwrap(), "sdirm#1774");
        let (f, _) = v.create(root, "plain", 0o644, 0, 0).unwrap();
        assert_eq!(v.readlink(f), Err(VfsError::NotSupp));
        // Symlinks are removed with remove(), not rmdir().
        v.remove(root, "sdirm").unwrap();
    }

    #[test]
    fn rename_file_and_overwrite() {
        let mut v = fs();
        let root = v.root();
        let (f, _) = v.create(root, "a", 0o644, 0, 0).unwrap();
        v.write(f, 0, b"data").unwrap();
        let (g, _) = v.create(root, "b", 0o644, 0, 0).unwrap();
        v.write(g, 0, b"old-target-bytes").unwrap();
        v.rename(root, "a", root, "b").unwrap();
        assert_eq!(v.lookup(root, "a"), Err(VfsError::NoEnt));
        let (id, attr) = v.lookup(root, "b").unwrap();
        assert_eq!(id, f);
        assert_eq!(attr.size, 4);
        // Old target's bytes were released.
        assert_eq!(v.used_bytes(), 4);
    }

    #[test]
    fn rename_dir_into_own_subtree_rejected() {
        let mut v = fs();
        let root = v.root();
        let (d, _) = v.mkdir(root, "d", 0o755, 0, 0).unwrap();
        let (sub, _) = v.mkdir(d, "sub", 0o755, 0, 0).unwrap();
        assert_eq!(v.rename(root, "d", sub, "moved"), Err(VfsError::Inval));
        // Renaming into a sibling is fine.
        let (e, _) = v.mkdir(root, "e", 0o755, 0, 0).unwrap();
        v.rename(root, "d", e, "d2").unwrap();
        assert!(v.resolve("/e/d2/sub").is_ok());
    }

    #[test]
    fn rename_type_mismatches() {
        let mut v = fs();
        let root = v.root();
        v.mkdir(root, "d", 0o755, 0, 0).unwrap();
        v.create(root, "f", 0o644, 0, 0).unwrap();
        assert_eq!(v.rename(root, "d", root, "f"), Err(VfsError::NotDir));
        assert_eq!(v.rename(root, "f", root, "d"), Err(VfsError::IsDir));
        // Dir over empty dir succeeds.
        v.mkdir(root, "empty", 0o755, 0, 0).unwrap();
        v.rename(root, "d", root, "empty").unwrap();
        assert!(v.lookup(root, "d").is_err());
        assert!(v.lookup(root, "empty").is_ok());
    }

    #[test]
    fn rename_noop_and_same_target() {
        let mut v = fs();
        let root = v.root();
        let (f, _) = v.create(root, "a", 0o644, 0, 0).unwrap();
        v.rename(root, "a", root, "a").unwrap();
        assert_eq!(v.lookup(root, "a").unwrap().0, f);
    }

    #[test]
    fn readdir_sorted_with_types() {
        let mut v = fs();
        let root = v.root();
        v.create(root, "zed", 0o644, 0, 0).unwrap();
        v.mkdir(root, "adir", 0o755, 0, 0).unwrap();
        v.symlink(root, "mlink", "t#1", 0o777, 0, 0).unwrap();
        let names: Vec<_> = v
            .readdir(root)
            .unwrap()
            .into_iter()
            .map(|e| (e.name, e.ftype))
            .collect();
        assert_eq!(
            names,
            vec![
                ("adir".into(), FileType::Directory),
                ("mlink".into(), FileType::Symlink),
                ("zed".into(), FileType::Regular),
            ]
        );
    }

    #[test]
    fn remove_tree_frees_space() {
        let mut v = fs();
        let d = v.mkdir_p("/a/b/c", 0o755).unwrap();
        let (f, _) = v.create(d, "f", 0o644, 0, 0).unwrap();
        v.write(f, 0, &[1u8; 500]).unwrap();
        let (a, _) = v.resolve("/a").unwrap();
        let _ = a;
        let freed = v.remove_tree(v.root(), "a").unwrap();
        assert_eq!(freed, 500);
        assert_eq!(v.used_bytes(), 0);
        assert!(v.resolve("/a").is_err());
        assert_eq!(v.object_count(), 1); // only root
    }

    #[test]
    fn purge_invalidates_handles() {
        let mut v = fs();
        let root = v.root();
        let (f, _) = v.create(root, "x", 0o644, 0, 0).unwrap();
        v.write(f, 0, b"abc").unwrap();
        v.purge();
        assert_eq!(v.getattr(f), Err(VfsError::Stale));
        assert_eq!(v.getattr(root), Err(VfsError::Stale));
        assert_eq!(v.used_bytes(), 0);
        // New root handle works.
        let root2 = v.root();
        assert_ne!(root, root2);
        v.create(root2, "y", 0o644, 0, 0).unwrap();
    }

    #[test]
    fn walk_and_path_of() {
        let mut v = fs();
        let d = v.mkdir_p("/u/alice/src", 0o755).unwrap();
        let (f, _) = v.create(d, "main.rs", 0o644, 0, 0).unwrap();
        let mut seen = Vec::new();
        v.walk(|p, a| seen.push((p.to_string(), a.ftype)));
        assert!(seen.contains(&("/u/alice/src/main.rs".to_string(), FileType::Regular)));
        assert!(seen.contains(&("/u".to_string(), FileType::Directory)));
        assert_eq!(v.path_of(f).unwrap(), "/u/alice/src/main.rs");
        assert_eq!(v.path_of(v.root()).unwrap(), "/");
    }

    #[test]
    fn setattr_updates_fields() {
        let mut v = fs();
        let root = v.root();
        let (f, _) = v.create(root, "f", 0o644, 1, 1).unwrap();
        v.set_now(42);
        let attr = v
            .setattr(
                f,
                &SetAttr {
                    mode: Some(0o600),
                    uid: Some(7),
                    mtime: Some(99),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(attr.mode, 0o600);
        assert_eq!(attr.uid, 7);
        assert_eq!(attr.mtime, 99);
        assert_eq!(attr.ctime, 42);
    }

    #[test]
    fn setattr_size_on_dir_rejected() {
        let mut v = fs();
        let root = v.root();
        assert_eq!(
            v.setattr(
                root,
                &SetAttr {
                    size: Some(10),
                    ..Default::default()
                }
            ),
            Err(VfsError::IsDir)
        );
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut v = fs();
        let root = v.root();
        v.create(root, "f", 0o644, 0, 0).unwrap();
        assert_eq!(v.create(root, "f", 0o644, 0, 0), Err(VfsError::Exist));
        assert_eq!(v.mkdir(root, "f", 0o755, 0, 0), Err(VfsError::Exist));
    }

    #[test]
    fn export_tree_preorders_and_round_trips() {
        let mut v = fs();
        let d = v.mkdir_p("/tree/sub", 0o750).unwrap();
        let (f, _) = v.create(d, "data.bin", 0o640, 3, 4).unwrap();
        v.write(f, 0, b"payload").unwrap();
        v.symlink(d, "link", "data.bin", 0o777, 3, 4).unwrap();
        v.create_sized(d, "sparse", 1 << 16, 0o600, 3, 4).unwrap();

        let items = v.export_tree("/tree").unwrap();
        // Root first (pre-order), then children.
        assert_eq!(items[0].rel_path, "");
        assert_eq!(items[0].kind, ExportKind::Dir);
        let by_path: std::collections::HashMap<&str, &ExportItem> =
            items.iter().map(|i| (i.rel_path.as_str(), i)).collect();
        assert_eq!(by_path["sub"].kind, ExportKind::Dir);
        assert_eq!(by_path["sub"].mode, 0o750);
        assert_eq!(
            by_path["sub/data.bin"].kind,
            ExportKind::Bytes(b"payload".to_vec())
        );
        assert_eq!(by_path["sub/data.bin"].uid, 3);
        assert_eq!(
            by_path["sub/link"].kind,
            ExportKind::Symlink {
                target: "data.bin".into()
            }
        );
        assert_eq!(by_path["sub/sparse"].kind, ExportKind::Sparse(1 << 16));
        // A parent always precedes its children in the stream.
        let pos = |p: &str| items.iter().position(|i| i.rel_path == p).unwrap();
        assert!(pos("sub") < pos("sub/data.bin"));
        // Exporting a file (non-dir root) works as a single item? No:
        // export requires resolving; files export as a one-item stream.
        let single = v.export_tree("/tree/sub");
        assert!(single.is_ok());
    }

    #[test]
    fn walk_from_scopes_to_subtree() {
        let mut v = fs();
        v.mkdir_p("/a/inner", 0o755).unwrap();
        v.mkdir_p("/b", 0o755).unwrap();
        let (d, _) = v.resolve("/a/inner").unwrap();
        v.create(d, "f", 0o644, 0, 0).unwrap();
        let mut seen = Vec::new();
        v.walk_from("/a", |p, _| seen.push(p.to_string())).unwrap();
        assert!(seen.contains(&"/inner".to_string()));
        assert!(seen.contains(&"/inner/f".to_string()));
        assert!(!seen.iter().any(|p| p.contains("/b")), "escaped subtree");
        assert_eq!(v.walk_from("/missing", |_, _| {}), Err(VfsError::NoEnt));
    }

    #[test]
    fn utilization_tracks_quota() {
        let mut v = Vfs::new(1000);
        assert_eq!(v.utilization(), 0.0);
        let root = v.root();
        let (f, _) = v.create(root, "f", 0o644, 0, 0).unwrap();
        v.write(f, 0, &[0u8; 250]).unwrap();
        assert!((v.utilization() - 0.25).abs() < 1e-9);
        let zero_cap = Vfs::new(0);
        assert_eq!(zero_cap.utilization(), 0.0);
    }

    #[test]
    fn access_checks_owner_group_other() {
        let mut v = fs();
        let root = v.root();
        let (f, _) = v.create(root, "f", 0o640, 10, 20).unwrap();
        // Owner: read+write, no exec.
        assert_eq!(
            v.access(f, 10, 20, ACCESS_READ | ACCESS_WRITE | ACCESS_EXEC)
                .unwrap(),
            ACCESS_READ | ACCESS_WRITE
        );
        // Group: read only.
        assert_eq!(
            v.access(f, 11, 20, ACCESS_READ | ACCESS_WRITE).unwrap(),
            ACCESS_READ
        );
        // Other: nothing.
        assert_eq!(v.access(f, 11, 21, ACCESS_READ | ACCESS_WRITE).unwrap(), 0);
        // Root: everything.
        assert_eq!(
            v.access(f, 0, 0, ACCESS_READ | ACCESS_WRITE | ACCESS_EXEC)
                .unwrap(),
            ACCESS_READ | ACCESS_WRITE | ACCESS_EXEC
        );
    }

    #[test]
    fn lookup_on_file_is_notdir() {
        let mut v = fs();
        let root = v.root();
        let (f, _) = v.create(root, "f", 0o644, 0, 0).unwrap();
        assert_eq!(v.lookup(f, "x"), Err(VfsError::NotDir));
    }
}
