//! In-memory per-node filesystem: the substitute for each Kosha node's
//! local disk partition.
//!
//! The paper dedicates "a local disk partition \[...\] for space
//! contribution. The size of the partition provides control over the amount
//! of disk space contributed to Kosha" (Section 5). This crate implements
//! that partition as an inode-based in-memory filesystem with:
//!
//! * regular files, directories, and symbolic links (Kosha's *special
//!   links* that mark redirected subdirectories are ordinary symlinks),
//! * POSIX-ish attributes (mode, uid/gid, size, timestamps) sufficient to
//!   back the NFSv3 attribute model,
//! * a capacity quota with exact used-byte accounting — the mechanism that
//!   triggers Kosha's salt-redirection when a node fills up (Section 3.3),
//! * *sparse* files that charge quota without storing payload bytes, so the
//!   trace-driven simulations (221 K files, 17.9 GB) run in modest RAM, and
//! * a generation number that invalidates all outstanding handles when a
//!   node is purged (Section 4.3: "all Kosha data on a revived node is
//!   purged").
//!
//! Errors deliberately mirror NFSv3 status codes so the NFS layer maps them
//! 1:1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fs;
pub mod inode;
pub mod path;

pub use error::VfsError;
pub use fs::{
    DirEntry, ExportItem, ExportKind, SetAttr, Vfs, ACCESS_EXEC, ACCESS_READ, ACCESS_WRITE,
};
pub use inode::{Attr, FileId, FileType, Ino};
pub use path::{join_path, normalize, split_path};
