//! Slash-separated path utilities shared by the VFS, the NFS layer, and
//! Kosha's distribution logic.
//!
//! Kosha reasons about paths constantly — the distribution level counts
//! path components below the virtual mount point, and the full path of
//! every virtual handle is recorded in the handle table (Section 4.1.2).
//! Paths here are always absolute, `/`-separated, with no `.`/`..`
//! components after [`normalize`].

use crate::error::VfsError;

/// Maximum length of a single path component, as in NFSv3 implementations.
pub const MAX_NAME: usize = 255;

/// Validates a single directory-entry name: non-empty, no `/`, not `.` or
/// `..`, within [`MAX_NAME`].
pub fn validate_name(name: &str) -> Result<(), VfsError> {
    if name.is_empty() || name == "." || name == ".." {
        return Err(VfsError::Inval);
    }
    if name.len() > MAX_NAME {
        return Err(VfsError::NameTooLong);
    }
    if name.contains('/') || name.contains('\0') {
        return Err(VfsError::Inval);
    }
    Ok(())
}

/// Splits an absolute path into components, rejecting empty and relative
/// paths. `"/"` yields an empty vector.
pub fn split_path(path: &str) -> Result<Vec<&str>, VfsError> {
    if !path.starts_with('/') {
        return Err(VfsError::Inval);
    }
    let mut out = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                if out.pop().is_none() {
                    return Err(VfsError::Inval);
                }
            }
            c => {
                validate_name(c)?;
                out.push(c);
            }
        }
    }
    Ok(out)
}

/// Normalizes an absolute path: collapses `//`, resolves `.`/`..`.
pub fn normalize(path: &str) -> Result<String, VfsError> {
    let comps = split_path(path)?;
    if comps.is_empty() {
        return Ok("/".to_string());
    }
    let mut s = String::with_capacity(path.len());
    for c in comps {
        s.push('/');
        s.push_str(c);
    }
    Ok(s)
}

/// Joins a normalized directory path and a child name.
#[must_use]
pub fn join_path(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

/// Splits a normalized path into `(parent, name)`. Root has no parent.
#[must_use]
pub fn parent_and_name(path: &str) -> Option<(&str, &str)> {
    if path == "/" {
        return None;
    }
    let idx = path.rfind('/')?;
    let parent = if idx == 0 { "/" } else { &path[..idx] };
    Some((parent, &path[idx + 1..]))
}

/// Number of components in a normalized path (`"/"` → 0, `"/a/b"` → 2).
#[must_use]
pub fn depth(path: &str) -> usize {
    if path == "/" {
        0
    } else {
        path.matches('/').count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_normalize() {
        assert_eq!(split_path("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split_path("/").unwrap(), Vec::<&str>::new());
        assert_eq!(normalize("//a///b/./c").unwrap(), "/a/b/c");
        assert_eq!(normalize("/a/b/../c").unwrap(), "/a/c");
        assert_eq!(normalize("/").unwrap(), "/");
        assert!(split_path("relative/a").is_err());
        assert!(normalize("/..").is_err());
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("ok-name_1.txt").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name(".").is_err());
        assert!(validate_name("..").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name(&"x".repeat(256)).is_err());
        assert!(validate_name(&"x".repeat(255)).is_ok());
    }

    #[test]
    fn join_and_parent_round_trip() {
        assert_eq!(join_path("/", "a"), "/a");
        assert_eq!(join_path("/a", "b"), "/a/b");
        assert_eq!(parent_and_name("/a/b"), Some(("/a", "b")));
        assert_eq!(parent_and_name("/a"), Some(("/", "a")));
        assert_eq!(parent_and_name("/"), None);
    }

    #[test]
    fn depth_counts_components() {
        assert_eq!(depth("/"), 0);
        assert_eq!(depth("/a"), 1);
        assert_eq!(depth("/a/b/c"), 3);
    }
}
