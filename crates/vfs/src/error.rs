//! Filesystem errors, mirroring the NFSv3 status codes they map to.

use std::fmt;

/// Errors returned by [`crate::Vfs`] operations.
///
/// Each variant corresponds to an NFSv3 `nfsstat3` the NFS layer reports;
/// the correspondence is noted per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VfsError {
    /// No such file or directory (`NFS3ERR_NOENT`).
    NoEnt,
    /// Path component is not a directory (`NFS3ERR_NOTDIR`).
    NotDir,
    /// Operation requires a non-directory but found one (`NFS3ERR_ISDIR`).
    IsDir,
    /// Name already exists (`NFS3ERR_EXIST`).
    Exist,
    /// Directory not empty (`NFS3ERR_NOTEMPTY`).
    NotEmpty,
    /// Quota exhausted: the write/create would exceed the node's
    /// contributed capacity (`NFS3ERR_NOSPC`). Kosha reacts to this by
    /// redirecting the directory to another node (Section 3.3).
    NoSpc,
    /// Handle no longer valid — e.g. the node was purged on reincarnation
    /// (`NFS3ERR_STALE`).
    Stale,
    /// Invalid argument, such as renaming a directory into its own subtree
    /// or an empty/illegal name (`NFS3ERR_INVAL`).
    Inval,
    /// Name exceeds the limit (`NFS3ERR_NAMETOOLONG`).
    NameTooLong,
    /// Operation not supported on this object type (`NFS3ERR_NOTSUPP`),
    /// e.g. `readlink` on a regular file.
    NotSupp,
    /// Read/write on a symlink or other non-regular object
    /// (`NFS3ERR_INVAL` in practice; kept distinct for diagnostics).
    NotFile,
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VfsError::NoEnt => "no such file or directory",
            VfsError::NotDir => "not a directory",
            VfsError::IsDir => "is a directory",
            VfsError::Exist => "file exists",
            VfsError::NotEmpty => "directory not empty",
            VfsError::NoSpc => "no space left on contributed partition",
            VfsError::Stale => "stale file handle",
            VfsError::Inval => "invalid argument",
            VfsError::NameTooLong => "name too long",
            VfsError::NotSupp => "operation not supported",
            VfsError::NotFile => "not a regular file",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VfsError {}
