//! SHA-1 (FIPS 180-1) implemented from the specification.
//!
//! Kosha derives directory keys with "a SHA-1 hash of the directory name"
//! (Section 3.1). No digest crate is available in the offline dependency
//! set, so this module implements the algorithm directly; it is validated
//! against the FIPS / RFC 3174 test vectors in the unit tests below.
//!
//! SHA-1 is used here purely as a uniform hash for load balancing — exactly
//! the paper's use — not for any security property.

/// Incremental SHA-1 hasher.
///
/// ```
/// use kosha_id::Sha1;
/// let digest = Sha1::digest(b"abc");
/// assert_eq!(Sha1::hex(&digest), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the standard initial state.
    #[must_use]
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the 20-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual append of the length: do not go through update() again for
        // the final 8 bytes, since update() would keep growing self.len.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience: `Sha1::digest(msg)`.
    #[must_use]
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Lowercase hex rendering of a digest.
    #[must_use]
    pub fn hex(digest: &[u8; 20]) -> String {
        let mut s = String::with_capacity(40);
        for b in digest {
            use std::fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn vector_abc() {
        assert_eq!(
            Sha1::hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn vector_two_blocks() {
        assert_eq!(
            Sha1::hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn vector_empty() {
        assert_eq!(
            Sha1::hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn vector_million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            Sha1::hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let msg = b"The quick brown fox jumps over the lazy dog";
        let mut h = Sha1::new();
        for b in msg.iter() {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), Sha1::digest(msg));
        assert_eq!(
            Sha1::hex(&Sha1::digest(msg)),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn incremental_odd_chunking() {
        // Exercise buffer boundaries: 63, 64, 65, 127, 128, 129-byte splits.
        let msg: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let expect = Sha1::digest(&msg);
        for split in [1usize, 63, 64, 65, 127, 128, 129, 255] {
            let mut h = Sha1::new();
            for chunk in msg.chunks(split) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), expect, "split {split}");
        }
    }
}
