//! Key derivation mirroring the paper's mapping scheme.
//!
//! Section 3.1: "A 128-bit unique key is created via a SHA-1 hash of the
//! directory name" — the *name*, not the full path. Key collisions between
//! same-named directories are benign: they merely co-locate those
//! directories on one node (their paths remain distinct).
//!
//! Section 3.3: capacity redirection is "done by concatenating a random salt
//! to the directory name, and rehashing the new name". The special link left
//! in the parent directory targets `"{name}#{salt}"`, so any node can
//! recompute `DHT(hash(name#salt))` from the link alone.

use crate::id::Id;
use crate::sha1::Sha1;

/// Separator between a directory name and its redirection salt, visible in
/// special-link targets (see Figure 3 of the paper: `sdirm#1774`).
pub const SALT_SEP: char = '#';

fn id_from_digest(d: [u8; 20]) -> Id {
    let mut b = [0u8; 16];
    b.copy_from_slice(&d[..16]);
    Id::from_be_bytes(b)
}

/// Key for a directory *name* (no salt): `trunc128(SHA1(name))`.
#[must_use]
pub fn dir_key(name: &str) -> Id {
    id_from_digest(Sha1::digest(name.as_bytes()))
}

/// The salted name used after `salt_round` redirections: `"{name}#{salt}"`.
/// Round 0 is the unsalted name itself.
#[must_use]
pub fn salted_name(name: &str, salt: Option<u64>) -> String {
    match salt {
        None => name.to_string(),
        Some(s) => format!("{name}{SALT_SEP}{s}"),
    }
}

/// Key for a (possibly salted) directory name: `trunc128(SHA1(salted))`.
#[must_use]
pub fn salted_dir_key(name: &str, salt: Option<u64>) -> Id {
    dir_key(&salted_name(name, salt))
}

/// Derives a node identifier from an arbitrary seed string (e.g. a host
/// name). The paper assigns "unique, uniform, randomly-assigned" nodeIds;
/// hashing a unique seed gives the same uniformity deterministically, which
/// keeps simulations reproducible.
#[must_use]
pub fn node_id_from_seed(seed: &str) -> Id {
    id_from_digest(Sha1::digest(seed.as_bytes()))
}

/// Splits a special-link target back into `(name, salt)`.
///
/// Returns `None` if the target carries no salt suffix. Names containing
/// `#` are handled by splitting at the *last* separator whose suffix parses
/// as a number.
#[must_use]
pub fn parse_salted_name(target: &str) -> Option<(&str, u64)> {
    let (name, salt) = target.rsplit_once(SALT_SEP)?;
    let salt: u64 = salt.parse().ok()?;
    Some((name, salt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_key_is_deterministic_and_name_based() {
        assert_eq!(dir_key("beta"), dir_key("beta"));
        assert_ne!(dir_key("beta"), dir_key("gamma"));
    }

    #[test]
    fn same_name_different_paths_collide_by_design() {
        // The paper relies on this: /a/src and /b/src hash identically and
        // are simply stored on the same node.
        assert_eq!(dir_key("src"), dir_key("src"));
    }

    #[test]
    fn salted_key_differs_from_unsalted() {
        let base = salted_dir_key("beta", None);
        let salted = salted_dir_key("beta", Some(1774));
        assert_ne!(base, salted);
        assert_eq!(salted, dir_key("beta#1774"));
    }

    #[test]
    fn salted_name_round_trips() {
        let s = salted_name("sdirm", Some(1774));
        assert_eq!(s, "sdirm#1774");
        assert_eq!(parse_salted_name(&s), Some(("sdirm", 1774)));
        assert_eq!(parse_salted_name("plain"), None);
        assert_eq!(parse_salted_name("odd#name"), None);
        // Name containing '#': split at last separator with numeric suffix.
        assert_eq!(parse_salted_name("a#b#42"), Some(("a#b", 42)));
    }

    #[test]
    fn node_ids_from_distinct_seeds_differ() {
        assert_ne!(node_id_from_seed("host-0"), node_id_from_seed("host-1"));
    }
}
