//! 128-bit identifiers and the circular identifier-space arithmetic used by
//! Pastry routing (digit/prefix math) and leaf sets (ring distances).

use std::fmt;

/// Number of bits per routing digit (`b` in the Pastry paper). Pastry's
/// typical configurations use `2^b = 16` or `32`; Kosha's discussion in
/// Section 6.1.2 assumes a digit base of 16, so we fix `b = 4`.
pub const DIGIT_BITS: u32 = 4;

/// The digit base `2^b` (16): the number of columns in a routing-table row.
pub const DIGIT_BASE: usize = 1 << DIGIT_BITS;

/// Number of base-`2^b` digits in a 128-bit identifier (rows in the routing
/// table): `128 / 4 = 32`.
pub const DIGITS: usize = 128 / DIGIT_BITS as usize;

/// A 128-bit identifier in Pastry's circular identifier space.
///
/// Node identifiers and object keys share this type, exactly as in the
/// paper ("the nodeIds and keys live in the same name space"). Identifiers
/// are compared numerically; the ring wraps at `2^128`.
///
/// ```
/// use kosha_id::Id;
/// let a = Id(0xAB00_0000_0000_0000_0000_0000_0000_0000);
/// let b = Id(0xAB70_0000_0000_0000_0000_0000_0000_0000);
/// assert_eq!(a.shared_prefix_digits(b), 2); // 'A', 'B'
/// assert_eq!(a.digit(0), 0xA);
/// assert_eq!(Id(u128::MAX).ring_distance(Id(0)), 1); // wraps
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(pub u128);

impl Id {
    /// The smallest identifier (all zero bits).
    pub const MIN: Id = Id(0);
    /// The largest identifier (all one bits).
    pub const MAX: Id = Id(u128::MAX);

    /// Builds an identifier from the first 16 bytes of a big-endian byte
    /// string (e.g. the leading bytes of a SHA-1 digest).
    #[must_use]
    pub fn from_be_bytes(bytes: [u8; 16]) -> Self {
        Id(u128::from_be_bytes(bytes))
    }

    /// Returns the big-endian byte representation.
    #[must_use]
    pub fn to_be_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Returns the `row`-th base-`2^b` digit, counting from the most
    /// significant digit (`row = 0`) — the order in which Pastry's
    /// prefix-based routing consumes digits.
    ///
    /// # Panics
    /// Panics if `row >= DIGITS`.
    #[must_use]
    pub fn digit(self, row: usize) -> u8 {
        assert!(row < DIGITS, "digit row {row} out of range");
        let shift = 128 - DIGIT_BITS as usize * (row + 1);
        ((self.0 >> shift) & (DIGIT_BASE as u128 - 1)) as u8
    }

    /// Length (in digits) of the longest common prefix of `self` and
    /// `other`. Two equal identifiers share all [`DIGITS`] digits.
    #[must_use]
    pub fn shared_prefix_digits(self, other: Id) -> usize {
        let x = self.0 ^ other.0;
        if x == 0 {
            return DIGITS;
        }
        x.leading_zeros() as usize / DIGIT_BITS as usize
    }

    /// Absolute distance on the ring: the length of the shorter arc between
    /// the two identifiers. This is the metric Pastry uses to decide which
    /// node is "numerically closest" to a key.
    #[must_use]
    pub fn ring_distance(self, other: Id) -> u128 {
        let d = self.0.wrapping_sub(other.0);
        let e = other.0.wrapping_sub(self.0);
        d.min(e)
    }

    /// Clockwise (increasing-identifier, wrapping) distance from `self` to
    /// `other`: how far one must travel in the direction of larger
    /// identifiers to reach `other`. Zero iff the identifiers are equal.
    #[must_use]
    pub fn cw_distance(self, other: Id) -> u128 {
        other.0.wrapping_sub(self.0)
    }

    /// True if `x` lies on the clockwise arc strictly between `self`
    /// (exclusive) and `end` (inclusive). With `self == end` the arc is the
    /// whole ring, so every `x != self` (plus `x == end`) is inside.
    #[must_use]
    pub fn cw_contains(self, x: Id, end: Id) -> bool {
        if self == end {
            return true;
        }
        self.cw_distance(x) <= self.cw_distance(end) && x != self
    }

    /// Compares which of `a` or `b` is numerically closer to `self`.
    ///
    /// Ties on ring distance (the two candidates sit diametrically on either
    /// side of the key) are broken toward the *smaller* wrapped clockwise
    /// distance and finally toward the smaller identifier, so that ownership
    /// of a key is a total, deterministic order over any node set.
    #[must_use]
    pub fn closer_of(self, a: Id, b: Id) -> Id {
        let da = self.ring_distance(a);
        let db = self.ring_distance(b);
        match da.cmp(&db) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal => {
                // Equidistant: prefer the clockwise successor, then the
                // smaller id. (Any deterministic rule works; all replicas
                // must agree.)
                let ca = self.cw_distance(a);
                let cb = self.cw_distance(b);
                match ca.cmp(&cb) {
                    std::cmp::Ordering::Less => a,
                    std::cmp::Ordering::Greater => b,
                    std::cmp::Ordering::Equal => a.min(b),
                }
            }
        }
    }

    /// Hex string of the identifier's most significant `n` digits, used in
    /// logs and debug displays.
    #[must_use]
    pub fn short_hex(self, n: usize) -> String {
        let full = format!("{:032x}", self.0);
        full[..n.min(32)].to_string()
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:032x})", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl From<u128> for Id {
    fn from(v: u128) -> Self {
        Id(v)
    }
}

/// Selects, from `candidates`, the identifier numerically closest to `key`
/// (ties broken as in [`Id::closer_of`]). Returns `None` on an empty slice.
#[must_use]
pub fn numerically_closest(key: Id, candidates: &[Id]) -> Option<Id> {
    let mut best: Option<Id> = None;
    for &c in candidates {
        best = Some(match best {
            None => c,
            Some(b) => key.closer_of(b, c),
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_msb_first() {
        let id = Id(0xABCD_0000_0000_0000_0000_0000_0000_0001);
        assert_eq!(id.digit(0), 0xA);
        assert_eq!(id.digit(1), 0xB);
        assert_eq!(id.digit(2), 0xC);
        assert_eq!(id.digit(3), 0xD);
        assert_eq!(id.digit(4), 0x0);
        assert_eq!(id.digit(31), 0x1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_out_of_range_panics() {
        let _ = Id(0).digit(32);
    }

    #[test]
    fn shared_prefix() {
        let a = Id(0xABCD_0000_0000_0000_0000_0000_0000_0000);
        let b = Id(0xABCE_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix_digits(b), 3);
        assert_eq!(a.shared_prefix_digits(a), DIGITS);
        assert_eq!(Id(0).shared_prefix_digits(Id(u128::MAX)), 0);
    }

    #[test]
    fn ring_distance_wraps() {
        assert_eq!(Id(0).ring_distance(Id(1)), 1);
        assert_eq!(Id(u128::MAX).ring_distance(Id(0)), 1);
        assert_eq!(Id(5).ring_distance(Id(5)), 0);
        // Opposite points: distance is 2^127 either way.
        assert_eq!(Id(0).ring_distance(Id(1u128 << 127)), 1u128 << 127);
    }

    #[test]
    fn cw_distance_directionality() {
        assert_eq!(Id(10).cw_distance(Id(20)), 10);
        assert_eq!(Id(20).cw_distance(Id(10)), u128::MAX - 9);
        assert_eq!(Id(7).cw_distance(Id(7)), 0);
    }

    #[test]
    fn cw_contains_basic() {
        assert!(Id(10).cw_contains(Id(15), Id(20)));
        assert!(Id(10).cw_contains(Id(20), Id(20)));
        assert!(!Id(10).cw_contains(Id(10), Id(20)));
        assert!(!Id(10).cw_contains(Id(25), Id(20)));
        // Wrapping arc.
        assert!(Id(u128::MAX - 5).cw_contains(Id(3), Id(10)));
    }

    #[test]
    fn closer_of_picks_nearer() {
        let key = Id(100);
        assert_eq!(key.closer_of(Id(90), Id(150)), Id(90));
        assert_eq!(key.closer_of(Id(150), Id(90)), Id(90));
        // Wrap-around nearness.
        let key = Id(2);
        assert_eq!(key.closer_of(Id(u128::MAX), Id(40)), Id(u128::MAX));
    }

    #[test]
    fn closer_of_tie_is_deterministic() {
        let key = Id(100);
        let a = Id(90);
        let b = Id(110);
        // Both are at distance 10; rule must be order-independent.
        assert_eq!(key.closer_of(a, b), key.closer_of(b, a));
    }

    #[test]
    fn numerically_closest_selects_owner() {
        let nodes = [Id(10), Id(50), Id(200)];
        assert_eq!(numerically_closest(Id(45), &nodes), Some(Id(50)));
        assert_eq!(numerically_closest(Id(12), &nodes), Some(Id(10)));
        assert_eq!(numerically_closest(Id(0), &[]), None);
    }

    #[test]
    fn short_hex_truncates() {
        let id = Id(0xABCD_EF00_0000_0000_0000_0000_0000_0000);
        assert_eq!(id.short_hex(6), "abcdef");
        assert_eq!(id.short_hex(64).len(), 32);
    }
}
