//! Identifier arithmetic for the Kosha peer-to-peer file system.
//!
//! Kosha (Butt, Johnson, Zheng & Hu, SC 2004) organizes storage nodes in a
//! Pastry overlay: every node has a uniform random 128-bit *node identifier*
//! and every directory is mapped to a 128-bit *key* obtained from a SHA-1
//! hash of the directory name (FIPS 180-1). Both live in the same circular
//! identifier space; a key is owned by the live node whose identifier is
//! *numerically closest* to it.
//!
//! This crate provides:
//!
//! * [`Id`] — a 128-bit identifier with the digit/prefix arithmetic Pastry
//!   routing needs (base `2^b` digits, shared-prefix length) and the ring
//!   arithmetic the leaf set needs (wrapping distances, numerical closeness).
//! * [`Sha1`] — a from-scratch FIPS 180-1 SHA-1 implementation (no external
//!   digest crate is available in the offline build environment), validated
//!   against the published test vectors.
//! * [`key`] — key-derivation helpers mirroring the paper's scheme: a
//!   directory's key is the hash of its *name* (not its path), and capacity
//!   redirection re-hashes `"{name}#{salt}"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod id;
pub mod key;
pub mod sha1;

pub use id::{Id, DIGITS, DIGIT_BASE, DIGIT_BITS};
pub use key::{dir_key, node_id_from_seed, salted_dir_key, salted_name};
pub use sha1::Sha1;
