//! Property-based tests for identifier arithmetic and SHA-1.

use kosha_id::id::numerically_closest;
use kosha_id::{dir_key, salted_name, Id, Sha1, DIGITS};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sha1_chunking_invariant(msg in proptest::collection::vec(any::<u8>(), 0..600),
                               splits in proptest::collection::vec(1usize..70, 1..8)) {
        let expect = Sha1::digest(&msg);
        let mut h = Sha1::new();
        let mut rest = msg.as_slice();
        let mut i = 0;
        while !rest.is_empty() {
            let take = splits[i % splits.len()].min(rest.len());
            h.update(&rest[..take]);
            rest = &rest[take..];
            i += 1;
        }
        prop_assert_eq!(h.finalize(), expect);
    }

    #[test]
    fn shared_prefix_is_symmetric_and_correct(a in any::<u128>(), b in any::<u128>()) {
        let (a, b) = (Id(a), Id(b));
        let k = a.shared_prefix_digits(b);
        prop_assert_eq!(k, b.shared_prefix_digits(a));
        for row in 0..k {
            prop_assert_eq!(a.digit(row), b.digit(row));
        }
        if k < DIGITS {
            prop_assert_ne!(a.digit(k), b.digit(k));
        } else {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn ring_distance_symmetric_and_bounded(a in any::<u128>(), b in any::<u128>()) {
        let (a, b) = (Id(a), Id(b));
        prop_assert_eq!(a.ring_distance(b), b.ring_distance(a));
        prop_assert!(a.ring_distance(b) <= 1u128 << 127);
        prop_assert_eq!(a.ring_distance(a), 0);
    }

    #[test]
    fn cw_distances_sum_to_ring(a in any::<u128>(), b in any::<u128>()) {
        let (a, b) = (Id(a), Id(b));
        if a != b {
            prop_assert_eq!(a.cw_distance(b).wrapping_add(b.cw_distance(a)), 0u128.wrapping_sub(0)); // both arcs sum to 2^128 ≡ 0
            prop_assert_eq!(a.ring_distance(b), a.cw_distance(b).min(b.cw_distance(a)));
        }
    }

    #[test]
    fn closest_is_order_independent(key in any::<u128>(),
                                    mut ids in proptest::collection::vec(any::<u128>(), 1..20)) {
        let key = Id(key);
        let fwd: Vec<Id> = ids.iter().map(|&v| Id(v)).collect();
        ids.reverse();
        let rev: Vec<Id> = ids.iter().map(|&v| Id(v)).collect();
        prop_assert_eq!(numerically_closest(key, &fwd), numerically_closest(key, &rev));
    }

    #[test]
    fn closest_minimizes_distance(key in any::<u128>(),
                                  ids in proptest::collection::vec(any::<u128>(), 1..20)) {
        let key = Id(key);
        let ids: Vec<Id> = ids.into_iter().map(Id).collect();
        let best = numerically_closest(key, &ids).unwrap();
        let dmin = ids.iter().map(|i| key.ring_distance(*i)).min().unwrap();
        prop_assert_eq!(key.ring_distance(best), dmin);
    }

    #[test]
    fn salted_name_parses_back(name in "[a-zA-Z0-9_.-]{1,32}", salt in any::<u64>()) {
        let s = salted_name(&name, Some(salt));
        let parsed = kosha_id::key::parse_salted_name(&s);
        prop_assert_eq!(parsed, Some((name.as_str(), salt)));
    }

    #[test]
    fn dir_keys_spread_uniformly(names in proptest::collection::hash_set("[a-z]{1,12}", 2..40)) {
        // Distinct names should (essentially always) yield distinct keys.
        let keys: std::collections::HashSet<_> = names.iter().map(|n| dir_key(n)).collect();
        prop_assert_eq!(keys.len(), names.len());
    }
}
