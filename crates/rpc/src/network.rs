//! The node-to-node communication abstraction.
//!
//! Every interaction between machines in the system — Pastry overlay
//! messages, NFS RPCs, Kosha control traffic — is a blocking request/reply
//! [`Network::call`] carrying encoded bytes. Nodes register an
//! [`RpcHandler`] per [`ServiceId`] in a [`ServiceMux`]; the transport owns
//! delivery, latency, and failure semantics.

use crate::clock::Clock;
use crate::wire::{Reader, WireError, WireRead, WireWrite, Writer};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Physical address of a machine (stable across its lifetime, unlike its
/// Pastry identifier, which changes if the node is reincarnated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeAddr(pub u64);

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl WireWrite for NodeAddr {
    fn write(&self, w: &mut Writer) {
        w.u64(self.0);
    }
}
impl WireRead for NodeAddr {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeAddr(r.u64()?))
    }
}

/// Identifies which protocol layer a request is addressed to, mirroring the
/// prototype's two-level messaging (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceId {
    /// Pastry overlay maintenance and routing queries.
    Pastry,
    /// NFS protocol operations against a node's local store.
    Nfs,
    /// Kosha-to-Kosha control traffic (replication, migration).
    Kosha,
    /// The `koshad` loopback NFS server exporting the virtual `/kosha`
    /// file system (virtual handles). Distinct from [`ServiceId::Nfs`],
    /// which is the node's *real* NFS export of its contributed disk.
    KoshaFs,
    /// Replica-maintenance traffic (mirror fan-out, batched anchor
    /// pushes). A *leaf* service: its handlers only touch the local
    /// replica area and never issue nested RPCs, so primaries may fan
    /// out to each other concurrently without forming the same-service
    /// call cycles the transports cannot serve (see the deadlock
    /// discipline in [`crate::ThreadedNetwork`]'s docs).
    KoshaReplica,
}

impl ServiceId {
    /// All services, in tag order (used to pre-register per-service
    /// metrics so expositions list every service even before traffic).
    pub const ALL: [ServiceId; 5] = [
        ServiceId::Pastry,
        ServiceId::Nfs,
        ServiceId::Kosha,
        ServiceId::KoshaFs,
        ServiceId::KoshaReplica,
    ];

    /// Stable lower-case label for metric names.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServiceId::Pastry => "pastry",
            ServiceId::Nfs => "nfs",
            ServiceId::Kosha => "kosha",
            ServiceId::KoshaFs => "koshafs",
            ServiceId::KoshaReplica => "replica",
        }
    }

    /// Static span name for transport-level RPC spans (`rpc:<service>`),
    /// precomputed so the traced call path allocates nothing extra.
    #[must_use]
    pub fn rpc_span_name(self) -> &'static str {
        match self {
            ServiceId::Pastry => "rpc:pastry",
            ServiceId::Nfs => "rpc:nfs",
            ServiceId::Kosha => "rpc:kosha",
            ServiceId::KoshaFs => "rpc:koshafs",
            ServiceId::KoshaReplica => "rpc:replica",
        }
    }

    pub(crate) fn index(self) -> usize {
        self.tag() as usize - 1
    }

    fn tag(self) -> u8 {
        match self {
            ServiceId::Pastry => 1,
            ServiceId::Nfs => 2,
            ServiceId::Kosha => 3,
            ServiceId::KoshaFs => 4,
            ServiceId::KoshaReplica => 5,
        }
    }

    fn from_tag(t: u8) -> Result<Self, WireError> {
        match t {
            1 => Ok(ServiceId::Pastry),
            2 => Ok(ServiceId::Nfs),
            3 => Ok(ServiceId::Kosha),
            4 => Ok(ServiceId::KoshaFs),
            5 => Ok(ServiceId::KoshaReplica),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl WireWrite for ServiceId {
    fn write(&self, w: &mut Writer) {
        w.u8(self.tag());
    }
}
impl WireRead for ServiceId {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        ServiceId::from_tag(r.u8()?)
    }
}

/// Optional causal-trace identifiers carried on a request frame
/// (Dapper-style propagation; see `kosha_obs::trace`). Absent on
/// untraced requests and on frames from pre-trace peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Trace the request belongs to.
    pub trace_id: u64,
    /// The caller-side span that issued the request (the parent of any
    /// server-side spans).
    pub span_id: u64,
}

impl TraceHeader {
    /// Converts to the obs-layer span context.
    #[must_use]
    pub fn ctx(self) -> kosha_obs::SpanContext {
        kosha_obs::SpanContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
        }
    }

    /// Builds a header from a span context.
    #[must_use]
    pub fn from_ctx(ctx: kosha_obs::SpanContext) -> Self {
        TraceHeader {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
        }
    }
}

impl WireWrite for TraceHeader {
    fn write(&self, w: &mut Writer) {
        w.u64(self.trace_id);
        w.u64(self.span_id);
    }
}
impl WireRead for TraceHeader {
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TraceHeader {
            trace_id: r.u64()?,
            span_id: r.u64()?,
        })
    }
}

/// Frame-format marker for requests carrying optional headers. Legacy
/// frames start with a raw service tag (1–5); the marker is outside
/// that range, so a decoder accepts both formats (see
/// [`RpcRequest::read`]'s docs).
const FRAME_V2: u8 = 0x7E;

/// A request frame: destination service plus an opaque encoded body,
/// optionally stamped with a [`TraceHeader`].
#[derive(Debug, Clone)]
pub struct RpcRequest {
    /// Which protocol layer should handle the body.
    pub service: ServiceId,
    /// Causal-trace header, stamped by the transport from the caller's
    /// ambient context (`None` when tracing is off / no trace active).
    pub trace: Option<TraceHeader>,
    /// Encoded request payload (layer-specific message type).
    pub body: Bytes,
}

impl RpcRequest {
    /// Builds a request by encoding `msg` for `service`.
    pub fn new<T: WireWrite>(service: ServiceId, msg: &T) -> Self {
        RpcRequest {
            service,
            trace: None,
            body: msg.encode(),
        }
    }

    /// Total frame size in bytes (header + body), used for byte
    /// accounting. Untraced requests use the legacy frame layout, so
    /// enabling tracing does not change the modeled cost of untraced
    /// traffic.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self.trace {
            // service tag + u32 length + body
            None => 1 + 4 + self.body.len(),
            // marker + flags + service tag + trace ids + u32 length + body
            Some(_) => 1 + 1 + 1 + 16 + 4 + self.body.len(),
        }
    }
}

/// Frame flag bit: a [`TraceHeader`] follows the service tag.
const FLAG_TRACE: u8 = 0x01;

impl WireWrite for RpcRequest {
    /// Encodes the frame. Untraced requests keep the legacy layout
    /// (`service tag, body`) byte-for-byte; traced requests use the v2
    /// layout (`FRAME_V2, flags, service tag, trace header, body`).
    fn write(&self, w: &mut Writer) {
        match self.trace {
            None => {
                self.service.write(w);
                w.bytes(&self.body);
            }
            Some(h) => {
                w.u8(FRAME_V2);
                w.u8(FLAG_TRACE);
                self.service.write(w);
                h.write(w);
                w.bytes(&self.body);
            }
        }
    }
}

impl WireRead for RpcRequest {
    /// Decodes either frame format: a leading service tag (1–5) selects
    /// the legacy layout — frames from peers that predate the trace
    /// header decode with `trace: None` — while [`FRAME_V2`] selects
    /// the extended layout.
    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let first = r.u8()?;
        if first != FRAME_V2 {
            return Ok(RpcRequest {
                service: ServiceId::from_tag(first)?,
                trace: None,
                body: Bytes::from(r.bytes()?),
            });
        }
        let flags = r.u8()?;
        let service = ServiceId::read(r)?;
        let trace = if flags & FLAG_TRACE != 0 {
            Some(TraceHeader::read(r)?)
        } else {
            None
        };
        Ok(RpcRequest {
            service,
            trace,
            body: Bytes::from(r.bytes()?),
        })
    }
}

/// A reply frame: opaque encoded body.
#[derive(Debug, Clone)]
pub struct RpcResponse {
    /// Encoded response payload.
    pub body: Bytes,
}

impl RpcResponse {
    /// Builds a response by encoding `msg`.
    pub fn new<T: WireWrite>(msg: &T) -> Self {
        RpcResponse { body: msg.encode() }
    }

    /// Decodes the body as `T`.
    pub fn decode<T: WireRead>(&self) -> Result<T, RpcError> {
        T::decode(&self.body).map_err(RpcError::Decode)
    }

    /// Total frame size in bytes.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        4 + self.body.len()
    }
}

/// Errors surfaced by [`Network::call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// Destination is down, unknown, or unreachable; the caller observed a
    /// timeout. This is the error Kosha's fault handling reacts to
    /// (Section 4.4: "Kosha detects an RPC error and removes the mapping").
    Unreachable(NodeAddr),
    /// The destination had no handler for the addressed service.
    NoService(ServiceId),
    /// A payload failed to decode.
    Decode(WireError),
    /// The remote handler failed in a way that is not a protocol-level
    /// status (protocol statuses travel inside response bodies).
    Remote(String),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Unreachable(a) => write!(f, "node {a} unreachable"),
            RpcError::NoService(s) => write!(f, "no handler for service {s:?}"),
            RpcError::Decode(e) => write!(f, "decode error: {e}"),
            RpcError::Remote(m) => write!(f, "remote error: {m}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        RpcError::Decode(e)
    }
}

/// A protocol layer's message handler. Handlers must be re-entrant with
/// respect to *other* nodes: while serving a request a handler may issue
/// nested [`Network::call`]s to third nodes, but must never call back into
/// the node currently being served (the transports do not guarantee
/// progress for such cycles, matching real blocking-RPC deployments).
pub trait RpcHandler: Send + Sync {
    /// Handles one request from `from`, returning an encoded response.
    fn handle(&self, from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError>;
}

/// Per-node table of service handlers.
#[derive(Default)]
pub struct ServiceMux {
    // lint: allow(L008) bounded by the fixed ServiceId set: registered once at node construction, never per-peer
    handlers: RwLock<HashMap<ServiceId, Arc<dyn RpcHandler>>>,
}

impl ServiceMux {
    /// New empty mux.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the handler for `service`.
    pub fn register(&self, service: ServiceId, handler: Arc<dyn RpcHandler>) {
        self.handlers.write().insert(service, handler);
    }

    /// Dispatches a request to the registered handler.
    pub fn dispatch(&self, from: NodeAddr, req: &RpcRequest) -> Result<RpcResponse, RpcError> {
        let handler = self
            .handlers
            .read()
            .get(&req.service)
            .cloned()
            .ok_or(RpcError::NoService(req.service))?;
        handler.handle(from, &req.body)
    }

    /// The services currently registered (used by transports that
    /// dedicate resources per service, e.g. one mailbox thread each).
    #[must_use]
    pub fn services(&self) -> Vec<ServiceId> {
        let mut services: Vec<ServiceId> = self.handlers.read().keys().copied().collect();
        // Tag order, not hash order: callers spawn per-service resources
        // (mailbox threads) in this order, and that must be stable.
        services.sort_by_key(|s| s.index());
        services
    }

    /// Fetches one service's handler.
    #[must_use]
    pub fn handler(&self, service: ServiceId) -> Option<Arc<dyn RpcHandler>> {
        self.handlers.read().get(&service).cloned()
    }
}

/// A periodic maintenance hook a transport may drive on behalf of a
/// node — Kosha registers its write-behind replication pump here so
/// queued replica mutations are flushed even when the node is
/// otherwise idle. Implementations must be cheap when there is nothing
/// to do and must never call back into the registering node's own
/// services (the usual re-entrancy discipline).
pub trait PumpHook: Send + Sync {
    /// Drains whatever the owner has queued.
    fn pump(&self);
}

/// Completion handle for an RPC issued with [`Network::call_async`]:
/// either an already-finished result (synchronous transports — under
/// virtual time there is nothing to overlap with) or a deferred wait
/// the caller redeems when it needs the response. Between issue and
/// [`CallCompletion::wait`] the caller is free to issue more RPCs or do
/// local work — continuation-style dispatch without a thread per call.
pub struct CallCompletion {
    inner: CompletionInner,
}

enum CompletionInner {
    Ready(Result<RpcResponse, RpcError>),
    Deferred(Box<dyn FnOnce() -> Result<RpcResponse, RpcError> + Send>),
}

impl CallCompletion {
    /// A completion that already holds its result.
    #[must_use]
    pub fn ready(result: Result<RpcResponse, RpcError>) -> Self {
        CallCompletion {
            inner: CompletionInner::Ready(result),
        }
    }

    /// A completion redeemed by running `wait` (which may block).
    #[must_use]
    pub fn deferred(wait: Box<dyn FnOnce() -> Result<RpcResponse, RpcError> + Send>) -> Self {
        CallCompletion {
            inner: CompletionInner::Deferred(wait),
        }
    }

    /// True when the result is already available and `wait` cannot block.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        matches!(self.inner, CompletionInner::Ready(_))
    }

    /// Blocks until the RPC finishes (or times out at the transport's
    /// configured deadline) and returns its result.
    pub fn wait(self) -> Result<RpcResponse, RpcError> {
        match self.inner {
            CompletionInner::Ready(r) => r,
            CompletionInner::Deferred(f) => f(),
        }
    }
}

/// A transport connecting nodes. Implementations: [`crate::SimNetwork`]
/// (deterministic, virtual time) and [`crate::ThreadedNetwork`] (real
/// threads).
pub trait Network: Send + Sync {
    /// Performs a blocking RPC from `from` to `to`.
    fn call(&self, from: NodeAddr, to: NodeAddr, req: RpcRequest) -> Result<RpcResponse, RpcError>;

    /// Issues an RPC without blocking, returning a [`CallCompletion`]
    /// the caller redeems later. The default implementation is the
    /// blocking call wrapped in an already-ready completion — correct
    /// for synchronous transports ([`crate::SimNetwork`] resolves every
    /// call under virtual time with nothing real to overlap). The
    /// threaded transport overrides this with true reactor dispatch, so
    /// a caller can put hundreds of RPCs in flight from one thread.
    fn call_async(&self, from: NodeAddr, to: NodeAddr, req: RpcRequest) -> CallCompletion {
        CallCompletion::ready(self.call(from, to, req))
    }

    /// Performs a batch of RPCs issued concurrently from `from`,
    /// blocking until every one has completed. Results are returned in
    /// batch order, each carrying the same success/failure outcome
    /// [`Network::call`] would have produced for that entry.
    ///
    /// Transports overlap the batch: [`crate::SimNetwork`] charges the
    /// virtual clock the `max` of the per-call latencies instead of
    /// their sum, and [`crate::ThreadedNetwork`] runs the calls on real
    /// concurrent threads. The default implementation is serial, which
    /// is always semantically correct — just slower.
    fn call_many(
        &self,
        from: NodeAddr,
        batch: Vec<(NodeAddr, RpcRequest)>,
    ) -> Vec<Result<RpcResponse, RpcError>> {
        batch
            .into_iter()
            .map(|(to, req)| self.call(from, to, req))
            .collect()
    }

    /// The clock all participants share.
    fn clock(&self) -> Arc<dyn Clock>;

    /// Whether `addr` is currently reachable (used by liveness probes).
    fn is_up(&self, addr: NodeAddr) -> bool;

    /// Registers a [`PumpHook`] the transport should drive roughly every
    /// `interval`. Returns `true` when the transport runs the hook
    /// itself on a background worker ([`crate::ThreadedNetwork`]);
    /// `false` when the caller must drive pumping explicitly —
    /// [`crate::SimNetwork`] records the hook and exposes `run_pumps()`
    /// so virtual-time tests and benches stay deterministic. The hook is
    /// held weakly: it is dropped (and a worker exits) once the owner
    /// goes away. The default implementation ignores the registration.
    fn schedule_pump(&self, hook: std::sync::Weak<dyn PumpHook>, interval: Duration) -> bool {
        let _ = (hook, interval);
        false
    }

    /// Smoothed round-trip latency of the directed link `from → to` in
    /// nanoseconds (EWMA over calls `from` itself has completed), or
    /// `None` before that link has carried any traffic. Keyed by link
    /// rather than destination alone so one node's estimate is never
    /// colored by another node's vantage point — on a non-uniform
    /// network a far peer's slow calls to `to` say nothing about ours.
    /// Feeds latency-aware replica-read selection.
    fn peer_latency_nanos(&self, from: NodeAddr, to: NodeAddr) -> Option<u64> {
        let _ = (from, to);
        None
    }
}

/// Typed convenience wrapper: encode `msg`, call, decode the reply.
pub fn call_typed<Req: WireWrite, Resp: WireRead>(
    net: &dyn Network,
    from: NodeAddr,
    to: NodeAddr,
    service: ServiceId,
    msg: &Req,
) -> Result<Resp, RpcError> {
    let resp = net.call(from, to, RpcRequest::new(service, msg))?;
    resp.decode()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl RpcHandler for Echo {
        fn handle(&self, _from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
            Ok(RpcResponse {
                body: Bytes::copy_from_slice(body),
            })
        }
    }

    #[test]
    fn mux_dispatches_and_reports_missing() {
        let mux = ServiceMux::new();
        mux.register(ServiceId::Nfs, Arc::new(Echo));
        let req = RpcRequest::new(ServiceId::Nfs, &42u32);
        let resp = mux.dispatch(NodeAddr(1), &req).unwrap();
        assert_eq!(resp.decode::<u32>().unwrap(), 42);

        let req = RpcRequest::new(ServiceId::Pastry, &1u8);
        assert!(matches!(
            mux.dispatch(NodeAddr(1), &req),
            Err(RpcError::NoService(ServiceId::Pastry))
        ));
    }

    #[test]
    fn service_id_round_trips() {
        for s in ServiceId::ALL {
            let b = s.encode();
            assert_eq!(ServiceId::decode(&b).unwrap(), s);
        }
        assert!(ServiceId::decode(&[9]).is_err());
    }

    #[test]
    fn wire_size_accounts_header() {
        let req = RpcRequest::new(ServiceId::Nfs, &7u64);
        assert_eq!(req.wire_size(), 1 + 4 + 8);
        let resp = RpcResponse::new(&7u32);
        assert_eq!(resp.wire_size(), 4 + 4);
        let traced = RpcRequest {
            trace: Some(TraceHeader {
                trace_id: 1,
                span_id: 2,
            }),
            ..req
        };
        assert_eq!(traced.wire_size(), 3 + 16 + 4 + 8);
    }

    #[test]
    fn untraced_frame_keeps_legacy_layout() {
        // An untraced request encodes exactly as the pre-header codec
        // did: service tag, then length-prefixed body.
        let req = RpcRequest::new(ServiceId::Kosha, &0xBEEFu32);
        let frame = req.encode();
        let mut legacy = Writer::new();
        legacy.u8(3); // Kosha's service tag
        legacy.bytes(&req.body);
        assert_eq!(&frame[..], &legacy.finish()[..]);
        assert_eq!(frame.len(), req.wire_size());
    }

    #[test]
    fn legacy_frame_decodes_without_trace() {
        // A frame produced by a pre-trace peer (raw service tag first)
        // must decode against the new codec, with no trace header.
        let mut w = Writer::new();
        w.u8(2); // Nfs
        w.bytes(&42u64.encode());
        let decoded = RpcRequest::decode(&w.finish()).unwrap();
        assert_eq!(decoded.service, ServiceId::Nfs);
        assert_eq!(decoded.trace, None);
        assert_eq!(u64::decode(&decoded.body).unwrap(), 42);
    }

    #[test]
    fn traced_frame_round_trips() {
        let mut req = RpcRequest::new(ServiceId::KoshaReplica, &7u8);
        req.trace = Some(TraceHeader {
            trace_id: 0xDEAD_BEEF,
            span_id: 0xFEED,
        });
        let frame = req.encode();
        assert_eq!(frame.len(), req.wire_size());
        let back = RpcRequest::decode(&frame).unwrap();
        assert_eq!(back.service, req.service);
        assert_eq!(back.trace, req.trace);
        assert_eq!(back.body, req.body);
    }

    #[test]
    fn bad_frame_marker_is_rejected() {
        assert!(RpcRequest::decode(&[9, 0, 0, 0, 0]).is_err());
        assert!(RpcRequest::decode(&[]).is_err());
    }
}
