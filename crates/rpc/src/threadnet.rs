//! Real-thread transport: one mailbox thread per (node, service).
//!
//! Used by the concurrency integration tests to exercise the same node
//! logic as [`crate::SimNetwork`] but with genuine parallelism: each
//! service of each node is served on a dedicated thread (as each daemon —
//! nfsd, koshad, the overlay — runs as its own process on a real
//! machine), callers block on a reply channel, and multiple clients drive
//! the cluster concurrently. Delivery order between distinct callers is
//! real scheduler order, which shakes out locking mistakes a
//! deterministic simulation cannot.
//!
//! Deadlock discipline: because mailboxes are per *service*, nested calls
//! may revisit a node as long as they target a different service — e.g.
//! `client → koshad(A) → control(B) → nfsd(A)` is fine. What must not
//! happen (and does not, in the Kosha protocols) is a same-service cycle
//! such as `koshad(A) → … → koshad(A)`.

use crate::clock::{Clock, WallClock};
use crate::metrics::NetMetrics;
use crate::network::{
    Network, NodeAddr, PumpHook, RpcError, RpcRequest, RpcResponse, ServiceId, ServiceMux,
    TraceHeader,
};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use kosha_obs::{trace, Obs};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

type ReplyTx = Sender<Result<RpcResponse, RpcError>>;

enum Mail {
    Request {
        from: NodeAddr,
        req: RpcRequest,
        reply: ReplyTx,
    },
    Shutdown,
}

struct Mailbox {
    tx: Sender<Mail>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Mailbox {
    fn stop(mut self) {
        let _ = self.tx.send(Mail::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Thread-per-(node, service) transport. Nodes are attached with their
/// [`ServiceMux`]; dedicated threads serve each registered service until
/// the network is dropped or the node is detached.
pub struct ThreadedNetwork {
    clock: Arc<WallClock>,
    nodes: RwLock<HashMap<(NodeAddr, ServiceId), Mailbox>>,
    down: RwLock<HashSet<NodeAddr>>,
    /// How long callers wait for a reply before declaring the node dead.
    call_timeout: Duration,
    metrics: NetMetrics,
    /// Raised on drop; pump worker threads exit at their next tick.
    pump_stop: Arc<AtomicBool>,
    pump_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ThreadedNetwork {
    /// New threaded network with the given caller-side timeout.
    #[must_use]
    pub fn new(call_timeout: Duration) -> Arc<Self> {
        let net = Arc::new(ThreadedNetwork {
            clock: WallClock::new(),
            nodes: RwLock::new(HashMap::new()),
            down: RwLock::new(HashSet::new()),
            call_timeout,
            metrics: NetMetrics::new(),
            pump_stop: Arc::new(AtomicBool::new(false)),
            pump_threads: Mutex::new(Vec::new()),
        });
        #[cfg(feature = "lockcheck")]
        crate::lockcheck_gate::install_cycle_hook(Arc::downgrade(&net.metrics.obs()), {
            let clock = Arc::clone(&net.clock);
            move || clock.now().0
        });
        net
    }

    /// Transport-level observability: per-service call/byte counters and
    /// latency histograms (`rpc_*{service=...}`), timestamped on the
    /// monotonic wall clock.
    #[must_use]
    pub fn obs(&self) -> Arc<Obs> {
        self.metrics.obs()
    }

    /// Attaches a node, spawning one mailbox thread per registered
    /// service (services registered after attach are not served —
    /// register everything first, as [`ServiceMux`] users do).
    pub fn attach(&self, addr: NodeAddr, mux: Arc<ServiceMux>) {
        let mut old = Vec::new();
        for service in mux.services() {
            let Some(handler) = mux.handler(service) else {
                continue;
            };
            let (tx, rx): (Sender<Mail>, Receiver<Mail>) = unbounded();
            let handle = std::thread::Builder::new()
                .name(format!("{addr}-{service:?}"))
                .spawn(move || {
                    while let Ok(mail) = rx.recv() {
                        match mail {
                            Mail::Request { from, req, reply } => {
                                // Bridge the caller's trace onto this
                                // mailbox thread from the wire header.
                                let ctx = req.trace.map(TraceHeader::ctx);
                                let resp =
                                    trace::with_context(ctx, || handler.handle(from, &req.body));
                                // The caller may have timed out; ignore.
                                let _ = reply.send(resp);
                            }
                            Mail::Shutdown => break,
                        }
                    }
                })
                .expect("spawn mailbox thread");
            if let Some(prev) = self.nodes.write().insert(
                (addr, service),
                Mailbox {
                    tx,
                    handle: Some(handle),
                },
            ) {
                old.push(prev);
            }
        }
        self.down.write().remove(&addr);
        for prev in old {
            prev.stop();
        }
    }

    /// Detaches a node, stopping all of its mailbox threads.
    pub fn detach(&self, addr: NodeAddr) {
        let removed: Vec<Mailbox> = {
            let mut nodes = self.nodes.write();
            let keys: Vec<_> = nodes.keys().filter(|(a, _)| *a == addr).copied().collect();
            keys.into_iter().filter_map(|k| nodes.remove(&k)).collect()
        };
        for mb in removed {
            mb.stop();
        }
    }

    /// Simulates a crash: the node stops answering (threads keep running,
    /// state preserved, but calls are rejected at the transport).
    pub fn fail_node(&self, addr: NodeAddr) {
        self.down.write().insert(addr);
    }

    /// Revives a crashed node.
    pub fn recover_node(&self, addr: NodeAddr) {
        self.down.write().remove(&addr);
    }
}

impl Drop for ThreadedNetwork {
    fn drop(&mut self) {
        self.pump_stop.store(true, Ordering::SeqCst);
        for h in self.pump_threads.lock().drain(..) {
            let _ = h.join();
        }
        for (_, mb) in self.nodes.write().drain() {
            mb.stop();
        }
    }
}

impl ThreadedNetwork {
    /// The untraced call path (also the body of every traced call).
    fn call_inner(
        &self,
        from: NodeAddr,
        to: NodeAddr,
        req: RpcRequest,
    ) -> Result<RpcResponse, RpcError> {
        let svc = self.metrics.svc(req.service);
        svc.calls.inc();
        let _inflight = crate::metrics::InflightGuard::enter(&svc.inflight);
        let start = self.clock.now();
        if from == to {
            svc.local.inc();
        }
        if self.down.read().contains(&to) {
            svc.failed.inc();
            return Err(RpcError::Unreachable(to));
        }
        let tx = match self.nodes.read().get(&(to, req.service)) {
            Some(mb) => mb.tx.clone(),
            None => {
                svc.failed.inc();
                // Distinguish "node exists but lacks the service" from a
                // dead node, mirroring SimNetwork semantics.
                let node_known = self.nodes.read().keys().any(|(a, _)| *a == to);
                return Err(if node_known {
                    RpcError::NoService(req.service)
                } else {
                    RpcError::Unreachable(to)
                });
            }
        };
        let req_bytes = req.wire_size();
        let (rtx, rrx) = bounded(1);
        if tx
            .send(Mail::Request {
                from,
                req,
                reply: rtx,
            })
            .is_err()
        {
            svc.failed.inc();
            return Err(RpcError::Unreachable(to));
        }
        let result = match rrx.recv_timeout(self.call_timeout) {
            Ok(resp) => resp,
            Err(_) => Err(RpcError::Unreachable(to)),
        };
        match &result {
            Ok(resp) => svc.bytes.add((req_bytes + resp.wire_size()) as u64),
            Err(_) => svc.failed.inc(),
        }
        let elapsed = self.clock.now().since_nanos(start);
        svc.latency.record(elapsed);
        self.metrics.note_peer_latency(to, elapsed);
        result
    }
}

impl Network for ThreadedNetwork {
    fn call(
        &self,
        from: NodeAddr,
        to: NodeAddr,
        mut req: RpcRequest,
    ) -> Result<RpcResponse, RpcError> {
        #[cfg(feature = "lockcheck")]
        crate::lockcheck_gate::rpc_gate(
            &self.metrics.obs(),
            self.clock.now().0,
            from,
            "ThreadedNetwork::call",
        );
        // When a trace is active on this thread, wrap the RPC in a
        // client span (wall-clock timed) and stamp the child context
        // into the wire header so the mailbox thread can pick it up.
        let span_name = req.service.rpc_span_name();
        self.metrics.tracer().child_with(
            || span_name.to_string(),
            from.0,
            || self.clock.now().0,
            |ctx| {
                req.trace = ctx.map(TraceHeader::from_ctx);
                self.call_inner(from, to, req)
            },
        )
    }

    /// Concurrent fan-out on real threads: one scoped worker per batch
    /// entry, joined in order. Calls to distinct (node, service)
    /// mailboxes genuinely overlap; calls that share a mailbox still
    /// serialize behind its single thread, as on a real machine. The
    /// caller's trace context is re-installed on each worker thread, so
    /// traced fan-outs record parallel sibling spans.
    fn call_many(
        &self,
        from: NodeAddr,
        batch: Vec<(NodeAddr, RpcRequest)>,
    ) -> Vec<Result<RpcResponse, RpcError>> {
        // The per-entry `call` below runs on fresh worker threads whose
        // held-lock sets are empty; the *caller's* set must be checked
        // here, before the fan-out blocks on the joins.
        #[cfg(feature = "lockcheck")]
        crate::lockcheck_gate::rpc_gate(
            &self.metrics.obs(),
            self.clock.now().0,
            from,
            "ThreadedNetwork::call_many",
        );
        self.metrics.fanout_batch.record(batch.len() as u64);
        if batch.len() <= 1 {
            return batch
                .into_iter()
                .map(|(to, req)| self.call(from, to, req))
                .collect();
        }
        let ctx = trace::current();
        std::thread::scope(|s| {
            let workers: Vec<_> = batch
                .into_iter()
                .map(|(to, req)| {
                    s.spawn(move || trace::with_context(ctx, || self.call(from, to, req)))
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("call_many worker panicked"))
                .collect()
        })
    }

    fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock) as Arc<dyn Clock>
    }

    fn is_up(&self, addr: NodeAddr) -> bool {
        !self.down.read().contains(&addr) && self.nodes.read().keys().any(|(a, _)| *a == addr)
    }

    /// Spawns a background worker that fires the hook every `interval`
    /// until the network is dropped or the hook's owner goes away.
    /// Returns `true`: on real threads the transport owns pump timing.
    fn schedule_pump(&self, hook: Weak<dyn PumpHook>, interval: Duration) -> bool {
        let stop = Arc::clone(&self.pump_stop);
        // Poll the stop flag at least every 20ms so Drop never blocks
        // behind a long flush interval.
        let tick = interval
            .min(Duration::from_millis(20))
            .max(Duration::from_millis(1));
        // The pump thread doubles as this transport's flight-recorder
        // ticker (SimNetwork ticks in `run_pumps` instead); redundant
        // ticks from multiple hooks just add same-valued points.
        let obs = self.metrics.obs();
        let clock = Arc::clone(&self.clock);
        let handle = std::thread::Builder::new()
            .name("writeback-pump".to_string())
            .spawn(move || {
                let mut since_pump = Duration::ZERO;
                loop {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(tick);
                    since_pump += tick;
                    if since_pump < interval {
                        continue;
                    }
                    since_pump = Duration::ZERO;
                    match hook.upgrade() {
                        Some(h) => h.pump(),
                        None => return,
                    }
                    obs.export_self_gauges();
                    obs.recorder.sample_all(clock.now().0);
                }
            })
            .expect("spawn pump thread");
        self.pump_threads.lock().push(handle);
        true
    }

    fn peer_latency_nanos(&self, to: NodeAddr) -> Option<u64> {
        self.metrics.peer_latency(to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RpcHandler;
    use bytes::Bytes;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Counter(AtomicU64);
    impl RpcHandler for Counter {
        fn handle(&self, _from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
            let n = self.0.fetch_add(1, Ordering::SeqCst);
            let _ = body;
            Ok(RpcResponse::new(&n))
        }
    }

    fn req() -> RpcRequest {
        RpcRequest {
            service: ServiceId::Kosha,
            trace: None,
            body: Bytes::new(),
        }
    }

    #[test]
    fn concurrent_callers_are_all_served() {
        let net = ThreadedNetwork::new(Duration::from_secs(5));
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Kosha, Arc::new(Counter(AtomicU64::new(0))));
        net.attach(NodeAddr(7), mux);

        let mut joins = vec![];
        for c in 0..8u64 {
            let net = Arc::clone(&net);
            joins.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    net.call(NodeAddr(100 + c), NodeAddr(7), req()).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let resp = net.call(NodeAddr(1), NodeAddr(7), req()).unwrap();
        assert_eq!(resp.decode::<u64>().unwrap(), 400);
    }

    #[test]
    fn cross_service_self_call_does_not_deadlock() {
        // A service that, while handling a request, calls a *different*
        // service on the same node — the koshad loopback pattern.
        struct Outer {
            net: RwLock<Option<Arc<ThreadedNetwork>>>,
        }
        impl RpcHandler for Outer {
            fn handle(&self, _from: NodeAddr, _body: &[u8]) -> Result<RpcResponse, RpcError> {
                let net = self.net.read().clone().expect("wired");
                net.call(
                    NodeAddr(1),
                    NodeAddr(1),
                    RpcRequest {
                        service: ServiceId::Nfs,
                        trace: None,
                        body: Bytes::new(),
                    },
                )
            }
        }
        let net = ThreadedNetwork::new(Duration::from_secs(2));
        let outer = Arc::new(Outer {
            net: RwLock::new(None),
        });
        *outer.net.write() = Some(net.clone());
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::KoshaFs, outer);
        mux.register(ServiceId::Nfs, Arc::new(Counter(AtomicU64::new(7))));
        net.attach(NodeAddr(1), mux);

        let resp = net
            .call(
                NodeAddr(9),
                NodeAddr(1),
                RpcRequest {
                    service: ServiceId::KoshaFs,
                    trace: None,
                    body: Bytes::new(),
                },
            )
            .unwrap();
        assert_eq!(resp.decode::<u64>().unwrap(), 7);
    }

    #[test]
    fn call_many_is_truly_concurrent() {
        // Each target's handler blocks on a shared barrier sized to the
        // batch: the batch completes only if all three calls are in
        // flight at once. A serial implementation would stall the first
        // call forever (surfacing as a timeout error here).
        struct Rendezvous(Arc<std::sync::Barrier>);
        impl RpcHandler for Rendezvous {
            fn handle(&self, _from: NodeAddr, _body: &[u8]) -> Result<RpcResponse, RpcError> {
                self.0.wait();
                Ok(RpcResponse::new(&1u64))
            }
        }
        let net = ThreadedNetwork::new(Duration::from_secs(10));
        let barrier = Arc::new(std::sync::Barrier::new(3));
        for a in [1, 2, 3] {
            let mux = Arc::new(ServiceMux::new());
            mux.register(ServiceId::Kosha, Arc::new(Rendezvous(Arc::clone(&barrier))));
            net.attach(NodeAddr(a), mux);
        }
        let out = net.call_many(
            NodeAddr(9),
            vec![
                (NodeAddr(1), req()),
                (NodeAddr(2), req()),
                (NodeAddr(3), req()),
            ],
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(Result::is_ok));
    }

    #[test]
    fn failed_node_rejects_and_recovers() {
        let net = ThreadedNetwork::new(Duration::from_secs(1));
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Kosha, Arc::new(Counter(AtomicU64::new(0))));
        net.attach(NodeAddr(3), mux);
        net.fail_node(NodeAddr(3));
        assert!(net.call(NodeAddr(1), NodeAddr(3), req()).is_err());
        net.recover_node(NodeAddr(3));
        assert!(net.call(NodeAddr(1), NodeAddr(3), req()).is_ok());
    }

    #[test]
    fn detach_stops_service() {
        let net = ThreadedNetwork::new(Duration::from_millis(200));
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Kosha, Arc::new(Counter(AtomicU64::new(0))));
        net.attach(NodeAddr(4), mux);
        net.detach(NodeAddr(4));
        assert!(matches!(
            net.call(NodeAddr(1), NodeAddr(4), req()),
            Err(RpcError::Unreachable(NodeAddr(4)))
        ));
    }

    #[test]
    fn trace_context_crosses_threads_and_fanout() {
        // A handler that proves it ran under the caller's trace by
        // echoing the ambient trace id back.
        struct EchoTrace;
        impl RpcHandler for EchoTrace {
            fn handle(&self, _from: NodeAddr, _body: &[u8]) -> Result<RpcResponse, RpcError> {
                let tid = kosha_obs::trace::current().map_or(0, |c| c.trace_id);
                Ok(RpcResponse::new(&tid))
            }
        }

        let net = ThreadedNetwork::new(Duration::from_secs(5));
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Kosha, Arc::new(EchoTrace));
        mux.register(ServiceId::KoshaReplica, Arc::new(EchoTrace));
        net.attach(NodeAddr(1), mux);

        let obs = net.obs();
        let now = std::time::Instant::now();
        let wall = move || now.elapsed().as_nanos() as u64;
        let (single, many) = obs.tracer.root("op", 0, wall, || {
            let tid = kosha_obs::trace::current().unwrap().trace_id;
            let single = net
                .call(NodeAddr(0), NodeAddr(1), req())
                .unwrap()
                .decode::<u64>()
                .unwrap();
            let batch = (0..3)
                .map(|_| (NodeAddr(1), RpcRequest::new(ServiceId::KoshaReplica, &0u64)))
                .collect();
            let many: Vec<u64> = net
                .call_many(NodeAddr(0), batch)
                .into_iter()
                .map(|r| r.unwrap().decode::<u64>().unwrap())
                .collect();
            assert!(many.iter().all(|&t| t == tid));
            (single == tid, many.len())
        });
        assert!(single, "mailbox thread must see the caller's trace");
        assert_eq!(many, 3);

        // Root + one rpc:kosha + three rpc:replica client spans, on the
        // wall clock, all in one trace.
        let spans = obs.tracer.take();
        assert_eq!(spans.len(), 5);
        let tid = spans[0].trace_id;
        assert!(spans.iter().all(|s| s.trace_id == tid));
        assert_eq!(spans.iter().filter(|s| s.name == "rpc:replica").count(), 3);
    }

    #[test]
    fn missing_service_reported_distinctly() {
        let net = ThreadedNetwork::new(Duration::from_millis(200));
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Kosha, Arc::new(Counter(AtomicU64::new(0))));
        net.attach(NodeAddr(5), mux);
        assert!(matches!(
            net.call(
                NodeAddr(1),
                NodeAddr(5),
                RpcRequest {
                    service: ServiceId::Nfs,
                    trace: None,
                    body: Bytes::new(),
                }
            ),
            Err(RpcError::NoService(ServiceId::Nfs))
        ));
    }
}
