//! Real-thread transport: reactor + fixed worker pool.
//!
//! Used by the concurrency integration tests to exercise the same node
//! logic as [`crate::SimNetwork`] but with genuine parallelism. Earlier
//! versions dedicated one mailbox thread to every `(node, service)`
//! pair, which made thread count grow linearly with cluster size — a
//! 10k-node cluster would try to spawn ~30k OS threads. This version is
//! event-driven: requests are queued on per-`(node, service)` *actors*
//! and a small fixed pool of reactor workers (`max(4, cores)`, capped
//! at 64) drains whichever actors have work. Thread count is a function
//! of the host, not the cluster.
//!
//! Dispatch is continuation-style: [`ThreadedNetwork::call_async`]
//! (via the [`Network`] trait) enqueues the request and returns a
//! [`CallCompletion`](crate::network::CallCompletion) immediately;
//! `call` is now a blocking shim that issues and waits. A single caller
//! thread can therefore put hundreds of RPCs in flight at once.
//!
//! Actor discipline: each actor serves its queue FIFO and is held by at
//! most one worker at a time, so requests to one `(node, service)`
//! serialize exactly as they did behind the old per-service mailbox
//! thread (each daemon — nfsd, koshad, the overlay — is one event loop
//! on a real machine). Requests to *different* actors run on distinct
//! workers and genuinely overlap.
//!
//! Deadlock discipline: handlers issue nested blocking RPCs while
//! running on pool workers, so a fixed pool must not wedge when every
//! worker is parked in a wait. Two rules prevent that:
//!
//! * A worker blocked in a completion wait *helps*, but only with the
//!   actor its own reply depends on: if that actor is sitting runnable
//!   on the run queue, the waiter pulls it and serves it in place.
//!   Driving one's own dependency chain is deadlock-free (the chain
//!   mirrors the nested-call chain, which the service discipline keeps
//!   acyclic), so a fully blocked pool still makes progress. Helping
//!   with *unrelated* actors would not be safe: the helped handler can
//!   call back into an actor owned lower on the helper's own stack,
//!   inverting the dependency into a wedge.
//! * As before, nested calls may revisit a node only on a *different*
//!   service — `client → koshad(A) → control(B) → nfsd(A)` is fine; a
//!   same-service cycle such as `koshad(A) → … → koshad(A)` is not
//!   (the actor is busy serving the outer request and the inner one
//!   would wait on it forever, surfacing as a timeout).
//!
//! Periodic maintenance ([`PumpHook`]s) shares one `kosha-timer` thread
//! for the whole transport instead of one thread per hook; it doubles
//! as the flight-recorder sampling tick.

use crate::clock::{Clock, WallClock};
use crate::metrics::{InflightGuard, NetMetrics};
use crate::network::{
    CallCompletion, Network, NodeAddr, PumpHook, RpcError, RpcRequest, RpcResponse, ServiceId,
    ServiceMux, TraceHeader,
};
use crossbeam::channel::{bounded, RecvTimeoutError, Sender, TryRecvError};
use kosha_obs::{trace, Counter, Gauge, Histogram, Obs};
use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

type ReplyTx = Sender<Result<RpcResponse, RpcError>>;

/// One queued request awaiting dispatch on an actor.
struct WorkItem {
    from: NodeAddr,
    req: RpcRequest,
    reply: ReplyTx,
    /// Transport-clock reading at enqueue, for the reactor's
    /// dispatch-latency histogram.
    enqueued_nanos: u64,
}

/// Mutable half of an actor: its FIFO request queue plus scheduling
/// state. `running` is true while some worker owns the actor (it is
/// either executing a request or queued on the run queue), which is
/// what guarantees per-actor serialization.
#[derive(Default)]
struct ActorInner {
    q: VecDeque<WorkItem>,
    running: bool,
    closed: bool,
}

/// One `(node, service)` endpoint: the handler plus its request queue.
struct ServiceActor {
    handler: Arc<dyn crate::network::RpcHandler>,
    inner: Mutex<ActorInner>,
}

/// What a worker pulls off the run queue.
enum RunItem {
    Actor(Arc<ServiceActor>),
    Shutdown,
}

/// The reactor's MPMC run queue of runnable actors. Hand-rolled on
/// `std` `Mutex`/`Condvar` because the vendored crossbeam shim's
/// `Receiver` is single-consumer.
struct RunQueue {
    items: std::sync::Mutex<VecDeque<RunItem>>,
    ready: std::sync::Condvar,
}

impl RunQueue {
    fn new() -> Self {
        RunQueue {
            items: std::sync::Mutex::new(VecDeque::new()),
            ready: std::sync::Condvar::new(),
        }
    }

    fn push(&self, item: RunItem) {
        if let Ok(mut q) = self.items.lock() {
            q.push_back(item);
        }
        self.ready.notify_one();
    }

    /// Blocks until an item is available.
    fn pop_wait(&self) -> RunItem {
        let Ok(mut q) = self.items.lock() else {
            return RunItem::Shutdown;
        };
        loop {
            if let Some(item) = q.pop_front() {
                return item;
            }
            q = match self.ready.wait(q) {
                Ok(g) => g,
                Err(_) => return RunItem::Shutdown,
            };
        }
    }

    /// Non-blocking removal of one *specific* runnable actor, used by
    /// helping waiters: a blocked worker may only pull the actor its
    /// own reply depends on (see the module docs — popping unrelated
    /// actors can re-enter an actor owned lower on the helper's stack
    /// and invert the dependency into a deadlock). `Shutdown` items are
    /// left for real workers to consume.
    fn try_pop_specific(&self, target: &Arc<ServiceActor>) -> Option<Arc<ServiceActor>> {
        let mut q = self.items.lock().ok()?;
        let pos = q
            .iter()
            .position(|item| matches!(item, RunItem::Actor(a) if Arc::ptr_eq(a, target)))?;
        match q.remove(pos) {
            Some(RunItem::Actor(a)) => Some(a),
            _ => None,
        }
    }
}

/// State shared between the transport handle, its workers, and deferred
/// completion waits: the run queue plus reactor self-observability.
struct ReactorShared {
    runq: RunQueue,
    clock: Arc<WallClock>,
    /// Requests dispatched to handlers (`kosha_reactor_events_total`).
    events_total: Arc<Counter>,
    /// Enqueue→dispatch sojourn per request, wall nanos.
    dispatch_latency: Arc<Histogram>,
    /// Requests currently queued across all actors.
    queue_depth: Arc<Gauge>,
}

thread_local! {
    /// Set once on each pool worker: which reactor it belongs to.
    /// Completion waits consult this to decide whether they may help
    /// drain the run queue (only on a worker of the *same* reactor —
    /// helping across transports would run foreign handlers on this
    /// pool and confuse both sides' accounting).
    static WORKER_REACTOR: RefCell<Option<std::sync::Weak<ReactorShared>>> =
        const { RefCell::new(None) };
}

/// The reactor shared-state of the current thread's pool, if this
/// thread is a pool worker of `shared`'s reactor.
fn helping_reactor(shared: &Arc<ReactorShared>) -> Option<Arc<ReactorShared>> {
    WORKER_REACTOR
        .with(|w| w.borrow().clone())
        .and_then(|w| w.upgrade())
        .filter(|s| Arc::ptr_eq(s, shared))
}

/// Serves one queued request of `actor`, then re-queues the actor if
/// more work arrived meanwhile (one item per turn keeps the pool fair
/// under load; FIFO order within the actor is preserved because only
/// one worker owns it at a time).
fn run_one(shared: &Arc<ReactorShared>, actor: Arc<ServiceActor>) {
    let item = {
        let mut inner = actor.inner.lock();
        if inner.closed {
            inner.q.clear();
            inner.running = false;
            return;
        }
        match inner.q.pop_front() {
            Some(item) => item,
            None => {
                inner.running = false;
                return;
            }
        }
        // Lock released before dispatch: the handler may issue nested
        // RPCs back into this transport (L001 discipline).
    };
    shared.queue_depth.add(-1);
    shared.events_total.inc();
    let now = shared.clock.now().0;
    shared
        .dispatch_latency
        .record(now.saturating_sub(item.enqueued_nanos));
    // Bridge the caller's trace onto this worker from the wire header.
    let ctx = item.req.trace.map(TraceHeader::ctx);
    let handler = Arc::clone(&actor.handler);
    let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        trace::with_context(ctx, || handler.handle(item.from, &item.req.body))
    }))
    .unwrap_or_else(|_| Err(RpcError::Remote("handler panicked".to_string())));
    // The caller may have timed out; ignore send failure.
    let _ = item.reply.send(resp);
    let more = {
        let mut inner = actor.inner.lock();
        if inner.closed {
            inner.q.clear();
        }
        if inner.q.is_empty() {
            inner.running = false;
            false
        } else {
            true
        }
    };
    if more {
        shared.runq.push(RunItem::Actor(actor));
    }
}

/// Queues `item` on `actor`, scheduling the actor onto the run queue if
/// it was idle. Returns `false` if the actor is closed (detached).
fn enqueue(shared: &ReactorShared, actor: &Arc<ServiceActor>, item: WorkItem) -> bool {
    let newly_runnable = {
        let mut inner = actor.inner.lock();
        if inner.closed {
            return false;
        }
        inner.q.push_back(item);
        if inner.running {
            false
        } else {
            inner.running = true;
            true
        }
    };
    shared.queue_depth.add(1);
    if newly_runnable {
        shared.runq.push(RunItem::Actor(Arc::clone(actor)));
    }
    true
}

/// A periodic hook registration on the shared timer thread.
struct TimerEntry {
    hook: Weak<dyn PumpHook>,
    interval: Duration,
    since: Duration,
}

/// Reactor + fixed-worker-pool transport. Nodes are attached with their
/// [`ServiceMux`]; attaching allocates per-service actors (no threads)
/// served by the pool until the network is dropped or the node is
/// detached.
pub struct ThreadedNetwork {
    clock: Arc<WallClock>,
    shared: Arc<ReactorShared>,
    actors: RwLock<HashMap<(NodeAddr, ServiceId), Arc<ServiceActor>>>,
    down: RwLock<HashSet<NodeAddr>>,
    /// How long callers wait for a reply before declaring the node dead.
    call_timeout: Duration,
    metrics: Arc<NetMetrics>,
    worker_count: usize,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Every OS thread this transport has ever spawned
    /// (`kosha_reactor_threads_spawned_total`) — the sched bench uses it
    /// to prove attach does not spawn.
    threads_spawned: Arc<Counter>,
    /// Raised on drop; the timer thread exits at its next tick.
    pump_stop: Arc<AtomicBool>,
    timers: Arc<Mutex<Vec<TimerEntry>>>,
    timer_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Pool sizing: one worker per hardware thread, floored at 4 so nested
/// blocking RPCs and small fan-outs overlap even on tiny hosts, capped
/// at 64 (beyond that, contention on the run queue outweighs
/// parallelism for RPC-sized work).
fn worker_pool_size() -> usize {
    std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .clamp(4, 64)
}

impl ThreadedNetwork {
    /// New threaded network with the given caller-side timeout. Spawns
    /// the fixed worker pool immediately; nothing else ever spawns per
    /// node.
    #[must_use]
    pub fn new(call_timeout: Duration) -> Arc<Self> {
        let clock = WallClock::new();
        let metrics = Arc::new(NetMetrics::new());
        let obs = metrics.obs();
        let events_total = obs.registry.counter("kosha_reactor_events_total");
        let dispatch_latency = obs
            .registry
            .histogram("kosha_reactor_dispatch_latency_nanos");
        let queue_depth = obs.registry.gauge("kosha_reactor_queue_depth");
        let workers_gauge = obs.registry.gauge("kosha_reactor_workers");
        let threads_spawned = obs.registry.counter("kosha_reactor_threads_spawned_total");
        obs.recorder
            .watch_gauge("kosha_reactor_queue_depth", &queue_depth);
        obs.recorder
            .watch_counter("kosha_reactor_events_total", &events_total);
        obs.recorder.watch_histogram_pct(
            "kosha_reactor_dispatch_latency_nanos:p99",
            &dispatch_latency,
            99,
        );
        let shared = Arc::new(ReactorShared {
            runq: RunQueue::new(),
            clock: Arc::clone(&clock),
            events_total,
            dispatch_latency,
            queue_depth,
        });
        let worker_count = worker_pool_size();
        workers_gauge.set(worker_count as i64);
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            threads_spawned.inc();
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("kosha-worker-{i}"))
                .spawn(move || {
                    WORKER_REACTOR.with(|w| *w.borrow_mut() = Some(Arc::downgrade(&shared)));
                    while let RunItem::Actor(actor) = shared.runq.pop_wait() {
                        run_one(&shared, actor);
                    }
                })
                .expect("spawn reactor worker");
            workers.push(handle);
        }
        let net = Arc::new(ThreadedNetwork {
            clock,
            shared,
            actors: RwLock::new(HashMap::new()),
            down: RwLock::new(HashSet::new()),
            call_timeout,
            metrics,
            worker_count,
            workers: Mutex::new(workers),
            threads_spawned,
            pump_stop: Arc::new(AtomicBool::new(false)),
            timers: Arc::new(Mutex::new(Vec::new())),
            timer_thread: Mutex::new(None),
        });
        #[cfg(feature = "lockcheck")]
        crate::lockcheck_gate::install_cycle_hook(Arc::downgrade(&net.metrics.obs()), {
            let clock = Arc::clone(&net.clock);
            move || clock.now().0
        });
        net
    }

    /// Transport-level observability: per-service call/byte counters and
    /// latency histograms (`rpc_*{service=...}`) plus the reactor's own
    /// `kosha_reactor_*` series, timestamped on the monotonic wall clock.
    #[must_use]
    pub fn obs(&self) -> Arc<Obs> {
        self.metrics.obs()
    }

    /// Size of the fixed worker pool (constant for the transport's
    /// lifetime, independent of how many nodes are attached).
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        self.worker_count
    }

    /// Total OS threads this transport has spawned so far (workers +
    /// the shared timer). Attaching nodes never moves this.
    #[must_use]
    pub fn threads_spawned(&self) -> u64 {
        self.threads_spawned.get()
    }

    /// Attaches a node, allocating one actor per registered service
    /// (services registered after attach are not served — register
    /// everything first, as [`ServiceMux`] users do). No threads are
    /// spawned: the shared pool serves the new actors.
    pub fn attach(&self, addr: NodeAddr, mux: Arc<ServiceMux>) {
        let mut replaced = Vec::new();
        for service in mux.services() {
            let Some(handler) = mux.handler(service) else {
                continue;
            };
            let actor = Arc::new(ServiceActor {
                handler,
                inner: Mutex::new(ActorInner::default()),
            });
            if let Some(prev) = self.actors.write().insert((addr, service), actor) {
                replaced.push(prev);
            }
        }
        self.down.write().remove(&addr);
        for prev in replaced {
            let mut inner = prev.inner.lock();
            inner.closed = true;
            // Dropping queued items drops their reply senders; waiters
            // observe the disconnect as Unreachable.
            inner.q.clear();
        }
    }

    /// Detaches a node, closing all of its actors. Requests already
    /// queued are dropped (their callers observe `Unreachable`). The
    /// departed peer's latency gauge, recorder series, and crash marker
    /// are pruned with it, so churn does not grow any per-peer state
    /// without bound.
    pub fn detach(&self, addr: NodeAddr) {
        let removed: Vec<Arc<ServiceActor>> = {
            let mut actors = self.actors.write();
            let keys: Vec<_> = actors.keys().filter(|(a, _)| *a == addr).copied().collect();
            keys.into_iter().filter_map(|k| actors.remove(&k)).collect()
        };
        for actor in removed {
            let mut inner = actor.inner.lock();
            inner.closed = true;
            inner.q.clear();
        }
        self.down.write().remove(&addr);
        self.metrics.prune_peer(addr);
    }

    /// Simulates a crash: the node stops answering (actors keep their
    /// state, but calls are rejected at the transport).
    pub fn fail_node(&self, addr: NodeAddr) {
        self.down.write().insert(addr);
    }

    /// Revives a crashed node.
    pub fn recover_node(&self, addr: NodeAddr) {
        self.down.write().remove(&addr);
    }

    /// The issue half of an RPC: validate the destination, enqueue on
    /// its actor, and build the deferred completion that waits (with
    /// helping), accounts the result, and returns it. `req.trace` must
    /// already be stamped by the caller (`call`, `call_many`, or the
    /// ambient-context shim in `call_async`).
    fn issue(&self, from: NodeAddr, to: NodeAddr, req: RpcRequest) -> CallCompletion {
        let service = req.service;
        let svc = self.metrics.svc(service);
        svc.calls.inc();
        let inflight = InflightGuard::enter(&svc.inflight);
        if from == to {
            svc.local.inc();
        }
        if self.down.read().contains(&to) {
            svc.failed.inc();
            return CallCompletion::ready(Err(RpcError::Unreachable(to)));
        }
        let actor = match self.actors.read().get(&(to, service)) {
            Some(a) => Arc::clone(a),
            None => {
                svc.failed.inc();
                // Distinguish "node exists but lacks the service" from a
                // dead node, mirroring SimNetwork semantics.
                let node_known = self.actors.read().keys().any(|(a, _)| *a == to);
                return CallCompletion::ready(Err(if node_known {
                    RpcError::NoService(service)
                } else {
                    RpcError::Unreachable(to)
                }));
            }
        };
        let req_bytes = req.wire_size();
        let awaited = Arc::clone(&actor);
        let start = self.clock.now();
        let (rtx, rrx) = bounded(1);
        let item = WorkItem {
            from,
            req,
            reply: rtx,
            enqueued_nanos: start.0,
        };
        if !enqueue(&self.shared, &actor, item) {
            svc.failed.inc();
            return CallCompletion::ready(Err(RpcError::Unreachable(to)));
        }
        let clock = Arc::clone(&self.clock);
        let shared = Arc::clone(&self.shared);
        let metrics = Arc::clone(&self.metrics);
        let timeout = self.call_timeout;
        CallCompletion::deferred(Box::new(move || {
            // The call counts as in flight until its completion is
            // redeemed (or abandoned: dropping the closure unredeemed
            // drops the guard too).
            let _inflight = inflight;
            let deadline = start
                .0
                .saturating_add(timeout.as_nanos().min(u128::from(u64::MAX)) as u64);
            let help = helping_reactor(&shared);
            let result = loop {
                match rrx.try_recv() {
                    Ok(resp) => break resp,
                    Err(TryRecvError::Disconnected) => break Err(RpcError::Unreachable(to)),
                    Err(TryRecvError::Empty) => {}
                }
                let now = clock.now().0;
                if now >= deadline {
                    break Err(RpcError::Unreachable(to));
                }
                if let Some(reactor) = &help {
                    // Pool worker blocked on a nested RPC: drive the
                    // actor this reply depends on while waiting, so a
                    // saturated pool cannot starve itself (see the
                    // module docs' deadlock discipline).
                    if let Some(target) = reactor.runq.try_pop_specific(&awaited) {
                        run_one(reactor, target);
                        continue;
                    }
                    match rrx.recv_timeout(Duration::from_micros(500)) {
                        Ok(resp) => break resp,
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            break Err(RpcError::Unreachable(to))
                        }
                    }
                } else {
                    // Plain caller thread: park straight to the deadline.
                    match rrx.recv_timeout(Duration::from_nanos(deadline - now)) {
                        Ok(resp) => break resp,
                        Err(RecvTimeoutError::Timeout) => break Err(RpcError::Unreachable(to)),
                        Err(RecvTimeoutError::Disconnected) => {
                            break Err(RpcError::Unreachable(to))
                        }
                    }
                }
            };
            let svc = metrics.svc(service);
            match &result {
                Ok(resp) => svc.bytes.add((req_bytes + resp.wire_size()) as u64),
                Err(_) => svc.failed.inc(),
            }
            let elapsed = clock.now().since_nanos(start);
            svc.latency.record(elapsed);
            metrics.note_peer_latency(from, to, elapsed);
            result
        }))
    }
}

impl Drop for ThreadedNetwork {
    fn drop(&mut self) {
        self.pump_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.timer_thread.lock().take() {
            let _ = h.join();
        }
        for _ in 0..self.worker_count {
            self.shared.runq.push(RunItem::Shutdown);
        }
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
        for (_, actor) in self.actors.write().drain() {
            let mut inner = actor.inner.lock();
            inner.closed = true;
            inner.q.clear();
        }
    }
}

impl Network for ThreadedNetwork {
    /// Blocking shim over [`Network::call_async`]: when a trace is
    /// active on this thread, the RPC is wrapped in a client span
    /// (wall-clock timed) whose context is stamped into the wire header
    /// so the serving worker can pick it up.
    fn call(
        &self,
        from: NodeAddr,
        to: NodeAddr,
        mut req: RpcRequest,
    ) -> Result<RpcResponse, RpcError> {
        #[cfg(feature = "lockcheck")]
        crate::lockcheck_gate::rpc_gate(
            &self.metrics.obs(),
            self.clock.now().0,
            from,
            "ThreadedNetwork::call",
        );
        let span_name = req.service.rpc_span_name();
        self.metrics.tracer().child_with(
            || span_name.to_string(),
            from.0,
            || self.clock.now().0,
            |ctx| {
                req.trace = ctx.map(TraceHeader::from_ctx);
                self.issue(from, to, req).wait()
            },
        )
    }

    /// Continuation-style dispatch: enqueue on the destination actor
    /// and return immediately. If no span context has been stamped, the
    /// ambient trace (if any) is propagated; callers that want a
    /// per-call client span stamp one themselves (as `call` and
    /// `call_many` do).
    fn call_async(&self, from: NodeAddr, to: NodeAddr, mut req: RpcRequest) -> CallCompletion {
        if req.trace.is_none() {
            req.trace = trace::current().map(TraceHeader::from_ctx);
        }
        self.issue(from, to, req)
    }

    /// Concurrent fan-out without fan-out threads: every entry is
    /// issued through `call_async` up front — putting the whole batch
    /// in flight across the worker pool — then the completions are
    /// redeemed in batch order. Calls to distinct `(node, service)`
    /// actors genuinely overlap; calls sharing an actor still serialize
    /// behind it, as on a real machine. Traced fan-outs record one
    /// client span per entry (opened before issue, closed at
    /// completion), so sibling spans overlap in the trace exactly as
    /// the RPCs did on the wire.
    fn call_many(
        &self,
        from: NodeAddr,
        batch: Vec<(NodeAddr, RpcRequest)>,
    ) -> Vec<Result<RpcResponse, RpcError>> {
        // The caller's held-lock set must be checked before the batch
        // blocks on redemption.
        #[cfg(feature = "lockcheck")]
        crate::lockcheck_gate::rpc_gate(
            &self.metrics.obs(),
            self.clock.now().0,
            from,
            "ThreadedNetwork::call_many",
        );
        self.metrics.fanout_batch.record(batch.len() as u64);
        if batch.len() <= 1 {
            return batch
                .into_iter()
                .map(|(to, req)| self.call(from, to, req))
                .collect();
        }
        let tracer = self.metrics.tracer();
        let issued: Vec<_> = batch
            .into_iter()
            .map(|(to, mut req)| {
                let span = tracer.open_child(from.0, self.clock.now().0);
                if let Some(s) = &span {
                    req.trace = Some(TraceHeader::from_ctx(s.ctx()));
                }
                let name = req.service.rpc_span_name();
                (span, name, self.call_async(from, to, req))
            })
            .collect();
        issued
            .into_iter()
            .map(|(span, name, completion)| {
                let result = completion.wait();
                if let Some(s) = span {
                    tracer.close(s, name, self.clock.now().0);
                }
                result
            })
            .collect()
    }

    fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock) as Arc<dyn Clock>
    }

    fn is_up(&self, addr: NodeAddr) -> bool {
        !self.down.read().contains(&addr) && self.actors.read().keys().any(|(a, _)| *a == addr)
    }

    /// Registers the hook on the transport's shared timer thread
    /// (spawned lazily on the first registration, never per hook).
    /// Returns `true`: on real threads the transport owns pump timing.
    /// The timer doubles as this transport's flight-recorder ticker
    /// (SimNetwork ticks in `run_pumps` instead).
    fn schedule_pump(&self, hook: Weak<dyn PumpHook>, interval: Duration) -> bool {
        self.timers.lock().push(TimerEntry {
            hook,
            interval,
            since: Duration::ZERO,
        });
        let mut timer = self.timer_thread.lock();
        if timer.is_none() {
            let stop = Arc::clone(&self.pump_stop);
            let timers = Arc::clone(&self.timers);
            let obs = self.metrics.obs();
            let clock = Arc::clone(&self.clock);
            self.threads_spawned.inc();
            // Tick every 2ms so Drop never blocks behind a long flush
            // interval and short test intervals still fire promptly.
            let tick = Duration::from_millis(2);
            let handle = std::thread::Builder::new()
                .name("kosha-timer".to_string())
                .spawn(move || loop {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(tick);
                    // Collect due hooks under the lock, fire them
                    // outside it: pumps issue RPCs.
                    let due: Vec<Arc<dyn PumpHook>> = {
                        let mut entries = timers.lock();
                        let mut fired = Vec::new();
                        entries.retain_mut(|e| {
                            e.since += tick;
                            if e.since < e.interval {
                                return true;
                            }
                            e.since = Duration::ZERO;
                            match e.hook.upgrade() {
                                Some(h) => {
                                    fired.push(h);
                                    true
                                }
                                None => false,
                            }
                        });
                        fired
                    };
                    if due.is_empty() {
                        continue;
                    }
                    for hook in due {
                        hook.pump();
                    }
                    obs.export_self_gauges();
                    obs.recorder.sample_all(clock.now().0);
                })
                .expect("spawn timer thread");
            *timer = Some(handle);
        }
        true
    }

    fn peer_latency_nanos(&self, from: NodeAddr, to: NodeAddr) -> Option<u64> {
        self.metrics.peer_latency(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RpcHandler;
    use bytes::Bytes;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Counter(AtomicU64);
    impl RpcHandler for Counter {
        fn handle(&self, _from: NodeAddr, body: &[u8]) -> Result<RpcResponse, RpcError> {
            let n = self.0.fetch_add(1, Ordering::SeqCst);
            let _ = body;
            Ok(RpcResponse::new(&n))
        }
    }

    fn req() -> RpcRequest {
        RpcRequest {
            service: ServiceId::Kosha,
            trace: None,
            body: Bytes::new(),
        }
    }

    #[test]
    fn concurrent_callers_are_all_served() {
        let net = ThreadedNetwork::new(Duration::from_secs(5));
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Kosha, Arc::new(Counter(AtomicU64::new(0))));
        net.attach(NodeAddr(7), mux);

        let mut joins = vec![];
        for c in 0..8u64 {
            let net = Arc::clone(&net);
            joins.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    net.call(NodeAddr(100 + c), NodeAddr(7), req()).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let resp = net.call(NodeAddr(1), NodeAddr(7), req()).unwrap();
        assert_eq!(resp.decode::<u64>().unwrap(), 400);
    }

    #[test]
    fn cross_service_self_call_does_not_deadlock() {
        // A service that, while handling a request, calls a *different*
        // service on the same node — the koshad loopback pattern. The
        // nested call runs from a pool worker, exercising the helping
        // path when the pool is small.
        struct Outer {
            net: RwLock<Option<Arc<ThreadedNetwork>>>,
        }
        impl RpcHandler for Outer {
            fn handle(&self, _from: NodeAddr, _body: &[u8]) -> Result<RpcResponse, RpcError> {
                let net = self.net.read().clone().expect("wired");
                net.call(
                    NodeAddr(1),
                    NodeAddr(1),
                    RpcRequest {
                        service: ServiceId::Nfs,
                        trace: None,
                        body: Bytes::new(),
                    },
                )
            }
        }
        let net = ThreadedNetwork::new(Duration::from_secs(2));
        let outer = Arc::new(Outer {
            net: RwLock::new(None),
        });
        *outer.net.write() = Some(net.clone());
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::KoshaFs, outer);
        mux.register(ServiceId::Nfs, Arc::new(Counter(AtomicU64::new(7))));
        net.attach(NodeAddr(1), mux);

        let resp = net
            .call(
                NodeAddr(9),
                NodeAddr(1),
                RpcRequest {
                    service: ServiceId::KoshaFs,
                    trace: None,
                    body: Bytes::new(),
                },
            )
            .unwrap();
        assert_eq!(resp.decode::<u64>().unwrap(), 7);
    }

    #[test]
    fn call_many_is_truly_concurrent() {
        // Each target's handler blocks on a shared barrier sized to the
        // batch: the batch completes only if all three calls are in
        // flight at once. A serial implementation would stall the first
        // call forever (surfacing as a timeout error here). Under the
        // reactor this also proves distinct actors really run on
        // distinct pool workers.
        struct Rendezvous(Arc<std::sync::Barrier>);
        impl RpcHandler for Rendezvous {
            fn handle(&self, _from: NodeAddr, _body: &[u8]) -> Result<RpcResponse, RpcError> {
                self.0.wait();
                Ok(RpcResponse::new(&1u64))
            }
        }
        let net = ThreadedNetwork::new(Duration::from_secs(10));
        let barrier = Arc::new(std::sync::Barrier::new(3));
        for a in [1, 2, 3] {
            let mux = Arc::new(ServiceMux::new());
            mux.register(ServiceId::Kosha, Arc::new(Rendezvous(Arc::clone(&barrier))));
            net.attach(NodeAddr(a), mux);
        }
        let out = net.call_many(
            NodeAddr(9),
            vec![
                (NodeAddr(1), req()),
                (NodeAddr(2), req()),
                (NodeAddr(3), req()),
            ],
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(Result::is_ok));
    }

    #[test]
    fn failed_node_rejects_and_recovers() {
        let net = ThreadedNetwork::new(Duration::from_secs(1));
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Kosha, Arc::new(Counter(AtomicU64::new(0))));
        net.attach(NodeAddr(3), mux);
        net.fail_node(NodeAddr(3));
        assert!(net.call(NodeAddr(1), NodeAddr(3), req()).is_err());
        net.recover_node(NodeAddr(3));
        assert!(net.call(NodeAddr(1), NodeAddr(3), req()).is_ok());
    }

    #[test]
    fn detach_stops_service() {
        let net = ThreadedNetwork::new(Duration::from_millis(200));
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Kosha, Arc::new(Counter(AtomicU64::new(0))));
        net.attach(NodeAddr(4), mux);
        net.detach(NodeAddr(4));
        assert!(matches!(
            net.call(NodeAddr(1), NodeAddr(4), req()),
            Err(RpcError::Unreachable(NodeAddr(4)))
        ));
    }

    #[test]
    fn trace_context_crosses_threads_and_fanout() {
        // A handler that proves it ran under the caller's trace by
        // echoing the ambient trace id back.
        struct EchoTrace;
        impl RpcHandler for EchoTrace {
            fn handle(&self, _from: NodeAddr, _body: &[u8]) -> Result<RpcResponse, RpcError> {
                let tid = kosha_obs::trace::current().map_or(0, |c| c.trace_id);
                Ok(RpcResponse::new(&tid))
            }
        }

        let net = ThreadedNetwork::new(Duration::from_secs(5));
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Kosha, Arc::new(EchoTrace));
        mux.register(ServiceId::KoshaReplica, Arc::new(EchoTrace));
        net.attach(NodeAddr(1), mux);

        let obs = net.obs();
        let now = std::time::Instant::now();
        let wall = move || now.elapsed().as_nanos() as u64;
        let (single, many) = obs.tracer.root("op", 0, wall, || {
            let tid = kosha_obs::trace::current().unwrap().trace_id;
            let single = net
                .call(NodeAddr(0), NodeAddr(1), req())
                .unwrap()
                .decode::<u64>()
                .unwrap();
            let batch = (0..3)
                .map(|_| (NodeAddr(1), RpcRequest::new(ServiceId::KoshaReplica, &0u64)))
                .collect();
            let many: Vec<u64> = net
                .call_many(NodeAddr(0), batch)
                .into_iter()
                .map(|r| r.unwrap().decode::<u64>().unwrap())
                .collect();
            assert!(many.iter().all(|&t| t == tid));
            (single == tid, many.len())
        });
        assert!(single, "pool worker must see the caller's trace");
        assert_eq!(many, 3);

        // Root + one rpc:kosha + three rpc:replica client spans, on the
        // wall clock, all in one trace.
        let spans = obs.tracer.take();
        assert_eq!(spans.len(), 5);
        let tid = spans[0].trace_id;
        assert!(spans.iter().all(|s| s.trace_id == tid));
        assert_eq!(spans.iter().filter(|s| s.name == "rpc:replica").count(), 3);
    }

    #[test]
    fn missing_service_reported_distinctly() {
        let net = ThreadedNetwork::new(Duration::from_millis(200));
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Kosha, Arc::new(Counter(AtomicU64::new(0))));
        net.attach(NodeAddr(5), mux);
        assert!(matches!(
            net.call(
                NodeAddr(1),
                NodeAddr(5),
                RpcRequest {
                    service: ServiceId::Nfs,
                    trace: None,
                    body: Bytes::new(),
                }
            ),
            Err(RpcError::NoService(ServiceId::Nfs))
        ));
    }

    #[test]
    fn pool_is_fixed_while_1k_async_calls_complete() {
        // ISSUE 7 satellite: worker-pool size stays fixed while 1k
        // concurrent call_async RPCs complete, and attaching nodes
        // spawns no threads.
        let net = ThreadedNetwork::new(Duration::from_secs(10));
        let pool = net.worker_threads();
        let spawned_at_start = net.threads_spawned();
        assert_eq!(spawned_at_start, pool as u64);

        let served = Arc::new(AtomicU64::new(0));
        struct Count(Arc<AtomicU64>);
        impl RpcHandler for Count {
            fn handle(&self, _from: NodeAddr, _body: &[u8]) -> Result<RpcResponse, RpcError> {
                let n = self.0.fetch_add(1, Ordering::SeqCst);
                Ok(RpcResponse::new(&n))
            }
        }
        for a in 0..50u64 {
            let mux = Arc::new(ServiceMux::new());
            mux.register(ServiceId::Kosha, Arc::new(Count(Arc::clone(&served))));
            net.attach(NodeAddr(a), mux);
        }
        assert_eq!(net.threads_spawned(), spawned_at_start, "attach spawned");

        let completions: Vec<_> = (0..1000u64)
            .map(|i| net.call_async(NodeAddr(999), NodeAddr(i % 50), req()))
            .collect();
        for c in completions {
            c.wait().unwrap();
        }
        assert_eq!(served.load(Ordering::SeqCst), 1000);
        assert_eq!(net.worker_threads(), pool);
        assert_eq!(net.threads_spawned(), spawned_at_start);
    }

    #[test]
    fn panicking_handler_fails_one_call_not_the_pool() {
        // A handler panic must surface as an RPC error to its caller
        // and leave the shared pool serving everyone else.
        struct Boom;
        impl RpcHandler for Boom {
            fn handle(&self, _from: NodeAddr, _body: &[u8]) -> Result<RpcResponse, RpcError> {
                panic!("boom");
            }
        }
        let net = ThreadedNetwork::new(Duration::from_secs(2));
        let mux = Arc::new(ServiceMux::new());
        mux.register(ServiceId::Kosha, Arc::new(Boom));
        mux.register(ServiceId::Nfs, Arc::new(Counter(AtomicU64::new(0))));
        net.attach(NodeAddr(1), mux);
        assert!(matches!(
            net.call(NodeAddr(2), NodeAddr(1), req()),
            Err(RpcError::Remote(_))
        ));
        let ok = net.call(
            NodeAddr(2),
            NodeAddr(1),
            RpcRequest {
                service: ServiceId::Nfs,
                trace: None,
                body: Bytes::new(),
            },
        );
        assert!(ok.is_ok());
    }
}
