//! Simulation and wall clocks.
//!
//! The paper reports Modified Andrew Benchmark times measured on a physical
//! 8-node FreeBSD cluster. Our substitute testbed measures elapsed time on a
//! [`VirtualClock`]: each RPC advances the clock by the modeled network and
//! service latency, so experiment output is deterministic and independent of
//! the host machine. The [`WallClock`] implementation backs the threaded
//! transport used in concurrency tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0);

    /// Time as a `Duration` since simulation start.
    #[must_use]
    pub fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Elapsed duration since `earlier` (saturating).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Elapsed nanoseconds since `earlier` (saturating) — the unit
    /// latency histograms record.
    #[must_use]
    pub fn since_nanos(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// This time plus `d`.
    #[must_use]
    pub fn plus(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos() as u64))
    }
}

/// Source of time for a transport. All latency accounting in the simulated
/// experiments flows through this trait.
pub trait Clock: Send + Sync {
    /// Current time.
    fn now(&self) -> SimTime;
    /// Advances the clock by `d` (a no-op for real-time clocks, which
    /// instead sleep).
    fn advance(&self, d: Duration);
}

/// Deterministic logical clock: `advance` adds to an atomic counter.
///
/// Modeled costs accumulate here along the (serial) critical path of the
/// driving workload, exactly like wall time would accumulate for a single
/// client performing blocking RPCs.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// New clock at time zero.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(VirtualClock::default())
    }

    /// Resets to time zero (between benchmark phases).
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }

    /// Moves the clock to an absolute time (backwards or forwards).
    ///
    /// This exists for the simulated transport's parallel fan-out
    /// (`Network::call_many`): each call in a batch is replayed from the
    /// same start time and the clock is finally set to `start + max`
    /// of the individual elapsed times, so concurrent RPCs cost the
    /// slowest one rather than the sum. Only the single driving thread
    /// of a deterministic simulation may use it.
    pub fn set(&self, t: SimTime) {
        self.nanos.store(t.0, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime(self.nanos.load(Ordering::Relaxed))
    }

    fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Real-time clock used by [`crate::ThreadedNetwork`]: `now` reads a
/// monotonic timer, `advance` sleeps.
#[derive(Debug)]
pub struct WallClock {
    start: std::time::Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock {
            start: std::time::Instant::now(),
        }
    }
}

impl WallClock {
    /// New clock anchored at the current instant.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(WallClock::default())
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_nanos() as u64)
    }

    fn advance(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(Duration::from_micros(250));
        c.advance(Duration::from_micros(750));
        assert_eq!(c.now().as_duration(), Duration::from_millis(1));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn sim_time_arithmetic() {
        let t = SimTime::ZERO.plus(Duration::from_secs(2));
        assert_eq!(t.since(SimTime::ZERO), Duration::from_secs(2));
        assert_eq!(SimTime::ZERO.since(t), Duration::ZERO); // saturates
    }

    #[test]
    fn wall_clock_moves_forward() {
        let c = WallClock::new();
        let a = c.now();
        c.advance(Duration::from_millis(2));
        let b = c.now();
        assert!(b > a);
    }
}
