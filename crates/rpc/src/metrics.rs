//! Per-service transport metrics, shared by [`crate::SimNetwork`] and
//! [`crate::ThreadedNetwork`].
//!
//! Both transports account every RPC to the same metric family, labeled
//! by destination [`ServiceId`]:
//!
//! * `rpc_calls_total{service=...}` — attempts, including failures,
//! * `rpc_local_calls_total{service=...}` — loopback (same-host) calls,
//! * `rpc_failed_calls_total{service=...}` — calls that returned an
//!   error (dead node, missing service, handler failure),
//! * `rpc_bytes_total{service=...}` — request + response wire bytes,
//! * `rpc_latency_nanos{service=...}` — round-trip latency histogram,
//!   measured as a delta on the transport's own clock (virtual under
//!   `SimNetwork`, so values are deterministic).
//!
//! Handles are resolved once at construction; the per-call path is a few
//! relaxed atomic adds with no locking.
//!
//! The smoothed per-link latency map is additionally published through
//! the registry as `rpc_peer_latency_ewma_nanos{link="nFFFFFF>nTTTTTT"}`
//! gauges (addresses zero-padded so the registry's sorted render lists
//! links in source-then-destination order), and the per-service
//! inflight/latency/call series are registered with the domain's flight
//! recorder so samplers can capture their evolution over time.

use crate::network::{NodeAddr, ServiceId};
use kosha_obs::registry::labeled;
use kosha_obs::{Counter, Gauge, Histogram, Obs};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Metric handles for one destination service.
pub(crate) struct SvcMetrics {
    pub calls: Arc<Counter>,
    pub local: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub bytes: Arc<Counter>,
    pub latency: Arc<Histogram>,
    /// Calls currently in flight (`rpc_inflight{service=...}`): raised
    /// on entry to `call`, lowered on exit, so fan-out depth is visible
    /// live without tracing enabled.
    pub inflight: Arc<Gauge>,
}

/// RAII guard: decrements an inflight gauge on drop (early returns and
/// handler panics both lower it).
pub(crate) struct InflightGuard(Arc<Gauge>);

impl InflightGuard {
    pub fn enter(g: &Arc<Gauge>) -> Self {
        g.add(1);
        InflightGuard(Arc::clone(g))
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

/// One link's smoothed latency plus its registry gauge (created on the
/// first sample, then updated in place with no registry lookup).
struct PeerLat {
    ewma: u64,
    gauge: Arc<Gauge>,
}

/// The `link="nFFFFFF>nTTTTTT"` gauge name for one directed link
/// (addresses zero-padded so the registry's sorted render lists links
/// in source-then-destination address order).
fn link_gauge_name(from: NodeAddr, to: NodeAddr) -> String {
    labeled(
        "rpc_peer_latency_ewma_nanos",
        &[("link", &format!("n{:06}>n{:06}", from.0, to.0))],
    )
}

/// All per-service handles plus the owning [`Obs`] domain.
pub(crate) struct NetMetrics {
    obs: Arc<Obs>,
    per_service: Vec<SvcMetrics>,
    /// Sizes of `call_many` batches (`rpc_fanout_batch_size`).
    pub fanout_batch: Arc<Histogram>,
    /// Smoothed round-trip latency per directed `(source, destination)`
    /// link (EWMA, α = 1/8 like TCP's SRTT), fed by every completed
    /// call. Keying by link rather than destination alone matters on
    /// non-uniform networks: node A's calls to C must not color node
    /// B's estimate of C, or background maintenance traffic from far
    /// peers would perturb every reader's nearest-replica choice. Backs
    /// [`crate::Network::peer_latency_nanos`] for latency-aware replica
    /// selection, and is mirrored into per-link registry gauges.
    peer_latency: RwLock<HashMap<(u64, u64), PeerLat>>,
}

impl NetMetrics {
    pub fn new() -> Self {
        let obs = Obs::new();
        let per_service = ServiceId::ALL
            .iter()
            .map(|s| {
                let l = s.name();
                SvcMetrics {
                    calls: obs
                        .registry
                        .counter(&format!("rpc_calls_total{{service=\"{l}\"}}")),
                    local: obs
                        .registry
                        .counter(&format!("rpc_local_calls_total{{service=\"{l}\"}}")),
                    failed: obs
                        .registry
                        .counter(&format!("rpc_failed_calls_total{{service=\"{l}\"}}")),
                    bytes: obs
                        .registry
                        .counter(&format!("rpc_bytes_total{{service=\"{l}\"}}")),
                    latency: obs
                        .registry
                        .histogram(&format!("rpc_latency_nanos{{service=\"{l}\"}}")),
                    inflight: obs
                        .registry
                        .gauge(&format!("rpc_inflight{{service=\"{l}\"}}")),
                }
            })
            .collect();
        let fanout_batch = obs.registry.histogram("rpc_fanout_batch_size");
        let m = NetMetrics {
            obs,
            per_service,
            fanout_batch,
            peer_latency: RwLock::new(HashMap::new()),
        };
        // Arm the flight recorder: in-flight depth, attempt counters,
        // and tail latency per service evolve into time-series on every
        // sampler tick (no-ops until something calls `sample_all`).
        let rec = &m.obs.recorder;
        for s in ServiceId::ALL {
            let svc = m.svc(s);
            let l = s.name();
            rec.watch_gauge(&labeled("rpc_inflight", &[("service", l)]), &svc.inflight);
            rec.watch_counter(&labeled("rpc_calls_total", &[("service", l)]), &svc.calls);
            rec.watch_histogram_pct(
                &format!("{}:p99", labeled("rpc_latency_nanos", &[("service", l)])),
                &svc.latency,
                99,
            );
        }
        m
    }

    /// Folds one completed round trip into the link's EWMA and mirrors
    /// the new estimate into the link's registry gauge.
    pub fn note_peer_latency(&self, from: NodeAddr, to: NodeAddr, nanos: u64) {
        let mut m = self.peer_latency.write();
        match m.get_mut(&(from.0, to.0)) {
            Some(p) => {
                p.ewma = (p.ewma * 7 + nanos) / 8;
                p.gauge.set(p.ewma as i64);
            }
            None => {
                let name = link_gauge_name(from, to);
                let gauge = self.obs.registry.gauge(&name);
                gauge.set(nanos as i64);
                self.obs.recorder.watch_gauge(&name, &gauge);
                m.insert((from.0, to.0), PeerLat { ewma: nanos, gauge });
            }
        }
    }

    /// The link's smoothed latency as observed by `from`'s own
    /// completed calls, if it has made any.
    pub fn peer_latency(&self, from: NodeAddr, to: NodeAddr) -> Option<u64> {
        self.peer_latency
            .read()
            .get(&(from.0, to.0))
            .map(|p| p.ewma)
    }

    /// Retires a departed peer's latency state: drops every link EWMA
    /// touching it (as source or destination), the matching
    /// `rpc_peer_latency_ewma_nanos{link=...}` registry gauges, and the
    /// flight-recorder sources/series. Called on transport `detach`;
    /// without it the per-link label set grows without bound under
    /// churn and exhausts the recorder's series budget.
    pub fn prune_peer(&self, addr: NodeAddr) {
        let removed: Vec<(u64, u64)> = {
            let mut m = self.peer_latency.write();
            let keys: Vec<(u64, u64)> = m
                .keys()
                .filter(|(f, t)| *f == addr.0 || *t == addr.0)
                .copied()
                .collect();
            for k in &keys {
                m.remove(k);
            }
            keys
        };
        for (f, t) in removed {
            let name = link_gauge_name(NodeAddr(f), NodeAddr(t));
            self.obs.registry.remove(&name);
            self.obs.recorder.forget(&name);
        }
    }

    /// The observability domain (for exposition and tests).
    pub fn obs(&self) -> Arc<Obs> {
        Arc::clone(&self.obs)
    }

    /// The transport's span buffer (RPC client spans land here).
    pub fn tracer(&self) -> &kosha_obs::Tracer {
        &self.obs.tracer
    }

    /// Handles for one service.
    pub fn svc(&self, s: ServiceId) -> &SvcMetrics {
        &self.per_service[s.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_service_is_preregistered() {
        let m = NetMetrics::new();
        let names = m.obs().registry.names();
        for s in ServiceId::ALL {
            assert!(
                names
                    .iter()
                    .any(|n| n.starts_with("rpc_calls_total") && n.contains(s.name())),
                "missing calls metric for {s:?} in {names:?}"
            );
        }
        m.svc(ServiceId::Nfs).calls.inc();
        assert_eq!(
            m.obs()
                .registry
                .counter("rpc_calls_total{service=\"nfs\"}")
                .get(),
            1
        );
    }

    #[test]
    fn inflight_gauge_tracks_guard_lifetime() {
        let m = NetMetrics::new();
        let g = &m.svc(ServiceId::KoshaReplica).inflight;
        assert_eq!(g.get(), 0);
        {
            let _a = InflightGuard::enter(g);
            let _b = InflightGuard::enter(g);
            assert_eq!(g.get(), 2);
        }
        assert_eq!(g.get(), 0);
        assert_eq!(
            m.obs()
                .registry
                .gauge("rpc_inflight{service=\"replica\"}")
                .get(),
            0
        );
    }

    #[test]
    fn peer_latency_ewma_smooths() {
        let m = NetMetrics::new();
        let from = NodeAddr(1);
        let to = NodeAddr(5);
        assert_eq!(m.peer_latency(from, to), None);
        m.note_peer_latency(from, to, 800);
        assert_eq!(m.peer_latency(from, to), Some(800));
        m.note_peer_latency(from, to, 0);
        // One zero sample drags the estimate down by 1/8th.
        assert_eq!(m.peer_latency(from, to), Some(700));
        assert_eq!(m.peer_latency(from, NodeAddr(6)), None);
        // The reverse direction is a distinct link.
        assert_eq!(m.peer_latency(to, from), None);
    }

    #[test]
    fn peer_latency_is_per_source_link() {
        let m = NetMetrics::new();
        let c = NodeAddr(3);
        // A sits next to C, B is far away: B's slow calls must not
        // disturb A's estimate of C, or background traffic would
        // corrupt every reader's nearest-replica pick.
        m.note_peer_latency(NodeAddr(1), c, 100);
        m.note_peer_latency(NodeAddr(2), c, 9_000);
        assert_eq!(m.peer_latency(NodeAddr(1), c), Some(100));
        assert_eq!(m.peer_latency(NodeAddr(2), c), Some(9_000));
    }

    #[test]
    fn peer_latency_is_exposed_as_sorted_gauges() {
        let m = NetMetrics::new();
        let from = NodeAddr(1);
        // Insert out of address order; the render must sort by address.
        m.note_peer_latency(from, NodeAddr(20), 900);
        m.note_peer_latency(from, NodeAddr(3), 500);
        m.note_peer_latency(from, NodeAddr(100), 700);
        m.note_peer_latency(from, NodeAddr(3), 500); // EWMA steady state
        let reg = &m.obs().registry;
        assert_eq!(
            reg.gauge("rpc_peer_latency_ewma_nanos{link=\"n000001>n000003\"}")
                .get(),
            500
        );
        let text = reg.render();
        let pos: Vec<usize> = ["n000003", "n000020", "n000100"]
            .iter()
            .map(|p| {
                text.find(&format!("link=\"n000001>{p}\""))
                    .expect("link gauge")
            })
            .collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2], "{text}");
        // The EWMA is also a recorder source: one tick → one point.
        m.obs().recorder.sample_all(42);
        assert_eq!(
            m.obs()
                .recorder
                .last("rpc_peer_latency_ewma_nanos{link=\"n000001>n000020\"}"),
            Some((42, 900))
        );
    }

    #[test]
    fn prune_peer_retires_gauge_ewma_and_recorder_series() {
        let m = NetMetrics::new();
        m.note_peer_latency(NodeAddr(1), NodeAddr(7), 400);
        m.note_peer_latency(NodeAddr(7), NodeAddr(8), 500);
        m.note_peer_latency(NodeAddr(1), NodeAddr(8), 600);
        m.obs().recorder.sample_all(1);
        let name7 = "rpc_peer_latency_ewma_nanos{link=\"n000001>n000007\"}";
        let name78 = "rpc_peer_latency_ewma_nanos{link=\"n000007>n000008\"}";
        assert!(m.obs().recorder.series(name7).is_some());

        // Pruning peer 7 drops links where it is source OR destination.
        m.prune_peer(NodeAddr(7));
        assert_eq!(m.peer_latency(NodeAddr(1), NodeAddr(7)), None);
        assert_eq!(m.peer_latency(NodeAddr(7), NodeAddr(8)), None);
        for name in [name7, name78] {
            assert!(
                !m.obs().registry.names().iter().any(|n| n == name),
                "gauge must leave the exposition"
            );
            assert!(m.obs().recorder.series(name).is_none());
        }
        // Ticking again must not resurrect the pruned series.
        m.obs().recorder.sample_all(2);
        assert!(m.obs().recorder.series(name7).is_none());
        // The surviving link is untouched, and pruning counts no drops.
        assert_eq!(m.peer_latency(NodeAddr(1), NodeAddr(8)), Some(600));
        assert_eq!(m.obs().recorder.dropped(), 0);
        // Pruning an unknown peer is a no-op.
        m.prune_peer(NodeAddr(99));
        // A returning peer re-registers cleanly from scratch.
        m.note_peer_latency(NodeAddr(1), NodeAddr(7), 1000);
        assert_eq!(m.peer_latency(NodeAddr(1), NodeAddr(7)), Some(1000));
        m.obs().recorder.sample_all(3);
        assert_eq!(m.obs().recorder.last(name7), Some((3, 1000)));
    }

    #[test]
    fn service_series_are_recorder_sources() {
        let m = NetMetrics::new();
        m.svc(ServiceId::Nfs).calls.inc();
        m.obs().recorder.sample_all(7);
        assert_eq!(
            m.obs().recorder.last("rpc_calls_total{service=\"nfs\"}"),
            Some((7, 1))
        );
        assert!(m
            .obs()
            .recorder
            .series_names()
            .iter()
            .any(|n| n == "rpc_latency_nanos{service=\"nfs\"}:p99"));
    }

    #[test]
    fn fanout_batch_histogram_is_registered() {
        let m = NetMetrics::new();
        m.fanout_batch.record(3);
        assert_eq!(
            m.obs().registry.histogram("rpc_fanout_batch_size").count(),
            1
        );
    }
}
