//! Per-service transport metrics, shared by [`crate::SimNetwork`] and
//! [`crate::ThreadedNetwork`].
//!
//! Both transports account every RPC to the same metric family, labeled
//! by destination [`ServiceId`]:
//!
//! * `rpc_calls_total{service=...}` — attempts, including failures,
//! * `rpc_local_calls_total{service=...}` — loopback (same-host) calls,
//! * `rpc_failed_calls_total{service=...}` — calls that returned an
//!   error (dead node, missing service, handler failure),
//! * `rpc_bytes_total{service=...}` — request + response wire bytes,
//! * `rpc_latency_nanos{service=...}` — round-trip latency histogram,
//!   measured as a delta on the transport's own clock (virtual under
//!   `SimNetwork`, so values are deterministic).
//!
//! Handles are resolved once at construction; the per-call path is a few
//! relaxed atomic adds with no locking.

use crate::network::ServiceId;
use kosha_obs::{Counter, Gauge, Histogram, Obs};
use std::sync::Arc;

/// Metric handles for one destination service.
pub(crate) struct SvcMetrics {
    pub calls: Arc<Counter>,
    pub local: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub bytes: Arc<Counter>,
    pub latency: Arc<Histogram>,
    /// Calls currently in flight (`rpc_inflight{service=...}`): raised
    /// on entry to `call`, lowered on exit, so fan-out depth is visible
    /// live without tracing enabled.
    pub inflight: Arc<Gauge>,
}

/// RAII guard: decrements an inflight gauge on drop (early returns and
/// handler panics both lower it).
pub(crate) struct InflightGuard(Arc<Gauge>);

impl InflightGuard {
    pub fn enter(g: &Arc<Gauge>) -> Self {
        g.add(1);
        InflightGuard(Arc::clone(g))
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

/// All per-service handles plus the owning [`Obs`] domain.
pub(crate) struct NetMetrics {
    obs: Arc<Obs>,
    per_service: Vec<SvcMetrics>,
    /// Sizes of `call_many` batches (`rpc_fanout_batch_size`).
    pub fanout_batch: Arc<Histogram>,
}

impl NetMetrics {
    pub fn new() -> Self {
        let obs = Obs::new();
        let per_service = ServiceId::ALL
            .iter()
            .map(|s| {
                let l = s.name();
                SvcMetrics {
                    calls: obs
                        .registry
                        .counter(&format!("rpc_calls_total{{service=\"{l}\"}}")),
                    local: obs
                        .registry
                        .counter(&format!("rpc_local_calls_total{{service=\"{l}\"}}")),
                    failed: obs
                        .registry
                        .counter(&format!("rpc_failed_calls_total{{service=\"{l}\"}}")),
                    bytes: obs
                        .registry
                        .counter(&format!("rpc_bytes_total{{service=\"{l}\"}}")),
                    latency: obs
                        .registry
                        .histogram(&format!("rpc_latency_nanos{{service=\"{l}\"}}")),
                    inflight: obs
                        .registry
                        .gauge(&format!("rpc_inflight{{service=\"{l}\"}}")),
                }
            })
            .collect();
        let fanout_batch = obs.registry.histogram("rpc_fanout_batch_size");
        NetMetrics {
            obs,
            per_service,
            fanout_batch,
        }
    }

    /// The observability domain (for exposition and tests).
    pub fn obs(&self) -> Arc<Obs> {
        Arc::clone(&self.obs)
    }

    /// The transport's span buffer (RPC client spans land here).
    pub fn tracer(&self) -> &kosha_obs::Tracer {
        &self.obs.tracer
    }

    /// Handles for one service.
    pub fn svc(&self, s: ServiceId) -> &SvcMetrics {
        &self.per_service[s.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_service_is_preregistered() {
        let m = NetMetrics::new();
        let names = m.obs().registry.names();
        for s in ServiceId::ALL {
            assert!(
                names
                    .iter()
                    .any(|n| n.starts_with("rpc_calls_total") && n.contains(s.name())),
                "missing calls metric for {s:?} in {names:?}"
            );
        }
        m.svc(ServiceId::Nfs).calls.inc();
        assert_eq!(
            m.obs()
                .registry
                .counter("rpc_calls_total{service=\"nfs\"}")
                .get(),
            1
        );
    }

    #[test]
    fn inflight_gauge_tracks_guard_lifetime() {
        let m = NetMetrics::new();
        let g = &m.svc(ServiceId::KoshaReplica).inflight;
        assert_eq!(g.get(), 0);
        {
            let _a = InflightGuard::enter(g);
            let _b = InflightGuard::enter(g);
            assert_eq!(g.get(), 2);
        }
        assert_eq!(g.get(), 0);
        assert_eq!(
            m.obs()
                .registry
                .gauge("rpc_inflight{service=\"replica\"}")
                .get(),
            0
        );
    }

    #[test]
    fn fanout_batch_histogram_is_registered() {
        let m = NetMetrics::new();
        m.fanout_batch.record(3);
        assert_eq!(
            m.obs().registry.histogram("rpc_fanout_batch_size").count(),
            1
        );
    }
}
